"""Benchmark E1 — Figure 1: Bayesian nonlinear regression (three panels).

Regenerates the paper's Figure 1 series through the ``fig1-regression``
registry entry: predictive mean/std over the input grid for (a) mean-field
VI with local reparameterization, (b) the same posterior with shared weight
samples, and (c) HMC.  The qualitative check is the shape of the
uncertainty: on the data clusters the predictive std should be close to the
observation noise (0.1), in the gap between the clusters it should be
clearly larger, with HMC showing the strongest contrast.
"""

from _harness import record, run_once

from repro.experiments.api import get_experiment

SPEC = get_experiment("fig1-regression")


def test_fig1a_local_reparameterization(benchmark):
    result = run_once(benchmark, SPEC.run,
                      overrides={"panels": "local_reparameterization"})
    panel = result.raw["local_reparameterization"]
    record(benchmark, method=panel.method,
           on_data_std=panel.on_data_std, in_between_std=panel.in_between_std,
           train_log_likelihood=panel.train_log_likelihood,
           train_squared_error=panel.train_squared_error)
    assert panel.train_squared_error < 0.05
    assert panel.in_between_std > panel.on_data_std


def test_fig1b_shared_weight_samples(benchmark):
    result = run_once(benchmark, SPEC.run,
                      overrides={"panels": "shared_weight_samples"})
    panel = result.raw["shared_weight_samples"]
    record(benchmark, method=panel.method,
           on_data_std=panel.on_data_std, in_between_std=panel.in_between_std,
           train_squared_error=panel.train_squared_error)
    assert panel.train_squared_error < 0.05
    assert panel.in_between_std > panel.on_data_std


def test_fig1c_hmc(benchmark):
    result = run_once(benchmark, SPEC.run, overrides={"panels": "hmc"})
    panel = result.raw["hmc"]
    record(benchmark, method="hmc",
           on_data_std=panel.on_data_std, in_between_std=panel.in_between_std,
           train_squared_error=panel.train_squared_error,
           mean_accept_prob=panel.extra["mean_accept_prob"])
    assert panel.train_squared_error < 0.05
    # HMC: wide in-between uncertainty, tight fit on the data clusters
    assert panel.in_between_std > 1.2 * panel.on_data_std
