"""Benchmark E1 — Figure 1: Bayesian nonlinear regression (three panels).

Regenerates the paper's Figure 1 series: predictive mean/std over the input
grid for (a) mean-field VI with local reparameterization, (b) the same
posterior with shared weight samples, and (c) HMC.  The qualitative check is
the shape of the uncertainty: on the data clusters the predictive std should
be close to the observation noise (0.1), in the gap between the clusters it
should be clearly larger, with HMC showing the strongest contrast.
"""

from _harness import record, run_once

from repro.experiments.regression import (RegressionConfig, run_hmc_regression,
                                          run_variational_regression)


def test_fig1a_local_reparameterization(benchmark):
    result = run_once(benchmark, run_variational_regression, RegressionConfig(),
                      local_reparam_predict=True)
    record(benchmark, method=result.method,
           on_data_std=result.on_data_std, in_between_std=result.in_between_std,
           train_log_likelihood=result.train_log_likelihood,
           train_squared_error=result.train_squared_error)
    assert result.train_squared_error < 0.05
    assert result.in_between_std > result.on_data_std


def test_fig1b_shared_weight_samples(benchmark):
    result = run_once(benchmark, run_variational_regression, RegressionConfig(),
                      local_reparam_predict=False)
    record(benchmark, method=result.method,
           on_data_std=result.on_data_std, in_between_std=result.in_between_std,
           train_squared_error=result.train_squared_error)
    assert result.train_squared_error < 0.05
    assert result.in_between_std > result.on_data_std


def test_fig1c_hmc(benchmark):
    result = run_once(benchmark, run_hmc_regression, RegressionConfig())
    record(benchmark, method="hmc",
           on_data_std=result.on_data_std, in_between_std=result.in_between_std,
           train_squared_error=result.train_squared_error,
           mean_accept_prob=result.extra["mean_accept_prob"])
    assert result.train_squared_error < 0.05
    # HMC: wide in-between uncertainty, tight fit on the data clusters
    assert result.in_between_std > 1.2 * result.on_data_std
