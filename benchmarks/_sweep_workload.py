"""Registered workload for the sweep-engine perf gate.

Each cell sleeps a fixed interval and returns trivial deterministic metrics —
the shape of a data-loading / I/O-bound experiment.  A sleep-dominated cell
makes the workers=1 vs workers=4 comparison measure exactly what the pool
promises (overlapping independent cells) instead of the host's core count,
so the gate holds on single-core CI runners too.
"""

import time
from dataclasses import dataclass

from repro.experiments.api import BaseExperimentConfig, register

BENCH_SWEEP_ID = "bench-sweep-sleep"


@dataclass
class SleepCellConfig(BaseExperimentConfig):
    sleep: float = 0.45
    scale: float = 1.0

    @classmethod
    def fast(cls):
        return cls(fast=True, sleep=0.0)


def _validation_targets(config):
    # the workload itself is RNG-trivial; expose a minimal covered model/guide
    # pair so the "every registered experiment validates" invariant holds even
    # when this module is imported alongside the tier-1 suite
    import numpy as np

    import repro.ppl as ppl
    import repro.ppl.distributions as dist
    from repro.analysis import ValidationTarget

    def model():
        w = ppl.sample("w", dist.Normal(0.0, 1.0))
        ppl.sample("obs", dist.Normal(w, 1.0), obs=np.array(0.0))

    def guide():
        ppl.sample("w", dist.Delta(ppl.param("w_loc", np.array(0.0))))

    return [ValidationTarget("sleep-cell", model, guide)]


@register(BENCH_SWEEP_ID, config_cls=SleepCellConfig, number="B1",
          artefact="Bench", title="sleep-shaped sweep cell (pool-overlap gate)",
          validation_targets=_validation_targets)
def _sleep_cell(config):
    rng = config.seed_all()
    time.sleep(config.sleep)
    noise = float(rng.normal())
    return {"value": config.scale * config.seed + 1e-3 * noise,
            "noise": noise}, None
