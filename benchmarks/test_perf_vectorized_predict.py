"""Perf benchmark for the vectorized posterior-predictive engine.

Times ``VariationalBNN.predict`` on the paper's MLP regression workload
(Listings 1-2 shape: a 1-50-1 tanh network on a 1-D grid) in both execution
modes at ``num_predictions=32`` and asserts

* the vectorized path is at least 3x faster than the looped reference, and
* both paths produce identical stacked predictions under the same RNG seed
  (``atol=1e-8``).

The measured timings are written to ``benchmarks/BENCH_predict.json`` so
future PRs can track the trajectory of this hot path.
"""

from functools import partial

import numpy as np
from _harness import best_of as _best_of
from _harness import record, record_bench, run_once

from repro import nn, ppl
import repro.core as tyxe
from repro.ppl import distributions as dist

NUM_PREDICTIONS = 32
MIN_SPEEDUP = 3.0


def _make_bnn(rng, x):
    net = nn.Sequential(nn.Linear(1, 50, rng=rng), nn.Tanh(), nn.Linear(50, 1, rng=rng))
    return tyxe.VariationalBNN(net, tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0)),
                               tyxe.likelihoods.HomoskedasticGaussian(len(x), 0.1),
                               partial(tyxe.guides.AutoNormal, init_scale=0.05,
                                       init_loc_fn=tyxe.guides.init_to_normal("radford")))


def test_vectorized_predict_speedup(benchmark, speedup_gate):
    rng = np.random.default_rng(0)
    x = np.linspace(-2.0, 2.0, 100).reshape(-1, 1)
    bnn = _make_bnn(rng, x)
    bnn.predict(x, num_predictions=1)  # instantiate guide parameters

    # numerical equivalence under a shared seed
    ppl.set_rng_seed(42)
    looped = bnn.predict(x, num_predictions=NUM_PREDICTIONS, aggregate=False)
    ppl.set_rng_seed(42)
    vectorized = bnn.predict(x, num_predictions=NUM_PREDICTIONS, aggregate=False,
                             vectorized=True)
    np.testing.assert_allclose(vectorized.data, looped.data, atol=1e-8, rtol=0)
    ppl.set_rng_seed(42)
    agg_looped = bnn.predict(x, num_predictions=NUM_PREDICTIONS)
    ppl.set_rng_seed(42)
    agg_vectorized = bnn.predict(x, num_predictions=NUM_PREDICTIONS, vectorized=True)
    np.testing.assert_allclose(agg_vectorized.data, agg_looped.data, atol=1e-8, rtol=0)

    # wall-clock comparison (best-of to damp scheduler noise)
    t_looped = _best_of(lambda: bnn.predict(x, num_predictions=NUM_PREDICTIONS,
                                            aggregate=False))
    t_vectorized = _best_of(lambda: bnn.predict(x, num_predictions=NUM_PREDICTIONS,
                                                aggregate=False, vectorized=True))
    speedup = t_looped / t_vectorized

    run_once(benchmark, bnn.predict, x, num_predictions=NUM_PREDICTIONS,
             aggregate=False, vectorized=True)
    record(benchmark, looped_ms=t_looped * 1e3, vectorized_ms=t_vectorized * 1e3,
           speedup=speedup, num_predictions=NUM_PREDICTIONS)

    # gate first: the trajectory file must only hold gate-passing numbers
    speedup_gate(speedup, MIN_SPEEDUP,
                 detail=f"looped {t_looped * 1e3:.2f}ms, vectorized {t_vectorized * 1e3:.2f}ms")

    record_bench("predict", {
        "workload": "mlp_regression_predict",
        "num_predictions": NUM_PREDICTIONS,
        "grid_points": int(x.shape[0]),
        "looped_seconds": t_looped,
        "vectorized_seconds": t_vectorized,
        "speedup": speedup,
        "speedup_definition": "ratio_of_best_of_times",
        "min_required_speedup": MIN_SPEEDUP,
    })
