"""Perf gate for the backend dispatch seam + per-backend timing trajectory.

The backend refactor routed every kernel call in ``repro.nn`` through
``repro.nn.backends.get_backend()``.  Dispatch is a dict lookup per realized
kernel — it must be noise, not a tax.  The gate times a matmul+elementwise
chain through the Tensor layer against a raw-numpy transcription of the
exact same op sequence and requires the dispatched path to stay within 10%
(speedup floor 0.9x; ``REPRO_PERF_RELAX=1`` relaxes it on noisy machines).

Every *available* backend records a ``BENCH_backend.json`` entry, so when
the CI ``backend`` job runs with torch installed the trajectory file picks
up a torch row; the torch leg is tolerance-checked, not gated — it bridges
numpy<->torch at every kernel boundary, which is a data-movement cost this
workload is too small to amortize.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn import backends, lazy
from repro.nn.backends import available_backends, backend_mode

from _harness import best_of, record, record_bench_entry, run_once

N, D_IN, D_HID, D_OUT = 512, 1024, 1024, 512
REPEATS = 5


def _make_inputs(rng):
    x = rng.normal(size=(N, D_IN))
    w1 = rng.normal(size=(D_IN, D_HID)) / np.sqrt(D_IN)
    w2 = rng.normal(size=(D_HID, D_OUT)) / np.sqrt(D_HID)
    return x, w1, w2


def _dispatched(x, w1, w2) -> np.ndarray:
    """The workload through the Tensor layer (backend-dispatched kernels)."""
    h = (nn.tensor(x) @ nn.tensor(w1)).relu()
    out = ((h @ nn.tensor(w2)) * 0.5).tanh() + 1.0
    return out.sum(axis=1).numpy()


def _raw_numpy(x, w1, w2) -> np.ndarray:
    """The identical op sequence spelled out in numpy (the pre-seam code)."""
    h = np.maximum(x @ w1, 0.0)
    out = np.tanh((h @ w2) * 0.5) + 1.0
    return out.sum(axis=1)


def test_perf_backend_dispatch_overhead(benchmark, speedup_gate):
    rng = np.random.default_rng(0)
    x, w1, w2 = _make_inputs(rng)

    with backend_mode("numpy"):
        got = run_once(benchmark, _dispatched, x, w1, w2)
        # the seam is bit-exact before it is fast
        np.testing.assert_array_equal(got, _raw_numpy(x, w1, w2))

        t_dispatched = best_of(lambda: _dispatched(x, w1, w2), REPEATS)
    t_raw = best_of(lambda: _raw_numpy(x, w1, w2), REPEATS)
    ratio = t_raw / t_dispatched

    record(benchmark, backend="numpy", t_dispatched_ms=t_dispatched * 1e3,
           t_raw_ms=t_raw * 1e3, raw_over_dispatched=ratio)
    record_bench_entry("backend", "numpy", {
        "workload": f"({N}x{D_IN})@({D_IN}x{D_HID}) relu matmul tanh chain",
        "t_dispatched_ms": round(t_dispatched * 1e3, 3),
        "t_raw_numpy_ms": round(t_raw * 1e3, 3),
        "raw_over_dispatched": round(ratio, 3),
        "gate": "dispatched within 10% of raw numpy (>= 0.9x)",
    })
    speedup_gate(ratio, 0.9, "backend dispatch should be noise vs raw numpy")


@pytest.mark.parametrize("name", [n for n in backends.backend_names()
                                  if n != "numpy"])
def test_perf_backend_accelerated(benchmark, name):
    reason = available_backends()[name]
    if reason is not None:
        pytest.skip(f"backend {name!r} unavailable: {reason}")
    rng = np.random.default_rng(0)
    x, w1, w2 = _make_inputs(rng)

    with backend_mode("numpy"):
        reference = _dispatched(x, w1, w2)
    with backend_mode(name):
        got = run_once(benchmark, _dispatched, x, w1, w2)
        np.testing.assert_allclose(got, reference, rtol=1e-6, atol=1e-8)
        t_backend = best_of(lambda: _dispatched(x, w1, w2), REPEATS)
        assert lazy.graph_stats()["backend"] == name

    record(benchmark, backend=name, t_dispatched_ms=t_backend * 1e3)
    record_bench_entry("backend", name, {
        "workload": f"({N}x{D_IN})@({D_IN}x{D_HID}) relu matmul tanh chain",
        "t_dispatched_ms": round(t_backend * 1e3, 3),
        "gate": "allclose vs numpy reference (timing recorded, not gated)",
    })
