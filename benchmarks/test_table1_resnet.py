"""Benchmark E2 — Table 1: Bayesian ResNet predictive performance.

Regenerates the paper's Table 1 through the ``table1-resnet`` registry
entry: NLL, accuracy, expected calibration error and OOD-detection AUROC for
maximum likelihood, MAP, mean-field VI (frozen and learned means), and
last-layer mean-field / low-rank guides on the synthetic CIFAR-like dataset.
The qualitative expectations (paper shape):

* ML has the worst NLL, ECE and OOD AUROC,
* the variational methods improve calibration and OOD detection,
* accuracy stays comparable across methods.
"""

from _harness import record, run_once

from repro.experiments.api import get_experiment
from repro.experiments.image_classification import ALL_METHODS

SPEC = get_experiment("table1-resnet")


def test_table1_full_comparison(benchmark):
    result = run_once(benchmark, SPEC.run)
    record(benchmark, **result.metrics)

    def row(method):
        return {key: result.metrics[f"{method}_{key}"]
                for key in ("nll", "accuracy", "ece", "ood_auroc")}

    by_method = {method: row(method) for method in ALL_METHODS}
    ml, mf = by_method["ml"], by_method["mf"]
    # shape of the paper's Table 1: variational inference improves NLL,
    # calibration and OOD detection over maximum likelihood
    assert mf["nll"] < ml["nll"]
    assert mf["ece"] < ml["ece"]
    assert mf["ood_auroc"] > ml["ood_auroc"]
    # accuracy stays in the same ballpark (within 5 percentage points)
    assert abs(mf["accuracy"] - ml["accuracy"]) < 0.05
    # MAP also improves NLL over ML (Table 1: 0.29 vs 0.33)
    assert by_method["map"]["nll"] < ml["nll"]
    # every method performs far above chance
    assert all(r["accuracy"] > 0.5 for r in by_method.values())
