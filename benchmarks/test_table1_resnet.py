"""Benchmark E2 — Table 1: Bayesian ResNet predictive performance.

Regenerates the paper's Table 1: NLL, accuracy, expected calibration error
and OOD-detection AUROC for maximum likelihood, MAP, mean-field VI (frozen
and learned means), and last-layer mean-field / low-rank guides on the
synthetic CIFAR-like dataset.  The qualitative expectations (paper shape):

* ML has the worst NLL, ECE and OOD AUROC,
* the variational methods improve calibration and OOD detection,
* accuracy stays comparable across methods.
"""

from _harness import record, run_once

from repro.experiments.image_classification import (ImageClassificationConfig,
                                                    run_inference_comparison, table1_rows)


def test_table1_full_comparison(benchmark):
    results = run_once(benchmark, run_inference_comparison, ImageClassificationConfig())
    rows = table1_rows(results)
    for row in rows:
        prefix = row["method"]
        record(benchmark, **{f"{prefix}_nll": row["nll"],
                             f"{prefix}_accuracy": row["accuracy"],
                             f"{prefix}_ece": row["ece"],
                             f"{prefix}_ood_auroc": row["ood_auroc"]})

    by_method = {r["method"]: r for r in rows}
    ml, mf = by_method["ml"], by_method["mf"]
    # shape of the paper's Table 1: variational inference improves NLL,
    # calibration and OOD detection over maximum likelihood
    assert mf["nll"] < ml["nll"]
    assert mf["ece"] < ml["ece"]
    assert mf["ood_auroc"] > ml["ood_auroc"]
    # accuracy stays in the same ballpark (within 5 percentage points)
    assert abs(mf["accuracy"] - ml["accuracy"]) < 0.05
    # MAP also improves NLL over ML (Table 1: 0.29 vs 0.33)
    assert by_method["map"]["nll"] < ml["nll"]
    # every method performs far above chance
    assert all(r["accuracy"] > 0.5 for r in rows)
