"""Perf gate for the sweep engine's worker pool.

Workload: an 8-cell grid of the registered sleep-shaped experiment
(``benchmarks/_sweep_workload.py``, 0.45s per cell) executed through
``repro.exec.execute`` with ``workers=1`` vs ``workers=4``.  The cells are
sleep-dominated, so the measured speedup isolates the pool's cell overlap
(launch/poll/journal overhead included) from the host's core count — the
gate holds on a single-core runner.

Gate: workers=4 must finish the grid >= 2x faster than workers=1.
``REPRO_PERF_RELAX=1`` turns a gate failure into a skip (the
parallel == serial journal-equality assertion still runs).  Results extend
the ``BENCH_sweep.json`` trajectory.
"""

import time

from repro.exec import SweepJournal, execute, expand_grid

from _harness import record_bench
from _sweep_workload import BENCH_SWEEP_ID

N_CELLS = 8
CELL_SECONDS = 0.45
PARALLEL_WORKERS = 4
REQUIRED_SPEEDUP = 2.0


def _run(workers, journal_root):
    cells = expand_grid(BENCH_SWEEP_ID, [f"seed=0..{N_CELLS - 1}"],
                        base_overrides={"sleep": str(CELL_SECONDS)})
    journal = SweepJournal(journal_root)
    start = time.perf_counter()
    outcomes = execute(cells, journal=journal, workers=workers)
    elapsed = time.perf_counter() - start
    assert all(o.status == "pass" for o in outcomes)
    return elapsed, journal


def test_worker_pool_overlaps_cells(speedup_gate, tmp_path):
    serial_seconds, serial_journal = _run(1, tmp_path / "serial")
    parallel_seconds, parallel_journal = _run(PARALLEL_WORKERS, tmp_path / "parallel")
    speedup = serial_seconds / parallel_seconds

    # parallel execution journals exactly what serial execution journals
    serial_valid, _ = serial_journal.scan()
    parallel_valid, _ = parallel_journal.scan()
    assert sorted(serial_valid) == sorted(parallel_valid)
    for key, result in serial_valid.items():
        assert parallel_valid[key].metrics == result.metrics
        assert parallel_valid[key].config == result.config

    record_bench("sweep", {
        "workload": "sleep_cell_grid_pool_overlap",
        "experiment_id": BENCH_SWEEP_ID,
        "n_cells": N_CELLS,
        "cell_seconds": CELL_SECONDS,
        "parallel_workers": PARALLEL_WORKERS,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": speedup,
        "required_speedup": REQUIRED_SPEEDUP,
        "speedup_definition": ("single-shot wall clock of the full grid, "
                               "workers=1 over workers=4 (sleep-dominated "
                               "cells, core-count independent)"),
    })
    speedup_gate(speedup, REQUIRED_SPEEDUP,
                 detail=f"workers=1 {serial_seconds:.2f}s vs "
                        f"workers={PARALLEL_WORKERS} {parallel_seconds:.2f}s")
