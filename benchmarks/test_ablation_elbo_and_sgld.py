"""Ablations A2/A3 — closed-form KL vs Monte Carlo ELBO, and SGLD vs HMC.

A2: the TyXe guide samples each site from a diagonal Normal precisely so that
the KL term of the ELBO can be computed in closed form
(``TraceMeanField_ELBO``); this ablation compares the variance of the loss
estimate against the fully Monte Carlo ``Trace_ELBO`` for the same model and
guide — the closed-form variant should have (much) lower variance.

A3: the stochastic-gradient Langevin extension (paper Appendix D) should
reach a predictive error in the same range as full-batch HMC on the 1-D
regression problem while touching only mini-batches of data.
"""

from functools import partial

import numpy as np
from _harness import record, run_once

from repro import nn, ppl
import repro.core as tyxe
from repro.datasets import foong_regression
from repro.ppl import distributions as dist
from repro.ppl.infer import SGLD, SGLDSampler, Trace_ELBO, TraceMeanField_ELBO


def _make_bnn(rng, x, init_scale=0.05):
    net = nn.Sequential(nn.Linear(1, 32, rng=rng), nn.Tanh(), nn.Linear(32, 1, rng=rng))
    return tyxe.VariationalBNN(net, tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0)),
                               tyxe.likelihoods.HomoskedasticGaussian(len(x), 0.1),
                               partial(tyxe.guides.AutoNormal, init_scale=init_scale,
                                       init_loc_fn=tyxe.guides.init_to_normal("radford")))


def _elbo_variances(num_repeats: int = 50, seed: int = 0):
    """Variance of the KL part of the ELBO: analytic vs Monte Carlo.

    The prior-vs-guide KL is isolated by evaluating the ELBO of the
    weight-space model alone (``net_model``/``net_guide``, no likelihood):
    for that model the closed-form estimator is deterministic while the
    Monte Carlo estimator fluctuates with the sampled weights.
    """
    ppl.set_rng_seed(seed)
    ppl.clear_param_store()
    rng = np.random.default_rng(seed)
    x, _ = foong_regression(n_per_cluster=32, seed=seed)
    bnn = _make_bnn(rng, x, init_scale=0.1)
    closed_form = TraceMeanField_ELBO()
    monte_carlo = Trace_ELBO()
    closed_form.differentiable_loss(bnn.net_model, bnn.net_guide, x)  # init guide params

    def loss_std(elbo):
        ppl.set_rng_seed(seed + 1)
        values = [float(elbo.differentiable_loss(bnn.net_model, bnn.net_guide, x).item())
                  for _ in range(num_repeats)]
        return float(np.std(values))

    return {"closed_form_kl_std": loss_std(closed_form),
            "monte_carlo_kl_std": loss_std(monte_carlo)}


def test_ablation_closed_form_kl(benchmark):
    stds = run_once(benchmark, _elbo_variances)
    record(benchmark, **stds)
    # analytic KL removes the sampling noise of the KL estimate entirely
    assert stds["closed_form_kl_std"] < 0.1 * stds["monte_carlo_kl_std"]
    assert stds["monte_carlo_kl_std"] > 0.0


def _sgld_vs_hmc(seed: int = 0):
    ppl.set_rng_seed(seed)
    ppl.clear_param_store()
    rng = np.random.default_rng(seed)
    x, y = foong_regression(n_per_cluster=30, seed=seed)
    likelihood = tyxe.likelihoods.HomoskedasticGaussian(len(x), 0.1)
    prior = tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0))

    # full-batch HMC through MCMC_BNN
    net_hmc = nn.Sequential(nn.Linear(1, 20, rng=rng), nn.Tanh(), nn.Linear(20, 1, rng=rng))
    hmc_bnn = tyxe.MCMC_BNN(net_hmc, prior, likelihood,
                            partial(ppl.infer.HMC, step_size=5e-4, num_steps=10))
    hmc_bnn.fit((x, y), num_samples=60, warmup_steps=60)
    _, hmc_error = hmc_bnn.evaluate(x, y, num_predictions=16)

    # mini-batch SGLD on the same model structure, started from a quickly
    # pre-trained mode (standard practice for SG-MCMC on neural networks)
    ppl.clear_param_store()
    net_sgld = nn.Sequential(nn.Linear(1, 20, rng=rng), nn.Tanh(), nn.Linear(20, 1, rng=rng))
    pretrain_optim = nn.Adam(net_sgld.parameters(), lr=1e-2)
    for _ in range(400):
        pretrain_optim.zero_grad()
        nn.functional.mse_loss(net_sgld(nn.Tensor(x)), nn.Tensor(y)).backward()
        pretrain_optim.step()
    initial_values = {name: p.data.copy() for name, p in net_sgld.named_parameters()}
    sgld_bnn = tyxe.MCMC_BNN(net_sgld, prior, likelihood,
                             partial(ppl.infer.HMC, step_size=5e-4, num_steps=1))
    loader = nn.DataLoader(nn.TensorDataset(x, y), batch_size=20, shuffle=True, rng=rng)
    kernel = SGLD(sgld_bnn.model, step_size=1e-5, preconditioned=False,
                  initial_values=initial_values)
    sampler = SGLDSampler(kernel, burn_in=200, thinning=10)
    sampler.run(loader, num_epochs=200)
    samples = sampler.get_samples()
    # plug the SGLD samples into the MCMC_BNN prediction machinery
    sgld_bnn._weight_samples = samples
    agg = sgld_bnn.predict(x, num_predictions=16, aggregate=True)
    sgld_error = likelihood.error(agg, nn.Tensor(y))
    return {"hmc_squared_error": float(hmc_error), "sgld_squared_error": float(sgld_error),
            "sgld_num_samples": sampler.num_samples}


def test_ablation_sgld_vs_hmc(benchmark):
    results = run_once(benchmark, _sgld_vs_hmc)
    record(benchmark, **results)
    # both samplers fit the regression data; SGLD is allowed to be somewhat
    # worse than full-batch HMC but must stay in the same error regime
    assert results["hmc_squared_error"] < 0.05
    assert results["sgld_squared_error"] < 0.1
    assert results["sgld_num_samples"] > 10
