"""Benchmark E5 — Figure 3: deterministic vs. Bayesian neural radiance fields.

Regenerates the paper's Figure 3 comparison through the ``fig3-nerf``
registry entry: reconstruction error on a held-out sector of viewing angles
for the deterministic NeRF and the pseudo-Bayesian ``PytorchBNN`` variant,
plus the predictive-uncertainty maps.  The paper reports 9.4e-3
(deterministic) vs 8.1e-3 (Bayesian) held-out error; the shape to reproduce
is (a) the Bayesian model generalizes better to unseen angles and (b) its
predictive uncertainty is higher on held-out views than on training views.
"""

from _harness import record, run_once

from repro.experiments.api import get_experiment

SPEC = get_experiment("fig3-nerf")


def test_fig3_nerf_out_of_distribution_views(benchmark):
    result = run_once(benchmark, SPEC.run)
    record(benchmark, **result.metrics)
    metrics = result.metrics

    # paper shape: the Bayesian NeRF reconstructs held-out angles better
    assert metrics["bayesian_heldout_error"] < metrics["deterministic_heldout_error"]
    # and its uncertainty is informative: higher on unseen angles than on training views
    assert metrics["heldout_uncertainty"] > metrics["train_uncertainty"]
    # both models fit the training views reasonably well
    assert metrics["deterministic_train_error"] < 0.02
    assert metrics["bayesian_train_error"] < 0.02
