"""Benchmark E5 — Figure 3: deterministic vs. Bayesian neural radiance fields.

Regenerates the paper's Figure 3 comparison: reconstruction error on a
held-out sector of viewing angles for the deterministic NeRF and the
pseudo-Bayesian ``PytorchBNN`` variant, plus the predictive-uncertainty maps.
The paper reports 9.4e-3 (deterministic) vs 8.1e-3 (Bayesian) held-out error;
the shape to reproduce is (a) the Bayesian model generalizes better to unseen
angles and (b) its predictive uncertainty is higher on held-out views than on
training views.
"""

from _harness import record, run_once

from repro.experiments.nerf import NeRFConfig, run_nerf_experiment


def test_fig3_nerf_out_of_distribution_views(benchmark):
    result = run_once(benchmark, run_nerf_experiment, NeRFConfig())
    record(benchmark,
           deterministic_heldout_error=result.deterministic_heldout_error,
           bayesian_heldout_error=result.bayesian_heldout_error,
           deterministic_train_error=result.deterministic_train_error,
           bayesian_train_error=result.bayesian_train_error,
           train_uncertainty=result.train_uncertainty,
           heldout_uncertainty=result.heldout_uncertainty)

    # paper shape: the Bayesian NeRF reconstructs held-out angles better
    assert result.bayesian_heldout_error < result.deterministic_heldout_error
    # and its uncertainty is informative: higher on unseen angles than on training views
    assert result.heldout_uncertainty > result.train_uncertainty
    # both models fit the training views reasonably well
    assert result.deterministic_train_error < 0.02
    assert result.bayesian_train_error < 0.02
