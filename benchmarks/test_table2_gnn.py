"""Benchmark E4 — Table 2: deterministic vs. Bayesian GNNs on a citation graph.

Regenerates the paper's Table 2 through the ``table2-gnn`` registry entry
(NLL, accuracy and ECE for ML, MAP and mean-field VI, mean ± two standard
errors over several seeds) on the synthetic stochastic-block-model citation
graph.  The paper's qualitative ordering is that variational inference
improves the negative log likelihood over maximum likelihood while matching
or improving accuracy; MAP lands in between on NLL.
"""

from _harness import record, run_once

from repro.experiments.api import get_experiment
from repro.experiments.gnn_classification import GNN_METHODS

SPEC = get_experiment("table2-gnn")


def test_table2_gnn_comparison(benchmark):
    result = run_once(benchmark, SPEC.run)
    record(benchmark, **result.metrics)
    metrics = result.metrics

    # Table 2 shape: Bayesian treatments improve NLL over maximum likelihood...
    assert metrics["mf_nll"] < metrics["ml_nll"]
    assert metrics["map_nll"] < metrics["ml_nll"]
    # ...and accuracy does not degrade (paper: 75.6 -> 78.0)
    assert metrics["mf_accuracy"] >= metrics["ml_accuracy"] - 0.02
    # every method does far better than the 1-in-num_classes chance level
    assert all(metrics[f"{m}_accuracy"] > 0.5 for m in GNN_METHODS)
