"""Benchmark E4 — Table 2: deterministic vs. Bayesian GNNs on a citation graph.

Regenerates the paper's Table 2 (NLL, accuracy and ECE for ML, MAP and
mean-field VI, mean ± two standard errors over several seeds) on the
synthetic stochastic-block-model citation graph.  The paper's qualitative
ordering is that variational inference improves the negative log likelihood
over maximum likelihood while matching or improving accuracy; MAP lands in
between on NLL.
"""

from _harness import record, run_once

from repro.experiments.gnn_classification import GNNConfig, run_gnn_comparison, table2_rows


def test_table2_gnn_comparison(benchmark):
    results = run_once(benchmark, run_gnn_comparison, GNNConfig())
    rows = table2_rows(results)
    for row in rows:
        prefix = row["method"]
        record(benchmark, **{f"{prefix}_nll": row["nll"],
                             f"{prefix}_nll_2se": row["nll_2se"],
                             f"{prefix}_accuracy": row["accuracy"],
                             f"{prefix}_ece": row["ece"]})

    by_method = {r["method"]: r for r in rows}
    ml, map_, mf = by_method["ml"], by_method["map"], by_method["mf"]
    # Table 2 shape: Bayesian treatments improve NLL over maximum likelihood...
    assert mf["nll"] < ml["nll"]
    assert map_["nll"] < ml["nll"]
    # ...and accuracy does not degrade (paper: 75.6 -> 78.0)
    assert mf["accuracy"] >= ml["accuracy"] - 0.02
    # every method does far better than the 1-in-num_classes chance level
    assert all(r["accuracy"] > 0.5 for r in rows)
