"""Benchmark E6 — Figure 4: variational continual learning vs. maximum likelihood.

Regenerates the paper's Figure 4: mean accuracy over all tasks seen so far,
after training on each task of the Split-MNIST-style and Split-CIFAR-style
suites.  The paper's qualitative result is that the ML baseline forgets
earlier tasks as training progresses while VCL (prior <- posterior between
tasks) retains substantially higher accuracy on them.
"""

import numpy as np
from _harness import record, run_once

from repro.experiments.continual import ContinualConfig, run_ml_baseline, run_vcl


def _run_suite(suite: str, num_tasks: int):
    config = ContinualConfig(suite=suite, num_tasks=num_tasks)
    ml = run_ml_baseline(config)
    vcl = run_vcl(config)
    return ml, vcl


def test_fig4_split_mnist(benchmark):
    ml, vcl = run_once(benchmark, _run_suite, "mnist", 5)
    record(benchmark,
           ml_final_mean_accuracy=ml.mean_accuracies[-1],
           vcl_final_mean_accuracy=vcl.mean_accuracies[-1],
           ml_forgetting=ml.forgetting, vcl_forgetting=vcl.forgetting,
           ml_curve=str([round(a, 3) for a in ml.mean_accuracies]),
           vcl_curve=str([round(a, 3) for a in vcl.mean_accuracies]))
    # paper shape: VCL retains more accuracy and forgets less than ML
    assert vcl.mean_accuracies[-1] > ml.mean_accuracies[-1]
    assert vcl.forgetting < ml.forgetting
    # both methods learn each task when it is current (diagonal of the matrix)
    assert np.nanmean(np.diag(ml.accuracy_matrix)) > 0.8


def test_fig4_split_cifar(benchmark):
    ml, vcl = run_once(benchmark, _run_suite, "cifar", 6)
    record(benchmark,
           ml_final_mean_accuracy=ml.mean_accuracies[-1],
           vcl_final_mean_accuracy=vcl.mean_accuracies[-1],
           ml_forgetting=ml.forgetting, vcl_forgetting=vcl.forgetting,
           ml_curve=str([round(a, 3) for a in ml.mean_accuracies]),
           vcl_curve=str([round(a, 3) for a in vcl.mean_accuracies]))
    assert vcl.mean_accuracies[-1] > ml.mean_accuracies[-1]
    assert vcl.forgetting < ml.forgetting
