"""Benchmark E6 — Figure 4: variational continual learning vs. maximum likelihood.

Regenerates the paper's Figure 4 through the ``fig4-vcl`` registry entry:
mean accuracy over all tasks seen so far, after training on each task of the
Split-MNIST-style and Split-CIFAR-style suites.  The paper's qualitative
result is that the ML baseline forgets earlier tasks as training progresses
while VCL (prior <- posterior between tasks) retains substantially higher
accuracy on them.
"""

import numpy as np
from _harness import record, run_once

from repro.experiments.api import get_experiment

SPEC = get_experiment("fig4-vcl")


def _record_suite(benchmark, result, suite):
    record(benchmark,
           ml_final_mean_accuracy=result.metrics[f"{suite}_ml_final_mean_accuracy"],
           vcl_final_mean_accuracy=result.metrics[f"{suite}_vcl_final_mean_accuracy"],
           ml_forgetting=result.metrics[f"{suite}_ml_forgetting"],
           vcl_forgetting=result.metrics[f"{suite}_vcl_forgetting"],
           ml_curve=str([round(a, 3) for a in result.metrics[f"{suite}_ml_mean_accuracies"]]),
           vcl_curve=str([round(a, 3) for a in result.metrics[f"{suite}_vcl_mean_accuracies"]]))


def test_fig4_split_mnist(benchmark):
    result = run_once(benchmark, SPEC.run, overrides={"suite": "mnist", "num_tasks": 5})
    _record_suite(benchmark, result, "mnist")
    # paper shape: VCL retains more accuracy and forgets less than ML
    assert (result.metrics["mnist_vcl_final_mean_accuracy"]
            > result.metrics["mnist_ml_final_mean_accuracy"])
    assert result.metrics["mnist_vcl_forgetting"] < result.metrics["mnist_ml_forgetting"]
    # both methods learn each task when it is current (diagonal of the matrix)
    ml = result.raw["mnist"]["ml"]
    assert np.nanmean(np.diag(ml.accuracy_matrix)) > 0.8


def test_fig4_split_cifar(benchmark):
    result = run_once(benchmark, SPEC.run, overrides={"suite": "cifar", "num_tasks": 6})
    _record_suite(benchmark, result, "cifar")
    assert (result.metrics["cifar_vcl_final_mean_accuracy"]
            > result.metrics["cifar_ml_final_mean_accuracy"])
    assert result.metrics["cifar_vcl_forgetting"] < result.metrics["cifar_ml_forgetting"]
