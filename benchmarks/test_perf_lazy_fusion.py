"""Perf gate for the lazy op-graph engine's elementwise fusion.

Workload: a depth-12 elementwise chain over 1M float64 elements — the shape
of the hot inference chains in ``repro.render`` (softplus links, activation
stacks, transmittance math).  Eager numpy allocates a fresh 8MB temporary per
op; the lazy engine records the chain and realizes it in one scheduler pass,
writing each step in place into the dead temporary from the previous one.

Gate: fused (lazy) must be >= 1.5x faster than eager on the best-of-5 time.
``REPRO_PERF_RELAX=1`` turns a gate failure into a skip (bit-identity is
still asserted).  Results extend the ``BENCH_fusion.json`` trajectory.
"""

import numpy as np

from repro import nn
from repro.nn import lazy

from _harness import best_of, record_bench

N_ELEMENTS = 1_000_000
CHAIN_DEPTH = 12
REQUIRED_SPEEDUP = 1.5


def _chain(x):
    """Depth-12 elementwise chain (cheap ufuncs, so dispatch+alloc dominate)."""
    y = x * 1.0001       # 1
    y = y + 0.5          # 2
    y = y.relu()         # 3
    y = y - 0.25         # 4
    y = y * 0.9          # 5
    y = y.abs()          # 6
    y = y + 1.0          # 7
    y = y * 1.1          # 8
    y = y - 0.1          # 9
    y = y.relu()         # 10
    y = y * 0.5          # 11
    y = y + 0.01         # 12
    return y


def test_lazy_fusion_speedup(speedup_gate):
    rng = np.random.default_rng(0)
    data = rng.normal(size=N_ELEMENTS)
    x = nn.tensor(data)

    def run_lazy():
        with lazy.lazy_mode(True):
            return _chain(x).realize()

    def run_eager():
        with lazy.lazy_mode(False):
            return _chain(x)

    # warm-up + bit-identity check before timing
    out_lazy = run_lazy().numpy()
    out_eager = run_eager().numpy()
    np.testing.assert_array_equal(out_lazy, out_eager)

    lazy_time = best_of(lambda: run_lazy().numpy(), repeats=5)
    eager_time = best_of(lambda: run_eager().numpy(), repeats=5)
    speedup = eager_time / lazy_time

    lazy.reset_stats()
    with lazy.lazy_mode(True):
        _chain(x).realize()
    stats = lazy.graph_stats()
    assert stats["ops_recorded"] == CHAIN_DEPTH
    assert stats["ops_fused"] == CHAIN_DEPTH - 1  # all but the first write in place

    record_bench("fusion", {
        "workload": "elementwise_chain_fusion",
        "n_elements": N_ELEMENTS,
        "chain_depth": CHAIN_DEPTH,
        "eager_seconds": eager_time,
        "lazy_seconds": lazy_time,
        "speedup": speedup,
        "ops_fused": stats["ops_fused"],
        "required_speedup": REQUIRED_SPEEDUP,
    })
    speedup_gate(speedup, REQUIRED_SPEEDUP,
                 detail=f"lazy {lazy_time * 1e3:.1f}ms vs eager "
                        f"{eager_time * 1e3:.1f}ms at depth {CHAIN_DEPTH}, "
                        f"{N_ELEMENTS} elements")
