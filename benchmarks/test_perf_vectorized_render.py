"""Perf benchmarks for the vectorized rendering & evaluation engine.

Two workloads of the Figure-3 Bayesian NeRF (a ``PytorchBNN``-wrapped field
rendered by :class:`VolumetricRenderer`), both recorded as entries of
``benchmarks/BENCH_render.json``:

* **Posterior-view rendering** (``bayesian_nerf_posterior_views``): the
  batched engine (one forward per view over the stacked posterior-sample
  axis, one batched compositing pass for all views, O(n) cumulative-sum
  transmittance) must be at least 3x faster than the looped reference that
  renders each of the ``angles x samples`` scenes through its own traced
  pass, and both paths must produce identical posterior mean/std maps under
  the same RNG seed (``atol=1e-8``) — the draws are consumed in the same
  order.
* **Batched training step** (``bayesian_nerf_batched_training_step``): the
  training-path minibatch (``NeRFConfig.batched_train_views``) renders a
  step's views through ONE ``render_batch`` field evaluation + one backward
  instead of one traced render + backward per view; the batched step must be
  at least 1.5x faster at 6 views per step at the default-config training
  resolution (``image_size=12``), and ``batched_train_views=1`` must
  reproduce the one-view-per-step reference loss bit-for-bit.

The field is the fast-config NeRF shape with the canonical L=10 positional
encoding; ray sampling is kept coarse so the gates measure the engine's
per-scene overhead rather than raw gemm throughput (which is identical in
both modes).  Looped and vectorized runs are timed in interleaved rounds and
compared via the median per-round ratio, so machine-load drift hits both
paths equally instead of biasing the gates.
"""

import time
from functools import partial

import numpy as np
from _harness import record, record_bench_entry, run_once

from repro import nn, ppl
import repro.core as tyxe
from repro.experiments.nerf import (NeRFConfig, _minibatch_view_loss,
                                    _render_posterior_views, _train_step_loss,
                                    _view_loss)
from repro.nn.tensor import Tensor
from repro.ppl import distributions as dist
from repro.render import VolumetricRenderer, make_nerf_field, make_scene_dataset

NUM_POSTERIOR_SAMPLES = 8
IMAGE_SIZE = 16
NUM_SAMPLES_PER_RAY = 4
NUM_ANGLES = 6
MIN_SPEEDUP = 3.0
TRAIN_VIEWS_PER_STEP = 6
TRAIN_IMAGE_SIZE = 12  # the fig3-nerf default-config training resolution
MIN_TRAIN_SPEEDUP = 1.5
_ROUNDS = 5


def _make_nerf_bnn(rng):
    # the Figure-3 fast-config field shape with the original NeRF's L=10
    # positional-encoding frequencies
    field = make_nerf_field(num_frequencies=10, hidden=24, depth=2, rng=rng)
    prior = tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0))
    guide = partial(tyxe.guides.AutoNormal, init_scale=1e-2,
                    init_loc_fn=tyxe.guides.PretrainedInitializer.from_net(field))
    bnn = tyxe.PytorchBNN(field, prior, guide)
    bnn.pytorch_parameters(Tensor(np.zeros((4, 3))))  # instantiate guide parameters
    return bnn


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_vectorized_render_speedup(benchmark, speedup_gate):
    rng = np.random.default_rng(0)
    renderer = VolumetricRenderer(image_size=IMAGE_SIZE,
                                  num_samples_per_ray=NUM_SAMPLES_PER_RAY)
    angles = np.linspace(0.0, 360.0, NUM_ANGLES, endpoint=False)
    bnn = _make_nerf_bnn(rng)

    # numerical equivalence under a shared seed (same angle-major draw order)
    ppl.set_rng_seed(42)
    looped = _render_posterior_views(renderer, bnn, angles, NUM_POSTERIOR_SAMPLES)
    ppl.set_rng_seed(42)
    vectorized = _render_posterior_views(renderer, bnn, angles, NUM_POSTERIOR_SAMPLES,
                                         vectorized=True)
    for key in ("mean", "std"):
        for vec, ref in zip(vectorized[key], looped[key]):
            np.testing.assert_allclose(vec, ref, atol=1e-8, rtol=0)

    # interleaved wall-clock rounds; the median ratio damps load drift
    looped_times, vectorized_times = [], []
    for _ in range(_ROUNDS):
        looped_times.append(_time(lambda: _render_posterior_views(
            renderer, bnn, angles, NUM_POSTERIOR_SAMPLES)))
        vectorized_times.append(_time(lambda: _render_posterior_views(
            renderer, bnn, angles, NUM_POSTERIOR_SAMPLES, vectorized=True)))
    ratios = [lo / vec for lo, vec in zip(looped_times, vectorized_times)]
    speedup = float(np.median(ratios))
    t_looped = float(np.median(looped_times))
    t_vectorized = float(np.median(vectorized_times))

    run_once(benchmark, _render_posterior_views, renderer, bnn, angles,
             NUM_POSTERIOR_SAMPLES, vectorized=True)
    record(benchmark, looped_ms=t_looped * 1e3, vectorized_ms=t_vectorized * 1e3,
           speedup=speedup, num_posterior_samples=NUM_POSTERIOR_SAMPLES,
           num_angles=NUM_ANGLES, image_size=IMAGE_SIZE)

    # gate first: the trajectory file must only hold gate-passing numbers
    speedup_gate(speedup, MIN_SPEEDUP,
                 detail=f"looped {t_looped * 1e3:.1f}ms, vectorized {t_vectorized * 1e3:.1f}ms")

    record_bench_entry("render", "bayesian_nerf_posterior_views", {
        "num_posterior_samples": NUM_POSTERIOR_SAMPLES,
        "num_angles": NUM_ANGLES,
        "image_size": IMAGE_SIZE,
        "num_samples_per_ray": NUM_SAMPLES_PER_RAY,
        "looped_seconds": t_looped,
        "vectorized_seconds": t_vectorized,
        "speedup": speedup,
        # median of per-round ratios (interleaved rounds), NOT the quotient of
        # the median times above — the two can differ slightly under load
        "speedup_definition": "median_of_interleaved_round_ratios",
        "min_required_speedup": MIN_SPEEDUP,
    })


def test_batched_training_step_speedup(benchmark, speedup_gate):
    rng = np.random.default_rng(0)
    renderer = VolumetricRenderer(image_size=TRAIN_IMAGE_SIZE,
                                  num_samples_per_ray=NUM_SAMPLES_PER_RAY)
    angles = np.linspace(0.0, 360.0, TRAIN_VIEWS_PER_STEP, endpoint=False)
    train_set = make_scene_dataset(renderer, angles)
    bnn = _make_nerf_bnn(rng)
    params = bnn.guide_parameters() + bnn.deterministic_parameters()
    config = NeRFConfig(image_size=TRAIN_IMAGE_SIZE,
                        num_samples_per_ray=NUM_SAMPLES_PER_RAY)

    # RNG equivalence: a one-view minibatch reproduces the reference
    # one-view-per-step loss bit-for-bit (same view draw, same field queries)
    config.batched_train_views = None
    ppl.set_rng_seed(42)
    loss_reference = float(_train_step_loss(renderer, bnn, train_set, config,
                                            np.random.default_rng(9)).item())
    config.batched_train_views = 1
    ppl.set_rng_seed(42)
    loss_batched = float(_train_step_loss(renderer, bnn, train_set, config,
                                          np.random.default_rng(9)).item())
    np.testing.assert_allclose(loss_batched, loss_reference, atol=1e-12, rtol=0)

    def _zero_grads():
        for p in params:
            p.grad = None

    def looped_step():
        # the reference training path's per-step work for B views: one traced
        # render + loss per view, one backward on the averaged loss
        _zero_grads()
        total = None
        for target in train_set:
            image, silhouette = renderer(target["angle"], bnn)
            loss = _view_loss(image, silhouette, target, config.silhouette_weight)
            total = loss if total is None else total + loss
        (total / float(len(train_set))).backward()

    def batched_step():
        _zero_grads()
        images, silhouettes = renderer.render_batch([t["angle"] for t in train_set], bnn)
        _minibatch_view_loss(images, silhouettes, train_set,
                             config.silhouette_weight).backward()

    # interleaved wall-clock rounds; the median ratio damps load drift
    looped_times, batched_times = [], []
    for _ in range(_ROUNDS):
        looped_times.append(_time(looped_step))
        batched_times.append(_time(batched_step))
    ratios = [lo / bat for lo, bat in zip(looped_times, batched_times)]
    speedup = float(np.median(ratios))
    t_looped = float(np.median(looped_times))
    t_batched = float(np.median(batched_times))

    run_once(benchmark, batched_step)
    record(benchmark, looped_ms=t_looped * 1e3, batched_ms=t_batched * 1e3,
           speedup=speedup, train_views_per_step=TRAIN_VIEWS_PER_STEP,
           image_size=TRAIN_IMAGE_SIZE)

    # gate first: the trajectory file must only hold gate-passing numbers
    speedup_gate(speedup, MIN_TRAIN_SPEEDUP,
                 detail=f"looped {t_looped * 1e3:.1f}ms, batched {t_batched * 1e3:.1f}ms")

    record_bench_entry("render", "bayesian_nerf_batched_training_step", {
        "train_views_per_step": TRAIN_VIEWS_PER_STEP,
        "image_size": TRAIN_IMAGE_SIZE,
        "num_samples_per_ray": NUM_SAMPLES_PER_RAY,
        "looped_seconds": t_looped,
        "vectorized_seconds": t_batched,
        "speedup": speedup,
        # median of per-round ratios (interleaved rounds), NOT the quotient of
        # the median times above — the two can differ slightly under load
        "speedup_definition": "median_of_interleaved_round_ratios",
        "min_required_speedup": MIN_TRAIN_SPEEDUP,
    })
