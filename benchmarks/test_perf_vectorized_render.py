"""Perf benchmark for the vectorized rendering & evaluation engine.

Times posterior-view rendering of the Figure-3 Bayesian NeRF (a
``PytorchBNN``-wrapped field rendered by :class:`VolumetricRenderer`) in both
execution modes at ``num_posterior_samples=8`` / ``image_size=16`` and asserts

* the batched engine (one forward per view over the stacked posterior-sample
  axis, one batched compositing pass for all views, O(n) cumulative-sum
  transmittance) is at least 3x faster than the looped reference that renders
  each of the ``angles x samples`` scenes through its own traced pass, and
* both paths produce identical posterior mean/std maps under the same RNG
  seed (``atol=1e-8``) — the draws are consumed in the same order.

The field is the fast-config NeRF shape with the canonical L=10 positional
encoding; ray sampling is kept coarse so the gate measures the engine's
per-scene overhead rather than raw gemm throughput (which is identical in
both modes).  Looped and vectorized renders are timed in interleaved rounds
and compared via the median per-round ratio, so machine-load drift hits both
paths equally instead of biasing the gate.

The measured timings are written to ``benchmarks/BENCH_render.json``,
extending the perf trajectory started by ``BENCH_predict.json``.
"""

import time
from functools import partial

import numpy as np
from _harness import record, record_bench, run_once

from repro import nn, ppl
import repro.core as tyxe
from repro.experiments.nerf import _render_posterior_views
from repro.nn.tensor import Tensor
from repro.ppl import distributions as dist
from repro.render import VolumetricRenderer, make_nerf_field

NUM_POSTERIOR_SAMPLES = 8
IMAGE_SIZE = 16
NUM_SAMPLES_PER_RAY = 4
NUM_ANGLES = 6
MIN_SPEEDUP = 3.0
_ROUNDS = 5


def _make_nerf_bnn(rng):
    # the Figure-3 fast-config field shape with the original NeRF's L=10
    # positional-encoding frequencies
    field = make_nerf_field(num_frequencies=10, hidden=24, depth=2, rng=rng)
    prior = tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0))
    guide = partial(tyxe.guides.AutoNormal, init_scale=1e-2,
                    init_loc_fn=tyxe.guides.PretrainedInitializer.from_net(field))
    bnn = tyxe.PytorchBNN(field, prior, guide)
    bnn.pytorch_parameters(Tensor(np.zeros((4, 3))))  # instantiate guide parameters
    return bnn


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_vectorized_render_speedup(benchmark, speedup_gate):
    rng = np.random.default_rng(0)
    renderer = VolumetricRenderer(image_size=IMAGE_SIZE,
                                  num_samples_per_ray=NUM_SAMPLES_PER_RAY)
    angles = np.linspace(0.0, 360.0, NUM_ANGLES, endpoint=False)
    bnn = _make_nerf_bnn(rng)

    # numerical equivalence under a shared seed (same angle-major draw order)
    ppl.set_rng_seed(42)
    looped = _render_posterior_views(renderer, bnn, angles, NUM_POSTERIOR_SAMPLES)
    ppl.set_rng_seed(42)
    vectorized = _render_posterior_views(renderer, bnn, angles, NUM_POSTERIOR_SAMPLES,
                                         vectorized=True)
    for key in ("mean", "std"):
        for vec, ref in zip(vectorized[key], looped[key]):
            np.testing.assert_allclose(vec, ref, atol=1e-8, rtol=0)

    # interleaved wall-clock rounds; the median ratio damps load drift
    looped_times, vectorized_times = [], []
    for _ in range(_ROUNDS):
        looped_times.append(_time(lambda: _render_posterior_views(
            renderer, bnn, angles, NUM_POSTERIOR_SAMPLES)))
        vectorized_times.append(_time(lambda: _render_posterior_views(
            renderer, bnn, angles, NUM_POSTERIOR_SAMPLES, vectorized=True)))
    ratios = [lo / vec for lo, vec in zip(looped_times, vectorized_times)]
    speedup = float(np.median(ratios))
    t_looped = float(np.median(looped_times))
    t_vectorized = float(np.median(vectorized_times))

    run_once(benchmark, _render_posterior_views, renderer, bnn, angles,
             NUM_POSTERIOR_SAMPLES, vectorized=True)
    record(benchmark, looped_ms=t_looped * 1e3, vectorized_ms=t_vectorized * 1e3,
           speedup=speedup, num_posterior_samples=NUM_POSTERIOR_SAMPLES,
           num_angles=NUM_ANGLES, image_size=IMAGE_SIZE)

    # gate first: the trajectory file must only hold gate-passing numbers
    speedup_gate(speedup, MIN_SPEEDUP,
                 detail=f"looped {t_looped * 1e3:.1f}ms, vectorized {t_vectorized * 1e3:.1f}ms")

    record_bench("render", {
        "workload": "bayesian_nerf_posterior_views",
        "num_posterior_samples": NUM_POSTERIOR_SAMPLES,
        "num_angles": NUM_ANGLES,
        "image_size": IMAGE_SIZE,
        "num_samples_per_ray": NUM_SAMPLES_PER_RAY,
        "looped_seconds": t_looped,
        "vectorized_seconds": t_vectorized,
        "speedup": speedup,
        # median of per-round ratios (interleaved rounds), NOT the quotient of
        # the median times above — the two can differ slightly under load
        "speedup_definition": "median_of_interleaved_round_ratios",
        "min_required_speedup": MIN_SPEEDUP,
    })
