"""Benchmark E3 — Figure 2: calibration curves and test/OOD entropy CDFs.

Regenerates the two panels of the paper's Figure 2 for the ML baseline and
the mean-field BNN: (a) reliability curves on the test set, (b) the empirical
CDF of the predictive entropy on test and OOD data.  The paper's qualitative
finding is that the mean-field BNN is better calibrated than ML and assigns
higher entropy to OOD inputs relative to test inputs.
"""

import numpy as np
from _harness import record, run_once

from repro import metrics
from repro.datasets import make_image_classification_data
from repro.experiments.image_classification import (ImageClassificationConfig, figure2_curves,
                                                    run_inference_comparison)


def _run_fig2():
    config = ImageClassificationConfig()
    results = run_inference_comparison(config, methods=("ml", "mf"))
    data = make_image_classification_data(
        num_classes=config.num_classes, image_size=config.image_size, channels=config.channels,
        train_per_class=config.train_per_class, test_per_class=config.test_per_class,
        noise_scale=config.noise_scale, seed=config.seed)
    curves = figure2_curves(results, labels=data.test_labels)
    return results, curves, data


def test_fig2_calibration_and_entropy(benchmark):
    results, curves, data = run_once(benchmark, _run_fig2)

    for method, result in results.items():
        test_entropy = float(metrics.predictive_entropy(result.test_probs).mean())
        ood_entropy = float(metrics.predictive_entropy(result.ood_probs).mean())
        record(benchmark, **{f"{method}_mean_test_entropy": test_entropy,
                             f"{method}_mean_ood_entropy": ood_entropy,
                             f"{method}_ece": metrics.expected_calibration_error(
                                 result.test_probs, data.test_labels)})

    # Figure 2(a): the mean-field reliability curve deviates less from the diagonal
    def calibration_gap(method):
        entry = curves[method]
        valid = entry["bin_count"] > 0
        return float(np.nanmean(np.abs(entry["bin_confidence"][valid]
                                       - entry["bin_accuracy"][valid])))

    assert calibration_gap("mf") < calibration_gap("ml")

    # Figure 2(b): for both methods OOD data has higher predictive entropy than test
    # data, and the entropy CDFs are valid (monotone, ending at 1)
    for method in ("ml", "mf"):
        entry = curves[method]
        assert np.all(np.diff(entry["test_entropy_cdf"]) >= -1e-12)
        assert entry["test_entropy_cdf"][-1] == 1.0
        mean_test = metrics.predictive_entropy(results[method].test_probs).mean()
        mean_ood = metrics.predictive_entropy(results[method].ood_probs).mean()
        assert mean_ood > mean_test
