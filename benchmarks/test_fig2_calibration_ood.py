"""Benchmark E3 — Figure 2: calibration curves and test/OOD entropy CDFs.

Regenerates the two panels of the paper's Figure 2 through the
``fig2-calibration`` registry entry, for the ML baseline and the mean-field
BNN: (a) reliability curves on the test set, (b) the empirical CDF of the
predictive entropy on test and OOD data.  The paper's qualitative finding is
that the mean-field BNN is better calibrated than ML and assigns higher
entropy to OOD inputs relative to test inputs.
"""

import numpy as np
from _harness import record, run_once

from repro.experiments.api import get_experiment

SPEC = get_experiment("fig2-calibration")


def test_fig2_calibration_and_entropy(benchmark):
    result = run_once(benchmark, SPEC.run)
    record(benchmark, **result.metrics)
    curves = result.raw["curves"]

    # Figure 2(a): the mean-field reliability curve deviates less from the
    # diagonal (the registry runner reports the mean |confidence - accuracy|
    # gap over the populated bins)
    assert result.metrics["mf_calibration_gap"] < result.metrics["ml_calibration_gap"]

    # Figure 2(b): for both methods OOD data has higher predictive entropy than
    # test data, and the entropy CDFs are valid (monotone, ending at 1)
    for method in ("ml", "mf"):
        entry = curves[method]
        assert np.all(np.diff(entry["test_entropy_cdf"]) >= -1e-12)
        assert entry["test_entropy_cdf"][-1] == 1.0
        assert (result.metrics[f"{method}_mean_ood_entropy"]
                > result.metrics[f"{method}_mean_test_entropy"])
