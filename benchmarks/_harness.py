"""Helpers shared by the benchmark modules."""

import numpy as np


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer and return its result.

    The experiments are minutes-scale training runs, not microbenchmarks, so a
    single round is both sufficient and necessary to keep the suite's runtime
    reasonable.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1,
                              warmup_rounds=0)


def record(benchmark, **info):
    """Attach reproduced numbers to ``benchmark.extra_info`` (floats/strings only)."""
    for key, value in info.items():
        if isinstance(value, (np.floating, np.integer)):
            value = float(value)
        benchmark.extra_info[key] = value
