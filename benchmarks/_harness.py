"""Helpers shared by the benchmark modules."""

import json
import time
from pathlib import Path

import numpy as np


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer and return its result.

    The experiments are minutes-scale training runs, not microbenchmarks, so a
    single round is both sufficient and necessary to keep the suite's runtime
    reasonable.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1,
                              warmup_rounds=0)


def record(benchmark, **info):
    """Attach reproduced numbers to ``benchmark.extra_info`` (floats/strings only)."""
    for key, value in info.items():
        if isinstance(value, (np.floating, np.integer)):
            value = float(value)
        benchmark.extra_info[key] = value


def record_bench(name: str, payload: dict) -> Path:
    """Write a perf-trajectory file ``benchmarks/BENCH_<name>.json``.

    One JSON per workload; future perf PRs extend the trajectory by rewriting
    the same file (see ``benchmarks/README.md``), so keys should stay stable.
    """
    path = Path(__file__).parent / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def record_bench_entry(name: str, workload: str, payload: dict) -> Path:
    """Update one workload's entry in ``benchmarks/BENCH_<name>.json``.

    Used when one trajectory file tracks several related workloads (e.g. the
    render engine's evaluation *and* training paths): the file maps
    ``workload -> payload`` and each gate rewrites only its own entry.  A
    legacy flat single-workload layout (top-level ``"workload"`` key, as the
    original ``BENCH_render.json`` used) is migrated in place on first
    update.
    """
    path = Path(__file__).parent / f"BENCH_{name}.json"
    entries = {}
    if path.exists():
        data = json.loads(path.read_text())
        if "workload" in data:  # legacy flat layout
            entries[data.pop("workload")] = data
        else:
            entries = data
    entries[workload] = payload
    path.write_text(json.dumps(entries, indent=2) + "\n")
    return path


def best_of(fn, repeats: int = 5) -> float:
    """Best wall-clock time of ``repeats`` runs of ``fn`` (damps scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best
