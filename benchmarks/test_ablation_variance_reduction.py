"""Ablation A1 — gradient-variance reduction from the reparameterization handlers.

The paper's motivation for implementing local reparameterization and flipout
as effect handlers is that they reduce the variance of ELBO gradients for
factorized-Gaussian posteriors over linear layers.  This ablation measures
the Monte Carlo variance of the ELBO gradient w.r.t. the variational scale
parameters of a regression BNN under (a) plain weight sampling, (b) flipout
and (c) local reparameterization, holding the posterior fixed.

Expected shape: var(local reparameterization) < var(plain weight sampling),
with flipout in between (its benefit is largest for mini-batches of
correlated inputs, which is the case here since the batch shares one weight
sample under plain sampling).
"""

import contextlib
from functools import partial

import numpy as np
from _harness import record, run_once

from repro import nn, ppl
import repro.core as tyxe
from repro.datasets import foong_regression
from repro.ppl import distributions as dist
from repro.ppl.infer import TraceMeanField_ELBO


def _gradient_variances(num_repeats: int = 60, seed: int = 0):
    ppl.set_rng_seed(seed)
    ppl.clear_param_store()
    rng = np.random.default_rng(seed)
    x, y = foong_regression(n_per_cluster=32, seed=seed)

    net = nn.Sequential(nn.Linear(1, 32, rng=rng), nn.Tanh(), nn.Linear(32, 1, rng=rng))
    bnn = tyxe.VariationalBNN(net, tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0)),
                              tyxe.likelihoods.HomoskedasticGaussian(len(x), 0.1),
                              partial(tyxe.guides.AutoNormal, init_scale=0.1,
                                      init_loc_fn=tyxe.guides.init_to_normal("radford")))
    elbo = TraceMeanField_ELBO()
    store = ppl.get_param_store()
    # initialize guide parameters once
    elbo.differentiable_loss(bnn.model, bnn.guide, x, y)
    scale_params = [p for name, p in store.named_parameters() if ".scale." in name]

    def grad_samples(handler_factory):
        samples = []
        for _ in range(num_repeats):
            context = handler_factory() if handler_factory is not None else contextlib.nullcontext()
            for p in scale_params:
                p.grad = None
            with context:
                loss = elbo.differentiable_loss(bnn.model, bnn.guide, x, y)
            loss.backward()
            samples.append(np.concatenate([p.grad.reshape(-1) for p in scale_params]))
        return np.stack(samples)

    variances = {}
    for name, factory in [("weight_sampling", None),
                          ("flipout", tyxe.poutine.flipout),
                          ("local_reparameterization", tyxe.poutine.local_reparameterization)]:
        ppl.set_rng_seed(seed + 1)
        grads = grad_samples(factory)
        variances[name] = float(grads.var(axis=0).mean())
    return variances


def test_ablation_gradient_variance(benchmark):
    variances = run_once(benchmark, _gradient_variances)
    record(benchmark, **{f"grad_var_{k}": v for k, v in variances.items()})
    # local reparameterization must reduce gradient variance versus sampling a
    # single weight matrix per batch; flipout must not be worse than plain sampling
    assert variances["local_reparameterization"] < variances["weight_sampling"]
    assert variances["flipout"] <= variances["weight_sampling"] * 1.1
