"""Benchmark-suite fixtures.

Every benchmark regenerates one table or figure of the paper at its default
(paper-shaped, laptop-scale) configuration; reproduced numbers are attached
to ``benchmark.extra_info`` so that ``pytest benchmarks/ --benchmark-only``
output doubles as the experiment log.

Perf gates: the ``speedup_gate`` fixture asserts a measured speedup against a
required floor.  On noisy or overloaded machines set ``REPRO_PERF_RELAX=1``
to turn gate failures into skips (numerical-equivalence assertions still
run — only the wall-clock requirement is relaxed).
"""

import os

import pytest

from repro import ppl


@pytest.fixture(autouse=True)
def _fresh_state():
    ppl.clear_param_store()
    ppl.set_rng_seed(0)
    yield
    ppl.clear_param_store()


@pytest.fixture
def speedup_gate():
    """Assert ``speedup >= required`` unless ``REPRO_PERF_RELAX=1`` (then skip)."""

    def gate(speedup: float, required: float, detail: str = ""):
        if speedup >= required:
            return
        message = (f"speedup {speedup:.2f}x below the required {required:.1f}x"
                   + (f" ({detail})" if detail else ""))
        if os.environ.get("REPRO_PERF_RELAX") == "1":
            pytest.skip(f"REPRO_PERF_RELAX=1: {message}")
        pytest.fail(message)

    return gate
