"""Benchmark-suite fixtures.

Every benchmark regenerates one table or figure of the paper at its default
(paper-shaped, laptop-scale) configuration; reproduced numbers are attached
to ``benchmark.extra_info`` so that ``pytest benchmarks/ --benchmark-only``
output doubles as the experiment log.
"""

import pytest

from repro import ppl


@pytest.fixture(autouse=True)
def _fresh_state():
    ppl.clear_param_store()
    ppl.set_rng_seed(0)
    yield
    ppl.clear_param_store()
