"""Latency/throughput gate for the micro-batching serving layer.

Workload: 128 single-row posterior-predictive requests that all arrive at
once against a tiny fig1 snapshot (untrained — serving consumes no RNG, so
the arithmetic per forward is identical either way).

* **serial** baseline: the requests are answered one ``engine.predict`` call
  at a time, in arrival order.  Each request's latency is its completion
  time measured from the common arrival instant — exactly what a
  single-worker, no-batching server would deliver.
* **coalesced**: the same 128 requests submitted concurrently through
  ``MicroBatcher`` (``max_batch=32``), which folds them into ~4 stacked
  ``vectorized_forward`` calls.

The engine pads every batch to a fixed ``block_rows`` shape, so a serial
1-row forward costs the same wall clock as one 32-row batch — the speedup
measured here is pure coalescing, not a shape artifact, and the per-request
payloads are asserted bit-identical between the two paths.

Gates: coalesced total wall clock >= 3x faster than serial, at
equal-or-better p99 latency.  ``REPRO_PERF_RELAX=1`` relaxes both gates to
skips (the bit-identity assertion still runs).  Results extend the
``BENCH_serve.json`` trajectory.
"""

import asyncio
import time

import numpy as np

from repro.serve import MicroBatcher, create_snapshot, PredictionEngine

from _harness import record_bench_entry

NUM_REQUESTS = 128
MAX_BATCH = 32
MAX_WAIT_MS = 5.0
REQUIRED_THROUGHPUT_SPEEDUP = 3.0
REQUIRED_P99_RATIO = 1.0  # serial p99 / coalesced p99 must be >= 1 (no worse)

TINY_FIG1 = {"n_per_cluster": 6, "num_epochs": 1, "hidden_units": 8,
             "num_predictions": 2}


def _build_engine():
    snapshot = create_snapshot("fig1-regression", fast=True,
                               overrides=TINY_FIG1, num_samples=16,
                               trained=False)
    return PredictionEngine.from_snapshot(snapshot, block_rows=MAX_BATCH)


def _request_trace():
    """A fixed, RNG-free trace of single-row regression inputs."""
    grid = np.linspace(-2.0, 2.0, NUM_REQUESTS).reshape(-1, 1)
    return [grid[i:i + 1] for i in range(NUM_REQUESTS)]


def _serial(engine, trace):
    """Answer the simultaneously-arrived trace one request at a time."""
    responses = []
    latencies = []
    start = time.perf_counter()
    for rows in trace:
        responses.append(engine.predict(rows))
        latencies.append(time.perf_counter() - start)
    return responses, time.perf_counter() - start, latencies


def _coalesced(engine, trace):
    """Answer the same trace through the micro-batching broker."""

    async def go():
        batcher = MicroBatcher(engine, max_batch=MAX_BATCH,
                               max_wait_ms=MAX_WAIT_MS)
        start = time.perf_counter()
        latencies = [0.0] * len(trace)

        async def one(i, rows):
            response = await batcher.submit(rows)
            latencies[i] = time.perf_counter() - start
            return response

        responses = await asyncio.gather(
            *[one(i, rows) for i, rows in enumerate(trace)])
        total = time.perf_counter() - start
        await batcher.close()
        return responses, total, latencies, batcher.counters.batches

    return asyncio.run(go())


def _p99_ms(latencies):
    return float(np.percentile(np.asarray(latencies) * 1000.0, 99.0))


REPEATS = 3  # the measured windows are tens of ms; take the best of 3


def test_micro_batching_throughput_and_p99(speedup_gate):
    engine = _build_engine()
    trace = _request_trace()

    serial_runs = [_serial(engine, trace) for _ in range(REPEATS)]
    coalesced_runs = [_coalesced(engine, trace) for _ in range(REPEATS)]
    serial_responses, serial_total, serial_lat = min(
        serial_runs, key=lambda run: run[1])
    coalesced_responses, coalesced_total, coalesced_lat, batches = min(
        coalesced_runs, key=lambda run: run[1])

    # the broker must actually coalesce, and must not change a single byte
    assert batches < NUM_REQUESTS
    for serial_r, coalesced_r in zip(serial_responses, coalesced_responses):
        assert serial_r.mean.tobytes() == coalesced_r.mean.tobytes()
        assert serial_r.std.tobytes() == coalesced_r.std.tobytes()
        assert serial_r.lo.tobytes() == coalesced_r.lo.tobytes()
        assert serial_r.hi.tobytes() == coalesced_r.hi.tobytes()

    throughput_speedup = serial_total / coalesced_total
    serial_p99 = _p99_ms(serial_lat)
    coalesced_p99 = _p99_ms(coalesced_lat)
    p99_ratio = serial_p99 / coalesced_p99

    record_bench_entry("serve", "simultaneous_single_row_burst", {
        "experiment_id": "fig1-regression",
        "num_requests": NUM_REQUESTS,
        "max_batch": MAX_BATCH,
        "max_wait_ms": MAX_WAIT_MS,
        "num_batches_coalesced": batches,
        "serial_seconds": serial_total,
        "coalesced_seconds": coalesced_total,
        "throughput_speedup": throughput_speedup,
        "required_throughput_speedup": REQUIRED_THROUGHPUT_SPEEDUP,
        "serial_p99_ms": serial_p99,
        "coalesced_p99_ms": coalesced_p99,
        "p99_ratio": p99_ratio,
        "required_p99_ratio": REQUIRED_P99_RATIO,
        "speedup_definition": ("best-of-3 wall clock to answer 128 "
                               "simultaneously-arrived single-row requests, "
                               "sequential predict() over "
                               "MicroBatcher(max_batch=32); latencies "
                               "measured from the common arrival instant"),
    })
    speedup_gate(throughput_speedup, REQUIRED_THROUGHPUT_SPEEDUP,
                 detail=f"serial {serial_total:.3f}s vs "
                        f"coalesced {coalesced_total:.3f}s")
    speedup_gate(p99_ratio, REQUIRED_P99_RATIO,
                 detail=f"p99 serial {serial_p99:.1f}ms vs "
                        f"coalesced {coalesced_p99:.1f}ms")
