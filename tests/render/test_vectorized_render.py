"""Tests for the batched (sample-dimension-aware) rendering engine.

Covers the PR-2 surface: broadcast-aware ``composite`` (including gradients),
the O(n) cumulative-sum transmittance, the per-angle geometry cache,
multi-angle ``render_batch``, and the RNG-identical ``render_posterior``
fast path against the looped per-angle/per-sample reference.
"""

from functools import partial

import numpy as np
import pytest

from repro import nn, ppl
import repro.core as tyxe
from repro.experiments.nerf import _render_posterior_views
from repro.nn.tensor import Tensor
from repro.ppl import distributions as dist
from repro.render import VolumetricRenderer, make_nerf_field, two_sphere_field


def _make_nerf_bnn(rng, renderer):
    field = make_nerf_field(num_frequencies=3, hidden=16, depth=2, rng=rng)
    guide = partial(tyxe.guides.AutoNormal, init_scale=1e-2,
                    init_loc_fn=tyxe.guides.PretrainedInitializer.from_net(field))
    bnn = tyxe.PytorchBNN(field, tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0)), guide)
    bnn.pytorch_parameters(Tensor(np.zeros((4, 3))))
    return bnn


class TestBatchedComposite:
    def _random_raw(self, rng, lead, num_rays=9, samples=6):
        return rng.standard_normal(lead + (num_rays * samples, 4))

    def test_batched_matches_per_item_loop(self, rng):
        renderer = VolumetricRenderer(image_size=3, num_samples_per_ray=6)
        raw = self._random_raw(rng, (4, 5))
        colour, silhouette = renderer.composite(Tensor(raw), 0.2, 9)
        assert colour.shape == (4, 5, 9, 3)
        assert silhouette.shape == (4, 5, 9)
        for i in range(4):
            for j in range(5):
                c_ij, s_ij = renderer.composite(Tensor(raw[i, j]), 0.2, 9)
                np.testing.assert_allclose(colour.data[i, j], c_ij.data, atol=1e-12)
                np.testing.assert_allclose(silhouette.data[i, j], s_ij.data, atol=1e-12)

    def test_batched_gradients_match_per_item_loop(self, rng):
        renderer = VolumetricRenderer(image_size=3, num_samples_per_ray=6)
        raw = self._random_raw(rng, (3,))
        batched = Tensor(raw, requires_grad=True)
        colour, silhouette = renderer.composite(batched, 0.2, 9)
        ((colour ** 2).sum() + silhouette.sum()).backward()
        for i in range(3):
            single = Tensor(raw[i], requires_grad=True)
            c_i, s_i = renderer.composite(single, 0.2, 9)
            ((c_i ** 2).sum() + s_i.sum()).backward()
            np.testing.assert_allclose(batched.grad[i], single.grad, atol=1e-10)

    def test_transmittance_gradcheck_through_cumsum(self, grad_check, rng):
        renderer = VolumetricRenderer(image_size=2, num_samples_per_ray=4)

        def loss(raw):
            colour, silhouette = renderer.composite(raw, 0.3, 4)
            return (colour ** 2).sum() + (silhouette ** 2).sum()

        grad_check(loss, rng.standard_normal((16, 4)), atol=1e-4)


class TestGeometryCache:
    def test_sample_points_cached_per_angle(self):
        renderer = VolumetricRenderer(image_size=6, num_samples_per_ray=6)
        p1, d1 = renderer.sample_points(33.0)
        p2, d2 = renderer.sample_points(33.0)
        assert p1 is p2 and d1 == d2
        assert not p1.flags.writeable

    def test_cache_respects_geometry_parameters(self):
        a = VolumetricRenderer(image_size=6, num_samples_per_ray=6)
        b = VolumetricRenderer(image_size=8, num_samples_per_ray=6)
        assert a.sample_points(10.0)[0].shape != b.sample_points(10.0)[0].shape
        # mutating renderer geometry keys a fresh cache entry
        a.fov_deg = 60.0
        p_wide, _ = a.sample_points(10.0)
        a.fov_deg = 45.0
        p_narrow, _ = a.sample_points(10.0)
        assert not np.allclose(p_wide, p_narrow)

    def test_oversized_grids_bypass_cache_and_clear_releases(self):
        from repro.render import clear_geometry_cache
        from repro.render.renderer import _CACHE_ENTRY_BYTE_LIMIT, _cached_points

        big = VolumetricRenderer(image_size=64, num_samples_per_ray=32)
        assert big.image_size ** 2 * big.num_samples_per_ray * 3 * 8 > _CACHE_ENTRY_BYTE_LIMIT
        p1, _ = big.sample_points(5.0)
        p2, _ = big.sample_points(5.0)
        assert p1 is not p2  # recomputed, not pinned for the process lifetime
        np.testing.assert_array_equal(p1, p2)
        small = VolumetricRenderer(image_size=4, num_samples_per_ray=4)
        small.sample_points(5.0)
        assert _cached_points.cache_info().currsize > 0
        clear_geometry_cache()
        assert _cached_points.cache_info().currsize == 0

    def test_rays_cached_and_consistent_with_uncached(self):
        from repro.render.cameras import camera_rays

        renderer = VolumetricRenderer(image_size=5)
        origins, directions = renderer.rays_for_angle(77.0)
        o_ref, d_ref = camera_rays(77.0, image_size=5, fov_deg=renderer.fov_deg,
                                   elevation_deg=renderer.elevation_deg,
                                   radius=renderer.radius)
        np.testing.assert_allclose(origins, o_ref)
        np.testing.assert_allclose(directions, d_ref)


class TestRenderBatch:
    def test_matches_per_angle_renders(self):
        renderer = VolumetricRenderer(image_size=6, num_samples_per_ray=8)
        angles = [0.0, 45.0, 220.0]
        images, silhouettes = renderer.render_batch(angles, two_sphere_field)
        assert images.shape == (3, 6, 6, 3)
        assert silhouettes.shape == (3, 6, 6)
        for i, angle in enumerate(angles):
            image, silhouette = renderer(angle, two_sphere_field)
            np.testing.assert_allclose(images.data[i], image.data, atol=1e-12)
            np.testing.assert_allclose(silhouettes.data[i], silhouette.data, atol=1e-12)

    def test_gradients_flow_through_batched_render(self, rng):
        renderer = VolumetricRenderer(image_size=4, num_samples_per_ray=4)
        field = make_nerf_field(num_frequencies=2, hidden=8, depth=2, rng=rng)
        images, silhouettes = renderer.render_batch([0.0, 90.0], field)
        ((images ** 2).mean() + (silhouettes ** 2).mean()).backward()
        assert all(p.grad is not None for p in field.parameters())

    def test_empty_angle_list_rejected(self):
        renderer = VolumetricRenderer(image_size=4, num_samples_per_ray=4)
        with pytest.raises(ValueError):
            renderer.render_batch([], two_sphere_field)


class TestRenderPosterior:
    ANGLES = [0.0, 72.0, 144.0, 290.0]

    def test_rng_identical_to_looped_reference(self, rng):
        renderer = VolumetricRenderer(image_size=6, num_samples_per_ray=6)
        bnn = _make_nerf_bnn(rng, renderer)
        num_samples = 5
        ppl.set_rng_seed(7)
        looped = []
        with nn.no_grad():
            for angle in self.ANGLES:
                looped.append(np.stack([renderer(angle, bnn)[0].data.copy()
                                        for _ in range(num_samples)]))
        ppl.set_rng_seed(7)
        images, silhouettes = renderer.render_posterior(self.ANGLES, bnn, num_samples)
        assert images.shape == (4, num_samples, 6, 6, 3)
        assert silhouettes.shape == (4, num_samples, 6, 6)
        np.testing.assert_allclose(images, np.stack(looped), atol=1e-8, rtol=0)

    def test_chunked_matches_unchunked(self, rng):
        renderer = VolumetricRenderer(image_size=6, num_samples_per_ray=6)
        bnn = _make_nerf_bnn(rng, renderer)
        ppl.set_rng_seed(3)
        full, _ = renderer.render_posterior(self.ANGLES, bnn, 4)
        for chunk_size in (1, 2, 3):
            ppl.set_rng_seed(3)
            chunked, _ = renderer.render_posterior(self.ANGLES, bnn, 4,
                                                   chunk_size=chunk_size)
            np.testing.assert_allclose(chunked, full, atol=1e-8, rtol=0)

    def test_experiment_helper_vectorized_matches_looped(self, rng):
        renderer = VolumetricRenderer(image_size=6, num_samples_per_ray=6)
        bnn = _make_nerf_bnn(rng, renderer)
        ppl.set_rng_seed(11)
        looped = _render_posterior_views(renderer, bnn, self.ANGLES, 4)
        ppl.set_rng_seed(11)
        vectorized = _render_posterior_views(renderer, bnn, self.ANGLES, 4,
                                             vectorized=True)
        for key in ("mean", "std"):
            assert len(vectorized[key]) == len(looped[key])
            for vec, ref in zip(vectorized[key], looped[key]):
                np.testing.assert_allclose(vec, ref, atol=1e-8, rtol=0)

    def test_rejects_bad_arguments(self, rng):
        renderer = VolumetricRenderer(image_size=4, num_samples_per_ray=4)
        bnn = _make_nerf_bnn(rng, renderer)
        with pytest.raises(ValueError):
            renderer.render_posterior([], bnn, 2)
        with pytest.raises(ValueError):
            renderer.render_posterior([0.0], bnn, 0)
        with pytest.raises(ValueError):
            renderer.render_posterior([0.0], bnn, 2, chunk_size=0)

    def test_single_angle_render_supports_vectorized_field(self, rng):
        # __call__ passes leading sample dims through composite and reshaping
        renderer = VolumetricRenderer(image_size=5, num_samples_per_ray=5)
        bnn = _make_nerf_bnn(rng, renderer)
        with nn.no_grad():
            image, silhouette = renderer(
                30.0, lambda pts: bnn.vectorized_forward(pts, num_samples=3))
        assert image.shape == (3, 5, 5, 3)
        assert silhouette.shape == (3, 5, 5)


class TestRenderPosteriorPartialGuide:
    def _partial_bnn(self, rng, hidden_site="backbone.0.weight"):
        # a PytorchBNN whose guide hides one Bayesian site: the batched
        # renderer must complete it with stacked per-sample prior draws
        # instead of refusing (the lifted vectorized-mode limitation)
        field = make_nerf_field(num_frequencies=3, hidden=16, depth=2, rng=rng)
        guide = lambda model: tyxe.guides.AutoNormal(
            ppl.poutine.block(model, hide=[hidden_site]), init_scale=1e-2,
            init_loc_fn=tyxe.guides.PretrainedInitializer.from_net(field))
        bnn = tyxe.PytorchBNN(field, tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0)), guide)
        bnn.pytorch_parameters(Tensor(np.zeros((4, 3))))
        return bnn, hidden_site

    def test_partially_guided_bnn_renders_with_per_sample_prior_draws(self, rng):
        renderer = VolumetricRenderer(image_size=4, num_samples_per_ray=4)
        bnn, hidden_site = self._partial_bnn(rng)
        # sanity: the guide really does not cover the hidden site
        assert hidden_site in bnn.param_dists
        assert hidden_site not in bnn.net_guide.latent_names
        num_samples = 4
        ppl.set_rng_seed(13)
        images, silhouettes = renderer.render_posterior([0.0, 120.0], bnn, num_samples)
        assert images.shape == (2, num_samples, 4, 4, 3)
        assert silhouettes.shape == (2, num_samples, 4, 4)
        assert np.isfinite(images).all()
        # the uncovered site's prior (a wide standard normal over first-layer
        # weights) must vary across posterior samples: the per-sample images
        # may not collapse onto one shared draw
        assert float(images.std(axis=1).mean()) > 1e-4
