"""Unit tests for the volumetric rendering substrate."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor
from repro.render import (NeRFField, PositionalEncoding, VolumetricRenderer, camera_rays,
                          look_at_camera, make_nerf_field, make_scene_dataset, ray_grid,
                          train_test_angles, two_sphere_field)


class TestCameras:
    def test_camera_orbits_origin(self):
        position, forward, right, up = look_at_camera(45.0, elevation_deg=10.0, radius=3.0)
        assert np.linalg.norm(position) == pytest.approx(3.0)
        # forward points at the origin
        np.testing.assert_allclose(forward, -position / np.linalg.norm(position), rtol=1e-10)
        # camera frame is orthonormal
        assert np.dot(forward, right) == pytest.approx(0.0, abs=1e-10)
        assert np.dot(forward, up) == pytest.approx(0.0, abs=1e-10)
        assert np.linalg.norm(right) == pytest.approx(1.0)

    def test_camera_rays_shapes_and_normalization(self):
        origins, directions = camera_rays(30.0, image_size=8)
        assert origins.shape == (64, 3)
        assert directions.shape == (64, 3)
        np.testing.assert_allclose(np.linalg.norm(directions, axis=-1), 1.0, rtol=1e-10)

    def test_rays_diverge_across_image(self):
        _, directions = camera_rays(0.0, image_size=8, fov_deg=60.0)
        assert not np.allclose(directions[0], directions[-1])

    def test_ray_grid_points(self):
        origins = np.zeros((2, 3))
        directions = np.array([[1.0, 0, 0], [0, 1.0, 0]])
        points, deltas = ray_grid(origins, directions, near=1.0, far=2.0, num_samples=5)
        assert points.shape == (2, 5, 3)
        np.testing.assert_allclose(points[0, 0], [1.0, 0, 0])
        np.testing.assert_allclose(points[0, -1], [2.0, 0, 0])
        assert deltas[0] == pytest.approx(0.25)

    def test_different_angles_give_different_origins(self):
        o1, _ = camera_rays(0.0, image_size=4)
        o2, _ = camera_rays(90.0, image_size=4)
        assert not np.allclose(o1[0], o2[0])


class TestNeRFField:
    def test_positional_encoding_dim(self):
        enc = PositionalEncoding(num_frequencies=4)
        assert enc.output_dim == 3 * (2 * 4 + 1)
        out = enc(Tensor(np.random.default_rng(0).standard_normal((10, 3))))
        assert out.shape == (10, enc.output_dim)

    def test_positional_encoding_without_input(self):
        enc = PositionalEncoding(num_frequencies=2, include_input=False)
        assert enc.output_dim == 12

    def test_field_output_shape(self, rng):
        field = make_nerf_field(hidden=16, depth=2, rng=rng)
        out = field(Tensor(rng.standard_normal((20, 3))))
        assert out.shape == (20, 4)

    def test_field_is_differentiable(self, rng):
        field = NeRFField(hidden=16, depth=2, rng=rng)
        out = field(Tensor(rng.standard_normal((5, 3))))
        (out ** 2).sum().backward()
        assert all(p.grad is not None for p in field.parameters())


class TestVolumetricRenderer:
    def test_render_shapes_and_ranges(self, rng):
        renderer = VolumetricRenderer(image_size=8, num_samples_per_ray=8)
        image, silhouette = renderer(30.0, two_sphere_field)
        assert image.shape == (8, 8, 3)
        assert silhouette.shape == (8, 8)
        assert np.all(image.data >= 0) and np.all(image.data <= 1)
        assert np.all(silhouette.data >= 0) and np.all(silhouette.data <= 1 + 1e-6)

    def test_object_visible_in_silhouette(self):
        renderer = VolumetricRenderer(image_size=12, num_samples_per_ray=16)
        _, silhouette = renderer(0.0, two_sphere_field)
        assert silhouette.data.max() > 0.5  # the spheres are hit by some rays
        assert silhouette.data.min() < 0.1  # and missed by others

    def test_views_change_with_angle(self):
        renderer = VolumetricRenderer(image_size=10, num_samples_per_ray=10)
        img0, _ = renderer(0.0, two_sphere_field)
        img180, _ = renderer(180.0, two_sphere_field)
        assert not np.allclose(img0.data, img180.data, atol=1e-3)

    def test_gradient_flows_through_rendering(self, rng):
        renderer = VolumetricRenderer(image_size=6, num_samples_per_ray=6)
        field = make_nerf_field(hidden=8, depth=2, rng=rng)
        image, silhouette = renderer(45.0, field)
        loss = (image ** 2).mean() + (silhouette ** 2).mean()
        loss.backward()
        assert all(p.grad is not None for p in field.parameters())

    def test_empty_field_renders_black(self):
        def empty_field(points):
            raw = np.full((points.shape[0], 4), -20.0)
            return Tensor(raw)

        renderer = VolumetricRenderer(image_size=6, num_samples_per_ray=6)
        image, silhouette = renderer(0.0, empty_field)
        np.testing.assert_allclose(silhouette.data, 0.0, atol=1e-4)
        np.testing.assert_allclose(image.data, 0.0, atol=1e-4)

    def test_opaque_field_saturates_silhouette(self):
        def solid_field(points):
            raw = np.zeros((points.shape[0], 4))
            raw[:, 0] = 50.0
            return Tensor(raw)

        renderer = VolumetricRenderer(image_size=4, num_samples_per_ray=8)
        _, silhouette = renderer(0.0, solid_field)
        np.testing.assert_allclose(silhouette.data, 1.0, atol=1e-3)

    def test_nerf_field_can_be_trained_to_match_scene(self, rng):
        renderer = VolumetricRenderer(image_size=6, num_samples_per_ray=6)
        target_img, target_sil = renderer(30.0, two_sphere_field)
        field = make_nerf_field(hidden=16, depth=2, rng=rng)
        optim = nn.Adam(field.parameters(), lr=1e-2)
        losses = []
        for _ in range(30):
            optim.zero_grad()
            img, sil = renderer(30.0, field)
            loss = nn.functional.mse_loss(img, target_img) + nn.functional.mse_loss(sil, target_sil)
            loss.backward()
            optim.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]


class TestScenes:
    def test_train_test_angles_disjoint_sector(self):
        train, test = train_test_angles(num_train=20, num_test=8)
        assert len(test) == 8
        assert np.all((test >= 120.0) & (test < 210.0))
        assert not np.any((train >= 120.0) & (train < 210.0))

    def test_make_scene_dataset(self):
        renderer = VolumetricRenderer(image_size=6, num_samples_per_ray=6)
        dataset = make_scene_dataset(renderer, [0.0, 90.0])
        assert len(dataset) == 2
        assert dataset[0]["image"].shape == (6, 6, 3)
        assert dataset[0]["silhouette"].shape == (6, 6)
        assert dataset[1]["angle"] == 90.0
