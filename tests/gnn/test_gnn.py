"""Unit tests for the graph neural-network substrate."""

import networkx as nx
import numpy as np
import pytest

from repro import nn
from repro.gnn import GCN, GCNLayer, Graph, from_edges, from_networkx, two_layer_gcn
from repro.nn import functional as F
from repro.nn.tensor import Tensor


class TestGraph:
    def test_from_edges_adjacency_symmetric(self):
        g = from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert g.num_nodes == 4
        assert g.num_edges == 3
        np.testing.assert_allclose(g.adjacency, g.adjacency.T)

    def test_normalized_adjacency_rows(self):
        # a pair of connected nodes with self loops: A_hat should be [[.5, .5], [.5, .5]]
        g = from_edges(2, [(0, 1)])
        np.testing.assert_allclose(g.norm_adjacency, np.full((2, 2), 0.5))

    def test_isolated_node_handled(self):
        g = from_edges(3, [(0, 1)])
        assert np.isfinite(g.norm_adjacency).all()
        # the isolated node only sees itself
        assert g.norm_adjacency[2, 2] == pytest.approx(1.0)

    def test_propagate_averages_neighbours(self):
        g = from_edges(2, [(0, 1)])
        features = Tensor(np.array([[2.0], [4.0]]))
        out = g.propagate(features)
        np.testing.assert_allclose(out.data, [[3.0], [3.0]])

    def test_propagate_keeps_gradient(self):
        g = from_edges(2, [(0, 1)])
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        g.propagate(x).sum().backward()
        assert x.grad is not None

    def test_neighbors_and_degree(self):
        g = from_edges(4, [(0, 1), (0, 2)])
        assert set(g.neighbors(0)) == {1, 2}
        assert g.degree(0) == 2

    def test_networkx_roundtrip(self):
        nx_graph = nx.karate_club_graph()
        g = from_networkx(nx_graph)
        assert g.num_nodes == nx_graph.number_of_nodes()
        assert g.num_edges == nx_graph.number_of_edges()
        back = g.to_networkx()
        assert back.number_of_edges() == nx_graph.number_of_edges()

    def test_rejects_non_square_adjacency(self):
        with pytest.raises(ValueError):
            Graph(np.zeros((2, 3)))

    def test_repr(self):
        assert "num_nodes=3" in repr(from_edges(3, [(0, 1)]))


class TestGCNLayers:
    def test_layer_output_shape(self, rng):
        g = from_edges(5, [(0, 1), (1, 2), (3, 4)])
        layer = GCNLayer(8, 4, rng=rng)
        out = layer(g, Tensor(rng.standard_normal((5, 8))))
        assert out.shape == (5, 4)

    def test_two_layer_gcn_forward_backward(self, rng):
        g = from_edges(6, [(0, 1), (1, 2), (2, 3), (4, 5)])
        gcn = two_layer_gcn(4, 8, 3, rng=rng)
        logits = gcn(g, Tensor(rng.standard_normal((6, 4))))
        assert logits.shape == (6, 3)
        F.cross_entropy(logits, np.array([0, 1, 2, 0, 1, 2])).backward()
        assert all(p.grad is not None for p in gcn.parameters())

    def test_gcn_uses_graph_structure(self, rng):
        """Changing an edge changes the output (message passing is real)."""
        gcn = two_layer_gcn(4, 8, 2, rng=rng)
        x = Tensor(rng.standard_normal((4, 4)))
        g1 = from_edges(4, [(0, 1)])
        g2 = from_edges(4, [(0, 1), (2, 3)])
        out1 = gcn(g1, x).data
        out2 = gcn(g2, x).data
        assert not np.allclose(out1[2], out2[2])

    def test_gcn_trains_on_community_labels(self, rng):
        from repro.datasets import make_citation_graph

        data = make_citation_graph(num_nodes=60, num_classes=3, feature_dim=8,
                                   train_per_class=8, val_per_class=5, seed=0)
        gcn = two_layer_gcn(data.num_features, 8, data.num_classes, rng=rng)
        optim = nn.Adam(gcn.parameters(), lr=1e-2)
        features = Tensor(data.features)
        losses = []
        for _ in range(60):
            optim.zero_grad()
            logits = gcn(data.graph, features)
            loss = F.cross_entropy(logits[data.train_mask], data.labels[data.train_mask])
            loss.backward()
            optim.step()
            losses.append(loss.item())
        assert losses[-1] < 0.5 * losses[0]

    def test_dropout_in_gcn(self, rng):
        g = from_edges(4, [(0, 1), (2, 3)])
        gcn = GCN(4, [8], 2, dropout=0.5, rng=rng)
        gcn.eval()
        x = Tensor(rng.standard_normal((4, 4)))
        out1, out2 = gcn(g, x).data, gcn(g, x).data
        np.testing.assert_allclose(out1, out2)

    def test_layer_compatible_with_local_reparameterization(self, rng):
        """The GCN's linear map goes through F.linear, so the messenger can intercept it."""
        import repro.core as tyxe
        from repro.ppl import distributions as dist

        g = from_edges(4, [(0, 1), (2, 3)])
        layer = GCNLayer(3, 2, rng=rng)
        loc = layer.linear.weight.data.copy()
        scale = np.full_like(loc, 0.5)
        messenger = tyxe.poutine.LocalReparameterizationMessenger()
        x = Tensor(rng.standard_normal((4, 3)))
        with messenger:
            messenger.postprocess_message({
                "type": "sample", "name": "w", "value": layer.linear.weight,
                "is_observed": False,
                "fn": dist.Normal(Tensor(loc), Tensor(scale)).to_event(2),
            })
            out1 = layer(g, x).data
            out2 = layer(g, x).data
        assert not np.allclose(out1, out2)  # per-call output sampling is active
