"""Integration-style tests for SVI, ELBO estimators and automatic guides."""

import numpy as np
import pytest

from repro import ppl
from repro.nn.tensor import Tensor
from repro.ppl import distributions as dist
from repro.ppl.infer import (SVI, AutoDelta, AutoLowRankMultivariateNormal, AutoNormal,
                             TraceMeanField_ELBO, Trace_ELBO, init_to_mean, init_to_median,
                             init_to_sample, init_to_value)


def _conjugate_data(n=50, mu=2.0, sigma=0.5, seed=1):
    return np.random.default_rng(seed).normal(mu, sigma, size=n)


def _gaussian_model(x):
    mu = ppl.sample("mu", dist.Normal(0.0, 1.0))
    with ppl.plate("data", len(x)):
        ppl.sample("obs", dist.Normal(mu, 0.5), obs=x)


def _true_posterior(x, prior_var=1.0, lik_var=0.25):
    post_var = 1.0 / (1.0 / prior_var + len(x) / lik_var)
    post_mean = post_var * x.sum() / lik_var
    return post_mean, np.sqrt(post_var)


class TestInitStrategies:
    def _site(self):
        return {"name": "s", "fn": dist.Normal(np.full(3, 2.0), np.full(3, 0.1)),
                "value": Tensor(np.zeros(3))}

    def test_init_to_median_close_to_loc(self):
        assert np.all(np.abs(init_to_median(self._site()) - 2.0) < 0.5)

    def test_init_to_mean(self):
        np.testing.assert_allclose(init_to_mean(self._site()), 2.0)

    def test_init_to_sample_shape(self):
        assert init_to_sample(self._site()).shape == (3,)

    def test_init_to_value_with_fallback(self):
        fn = init_to_value({"s": np.full(3, 7.0)})
        np.testing.assert_allclose(fn(self._site()), 7.0)
        fn_missing = init_to_value({"other": np.zeros(3)}, fallback=init_to_mean)
        np.testing.assert_allclose(fn_missing(self._site()), 2.0)


class TestAutoNormalSVI:
    @pytest.mark.parametrize("elbo_cls", [Trace_ELBO, TraceMeanField_ELBO])
    def test_recovers_conjugate_posterior(self, elbo_cls):
        x = _conjugate_data()
        guide = AutoNormal(_gaussian_model, init_scale=0.1)
        svi = SVI(_gaussian_model, guide, ppl.optim.Adam({"lr": 0.05}), elbo_cls())
        for _ in range(400):
            svi.step(x)
        post_mean, post_std = _true_posterior(x)
        store = ppl.get_param_store()
        assert store.get_param("auto.loc.mu").item() == pytest.approx(post_mean, abs=0.1)
        assert store.get_param("auto.scale.mu").item() == pytest.approx(post_std, abs=0.05)

    def test_loss_decreases(self):
        x = _conjugate_data()
        guide = AutoNormal(_gaussian_model, init_scale=0.1)
        svi = SVI(_gaussian_model, guide, ppl.optim.Adam({"lr": 0.05}))
        first = np.mean([svi.step(x) for _ in range(10)])
        for _ in range(200):
            svi.step(x)
        last = np.mean([svi.evaluate_loss(x) for _ in range(10)])
        assert last < first

    def test_median_and_distributions(self):
        x = _conjugate_data()
        guide = AutoNormal(_gaussian_model, init_scale=0.1)
        svi = SVI(_gaussian_model, guide, ppl.optim.Adam({"lr": 0.05}))
        for _ in range(100):
            svi.step(x)
        median = guide.median()
        assert "mu" in median
        d = guide.get_distribution("mu")
        assert isinstance(d, dist.Normal)
        detached = guide.get_detached_distributions(("mu",))
        assert not detached["mu"].loc.requires_grad

    def test_latent_names_discovered(self):
        guide = AutoNormal(_gaussian_model)
        guide(_conjugate_data(5))
        assert guide.latent_names == ("mu",)

    def test_evaluate_loss_does_not_update(self):
        x = _conjugate_data()
        guide = AutoNormal(_gaussian_model, init_scale=0.1)
        svi = SVI(_gaussian_model, guide, ppl.optim.Adam({"lr": 0.05}))
        svi.step(x)
        before = ppl.get_param_store().get_param("auto.loc.mu").item()
        svi.evaluate_loss(x)
        after = ppl.get_param_store().get_param("auto.loc.mu").item()
        assert before == after

    def test_num_particles_reduces_variance(self):
        x = _conjugate_data()
        guide = AutoNormal(_gaussian_model, init_scale=0.1)
        SVI(_gaussian_model, guide, ppl.optim.Adam({"lr": 0.05})).step(x)  # init params

        def loss_std(num_particles, repeats=15):
            elbo = Trace_ELBO(num_particles=num_particles)
            return np.std([elbo.loss(_gaussian_model, guide, x) for _ in range(repeats)])

        assert loss_std(8) < loss_std(1)

    def test_invalid_num_particles(self):
        with pytest.raises(ValueError):
            Trace_ELBO(num_particles=0)


class TestAutoDelta:
    def test_recovers_map_estimate(self):
        x = _conjugate_data()
        guide = AutoDelta(_gaussian_model)
        svi = SVI(_gaussian_model, guide, ppl.optim.Adam({"lr": 0.05}))
        for _ in range(300):
            svi.step(x)
        post_mean, _ = _true_posterior(x)
        assert guide.median()["mu"] == pytest.approx(post_mean, abs=0.05)

    def test_delta_guide_distribution(self):
        x = _conjugate_data()
        guide = AutoDelta(_gaussian_model)
        SVI(_gaussian_model, guide, ppl.optim.Adam({"lr": 0.05})).step(x)
        assert isinstance(guide.get_distribution("mu"), dist.Delta)


class TestAutoLowRank:
    def _model(self, x):
        w = ppl.sample("w", dist.Normal(np.zeros(3), np.ones(3)).to_event(1))
        b = ppl.sample("b", dist.Normal(0.0, 1.0))
        with ppl.plate("data", len(x)):
            ppl.sample("obs", dist.Normal(w.sum() + b, 0.5), obs=x)

    def test_fits_and_reduces_loss(self):
        x = _conjugate_data()
        guide = AutoLowRankMultivariateNormal(self._model, rank=2, init_scale=0.1)
        svi = SVI(self._model, guide, ppl.optim.Adam({"lr": 0.05}))
        losses = [svi.step(x) for _ in range(200)]
        assert np.mean(losses[-20:]) < np.mean(losses[:20])

    def test_latent_layout_covers_all_sites(self):
        guide = AutoLowRankMultivariateNormal(self._model, rank=2)
        guide(_conjugate_data(10))
        assert set(guide.latent_names) == {"w", "b"}
        assert guide._total_dim == 4

    def test_median_shapes(self):
        guide = AutoLowRankMultivariateNormal(self._model, rank=2)
        guide(_conjugate_data(10))
        median = guide.median()
        assert median["w"].shape == (3,)
        assert median["b"].shape == ()

    def test_marginal_distribution(self):
        guide = AutoLowRankMultivariateNormal(self._model, rank=2)
        guide(_conjugate_data(10))
        marginal = guide.get_distribution("w")
        assert marginal.event_shape == (3,)


class TestSampleStackedFastPaths:
    def test_autonormal_single_site_batched_draw_matches_traced(self):
        # one latent site lets sample_stacked fill the whole noise block in a
        # single generator call; the stream must stay identical to tracing
        def model():
            ppl.sample("w", dist.Normal(np.zeros(5), 1.0).to_event(1))

        guide = AutoNormal(model, init_scale=0.2)
        guide()  # instantiate parameters
        ppl.set_rng_seed(31)
        stacked = guide.sample_stacked(6)
        ppl.set_rng_seed(31)
        traced = [ppl.poutine.trace(guide).get_trace()["w"]["value"].data
                  for _ in range(6)]
        np.testing.assert_allclose(stacked["w"].data, np.stack(traced), atol=1e-12)

    def test_autonormal_multi_site_matches_traced(self):
        def model():
            ppl.sample("a", dist.Normal(np.zeros(3), 1.0).to_event(1))
            ppl.sample("b", dist.Normal(np.zeros((2, 2)), 1.0).to_event(2))

        guide = AutoNormal(model, init_scale=0.1)
        guide()
        ppl.set_rng_seed(5)
        stacked = guide.sample_stacked(4)
        ppl.set_rng_seed(5)
        for i in range(4):
            tr = ppl.poutine.trace(guide).get_trace()
            np.testing.assert_allclose(stacked["a"].data[i], tr["a"]["value"].data,
                                       atol=1e-12)
            np.testing.assert_allclose(stacked["b"].data[i], tr["b"]["value"].data,
                                       atol=1e-12)

    def test_autodelta_broadcast_stack_matches_traced(self):
        def model():
            ppl.sample("w", dist.Normal(np.zeros(4), 1.0).to_event(1))

        guide = AutoDelta(model)
        guide()
        before = ppl.get_rng().bit_generator.state
        stacked = guide.sample_stacked(5)
        # Delta draws consume no RNG in either path
        assert ppl.get_rng().bit_generator.state == before
        assert stacked["w"].shape == (5, 4)
        traced = ppl.poutine.trace(guide).get_trace()["w"]["value"].data
        np.testing.assert_allclose(stacked["w"].data,
                                   np.broadcast_to(traced, (5, 4)), atol=1e-12)


class TestPartiallyGuidedVectorizedELBO:
    """Vectorized particles over models whose guide misses latent sites.

    These used to raise ``ValueError`` (a single batched replay would have
    given the uncovered sites one shared prior draw); the replay now runs in
    a sized ``vectorized_samples`` context so each uncovered site draws one
    independent prior sample per particle.
    """

    @staticmethod
    def _model(x):
        mu = ppl.sample("mu", dist.Normal(0.0, 1.0))
        ppl.sample("nuisance", dist.Normal(0.0, 1.0))  # never guided
        # broadcast any leading particle axes of mu against the data axis
        # (the vectorized mode's contract, which repro.nn layers implement
        # for networks; a raw model spells it out)
        loc = mu.reshape(mu.shape + (1,))
        with ppl.plate("data", len(x)):
            ppl.sample("obs", dist.Normal(loc, 0.5), obs=x)

    def _partial_guide(self):
        # AutoNormal over the blocked model: covers "mu" only
        return AutoNormal(ppl.poutine.block(self._model, hide=["nuisance"]),
                          init_scale=0.1)

    def test_uncovered_site_gets_per_particle_stacked_prior_draws(self):
        x = _conjugate_data(20)
        guide = self._partial_guide()
        guide(x)
        elbo = Trace_ELBO(num_particles=3, vectorize_particles=True)
        model_trace, guide_trace = elbo._get_vectorized_traces(self._model, guide, x)
        assert "nuisance" not in guide_trace
        assert guide_trace.num_stacked == 3
        value = model_trace["nuisance"]["value"]
        assert value.shape == (3,)
        # three *independent* draws, not one broadcast value
        assert len(set(np.round(value.data, 12))) == 3

    @pytest.mark.parametrize("elbo_cls", [Trace_ELBO, TraceMeanField_ELBO])
    def test_single_particle_matches_looped_exactly(self, elbo_cls):
        x = _conjugate_data(20)
        guide = self._partial_guide()
        guide(x)
        ppl.set_rng_seed(3)
        looped = elbo_cls(num_particles=1).loss(self._model, guide, x)
        ppl.set_rng_seed(3)
        vectorized = elbo_cls(num_particles=1, vectorize_particles=True).loss(
            self._model, guide, x)
        assert vectorized == pytest.approx(looped, rel=1e-12)

    @pytest.mark.parametrize("elbo_cls", [Trace_ELBO, TraceMeanField_ELBO])
    def test_multi_particle_matches_looped_in_expectation(self, elbo_cls):
        x = _conjugate_data(20)
        guide = self._partial_guide()
        guide(x)
        repeats = 80
        ppl.set_rng_seed(11)
        looped = np.array([elbo_cls(num_particles=2).loss(self._model, guide, x)
                           for _ in range(repeats)])
        ppl.set_rng_seed(12)
        vectorized = np.array([
            elbo_cls(num_particles=2, vectorize_particles=True).loss(self._model, guide, x)
            for _ in range(repeats)])
        stderr = np.hypot(looped.std(ddof=1), vectorized.std(ddof=1)) / np.sqrt(repeats)
        assert abs(looped.mean() - vectorized.mean()) < 5 * stderr

    def test_particle_dependent_uncovered_prior_is_rejected(self):
        # z2's prior location is the particle-stacked replayed mu, so its
        # distribution's shape already leads with the particle axis: a
        # batched draw would produce K x K values (and a plain draw is
        # indistinguishable from a genuine size-K batch axis), so the
        # estimator must refuse instead of silently corrupting the loss
        def model(x):
            mu = ppl.sample("mu", dist.Normal(0.0, 1.0))
            ppl.sample("z2", dist.Normal(mu, 1.0))
            loc = mu.reshape(mu.shape + (1,))
            with ppl.plate("data", len(x)):
                ppl.sample("obs", dist.Normal(loc, 0.5), obs=x)

        x = _conjugate_data(10)
        guide = AutoNormal(ppl.poutine.block(model, hide=["z2"]), init_scale=0.1)
        guide(x)
        Trace_ELBO(num_particles=3).loss(model, guide, x)  # looped path works
        with pytest.raises(ValueError, match="z2"):
            Trace_ELBO(num_particles=3, vectorize_particles=True).loss(model, guide, x)

    def test_vectorized_svi_recovers_conjugate_posterior(self):
        # end to end: training with vectorized particles on the partially
        # guided model still recovers the analytic posterior over "mu"
        x = _conjugate_data()
        guide = self._partial_guide()
        svi = SVI(self._model, guide, ppl.optim.Adam({"lr": 0.05}),
                  Trace_ELBO(num_particles=2, vectorize_particles=True))
        for _ in range(400):
            svi.step(x)
        post_mean, post_std = _true_posterior(x)
        store = ppl.get_param_store()
        assert store.get_param("auto.loc.mu").item() == pytest.approx(post_mean, abs=0.1)
        assert store.get_param("auto.scale.mu").item() == pytest.approx(post_std, abs=0.05)


class TestGuideInitialization:
    def test_init_loc_fn_is_honored(self):
        x = _conjugate_data(10)
        guide = AutoNormal(_gaussian_model, init_loc_fn=init_to_value({"mu": np.array(3.5)}),
                           init_scale=0.01)
        guide(x)
        assert ppl.get_param_store().get_param("auto.loc.mu").item() == pytest.approx(3.5)

    def test_custom_prefix_separates_parameters(self):
        x = _conjugate_data(10)
        guide_a = AutoNormal(_gaussian_model, prefix="guide_a")
        guide_b = AutoNormal(_gaussian_model, prefix="guide_b")
        guide_a(x)
        guide_b(x)
        names = set(ppl.get_param_store().keys())
        assert "guide_a.loc.mu" in names and "guide_b.loc.mu" in names
