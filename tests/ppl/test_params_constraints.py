"""Unit tests for the parameter store and constraints."""

import numpy as np
import pytest

from repro import ppl
from repro.nn.tensor import Tensor
from repro.ppl import constraints
from repro.ppl.params import get_param_store


class TestConstraints:
    def test_real_is_identity(self):
        t = Tensor(np.array([-1.0, 2.0]))
        assert constraints.real.transform(t) is t
        np.testing.assert_allclose(constraints.real.inv_transform(np.array([3.0])), [3.0])
        assert constraints.real.check(np.array([1.0, -5.0]))

    def test_positive_roundtrip(self):
        values = np.array([0.01, 1.0, 5.0, 30.0])
        unconstrained = constraints.positive.inv_transform(values)
        recovered = constraints.positive.transform(Tensor(unconstrained)).data
        np.testing.assert_allclose(recovered, values, rtol=1e-6)

    def test_positive_rejects_nonpositive_init(self):
        with pytest.raises(ValueError):
            constraints.positive.inv_transform(np.array([-1.0]))

    def test_positive_check(self):
        assert constraints.positive.check(np.array([0.1]))
        assert not constraints.positive.check(np.array([0.0]))

    def test_interval_roundtrip(self):
        c = constraints.interval(0.0, 0.5)
        values = np.array([0.01, 0.25, 0.49])
        recovered = c.transform(Tensor(c.inv_transform(values))).data
        np.testing.assert_allclose(recovered, values, rtol=1e-5)

    def test_interval_transform_stays_inside(self):
        c = constraints.interval(-1.0, 1.0)
        out = c.transform(Tensor(np.array([-100.0, 0.0, 100.0]))).data
        assert np.all(out > -1.0) and np.all(out < 1.0)

    def test_interval_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            constraints.interval(1.0, 1.0)

    def test_transform_to_defaults_to_real(self):
        assert constraints.transform_to(None) is constraints.real

    def test_constraint_gradients_flow(self):
        u = Tensor(np.array([0.3]), requires_grad=True)
        constraints.positive.transform(u).sum().backward()
        assert u.grad is not None


class TestParamStore:
    def test_setdefault_creates_and_returns(self):
        store = get_param_store()
        value = store.setdefault("w", np.array([1.0, 2.0]))
        np.testing.assert_allclose(value.data, [1.0, 2.0])
        assert "w" in store
        assert len(store) == 1

    def test_setdefault_does_not_overwrite(self):
        store = get_param_store()
        store.setdefault("w", np.array([1.0]))
        again = store.setdefault("w", np.array([99.0]))
        assert again.data[0] == pytest.approx(1.0)

    def test_constrained_parameter_positive(self):
        store = get_param_store()
        value = store.setdefault("scale", np.array([0.5]), constraints.positive)
        assert value.data[0] == pytest.approx(0.5, rel=1e-6)
        unconstrained = store.get_unconstrained("scale")
        unconstrained.data[...] = -100.0
        assert store.get_param("scale").data[0] > 0

    def test_set_param_overwrites_constrained_value(self):
        store = get_param_store()
        store.setdefault("scale", np.array([0.5]), constraints.positive)
        store.set_param("scale", np.array([2.0]))
        assert store.get_param("scale").data[0] == pytest.approx(2.0, rel=1e-6)

    def test_delete_and_clear(self):
        store = get_param_store()
        store.setdefault("a", np.array([1.0]))
        store.setdefault("b", np.array([2.0]))
        store.delete("a")
        assert "a" not in store and "b" in store
        ppl.clear_param_store()
        assert len(store) == 0

    def test_named_parameters_are_unconstrained_tensors(self):
        store = get_param_store()
        store.setdefault("scale", np.array([1.0]), constraints.positive)
        names = dict(store.named_parameters())
        assert "scale" in names
        assert names["scale"].requires_grad

    def test_state_roundtrip(self):
        store = get_param_store()
        store.setdefault("w", np.array([1.0, 2.0]))
        store.setdefault("scale", np.array([0.3]), constraints.positive)
        state = store.get_state()
        ppl.clear_param_store()
        store.set_state(state)
        np.testing.assert_allclose(store.get_param("w").data, [1.0, 2.0])
        assert store.get_param("scale").data[0] == pytest.approx(0.3, rel=1e-6)

    def test_keys_and_values(self):
        store = get_param_store()
        store.setdefault("w", np.array([1.0]))
        assert list(store.keys()) == ["w"]
        assert len(list(store.values())) == 1


class TestPyroOptimWrappers:
    def test_adam_wrapper_reduces_loss(self):
        store = get_param_store()
        p = store.setdefault("theta", np.array([4.0]))
        optim = ppl.optim.Adam({"lr": 0.1})
        for _ in range(200):
            target = store.get_unconstrained("theta")
            target.grad = None
            loss = (store.get_param("theta") ** 2).sum()
            loss.backward()
            optim([target])
        assert abs(store.get_param("theta").data[0]) < 0.05

    def test_wrapper_handles_lazily_added_params(self):
        store = get_param_store()
        a = store.setdefault("a", np.array([1.0]))
        optim = ppl.optim.SGD({"lr": 0.5})
        ua = store.get_unconstrained("a")
        (store.get_param("a") ** 2).sum().backward()
        optim([ua])
        b = store.setdefault("b", np.array([2.0]))
        ub = store.get_unconstrained("b")
        (store.get_param("b") ** 2).sum().backward()
        optim([ua, ub])
        assert store.get_param("b").data[0] < 2.0

    def test_set_get_lr(self):
        optim = ppl.optim.Adam({"lr": 0.3})
        assert optim.get_lr() == pytest.approx(0.3)
        optim.set_lr(0.01)
        assert optim.get_lr() == pytest.approx(0.01)

    def test_exponential_lr_scheduler(self):
        from repro.nn.optim import Adam as NNAdam

        sched = ppl.optim.ExponentialLR({"optimizer": NNAdam, "optim_args": {"lr": 1.0},
                                         "gamma": 0.1})
        store = get_param_store()
        store.setdefault("x", np.array([1.0]))
        u = store.get_unconstrained("x")
        (store.get_param("x") ** 2).sum().backward()
        sched([u])
        sched.step()
        assert sched.get_lr() == pytest.approx(0.1)
