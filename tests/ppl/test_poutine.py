"""Unit tests for the effect-handler (poutine) runtime."""

import numpy as np
import pytest

from repro import ppl
from repro.nn.tensor import Tensor
from repro.ppl import distributions as dist
from repro.ppl import poutine


def simple_model(data=None):
    z = ppl.sample("z", dist.Normal(0.0, 1.0))
    with ppl.plate("data", size=10, subsample_size=5):
        x = ppl.sample("x", dist.Normal(z, 1.0), obs=data)
    return z, x


class TestTrace:
    def test_records_sample_sites(self):
        tr = poutine.trace(simple_model).get_trace()
        assert "z" in tr and "x" in tr
        assert not tr["z"]["is_observed"]
        assert not tr["x"]["is_observed"]

    def test_records_observations(self):
        tr = poutine.trace(simple_model).get_trace(np.zeros(5))
        assert tr["x"]["is_observed"]
        np.testing.assert_allclose(tr["x"]["value"].data, 0.0)

    def test_return_value_recorded(self):
        tr = poutine.trace(simple_model).get_trace()
        assert "_RETURN" in tr

    def test_log_prob_sum_matches_manual(self):
        tr = poutine.trace(simple_model).get_trace(np.zeros(5))
        z = tr["z"]["value"]
        expected = dist.Normal(0.0, 1.0).log_prob(z).item() \
            + 2.0 * dist.Normal(z, 1.0).log_prob(Tensor(np.zeros(5))).data.sum()
        assert tr.log_prob_sum().item() == pytest.approx(expected, rel=1e-8)

    def test_plate_scale_recorded(self):
        tr = poutine.trace(simple_model).get_trace()
        assert tr["x"]["scale"] == pytest.approx(2.0)
        assert tr["z"]["scale"] == pytest.approx(1.0)

    def test_stochastic_and_observation_nodes(self):
        tr = poutine.trace(simple_model).get_trace(np.zeros(5))
        assert list(tr.stochastic_nodes()) == ["z"]
        assert list(tr.observation_nodes()) == ["x"]

    def test_duplicate_site_raises(self):
        def bad_model():
            # the duplicate name is the point of this test
            ppl.sample("a", dist.Normal(0.0, 1.0))  # repro: noqa[R002]
            ppl.sample("a", dist.Normal(0.0, 1.0))  # repro: noqa[R002]

        with pytest.raises(ValueError):
            poutine.trace(bad_model).get_trace()

    def test_trace_copy_and_detach(self):
        tr = poutine.trace(simple_model).get_trace()
        copy = tr.detach_values()
        assert copy["z"]["value"].requires_grad is False
        assert len(copy) == len(tr)


class TestReplay:
    def test_replay_reuses_values(self):
        tr = poutine.trace(simple_model).get_trace()
        replayed = poutine.trace(poutine.replay(simple_model, trace=tr)).get_trace()
        assert replayed["z"]["value"] is tr["z"]["value"]

    def test_replay_does_not_touch_missing_sites(self):
        def model_a():
            return ppl.sample("a", dist.Normal(0.0, 1.0))

        def model_ab():
            a = ppl.sample("a", dist.Normal(0.0, 1.0))
            b = ppl.sample("b", dist.Normal(0.0, 1.0))
            return a, b

        tr = poutine.trace(model_a).get_trace()
        replayed = poutine.trace(poutine.replay(model_ab, trace=tr)).get_trace()
        assert replayed["a"]["value"] is tr["a"]["value"]
        assert "b" in replayed

    def test_replay_requires_trace(self):
        with pytest.raises(ValueError):
            poutine.replay(simple_model)


class TestBlock:
    def test_block_hides_all_by_default(self):
        def model():
            with poutine.block():
                ppl.sample("hidden", dist.Normal(0.0, 1.0))
            ppl.sample("visible", dist.Normal(0.0, 1.0))

        tr = poutine.trace(model).get_trace()
        assert "visible" in tr and "hidden" not in tr

    def test_block_hide_list(self):
        def model():
            ppl.sample("a", dist.Normal(0.0, 1.0))
            ppl.sample("b", dist.Normal(0.0, 1.0))

        tr = poutine.trace(poutine.block(model, hide=["a"])).get_trace()
        assert "b" in tr and "a" not in tr

    def test_block_expose_list(self):
        def model():
            ppl.sample("a", dist.Normal(0.0, 1.0))
            ppl.sample("b", dist.Normal(0.0, 1.0))

        tr = poutine.trace(poutine.block(model, expose=["a"])).get_trace()
        assert "a" in tr and "b" not in tr

    def test_block_hide_fn(self):
        def model():
            ppl.sample("keep_me", dist.Normal(0.0, 1.0))
            ppl.sample("drop_me", dist.Normal(0.0, 1.0))

        tr = poutine.trace(poutine.block(model, hide_fn=lambda m: m["name"].startswith("drop"))
                           ).get_trace()
        assert "keep_me" in tr and "drop_me" not in tr

    def test_inner_trace_still_sees_blocked_sites(self):
        inner = poutine.trace(lambda: ppl.sample("s", dist.Normal(0.0, 1.0)))
        with poutine.block():
            inner.get_trace()
        assert "s" in inner.msngr.trace


class TestConditionMaskScaleSeed:
    def test_condition_fixes_values(self):
        conditioned = poutine.condition(simple_model, data={"z": np.array(2.0)})
        tr = poutine.trace(conditioned).get_trace()
        assert tr["z"]["value"].item() == pytest.approx(2.0)
        assert tr["z"]["is_observed"]

    def test_mask_zeroes_log_prob(self):
        def model():
            ppl.sample("x", dist.Normal(0.0, 1.0), obs=np.array([1.0, 2.0, 3.0]))

        tr_full = poutine.trace(model).get_trace()
        masked = poutine.mask(model, mask=np.array([1.0, 0.0, 0.0]))
        tr_masked = poutine.trace(masked).get_trace()
        full = tr_full.log_prob_sum().item()
        partial = tr_masked.log_prob_sum().item()
        assert partial == pytest.approx(dist.Normal(0.0, 1.0).log_prob(np.array(1.0)).item())
        assert partial > full

    def test_scale_multiplies_log_prob(self):
        def model():
            ppl.sample("x", dist.Normal(0.0, 1.0), obs=np.array(1.0))

        base = poutine.trace(model).get_trace().log_prob_sum().item()
        scaled = poutine.trace(poutine.scale(model, scale=3.0)).get_trace().log_prob_sum().item()
        assert scaled == pytest.approx(3 * base)

    def test_nested_scales_compose(self):
        def model():
            ppl.sample("x", dist.Normal(0.0, 1.0), obs=np.array(1.0))

        def nested():
            with poutine.scale(scale=2.0), poutine.scale(scale=5.0):
                model()

        base = poutine.trace(model).get_trace().log_prob_sum().item()
        composed = poutine.trace(nested).get_trace().log_prob_sum().item()
        assert composed == pytest.approx(10 * base)

    def test_seed_makes_sampling_deterministic(self):
        def model():
            return ppl.sample("z", dist.Normal(0.0, 1.0))

        v1 = poutine.seed(model, rng_seed=7)()
        v2 = poutine.seed(model, rng_seed=7)()
        assert v1.item() == v2.item()

    def test_plate_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            ppl.plate("p", size=0)


class TestPrimitivesOutsideHandlers:
    def test_sample_without_handlers_draws(self):
        value = ppl.sample("free", dist.Normal(0.0, 1.0))
        assert value.shape == ()

    def test_sample_with_obs_returns_obs(self):
        value = ppl.sample("obs", dist.Normal(0.0, 1.0), obs=np.array(5.0))
        assert value.item() == 5.0

    def test_param_roundtrip(self):
        p = ppl.param("weight", np.array([1.0, 2.0]))  # repro: noqa[R002]
        np.testing.assert_allclose(p.data, [1.0, 2.0])
        again = ppl.param("weight")  # repro: noqa[R002]
        np.testing.assert_allclose(again.data, [1.0, 2.0])

    def test_param_without_init_raises(self):
        with pytest.raises(ValueError):
            ppl.param("never_created")

    def test_deterministic_records_site(self):
        def model():
            z = ppl.sample("z", dist.Normal(0.0, 1.0))
            ppl.deterministic("twice_z", z * 2.0)

        tr = poutine.trace(model).get_trace()
        assert "twice_z" in tr
        assert tr["twice_z"]["value"].item() == pytest.approx(2 * tr["z"]["value"].item())

    def test_factor_adds_log_density(self):
        def model():
            ppl.factor("penalty", Tensor(np.array(-3.0)))

        tr = poutine.trace(model).get_trace()
        assert tr.log_prob_sum().item() == pytest.approx(-3.0)
