"""Tests for stochastic-gradient Langevin dynamics (the Appendix-D extension)."""

import numpy as np
import pytest

from repro import nn, ppl
from repro.ppl import distributions as dist
from repro.ppl.infer import SGLD, SGLDSampler


def _gaussian_model(x, y=None):
    """Unknown-mean Gaussian; the second argument keeps the (inputs, targets)
    calling convention of the SGLD driver."""
    mu = ppl.sample("mu", dist.Normal(0.0, 1.0))
    obs = x if y is None else y
    with ppl.plate("data", size=60, subsample_size=len(obs.data if hasattr(obs, "data") else obs)):
        ppl.sample("obs", dist.Normal(mu, 0.5), obs=obs)


def _true_posterior(x, lik_var=0.25):
    post_var = 1.0 / (1.0 + len(x) / lik_var)
    return post_var * x.sum() / lik_var, np.sqrt(post_var)


class TestSGLDKernel:
    def test_setup_discovers_latents(self):
        kernel = SGLD(_gaussian_model, step_size=1e-3)
        kernel.setup(np.zeros(10), np.zeros(10))
        assert kernel.latent_names == ("mu",)
        assert kernel.current_values()["mu"].shape == ()

    def test_model_without_latents_raises(self):
        def model(x, y):
            ppl.sample("obs", dist.Normal(0.0, 1.0), obs=y)

        kernel = SGLD(model)
        with pytest.raises(ValueError):
            kernel.setup(np.zeros(3), np.zeros(3))

    def test_step_moves_towards_high_density_region(self):
        data = np.random.default_rng(0).normal(3.0, 0.5, size=60)
        kernel = SGLD(_gaussian_model, step_size=5e-3, preconditioned=False)
        kernel.setup(data, data)
        start = kernel.current_values()["mu"]
        for _ in range(200):
            kernel.step(data, data)
        end = kernel.current_values()["mu"]
        post_mean, _ = _true_posterior(data)
        assert abs(end - post_mean) < abs(start - post_mean)

    def test_preconditioning_state_updates(self):
        data = np.random.default_rng(1).normal(1.0, 0.5, size=60)
        kernel = SGLD(_gaussian_model, step_size=1e-3, preconditioned=True)
        kernel.setup(data, data)
        kernel.step(data, data)
        assert kernel._v["mu"] > 0

    def test_zero_temperature_removes_stationary_noise(self):
        """Started at the posterior mode, a zero-temperature chain stays put while
        the unit-temperature chain fluctuates around it."""
        data = np.random.default_rng(2).normal(0.0, 0.5, size=60)
        post_mean, _ = _true_posterior(data)

        def stationary_std(temperature, seed):
            ppl.set_rng_seed(seed)
            kernel = SGLD(_gaussian_model, step_size=1e-4, temperature=temperature,
                          preconditioned=False)
            kernel.setup(data, data)
            kernel._values["mu"] = np.array(post_mean)
            values = []
            for _ in range(50):
                kernel.step(data, data)
                values.append(float(kernel.current_values()["mu"]))
            return np.std(np.asarray(values))

        assert stationary_std(0.0, 3) < 1e-6
        assert stationary_std(1.0, 3) > 1e-3


class TestSGLDSampler:
    def _run(self, rng, epochs=40):
        data = rng.normal(2.0, 0.5, size=60)
        loader = nn.DataLoader(nn.TensorDataset(data, data), batch_size=20, shuffle=True,
                               rng=rng)
        kernel = SGLD(_gaussian_model, step_size=2e-3, preconditioned=False)
        sampler = SGLDSampler(kernel, burn_in=30, thinning=2)
        sampler.run(loader, num_epochs=epochs)
        return data, sampler

    def test_collects_samples_with_correct_layout(self, rng):
        data, sampler = self._run(rng)
        samples = sampler.get_samples()
        assert "mu" in samples
        assert samples["mu"].ndim == 1
        assert sampler.num_samples == len(samples["mu"])
        assert len(sampler.potentials) == 40 * 3  # epochs * batches per epoch

    def test_posterior_mean_approximately_recovered(self, rng):
        data, sampler = self._run(rng, epochs=80)
        post_mean, _ = _true_posterior(data)
        samples = sampler.get_samples()["mu"]
        assert samples[len(samples) // 2:].mean() == pytest.approx(post_mean, abs=0.3)

    def test_get_samples_before_run_raises(self):
        sampler = SGLDSampler(SGLD(_gaussian_model), burn_in=0, thinning=1)
        with pytest.raises(RuntimeError):
            sampler.get_samples()

    def test_empty_loader_raises(self):
        sampler = SGLDSampler(SGLD(_gaussian_model), burn_in=0, thinning=1)
        with pytest.raises(ValueError):
            sampler.run([], num_epochs=1)

    def test_works_with_bnn_model(self, rng):
        """SGLD can sample the weights of a supervised BNN's model directly."""
        from functools import partial
        import repro.core as tyxe

        x = rng.standard_normal((30, 2))
        y = (x[:, 0] > 0).astype(int)
        net = nn.Sequential(nn.Linear(2, 8, rng=rng), nn.ReLU(), nn.Linear(8, 2, rng=rng))
        bnn = tyxe.VariationalBNN(net, tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0)),
                                  tyxe.likelihoods.Categorical(len(x)),
                                  partial(tyxe.guides.AutoNormal, init_scale=1e-2))
        loader = nn.DataLoader(nn.TensorDataset(x, y), batch_size=15, rng=rng)
        kernel = SGLD(bnn.model, step_size=1e-4)
        sampler = SGLDSampler(kernel, burn_in=5, thinning=2)
        sampler.run(loader, num_epochs=10)
        samples = sampler.get_samples()
        assert samples["0.weight"].shape[1:] == (8, 2)
