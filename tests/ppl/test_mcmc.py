"""Unit tests for HMC/NUTS and the MCMC driver."""

import numpy as np
import pytest

from repro import ppl
from repro.ppl import distributions as dist
from repro.ppl.infer import HMC, MCMC, NUTS
from repro.ppl.infer.mcmc import _LatentLayout


def _gaussian_model(x):
    mu = ppl.sample("mu", dist.Normal(0.0, 1.0))
    with ppl.plate("data", len(x)):
        ppl.sample("obs", dist.Normal(mu, 0.5), obs=x)


def _true_posterior(x, lik_var=0.25):
    post_var = 1.0 / (1.0 + len(x) / lik_var)
    return post_var * x.sum() / lik_var, np.sqrt(post_var)


class TestLatentLayout:
    def test_flatten_unflatten_roundtrip(self, rng):
        from collections import OrderedDict

        layout = _LatentLayout(OrderedDict([("a", (2, 3)), ("b", ()), ("c", (4,))]))
        assert layout.total_dim == 11
        values = {"a": rng.standard_normal((2, 3)), "b": np.array(1.5),
                  "c": rng.standard_normal(4)}
        flat = layout.flatten(values)
        recovered = layout.unflatten(flat)
        np.testing.assert_allclose(recovered["a"], values["a"])
        np.testing.assert_allclose(recovered["b"], values["b"])
        np.testing.assert_allclose(recovered["c"], values["c"])


class TestKernels:
    def test_potential_matches_negative_log_joint(self):
        x = np.array([0.5, 1.0])
        kernel = HMC(_gaussian_model, step_size=0.1, num_steps=3)
        z0 = kernel.setup(x)
        potential, grad = kernel.potential_and_grad(np.array([0.0]))
        expected = -(dist.Normal(0.0, 1.0).log_prob(np.array(0.0)).item()
                     + dist.Normal(0.0, 0.5).log_prob(x).data.sum())
        assert potential == pytest.approx(expected, rel=1e-8)
        # gradient of the potential at mu=0: -(sum (x - mu)/0.25 - mu) = -(6.0)
        assert grad[0] == pytest.approx(-(x.sum() / 0.25), rel=1e-6)
        assert z0.shape == (1,)

    def test_leapfrog_conserves_energy_for_small_steps(self):
        x = np.array([0.5, 1.0])
        kernel = HMC(_gaussian_model, step_size=1e-3, num_steps=1, adapt_step_size=False)
        z = kernel.setup(x)
        rng = np.random.default_rng(0)
        r = rng.standard_normal(z.shape)
        p0, grad = kernel.potential_and_grad(z)
        h0 = p0 + kernel.kinetic(r)
        z1, r1, p1, _ = kernel.leapfrog(z, r, grad, 1e-3)
        h1 = p1 + kernel.kinetic(r1)
        assert abs(h1 - h0) < 1e-4

    def test_step_size_adaptation_moves_towards_target(self):
        kernel = HMC(_gaussian_model, step_size=1.0)
        kernel.setup(np.array([0.5]))
        for _ in range(20):
            kernel.adapt(accept_prob=0.1)  # too low -> step size should shrink
        kernel.finalize_adaptation()
        assert kernel.step_size < 1.0

    def test_model_without_latents_raises(self):
        def model():
            ppl.sample("obs", dist.Normal(0.0, 1.0), obs=np.array(1.0))

        with pytest.raises(ValueError):
            HMC(model).setup()


class TestMCMCDriver:
    def test_hmc_recovers_gaussian_posterior(self):
        x = np.random.default_rng(3).normal(1.5, 0.5, size=30)
        kernel = HMC(_gaussian_model, step_size=0.05, num_steps=10)
        mcmc = MCMC(kernel, num_samples=300, warmup_steps=150)
        mcmc.run(x)
        samples = mcmc.get_samples()["mu"]
        post_mean, post_std = _true_posterior(x)
        assert samples.mean() == pytest.approx(post_mean, abs=0.08)
        assert samples.std() == pytest.approx(post_std, rel=0.5)

    def test_nuts_recovers_gaussian_posterior(self):
        x = np.random.default_rng(4).normal(-1.0, 0.5, size=30)
        kernel = NUTS(_gaussian_model, step_size=0.1, max_tree_depth=5)
        mcmc = MCMC(kernel, num_samples=300, warmup_steps=150)
        mcmc.run(x)
        samples = mcmc.get_samples()["mu"]
        post_mean, post_std = _true_posterior(x)
        assert samples.mean() == pytest.approx(post_mean, abs=0.08)

    def test_multivariate_latents_sampled_with_correct_shapes(self):
        def model(x):
            w = ppl.sample("w", dist.Normal(np.zeros(3), np.ones(3)).to_event(1))
            b = ppl.sample("b", dist.Normal(0.0, 1.0))
            with ppl.plate("data", len(x)):
                ppl.sample("obs", dist.Normal(w.sum() + b, 1.0), obs=x)

        x = np.random.default_rng(5).normal(2.0, 1.0, size=20)
        mcmc = MCMC(NUTS(model, step_size=0.1, max_tree_depth=4), num_samples=50, warmup_steps=50)
        mcmc.run(x)
        samples = mcmc.get_samples()
        assert samples["w"].shape == (50, 3)
        assert samples["b"].shape == (50,)

    def test_diagnostics_and_summary(self):
        x = np.random.default_rng(6).normal(0.5, 0.5, size=20)
        mcmc = MCMC(HMC(_gaussian_model, step_size=0.05, num_steps=5), num_samples=50,
                    warmup_steps=50)
        mcmc.run(x)
        assert len(mcmc.diagnostics) == 50
        assert all(0.0 <= d["accept_prob"] <= 1.0 for d in mcmc.diagnostics)
        summary = mcmc.summary()
        assert "mean" in summary["mu"] and "std" in summary["mu"]

    def test_get_samples_before_run_raises(self):
        mcmc = MCMC(HMC(_gaussian_model), num_samples=10)
        with pytest.raises(RuntimeError):
            mcmc.get_samples()

    def test_acceptance_rate_reasonable_after_adaptation(self):
        x = np.random.default_rng(7).normal(1.0, 0.5, size=25)
        mcmc = MCMC(HMC(_gaussian_model, step_size=0.5, num_steps=5), num_samples=100,
                    warmup_steps=100)
        mcmc.run(x)
        mean_accept = np.mean([d["accept_prob"] for d in mcmc.diagnostics])
        assert mean_accept > 0.4
