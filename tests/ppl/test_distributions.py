"""Unit tests for the distribution library."""

import numpy as np
import pytest
from scipy import stats

from repro import ppl
from repro.nn.tensor import Tensor
from repro.ppl import distributions as dist


class TestNormal:
    def test_log_prob_matches_scipy(self, rng):
        loc, scale = 0.5, 2.0
        values = rng.standard_normal(10)
        ours = dist.Normal(loc, scale).log_prob(values).data
        np.testing.assert_allclose(ours, stats.norm.logpdf(values, loc, scale), rtol=1e-10)

    def test_rsample_statistics(self):
        d = dist.Normal(3.0, 0.5)
        samples = d.rsample((20000,)).data
        assert abs(samples.mean() - 3.0) < 0.02
        assert abs(samples.std() - 0.5) < 0.02

    def test_rsample_gradient_flows_to_params(self):
        loc = Tensor(np.zeros(3), requires_grad=True)
        scale = Tensor(np.ones(3), requires_grad=True)
        d = dist.Normal(loc, scale)
        d.rsample().sum().backward()
        assert loc.grad is not None and scale.grad is not None
        np.testing.assert_allclose(loc.grad, 1.0)

    def test_batch_shape_broadcasting(self):
        d = dist.Normal(np.zeros((3, 1)), np.ones(4))
        assert d.batch_shape == (3, 4)
        assert d.rsample().shape == (3, 4)

    def test_cdf_and_entropy(self):
        d = dist.Normal(0.0, 1.0)
        assert d.cdf(0.0).item() == pytest.approx(0.5)
        assert d.entropy().item() == pytest.approx(stats.norm.entropy(), rel=1e-10)

    def test_mean_variance_stddev(self):
        d = dist.Normal(2.0, 3.0)
        assert d.mean.item() == 2.0
        assert d.variance.item() == 9.0
        assert d.stddev.item() == 3.0

    def test_expand(self):
        d = dist.Normal(0.0, 1.0).expand((2, 3))
        assert d.batch_shape == (2, 3)

    def test_to_event(self):
        d = dist.Normal(np.zeros((4, 5)), 1.0).to_event(2)
        assert d.batch_shape == ()
        assert d.event_shape == (4, 5)
        assert d.log_prob(np.zeros((4, 5))).shape == ()


class TestLogNormalAndUniform:
    def test_lognormal_log_prob(self, rng):
        values = rng.uniform(0.5, 3.0, 10)
        ours = dist.LogNormal(0.2, 0.7).log_prob(values).data
        np.testing.assert_allclose(ours, stats.lognorm.logpdf(values, 0.7, scale=np.exp(0.2)),
                                   rtol=1e-8)

    def test_lognormal_samples_positive(self):
        assert np.all(dist.LogNormal(0.0, 1.0).sample((100,)).data > 0)

    def test_lognormal_mean(self):
        assert dist.LogNormal(0.0, 0.5).mean.item() == pytest.approx(np.exp(0.125))

    def test_uniform_log_prob_inside_outside(self):
        d = dist.Uniform(-1.0, 1.0)
        assert d.log_prob(0.0).item() == pytest.approx(np.log(0.5))
        assert d.log_prob(2.0).item() == -np.inf

    def test_uniform_sample_range(self):
        samples = dist.Uniform(2.0, 3.0).sample((500,)).data
        assert samples.min() >= 2.0 and samples.max() < 3.0

    def test_uniform_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            dist.Uniform(1.0, 1.0)

    def test_uniform_entropy_mean_variance(self):
        d = dist.Uniform(0.0, 2.0)
        assert d.entropy().item() == pytest.approx(np.log(2.0))
        assert d.mean.item() == 1.0
        assert d.variance.item() == pytest.approx(4 / 12)


class TestDelta:
    def test_log_prob_at_point_and_elsewhere(self):
        d = dist.Delta(np.array([1.0, 2.0]))
        np.testing.assert_allclose(d.log_prob(np.array([1.0, 2.0])).data, 0.0)
        assert d.log_prob(np.array([1.0, 3.0])).data[1] == -np.inf

    def test_event_dim_sums_log_prob(self):
        d = dist.Delta(np.zeros((2, 3)), event_dim=2)
        assert d.log_prob(np.zeros((2, 3))).shape == ()

    def test_rsample_returns_value(self):
        v = Tensor(np.array([4.0]), requires_grad=True)
        d = dist.Delta(v)
        assert d.rsample() is v
        assert d.rsample((3,)).shape == (3, 1)

    def test_mean_and_variance(self):
        d = dist.Delta(np.array([2.0]))
        assert d.mean.data[0] == 2.0
        assert d.variance.data[0] == 0.0


class TestCategorical:
    def test_log_prob_matches_manual(self, rng):
        logits = rng.standard_normal((5, 4))
        labels = np.array([0, 1, 2, 3, 0])
        d = dist.Categorical(logits=logits)
        log_probs = logits - np.log(np.exp(logits).sum(-1, keepdims=True))
        np.testing.assert_allclose(d.log_prob(labels).data,
                                   log_probs[np.arange(5), labels], rtol=1e-8)

    def test_from_probs(self):
        d = dist.Categorical(probs=np.array([0.2, 0.8]))
        assert d.log_prob(np.array(1)).item() == pytest.approx(np.log(0.8))

    def test_requires_exactly_one_parameterization(self):
        with pytest.raises(ValueError):
            dist.Categorical()
        with pytest.raises(ValueError):
            dist.Categorical(logits=np.zeros(3), probs=np.ones(3) / 3)

    def test_sample_frequencies(self):
        ppl.set_rng_seed(1)
        d = dist.Categorical(probs=np.array([0.1, 0.6, 0.3]))
        samples = d.sample((20000,)).data.astype(int)
        freqs = np.bincount(samples, minlength=3) / 20000
        np.testing.assert_allclose(freqs, [0.1, 0.6, 0.3], atol=0.02)

    def test_entropy(self):
        d = dist.Categorical(probs=np.array([0.5, 0.5]))
        assert d.entropy().item() == pytest.approx(np.log(2))

    def test_batch_sampling_shape(self, rng):
        d = dist.Categorical(logits=rng.standard_normal((7, 3)))
        assert d.sample().shape == (7,)
        assert d.sample((4,)).shape == (4, 7)


class TestBernoulliPoissonGamma:
    def test_bernoulli_log_prob(self):
        d = dist.Bernoulli(probs=np.array(0.7))
        assert d.log_prob(np.array(1.0)).item() == pytest.approx(np.log(0.7))
        assert d.log_prob(np.array(0.0)).item() == pytest.approx(np.log(0.3))

    def test_bernoulli_sample_mean(self):
        ppl.set_rng_seed(2)
        samples = dist.Bernoulli(probs=np.array(0.3)).sample((20000,)).data
        assert abs(samples.mean() - 0.3) < 0.02

    def test_bernoulli_mean_variance_entropy(self):
        d = dist.Bernoulli(probs=np.array(0.25))
        assert d.mean.item() == pytest.approx(0.25)
        assert d.variance.item() == pytest.approx(0.1875)
        assert d.entropy().item() == pytest.approx(stats.bernoulli.entropy(0.25), rel=1e-8)

    def test_poisson_log_prob_matches_scipy(self):
        d = dist.Poisson(np.array(3.5))
        for k in [0, 1, 5, 10]:
            assert d.log_prob(np.array(float(k))).item() == pytest.approx(
                stats.poisson.logpmf(k, 3.5), rel=1e-8)

    def test_gamma_log_prob_matches_scipy(self, rng):
        values = rng.uniform(0.5, 5.0, 10)
        d = dist.Gamma(2.0, 1.5)
        np.testing.assert_allclose(d.log_prob(values).data,
                                   stats.gamma.logpdf(values, 2.0, scale=1 / 1.5), rtol=1e-8)

    def test_gamma_mean_variance(self):
        d = dist.Gamma(4.0, 2.0)
        assert d.mean.item() == pytest.approx(2.0)
        assert d.variance.item() == pytest.approx(1.0)


class TestIndependent:
    def test_log_prob_sums_event_dims(self, rng):
        base = dist.Normal(np.zeros((3, 4)), np.ones((3, 4)))
        d = dist.Independent(base, 1)
        values = rng.standard_normal((3, 4))
        np.testing.assert_allclose(d.log_prob(values).data,
                                   base.log_prob(values).data.sum(-1), rtol=1e-10)

    def test_shapes(self):
        d = dist.Normal(np.zeros((2, 3, 4)), 1.0).to_event(2)
        assert d.batch_shape == (2,)
        assert d.event_shape == (3, 4)

    def test_nested_to_event(self):
        d = dist.Normal(np.zeros((2, 3)), 1.0).to_event(1).to_event(1)
        assert d.event_shape == (2, 3)

    def test_rejects_too_many_dims(self):
        with pytest.raises(ValueError):
            dist.Independent(dist.Normal(np.zeros(3), 1.0), 2)

    def test_has_rsample_delegates(self):
        assert dist.Normal(np.zeros(3), 1.0).to_event(1).has_rsample
        assert not dist.Categorical(logits=np.zeros((3, 2))).to_event(1).has_rsample


class TestLowRankMultivariateNormal:
    def _make(self, rng, d=6, k=2):
        loc = rng.standard_normal(d)
        factor = rng.standard_normal((d, k)) * 0.3
        diag = rng.uniform(0.5, 1.5, d)
        return dist.LowRankMultivariateNormal(loc, factor, diag), loc, factor, diag

    def test_log_prob_matches_full_multivariate_normal(self, rng):
        d, loc, factor, diag = self._make(rng)
        cov = factor @ factor.T + np.diag(diag)
        values = rng.standard_normal((5, 6))
        expected = stats.multivariate_normal.logpdf(values, loc, cov)
        np.testing.assert_allclose(d.log_prob(values).data, expected, rtol=1e-8)

    def test_sample_covariance(self, rng):
        ppl.set_rng_seed(3)
        d, loc, factor, diag = self._make(rng)
        samples = d.rsample((30000,)).data
        cov = factor @ factor.T + np.diag(diag)
        np.testing.assert_allclose(np.cov(samples.T), cov, atol=0.08)
        np.testing.assert_allclose(samples.mean(0), loc, atol=0.05)

    def test_entropy_matches_scipy(self, rng):
        d, loc, factor, diag = self._make(rng)
        cov = factor @ factor.T + np.diag(diag)
        assert d.entropy().item() == pytest.approx(stats.multivariate_normal(loc, cov).entropy(),
                                                   rel=1e-8)

    def test_log_prob_gradient_flows(self, rng):
        loc = Tensor(np.zeros(4), requires_grad=True)
        factor = Tensor(rng.standard_normal((4, 2)) * 0.1, requires_grad=True)
        diag = Tensor(np.ones(4), requires_grad=True)
        d = dist.LowRankMultivariateNormal(loc, factor, diag)
        d.log_prob(rng.standard_normal(4)).backward()
        assert loc.grad is not None and factor.grad is not None and diag.grad is not None

    def test_rejects_bad_shapes(self, rng):
        with pytest.raises(ValueError):
            dist.LowRankMultivariateNormal(np.zeros((2, 2)), np.zeros((2, 1)), np.ones(2))


class TestKLDivergence:
    def test_normal_normal_analytic(self):
        p = dist.Normal(0.0, 1.0)
        q = dist.Normal(1.0, 2.0)
        expected = np.log(2.0) + (1.0 + 1.0) / (2 * 4.0) - 0.5
        assert dist.kl_divergence(p, q).item() == pytest.approx(expected, rel=1e-10)

    def test_kl_zero_for_identical(self):
        p = dist.Normal(0.3, 0.7)
        assert dist.kl_divergence(p, dist.Normal(0.3, 0.7)).item() == pytest.approx(0.0, abs=1e-12)

    def test_kl_monte_carlo_agreement(self):
        ppl.set_rng_seed(4)
        p = dist.Normal(0.5, 0.8)
        q = dist.Normal(-0.2, 1.3)
        samples = p.rsample((40000,))
        mc = (p.log_prob(samples) - q.log_prob(samples)).data.mean()
        assert dist.kl_divergence(p, q).item() == pytest.approx(mc, abs=0.02)

    def test_independent_kl_sums(self):
        p = dist.Normal(np.zeros(5), np.ones(5)).to_event(1)
        q = dist.Normal(np.ones(5), np.ones(5)).to_event(1)
        assert dist.kl_divergence(p, q).item() == pytest.approx(5 * 0.5, rel=1e-10)

    def test_delta_kl_is_negative_log_prob(self):
        p = dist.Delta(np.array(0.5))
        q = dist.Normal(0.0, 1.0)
        assert dist.kl_divergence(p, q).item() == pytest.approx(-q.log_prob(0.5).item())

    def test_unregistered_pair_raises(self):
        with pytest.raises(NotImplementedError):
            dist.kl_divergence(dist.Normal(0.0, 1.0), dist.Gamma(1.0, 1.0))

    def test_kl_gradient_flows(self):
        loc = Tensor(np.array(0.5), requires_grad=True)
        scale = Tensor(np.array(0.7), requires_grad=True)
        dist.kl_divergence(dist.Normal(loc, scale), dist.Normal(0.0, 1.0)).backward()
        assert loc.grad is not None and scale.grad is not None

    def test_sum_rightmost(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 4)))
        assert dist.sum_rightmost(x, 0) is x
        assert dist.sum_rightmost(x, 2).shape == (2,)


class TestBatchedSampleStreamCompatibility:
    """A ``sample_shape=(K,)`` draw must consume the RNG stream exactly like
    ``K`` sequential draws of the same distribution.

    This is what lets the vectorized replay hand a guide-uncovered latent
    site one stacked batch of per-particle prior samples that is
    value-identical to the looped estimator's per-particle draws (NumPy
    generators fill sample-shape batches from the stream in order).
    """

    CASES = [
        ("normal", lambda: dist.Normal(np.zeros(3), np.full(3, 0.7))),
        ("lognormal", lambda: dist.LogNormal(0.2, 0.5)),
        ("uniform", lambda: dist.Uniform(-1.0, 2.0)),
        ("gamma", lambda: dist.Gamma(2.0, 1.5)),
        ("poisson", lambda: dist.Poisson(np.full(2, 3.0))),
        ("bernoulli", lambda: dist.Bernoulli(probs=np.full(2, 0.4))),
        ("categorical", lambda: dist.Categorical(probs=np.array([0.2, 0.3, 0.5]))),
        ("independent", lambda: dist.Normal(np.zeros((2, 2)), 1.0).to_event(2)),
        ("delta", lambda: dist.Delta(np.array([1.0, 2.0]), event_dim=1)),
    ]

    @pytest.mark.parametrize("make", [c[1] for c in CASES], ids=[c[0] for c in CASES])
    def test_stacked_draw_matches_sequential_draws(self, make):
        d = make()
        ppl.set_rng_seed(77)
        batched = d.sample((4,)).data
        ppl.set_rng_seed(77)
        sequential = np.stack([d.sample().data for _ in range(4)])
        np.testing.assert_allclose(batched, sequential, atol=0, rtol=0)

    def test_lowrank_stacked_draws_are_independent(self):
        # LowRankMultivariateNormal draws two noise blocks, so the batched
        # stream *order* differs from sequential draws; the draws must still
        # be independent samples of the right distribution
        d = dist.LowRankMultivariateNormal(np.zeros(3), np.eye(3)[:, :2] * 0.5, np.ones(3))
        ppl.set_rng_seed(5)
        batched = d.sample((2000,)).data
        assert batched.shape == (2000, 3)
        np.testing.assert_allclose(batched.mean(axis=0), np.zeros(3), atol=0.1)
        np.testing.assert_allclose(batched.var(axis=0), d.variance.data, atol=0.15)

    def test_stacked_log_prob_broadcasts_over_leading_axes(self):
        d = dist.Normal(np.zeros(3), np.ones(3)).to_event(1)
        value = d.sample((5,))
        log_prob = d.log_prob(value)
        assert log_prob.shape == (5,)
        per_draw = np.stack([d.log_prob(Tensor(value.data[i])).data for i in range(5)])
        np.testing.assert_allclose(log_prob.data, per_draw, atol=1e-12)
