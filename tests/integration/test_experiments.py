"""Smoke tests for the per-table/figure experiment harnesses (fast configs).

These confirm that every experiment the benchmark suite runs at full size can
execute end to end and produces outputs of the right structure.  Qualitative
(shape-of-result) assertions are kept loose because the fast configurations
are deliberately tiny.
"""

import numpy as np
import pytest

from repro.experiments.continual import ContinualConfig, run_figure4, run_ml_baseline, run_vcl
from repro.experiments.gnn_classification import (GNNConfig, run_gnn_comparison, table2_rows)
from repro.experiments.image_classification import (ImageClassificationConfig, figure2_curves,
                                                    run_inference_comparison, table1_rows)
from repro.experiments.nerf import NeRFConfig, run_nerf_experiment
from repro.experiments.regression import (RegressionConfig, run_hmc_regression,
                                          run_variational_regression)
from repro.datasets import make_image_classification_data


@pytest.fixture(scope="module")
def fast_regression_config():
    return RegressionConfig(n_per_cluster=15, hidden_units=20, num_epochs=30,
                            num_predictions=8, hmc_num_samples=10, hmc_warmup=10,
                            hmc_num_steps=5)


class TestRegressionExperiment:
    def test_variational_run_structure(self, fast_regression_config):
        result = run_variational_regression(fast_regression_config)
        assert result.method == "local_reparameterization"
        assert result.predictive_mean.shape == result.predictive_std.shape
        assert np.all(result.predictive_std > 0)
        assert np.isfinite(result.train_log_likelihood)

    def test_shared_sample_variant(self, fast_regression_config):
        result = run_variational_regression(fast_regression_config, local_reparam_predict=False)
        assert result.method == "shared_weight_samples"

    def test_hmc_run_structure(self, fast_regression_config):
        result = run_hmc_regression(fast_regression_config)
        assert result.method == "hmc"
        assert 0.0 <= result.extra["mean_accept_prob"] <= 1.0
        assert result.summary()["in_between_std"] > 0


class TestImageClassificationExperiment:
    def test_fast_comparison_all_methods(self):
        config = ImageClassificationConfig.fast()
        results = run_inference_comparison(config)
        assert set(results) == {"ml", "map", "mf_sd_only", "mf", "ll_mf", "ll_lowrank"}
        rows = table1_rows(results)
        assert len(rows) == 6
        for row in rows:
            assert 0.0 <= row["accuracy"] <= 1.0
            assert 0.0 <= row["ece"] <= 1.0
            assert 0.0 <= row["ood_auroc"] <= 1.0
            assert row["nll"] >= 0.0

    def test_subset_of_methods(self):
        config = ImageClassificationConfig.fast()
        results = run_inference_comparison(config, methods=("ml", "mf"))
        assert set(results) == {"ml", "mf"}

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            run_inference_comparison(ImageClassificationConfig.fast(), methods=("svi",))

    def test_figure2_curves_structure(self):
        config = ImageClassificationConfig.fast()
        results = run_inference_comparison(config, methods=("ml", "mf"))
        data = make_image_classification_data(
            num_classes=config.num_classes, image_size=config.image_size,
            channels=config.channels, train_per_class=config.train_per_class,
            test_per_class=config.test_per_class, noise_scale=config.noise_scale,
            seed=config.seed)
        curves = figure2_curves(results, labels=data.test_labels)
        for method in ("ml", "mf"):
            entry = curves[method]
            assert np.all(np.diff(entry["test_entropy_cdf"]) >= -1e-12)
            assert entry["bin_confidence"].shape == (10,)


class TestGNNExperiment:
    def test_fast_comparison(self):
        results = run_gnn_comparison(GNNConfig.fast())
        rows = table2_rows(results)
        assert [r["method"] for r in rows] == ["ml", "map", "mf"]
        for row in rows:
            assert 0.0 <= row["accuracy"] <= 1.0
            assert row["nll"] > 0.0
            assert row["accuracy_2se"] >= 0.0

    def test_method_subset_and_validation(self):
        results = run_gnn_comparison(GNNConfig.fast(), methods=("ml",))
        assert set(results) == {"ml"}
        with pytest.raises(ValueError):
            run_gnn_comparison(GNNConfig.fast(), methods=("hmc",))


class TestNeRFExperiment:
    def test_fast_run_structure(self):
        result = run_nerf_experiment(NeRFConfig.fast())
        summary = result.summary()
        for key, value in summary.items():
            assert np.isfinite(value), key
        assert result.train_uncertainty > 0
        assert result.heldout_uncertainty > 0
        assert len(result.extra["uncertainty_maps_heldout"]) == 3


class TestContinualExperiment:
    def test_vcl_and_ml_runs(self):
        config = ContinualConfig.fast("mnist")
        vcl = run_vcl(config)
        ml = run_ml_baseline(config)
        assert len(vcl.mean_accuracies) == config.num_tasks
        assert len(ml.mean_accuracies) == config.num_tasks
        assert all(0.0 <= a <= 1.0 for a in vcl.mean_accuracies)
        assert vcl.accuracy_matrix.shape == (config.num_tasks, config.num_tasks)

    def test_cifar_suite_runs(self):
        config = ContinualConfig.fast("cifar")
        result = run_ml_baseline(config)
        assert result.suite == "cifar"
        assert len(result.mean_accuracies) == config.num_tasks

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError):
            run_vcl(ContinualConfig(suite="imagenet"))
