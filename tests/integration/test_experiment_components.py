"""Unit-level tests for experiment-harness components (configs, result containers,
formatting helpers and the multi-head network used by the VCL experiment)."""

import numpy as np
import pytest

from repro import nn
from repro.experiments.continual import ContinualConfig, MultiHeadNet
from repro.experiments.gnn_classification import GNNConfig, GNNMethodResult, _aggregate
from repro.experiments.image_classification import (ALL_METHODS, ImageClassificationConfig,
                                                    MethodResult, table1_rows)
from repro.experiments.nerf import NeRFConfig
from repro.experiments.regression import RegressionConfig, RegressionResult
from repro.nn.tensor import Tensor


class TestConfigs:
    def test_fast_presets_are_smaller(self):
        assert ImageClassificationConfig.fast().ml_epochs < ImageClassificationConfig().ml_epochs
        assert GNNConfig.fast().num_runs < GNNConfig().num_runs
        assert NeRFConfig.fast().det_iterations < NeRFConfig().det_iterations
        assert ContinualConfig.fast("mnist").num_tasks <= ContinualConfig().num_tasks

    def test_continual_fast_suite_propagates(self):
        assert ContinualConfig.fast("cifar").suite == "cifar"

    def test_image_config_default_methods_are_known(self):
        assert set(ALL_METHODS) == {"ml", "map", "mf_sd_only", "mf", "ll_mf", "ll_lowrank"}


class TestResultContainers:
    def test_method_result_row(self):
        result = MethodResult("mf", nll=0.2, accuracy=0.9, ece=0.01, ood_auroc=0.95)
        row = result.row()
        assert row == {"method": "mf", "nll": 0.2, "accuracy": 0.9, "ece": 0.01,
                       "ood_auroc": 0.95}

    def test_table1_rows_keeps_canonical_order(self):
        results = {
            "mf": MethodResult("mf", 0.2, 0.9, 0.01, 0.9),
            "ml": MethodResult("ml", 0.4, 0.92, 0.08, 0.8),
        }
        rows = table1_rows(results)
        assert [r["method"] for r in rows] == ["ml", "mf"]

    def test_regression_result_summary(self):
        result = RegressionResult(method="hmc", x_grid=np.zeros((5, 1)),
                                  predictive_mean=np.zeros(5), predictive_std=np.ones(5),
                                  train_log_likelihood=1.0, train_squared_error=0.01,
                                  in_between_std=0.2, on_data_std=0.1)
        summary = result.summary()
        assert summary["method"] == "hmc"
        assert summary["in_between_std"] == 0.2

    def test_gnn_aggregate_statistics(self):
        runs = [{"nll": 1.0, "accuracy": 0.8, "ece": 0.1},
                {"nll": 2.0, "accuracy": 0.9, "ece": 0.2}]
        agg = _aggregate("ml", runs)
        assert agg.nll_mean == pytest.approx(1.5)
        assert agg.accuracy_mean == pytest.approx(0.85)
        # two standard errors of [1, 2] with ddof=1: 2 * (std/sqrt(2)) = 1.0
        assert agg.nll_two_se == pytest.approx(1.0)
        assert agg.row()["method"] == "ml"

    def test_gnn_aggregate_single_run_has_zero_se(self):
        agg = _aggregate("mf", [{"nll": 1.0, "accuracy": 0.8, "ece": 0.1}])
        assert agg.nll_two_se == 0.0


class TestMultiHeadNet:
    def _net(self, rng, num_heads):
        body = nn.Sequential(nn.Linear(4, 8, rng=rng), nn.ReLU())
        return MultiHeadNet(body, 8, num_heads, 2, rng=rng)

    def test_head_selection_changes_output(self, rng):
        net = self._net(rng, num_heads=3)
        x = Tensor(rng.standard_normal((2, 4)))
        net.set_active_task(0)
        out0 = net(x).data
        net.set_active_task(2)
        out2 = net(x).data
        assert not np.allclose(out0, out2)

    def test_single_head_maps_all_tasks_to_head_zero(self, rng):
        net = self._net(rng, num_heads=1)
        net.set_active_task(4)
        assert net.active_task == 0

    def test_all_head_parameters_registered(self, rng):
        net = self._net(rng, num_heads=3)
        head_params = [name for name, _ in net.named_parameters() if name.startswith("heads.")]
        assert len(head_params) == 6  # weight + bias per head

    def test_output_shape(self, rng):
        net = self._net(rng, num_heads=2)
        assert net(Tensor(rng.standard_normal((5, 4)))).shape == (5, 2)
