"""Integration tests reproducing the paper's code listings end to end.

Each test is a near-verbatim translation of one of the listings (1-6) from
the paper to this package's API — the central claim of the paper is that
these workflows require only a handful of lines, so these tests double as
API-parity checks.
"""

from functools import partial

import numpy as np
import pytest

from repro import nn, ppl
import repro.core as tyxe
from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.ppl import distributions as dist


class TestListing1And2Regression:
    """Listings 1-2: five-line BNN setup, fit under local reparameterization, predict."""

    def test_full_workflow(self, rng):
        x = np.concatenate([rng.uniform(-1, -0.7, (20, 1)), rng.uniform(0.5, 1, (20, 1))])
        y = np.cos(4 * x + 0.8) + rng.normal(0, 0.1, x.shape)
        dataset_size = len(x)

        # Listing 1
        net = nn.Sequential(nn.Linear(1, 50, rng=rng), nn.Tanh(), nn.Linear(50, 1, rng=rng))
        likelihood = tyxe.likelihoods.HomoskedasticGaussian(dataset_size, scale=0.1)
        prior = tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0))
        guide_factory = tyxe.guides.AutoNormal
        bnn = tyxe.VariationalBNN(net, prior, likelihood, guide_factory)

        # Listing 2
        optim = ppl.optim.Adam({"lr": 1e-2})
        loader = nn.DataLoader(nn.TensorDataset(x, y), batch_size=20, shuffle=True, rng=rng)
        with tyxe.poutine.local_reparameterization():
            bnn.fit(loader, optim, 10)
        pred_params = bnn.predict(x, num_predictions=8)
        assert pred_params.shape == (40, 1)

    def test_mcmc_variant(self, rng):
        """The footnote of Listing 1: guide_factory = HMC and a MCMC_BNN."""
        x = rng.uniform(-1, 1, (20, 1))
        y = np.cos(4 * x + 0.8) + rng.normal(0, 0.1, x.shape)
        net = nn.Sequential(nn.Linear(1, 10, rng=rng), nn.Tanh(), nn.Linear(10, 1, rng=rng))
        likelihood = tyxe.likelihoods.HomoskedasticGaussian(len(x), scale=0.1)
        prior = tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0))
        guide_factory = partial(ppl.infer.HMC, step_size=1e-3, num_steps=3)
        bnn = tyxe.MCMC_BNN(net, prior, likelihood, guide_factory)
        bnn.fit((x, y), num_samples=5, warmup_steps=5)
        assert bnn.predict(x, num_predictions=3).shape == (20, 1)


class TestListing3BayesianResNet:
    """Listing 3: pretrained ResNet, BatchNorm excluded, pretrained-init guide,
    and the last-layer prior / low-rank guide variants."""

    def test_full_resnet_workflow(self, rng):
        resnet = nn.models.resnet8(num_classes=4, base_width=4, rng=rng)  # "pretrained" net
        prior = tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0), expose_all=True,
                                     hide_module_types=[nn.BatchNorm2d])
        likelihood = tyxe.likelihoods.Categorical(dataset_size=24)
        guide = partial(tyxe.guides.AutoNormal, train_loc=False, init_scale=1e-4,
                        init_loc_fn=tyxe.guides.PretrainedInitializer.from_net(resnet))
        bayesian_resnet = tyxe.VariationalBNN(resnet, prior, likelihood, guide)

        x = rng.standard_normal((24, 3, 8, 8))
        y = rng.integers(0, 4, 24)
        loader = nn.DataLoader(nn.TensorDataset(x, y), batch_size=12, rng=rng)
        with tyxe.poutine.local_reparameterization():
            bayesian_resnet.fit(loader, ppl.optim.Adam({"lr": 1e-3}), 2)
        probs = bayesian_resnet.predict(x[:6], num_predictions=4)
        assert probs.shape == (6, 4)
        # BatchNorm parameters stayed deterministic
        assert not any("bn" in s for s in bayesian_resnet.bayesian_sites())

    def test_last_layer_prior_and_lowrank_guide(self, rng):
        resnet = nn.models.resnet8(num_classes=4, base_width=4, rng=rng)
        ll_prior = tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0), expose_all=False,
                                        expose_modules=[resnet.fc])
        lr_guide = partial(tyxe.guides.AutoLowRankMultivariateNormal, rank=2)
        likelihood = tyxe.likelihoods.Categorical(dataset_size=12)
        bnn = tyxe.VariationalBNN(resnet, ll_prior, likelihood, lr_guide)
        assert set(bnn.bayesian_sites()) == {"fc.weight", "fc.bias"}
        x = rng.standard_normal((12, 3, 8, 8))
        y = rng.integers(0, 4, 12)
        loader = nn.DataLoader(nn.TensorDataset(x, y), batch_size=12, rng=rng)
        bnn.fit(loader, ppl.optim.Adam({"lr": 1e-3}), 2)
        assert bnn.predict(x[:4], num_predictions=3).shape == (4, 4)


class TestListing4BayesianGNN:
    """Listing 4: GCN forward over (graph, features), selective_mask over labels."""

    def test_full_gnn_workflow(self, rng):
        from repro.datasets import make_citation_graph
        from repro.gnn import two_layer_gcn

        data = make_citation_graph(num_nodes=50, num_classes=3, feature_dim=8,
                                   train_per_class=4, val_per_class=4, seed=0)
        gnn = two_layer_gcn(data.num_features, 8, data.num_classes, rng=rng)
        prior = tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0))
        likelihood = tyxe.likelihoods.Categorical(dataset_size=data.graph.num_nodes)
        guide = partial(tyxe.guides.AutoNormal, init_scale=1e-2)
        bgnn = tyxe.VariationalBNN(gnn, prior, likelihood, guide)

        graph, x, y = data.graph, Tensor(data.features), Tensor(data.labels)
        mask = data.train_mask.astype(np.float64)
        optim = ppl.optim.Adam({"lr": 1e-2})
        with tyxe.poutine.selective_mask(mask=mask, expose=["likelihood.data"]):
            bgnn.fit([((graph, x), y)], optim, 5)
        probs = bgnn.predict((graph, x), num_predictions=4)
        assert probs.shape == (50, 3)


class TestListing5BayesianNeRF:
    """Listing 5: PytorchBNN as a drop-in field for the volumetric renderer,
    trained with a plain optimizer and the cached KL as a regularizer."""

    def test_full_nerf_workflow(self, rng):
        from repro.render import VolumetricRenderer, make_nerf_field, two_sphere_field

        renderer = VolumetricRenderer(image_size=6, num_samples_per_ray=6)
        target_image, target_silhouette = renderer(30.0, two_sphere_field)

        nerf_net = make_nerf_field(hidden=16, depth=2, rng=rng)
        prior = tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0))
        guide = partial(tyxe.guides.AutoNormal, init_scale=1e-2)
        nerf_bnn = tyxe.PytorchBNN(nerf_net, prior, guide)

        dummy_points = Tensor(np.zeros((4, 3)))
        optim = nn.Adam(nerf_bnn.pytorch_parameters(dummy_points), lr=1e-3)
        losses = []
        for _ in range(10):
            optim.zero_grad()
            image, silhouette = renderer(30.0, nerf_bnn)
            image_loss = F.mse_loss(image, target_image) + F.mse_loss(silhouette, target_silhouette)
            loss = image_loss + 1e-5 * nerf_bnn.cached_kl_loss
            loss.backward()
            optim.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]


class TestListing6VariationalContinualLearning:
    """Listing 6: turn the current posterior into the prior for the next task."""

    def test_prior_update_roundtrip(self, rng):
        x = rng.standard_normal((30, 4))
        y = (x[:, 0] > 0).astype(int)
        net = nn.Sequential(nn.Linear(4, 8, rng=rng), nn.ReLU(), nn.Linear(8, 2, rng=rng))
        bnn = tyxe.VariationalBNN(net, tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0)),
                                  tyxe.likelihoods.Categorical(len(x)),
                                  partial(tyxe.guides.AutoNormal, init_scale=1e-2))
        loader = nn.DataLoader(nn.TensorDataset(x, y), batch_size=15, rng=rng)
        bnn.fit(loader, ppl.optim.Adam({"lr": 1e-2}), 5)

        bayesian_weights = tyxe.util.pyro_sample_sites(bnn)
        posteriors = bnn.net_guide.get_detached_distributions(bayesian_weights)
        bnn.update_prior(tyxe.priors.DictPrior(posteriors))

        # training continues against the new prior
        bnn.fit(loader, ppl.optim.Adam({"lr": 1e-2}), 2)
        assert isinstance(bnn.prior, tyxe.priors.DictPrior)
