"""Byte-bounded LRU semantics: hits, misses, evictions, budgets, keys."""

import numpy as np

from repro.serve import ByteLRUCache, response_cache_key
from repro.serve.cache import response_nbytes
from repro.serve.engine import PredictResponse


def _response(rows=1):
    arr = np.zeros((rows, 1))
    return PredictResponse(mean=arr, std=arr, lo=arr, hi=arr, coverage=0.9)


class TestLRU:
    def test_hit_miss_counters(self):
        cache = ByteLRUCache(1024)
        assert cache.get("a") is None
        cache.put("a", "value", 100)
        assert cache.get("a") == "value"
        assert cache.stats() == {"entries": 1, "bytes": 100, "max_bytes": 1024,
                                 "hits": 1, "misses": 1, "evictions": 0}

    def test_eviction_is_lru_ordered(self):
        cache = ByteLRUCache(300)
        cache.put("a", 1, 100)
        cache.put("b", 2, 100)
        cache.put("c", 3, 100)
        assert cache.get("a") == 1  # refresh a: b is now least recent
        cache.put("d", 4, 100)
        assert "b" not in cache
        assert "a" in cache and "c" in cache and "d" in cache
        assert cache.evictions == 1
        assert cache.current_bytes == 300

    def test_multiple_evictions_for_one_large_insert(self):
        cache = ByteLRUCache(300)
        for key in "abc":
            cache.put(key, key, 100)
        cache.put("big", "big", 250)
        assert len(cache) == 1  # a, b and c all evicted to fit 250 in 300
        assert cache.evictions == 3
        assert cache.current_bytes == 250

    def test_oversize_value_not_stored(self):
        cache = ByteLRUCache(100)
        cache.put("huge", "x", 101)
        assert len(cache) == 0
        assert cache.evictions == 0

    def test_reinsert_updates_size_accounting(self):
        cache = ByteLRUCache(300)
        cache.put("a", 1, 100)
        cache.put("a", 2, 200)
        assert cache.current_bytes == 200
        assert cache.get("a") == 2


class TestKeys:
    def test_key_depends_on_input_bytes_coverage_and_snapshot(self):
        x = np.ones((2, 1))
        base = response_cache_key(x, 0.9, "snap-a")
        assert response_cache_key(x.copy(), 0.9, "snap-a") == base
        assert response_cache_key(x + 1e-12, 0.9, "snap-a") != base
        assert response_cache_key(x, 0.95, "snap-a") != base
        assert response_cache_key(x, 0.9, "snap-b") != base

    def test_key_distinguishes_shape_with_same_bytes(self):
        flat = np.zeros((4, 1))
        assert (response_cache_key(flat, 0.9, "s")
                != response_cache_key(flat.reshape(2, 2), 0.9, "s"))

    def test_response_nbytes_tracks_array_payload(self):
        small = response_nbytes(_response(rows=1))
        large = response_nbytes(_response(rows=100))
        assert large > small
        assert large >= 100 * 8 * 4  # four float64 arrays of 100 rows
