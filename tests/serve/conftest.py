"""Shared serving fixtures: one tiny trained fig1 snapshot per session.

The snapshot is trained once (3 epochs on 12 points) and reused read-only by
every serving test — the engine consumes no RNG, so sharing is safe.
"""

import numpy as np
import pytest

from repro.serve import PredictionEngine, create_snapshot, load_snapshot

#: tiny-but-trained fig1 configuration shared by the serve suite
TINY_FIG1 = {"n_per_cluster": 6, "num_epochs": 3, "hidden_units": 8,
             "num_predictions": 2}
TINY_NUM_SAMPLES = 8


@pytest.fixture(scope="session")
def tiny_overrides():
    return dict(TINY_FIG1)


@pytest.fixture(scope="session")
def fig1_snapshot_dir(tmp_path_factory):
    snapshot = create_snapshot("fig1-regression", fast=True, overrides=TINY_FIG1,
                               num_samples=TINY_NUM_SAMPLES)
    root = tmp_path_factory.mktemp("snapshots") / "fig1"
    snapshot.save(root)
    return root


@pytest.fixture(scope="session")
def fig1_engine(fig1_snapshot_dir):
    return PredictionEngine.from_snapshot(load_snapshot(fig1_snapshot_dir))


@pytest.fixture
def request_rows():
    """A deterministic pool of single-row regression inputs."""
    return np.linspace(-2.0, 2.0, 24).reshape(-1, 1)
