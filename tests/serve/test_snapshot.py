"""Snapshot round-trip, integrity and servability-rejection coverage."""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.serve import (PredictionEngine, Snapshot, SnapshotError,
                         create_snapshot, load_snapshot, snapshot_from_bnn)

REPO_ROOT = Path(__file__).resolve().parents[2]

# must match the session fixture in conftest.py
TINY_NUM_SAMPLES = 8


class TestRoundTrip:
    def test_save_load_preserves_everything(self, fig1_snapshot_dir):
        loaded = load_snapshot(fig1_snapshot_dir)
        assert loaded.experiment_id == "fig1-regression"
        assert loaded.num_samples == TINY_NUM_SAMPLES
        assert loaded.config["n_per_cluster"] == 6
        assert set(loaded.sites) == {"0.weight", "0.bias", "2.weight", "2.bias"}
        for stack in loaded.sites.values():
            assert stack.shape[0] == TINY_NUM_SAMPLES

    def test_snapshot_id_stable_across_load(self, fig1_snapshot_dir):
        first = load_snapshot(fig1_snapshot_dir)
        second = load_snapshot(fig1_snapshot_dir)
        assert first.snapshot_id == second.snapshot_id
        manifest = json.loads((fig1_snapshot_dir / "manifest.json").read_text())
        assert manifest["snapshot_id"] == first.snapshot_id

    def test_create_is_deterministic_in_the_config(self, tmp_path, tiny_overrides):
        one = create_snapshot("fig1-regression", fast=True, overrides=tiny_overrides,
                              num_samples=4)
        two = create_snapshot("fig1-regression", fast=True, overrides=tiny_overrides,
                              num_samples=4)
        assert one.snapshot_id == two.snapshot_id
        for name in one.sites:
            assert one.sites[name].tobytes() == two.sites[name].tobytes()

    def test_untrained_snapshot_serves(self, tmp_path, tiny_overrides):
        snapshot = create_snapshot("fig1-regression", fast=True,
                                   overrides=tiny_overrides, num_samples=4,
                                   trained=False)
        engine = PredictionEngine.from_snapshot(
            load_snapshot(snapshot.save(tmp_path / "untrained")))
        response = engine.predict(np.zeros((2, 1)))
        assert response.mean.shape == (2, 1)
        assert (response.lo < response.hi).all()

    def test_fresh_process_predictions_byte_identical(self, fig1_snapshot_dir,
                                                      fig1_engine, request_rows):
        local = fig1_engine.predict(request_rows)
        script = textwrap.dedent(f"""
            import numpy as np
            from repro.serve import PredictionEngine, load_snapshot
            engine = PredictionEngine.from_snapshot(
                load_snapshot({str(fig1_snapshot_dir)!r}))
            rows = np.linspace(-2.0, 2.0, 24).reshape(-1, 1)
            response = engine.predict(rows)
            print(response.mean.tobytes().hex())
            print(response.std.tobytes().hex())
        """)
        result = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True,
            cwd=REPO_ROOT, env={"PYTHONPATH": str(REPO_ROOT / "src"),
                                "PATH": "/usr/bin:/bin"}, check=True)
        mean_hex, std_hex = result.stdout.split()
        assert mean_hex == local.mean.tobytes().hex()
        assert std_hex == local.std.tobytes().hex()


class TestRejection:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(SnapshotError, match="repro snapshot"):
            load_snapshot(tmp_path / "nowhere")

    def test_corrupt_manifest(self, tmp_path):
        root = tmp_path / "snap"
        root.mkdir()
        (root / "manifest.json").write_text("{not json")
        with pytest.raises(SnapshotError, match="corrupted"):
            load_snapshot(root)

    def test_unsupported_format_version(self, fig1_snapshot_dir, tmp_path):
        root = tmp_path / "snap"
        root.mkdir()
        (root / "weights.npz").write_bytes(
            (fig1_snapshot_dir / "weights.npz").read_bytes())
        manifest = json.loads((fig1_snapshot_dir / "manifest.json").read_text())
        manifest["format_version"] = 99
        (root / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="format_version"):
            load_snapshot(root)

    def test_tampered_weights_fail_integrity(self, fig1_snapshot_dir, tmp_path):
        root = tmp_path / "snap"
        root.mkdir()
        (root / "manifest.json").write_text(
            (fig1_snapshot_dir / "manifest.json").read_text())
        with np.load(fig1_snapshot_dir / "weights.npz") as archive:
            arrays = {key: archive[key] for key in archive.files}
        first = next(iter(arrays))
        arrays[first] = arrays[first] + 1e-9
        with open(root / "weights.npz", "wb") as fh:
            np.savez(fh, **arrays)
        with pytest.raises(SnapshotError, match="integrity"):
            load_snapshot(root)

    def test_mcmc_backed_manifest_rejected(self, fig1_snapshot_dir, tmp_path):
        root = tmp_path / "snap"
        root.mkdir()
        (root / "weights.npz").write_bytes(
            (fig1_snapshot_dir / "weights.npz").read_bytes())
        manifest = json.loads((fig1_snapshot_dir / "manifest.json").read_text())
        manifest["posterior"] = "mcmc"
        (root / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="VariationalBNN"):
            load_snapshot(root)

    def test_mcmc_bnn_rejected_at_save_time(self):
        from functools import partial

        import repro.core as tyxe
        from repro import nn, ppl
        from repro.ppl import distributions as dist

        net = nn.Sequential(nn.Linear(1, 4), nn.Tanh(), nn.Linear(4, 1))
        bnn = tyxe.MCMC_BNN(
            net, tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0)),
            tyxe.likelihoods.HomoskedasticGaussian(4, scale=0.1),
            partial(ppl.infer.HMC, step_size=1e-3, num_steps=2))
        with pytest.raises(SnapshotError, match="guide"):
            snapshot_from_bnn(bnn, "fig1-regression", {}, 4, np.zeros((2, 1)))

    def test_unservable_experiment_has_clear_diagnostic(self):
        with pytest.raises(SnapshotError, match="ServeTarget"):
            create_snapshot("fig3-nerf", fast=True, trained=False)

    def test_bad_num_samples(self, tiny_overrides):
        with pytest.raises(SnapshotError, match="num_samples"):
            create_snapshot("fig1-regression", fast=True, overrides=tiny_overrides,
                            num_samples=0, trained=False)


class TestEngineValidation:
    def test_site_mismatch_rejected(self, fig1_snapshot_dir):
        loaded = load_snapshot(fig1_snapshot_dir)
        loaded.sites.pop("2.bias")
        with pytest.raises(SnapshotError, match="architecture drift"):
            PredictionEngine.from_snapshot(loaded)

    def test_config_echo_rebuilds_typed_config(self, fig1_snapshot_dir):
        engine = PredictionEngine.from_snapshot(load_snapshot(fig1_snapshot_dir))
        # hidden_units=8 from the config echo, not the class default of 50
        assert engine.snapshot.sites["0.weight"].shape == (TINY_NUM_SAMPLES, 8, 1)
        assert set(engine.bnn.param_dists) == set(engine.snapshot.sites)

    def test_snapshot_dataclass_roundtrip_without_experiment(self, tmp_path):
        from collections import OrderedDict

        snapshot = Snapshot(experiment_id="adhoc", config={},
                            num_samples=2,
                            sites=OrderedDict(w=np.zeros((2, 3))))
        loaded = load_snapshot(snapshot.save(tmp_path / "adhoc"))
        assert loaded.snapshot_id == snapshot.snapshot_id
