"""Micro-batching broker: bit-identity, flush triggers, stress determinism."""

import asyncio

import numpy as np
import pytest

from repro.serve import ByteLRUCache, MicroBatcher


def _assert_bit_identical(left, right):
    assert left.mean.tobytes() == right.mean.tobytes()
    assert left.std.tobytes() == right.std.tobytes()
    assert left.lo.tobytes() == right.lo.tobytes()
    assert left.hi.tobytes() == right.hi.tobytes()


class TestBitIdentity:
    def test_coalesced_matches_serial_per_request(self, fig1_engine, request_rows):
        async def coalesced():
            batcher = MicroBatcher(fig1_engine, max_batch=64, max_wait_ms=5.0)
            responses = await asyncio.gather(
                *[batcher.submit(request_rows[i:i + 1])
                  for i in range(len(request_rows))])
            await batcher.close()
            return responses, batcher

        responses, batcher = asyncio.run(coalesced())
        assert batcher.counters.batches < len(request_rows)  # actually coalesced
        for i, response in enumerate(responses):
            _assert_bit_identical(response,
                                  fig1_engine.predict(request_rows[i:i + 1]))

    def test_multi_row_requests_slice_correctly(self, fig1_engine, request_rows):
        async def go():
            batcher = MicroBatcher(fig1_engine, max_batch=64, max_wait_ms=5.0)
            responses = await asyncio.gather(
                batcher.submit(request_rows[:3]),
                batcher.submit(request_rows[3:8]),
                batcher.submit(request_rows[8:9]))
            await batcher.close()
            return responses

        first, second, third = asyncio.run(go())
        _assert_bit_identical(first, fig1_engine.predict(request_rows[:3]))
        _assert_bit_identical(second, fig1_engine.predict(request_rows[3:8]))
        _assert_bit_identical(third, fig1_engine.predict(request_rows[8:9]))

    def test_per_request_coverage_honored_within_one_batch(self, fig1_engine,
                                                           request_rows):
        async def go():
            batcher = MicroBatcher(fig1_engine, max_batch=64, max_wait_ms=5.0)
            narrow, wide = await asyncio.gather(
                batcher.submit(request_rows[:1], coverage=0.5),
                batcher.submit(request_rows[:1], coverage=0.99))
            await batcher.close()
            return narrow, wide

        narrow, wide = asyncio.run(go())
        assert narrow.coverage == 0.5 and wide.coverage == 0.99
        assert ((wide.hi - wide.lo) > (narrow.hi - narrow.lo)).all()
        assert narrow.mean.tobytes() == wide.mean.tobytes()


class TestFlushTriggers:
    def test_size_flush_before_timer(self, fig1_engine, request_rows):
        async def go():
            batcher = MicroBatcher(fig1_engine, max_batch=4, max_wait_ms=60_000.0)
            responses = await asyncio.gather(
                *[batcher.submit(request_rows[i:i + 1]) for i in range(4)])
            return responses, batcher

        responses, batcher = asyncio.run(go())
        assert len(responses) == 4
        assert batcher.counters.size_flushes == 1
        assert batcher.counters.timer_flushes == 0

    def test_timer_flush_for_partial_batch(self, fig1_engine, request_rows):
        async def go():
            batcher = MicroBatcher(fig1_engine, max_batch=1000, max_wait_ms=1.0)
            response = await batcher.submit(request_rows[:1])
            return response, batcher

        response, batcher = asyncio.run(go())
        assert response.mean.shape == (1, 1)
        assert batcher.counters.timer_flushes == 1

    def test_close_flushes_pending(self, fig1_engine, request_rows):
        async def go():
            batcher = MicroBatcher(fig1_engine, max_batch=1000,
                                   max_wait_ms=60_000.0)
            pending = asyncio.ensure_future(batcher.submit(request_rows[:1]))
            await asyncio.sleep(0)  # let the submit enqueue
            await batcher.close()
            response = await pending
            with pytest.raises(RuntimeError, match="closed"):
                await batcher.submit(request_rows[:1])
            return response

        response = asyncio.run(go())
        assert response.mean.shape == (1, 1)

    def test_invalid_inputs_rejected(self, fig1_engine):
        async def go():
            batcher = MicroBatcher(fig1_engine, max_batch=4, max_wait_ms=1.0)
            with pytest.raises(ValueError, match="non-empty batch"):
                await batcher.submit(np.zeros(3))
            with pytest.raises(ValueError, match="non-empty batch"):
                await batcher.submit(np.zeros((0, 1)))

        asyncio.run(go())


class TestThreadSafety:
    def test_concurrent_forwards_from_threads_stay_bit_identical(
            self, fig1_engine, request_rows):
        """The engine serializes forwards: parameter substitution mutates the
        one shared network, so unlocked concurrent forwards would read each
        other's substituted weight stacks."""
        from concurrent.futures import ThreadPoolExecutor

        expected = [fig1_engine.predict_stacked(request_rows[i:i + 2]).tobytes()
                    for i in range(16)]
        with ThreadPoolExecutor(max_workers=8) as pool:
            for _ in range(5):
                got = list(pool.map(
                    lambda i: fig1_engine.predict_stacked(
                        request_rows[i:i + 2]).tobytes(), range(16)))
                assert got == expected


class TestStressDeterminism:
    def test_concurrent_waves_deterministic_and_cache_consistent(
            self, fig1_engine, request_rows):
        """Many interleaved clients, repeated runs, cache on: identical bytes."""

        async def wave(use_cache):
            cache = ByteLRUCache(1 << 20) if use_cache else None
            batcher = MicroBatcher(fig1_engine, max_batch=8, max_wait_ms=1.0,
                                   cache=cache)

            async def client(offset):
                rows = request_rows[offset % len(request_rows):][:2]
                await asyncio.sleep((offset % 5) / 2000.0)
                return await batcher.submit(rows)

            responses = await asyncio.gather(*[client(i) for i in range(40)])
            await batcher.close()
            return [r.mean.tobytes() + r.std.tobytes() for r in responses]

        first = asyncio.run(wave(use_cache=False))
        second = asyncio.run(wave(use_cache=False))
        cached = asyncio.run(wave(use_cache=True))
        assert first == second  # deterministic under scheduling jitter
        assert first == cached  # the cache never changes response bytes
