"""HTTP surface tests (in-process sockets) and the `repro serve` CLI smoke."""

import asyncio
import json
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.experiments.api.cli import main
from repro.serve.cli import run_serve
from repro.serve.client import HTTPClient
from repro.serve.server import ServeApp

REPO_ROOT = Path(__file__).resolve().parents[2]


async def _http_roundtrip(app, raw: bytes) -> tuple:
    """One raw request against an in-process asyncio server; (status, body)."""
    server = await asyncio.start_server(app.handle_connection, "127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    try:
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(raw)
        await writer.drain()
        # signal end-of-requests so the keep-alive handler closes after this
        writer.write_eof()
        data = await reader.read()
        writer.close()
    finally:
        server.close()
        await server.wait_closed()
    head, _, body = data.partition(b"\r\n\r\n")
    status = int(head.split()[1])
    return status, json.loads(body.decode())


async def _read_response(reader) -> tuple:
    """Parse one framed response off a persistent connection.

    Returns ``(status, headers, body)`` with lower-cased header names.
    """
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        if line:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
    body = await reader.readexactly(int(headers["content-length"]))
    return status, headers, json.loads(body.decode())


def _post_predict(payload: dict) -> bytes:
    body = json.dumps(payload).encode()
    return (f"POST /predict HTTP/1.1\r\nContent-Length: {len(body)}\r\n"
            "\r\n").encode() + body


class TestRoutes:
    def test_healthz_reports_snapshot(self, fig1_engine):
        app = ServeApp(fig1_engine)
        status, body = asyncio.run(
            _http_roundtrip(app, b"GET /healthz HTTP/1.1\r\n\r\n"))
        assert status == 200
        assert body["status"] == "ok"
        assert body["snapshot_id"] == fig1_engine.snapshot_id
        assert body["experiment_id"] == "fig1-regression"

    def test_predict_carries_full_uncertainty_schema(self, fig1_engine,
                                                     request_rows):
        app = ServeApp(fig1_engine)
        inputs = request_rows[:3].tolist()
        status, body = asyncio.run(_http_roundtrip(
            app, _post_predict({"inputs": inputs, "coverage": 0.9})))
        assert status == 200
        assert body["snapshot_id"] == fig1_engine.snapshot_id
        assert len(body["predictions"]) == 3
        reference = fig1_engine.predict(request_rows[:3], coverage=0.9)
        for i, record in enumerate(body["predictions"]):
            assert record["mean"] == reference.mean[i].tolist()
            assert record["std"] == reference.std[i].tolist()
            assert record["interval"]["coverage"] == 0.9
            assert record["interval"]["lo"] == reference.lo[i].tolist()
            assert record["interval"]["hi"] == reference.hi[i].tolist()

    def test_stats_counts_requests_and_latency(self, fig1_engine, request_rows):
        app = ServeApp(fig1_engine)

        async def go():
            await _http_roundtrip(app, _post_predict(
                {"inputs": request_rows[:2].tolist()}))
            return await _http_roundtrip(app, b"GET /stats HTTP/1.1\r\n\r\n")

        status, body = asyncio.run(go())
        assert status == 200
        assert body["batcher"]["requests"] == 1
        assert body["batcher"]["rows"] == 2
        assert body["latency"]["count"] == 1
        assert body["latency"]["p99_ms"] >= body["latency"]["p50_ms"]
        assert body["cache"]["misses"] == 1

    def test_error_statuses(self, fig1_engine):
        app = ServeApp(fig1_engine)

        async def go():
            results = []
            results.append(await _http_roundtrip(
                app, b"GET /nope HTTP/1.1\r\n\r\n"))
            results.append(await _http_roundtrip(
                app, b"POST /predict HTTP/1.1\r\nContent-Length: 7\r\n\r\nnotjson"))
            results.append(await _http_roundtrip(
                app, _post_predict({"wrong": []})))
            results.append(await _http_roundtrip(
                app, _post_predict({"inputs": [[0.0]], "coverage": 2.0})))
            return results

        (s404, b404), (s400a, _), (s400b, b400b), (s400c, b400c) = asyncio.run(go())
        assert s404 == 404
        assert s400a == 400
        assert s400b == 400 and "inputs" in b400b["error"]
        assert s400c == 400 and "coverage" in b400c["error"]
        assert "no route" in b404["error"]


class TestKeepAlive:
    def test_connection_reused_until_client_close(self, fig1_engine):
        """Several requests ride one connection; Connection: close ends it."""
        app = ServeApp(fig1_engine)

        async def go():
            server = await asyncio.start_server(app.handle_connection,
                                                "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                responses = []
                for _ in range(2):
                    writer.write(b"GET /healthz HTTP/1.1\r\n\r\n")
                    await writer.drain()
                    responses.append(await _read_response(reader))
                writer.write(b"GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n")
                await writer.drain()
                responses.append(await _read_response(reader))
                trailing = await reader.read()  # server must close the socket
                writer.close()
                return responses, trailing
            finally:
                server.close()
                await server.wait_closed()

        responses, trailing = asyncio.run(go())
        assert [status for status, _, _ in responses] == [200, 200, 200]
        assert responses[0][1]["connection"] == "keep-alive"
        assert responses[1][1]["connection"] == "keep-alive"
        assert responses[2][1]["connection"] == "close"
        assert trailing == b""
        stats = responses[2][2]
        assert stats["http"] == {"connections": 1, "requests": 3}

    def test_error_response_closes_the_connection(self, fig1_engine):
        """4xx framing may be broken mid-stream: the server must not reuse it."""
        app = ServeApp(fig1_engine)

        async def go():
            server = await asyncio.start_server(app.handle_connection,
                                                "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.write(b"GET /nope HTTP/1.1\r\n\r\n")
                await writer.drain()
                response = await _read_response(reader)
                trailing = await reader.read()
                writer.close()
                return response, trailing
            finally:
                server.close()
                await server.wait_closed()

        (status, headers, _), trailing = asyncio.run(go())
        assert status == 404
        assert headers["connection"] == "close"
        assert trailing == b""


class TestCLI:
    def test_snapshot_verb_writes_artifact(self, tmp_path, capsys, tiny_overrides):
        out = tmp_path / "snap"
        argv = ["snapshot", "fig1-regression", "--out", str(out), "--fast",
                "--untrained", "--num-samples", "4"]
        argv += [flag for key, value in tiny_overrides.items()
                 for flag in ("--set", f"{key}={value}")]
        assert main(argv) == 0
        assert (out / "manifest.json").exists()
        assert "snapshot" in capsys.readouterr().out

    def test_serve_rejects_experiment_id_mismatch(self, fig1_snapshot_dir,
                                                  capsys):
        assert run_serve("table2-gnn", str(fig1_snapshot_dir)) == 2

    def test_serve_rejects_missing_snapshot(self, tmp_path):
        assert run_serve(None, str(tmp_path / "missing")) == 1

    def test_serve_smoke_spawn_predict_shutdown(self, fig1_snapshot_dir,
                                                fig1_engine):
        """Spawn `repro serve`, hit /healthz and /predict, SIGINT cleanly."""
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.experiments.api.cli", "serve",
             "fig1-regression", "--snapshot", str(fig1_snapshot_dir),
             "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            cwd=REPO_ROOT, env={"PYTHONPATH": str(REPO_ROOT / "src"),
                                "PATH": "/usr/bin:/bin"})
        try:
            line = proc.stdout.readline()
            match = re.search(r"listening on http://127\.0\.0\.1:(\d+)", line)
            assert match, f"unexpected startup line: {line!r}"
            client = HTTPClient(port=int(match.group(1)), timeout=30.0)

            health = client.healthz()
            assert health["status"] == "ok"
            assert health["snapshot_id"] == fig1_engine.snapshot_id

            reply = client.predict(np.array([[0.25]]), coverage=0.9)
            reference = fig1_engine.predict(np.array([[0.25]]), coverage=0.9)
            record = reply["predictions"][0]
            assert record["mean"] == reference.mean[0].tolist()
            assert record["std"] == reference.std[0].tolist()

            stats = client.stats()
            assert stats["batcher"]["requests"] == 1
            # healthz + predict + stats all rode one kept-alive connection
            assert stats["http"] == {"connections": 1, "requests": 3}
            client.close()
        finally:
            proc.send_signal(signal.SIGINT)
            try:
                output, _ = proc.communicate(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                pytest.fail("serve process did not shut down on SIGINT")
        assert proc.returncode == 0, output
        assert "shut down cleanly" in output
