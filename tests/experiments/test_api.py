"""Tests for the unified experiment API: registry, config protocol, artifacts.

Covers the contract every registered experiment must satisfy:

* the registry maps E1-E6 to runnable specs with ``BaseExperimentConfig``
  subclasses and ``fast()`` constructors,
* typed ``--set key=value`` overrides coerce to the declared field types,
* every experiment's :class:`ExperimentResult` JSON artifact round-trips
  (metrics and config echo equal) under reduced ``fast`` configs,
* one shared seeding helper makes same-seed runs bitwise repeatable,
* the legacy ``run_*`` entry points still work (with a deprecation warning)
  and agree with the registry path at a fixed seed.
"""

import json

import numpy as np
import pytest

from repro import ppl
from repro.experiments.api import (SCHEMA_VERSION, BaseExperimentConfig, ExperimentResult,
                                   all_experiments, experiment_ids, get_experiment,
                                   parse_overrides, run_experiment)

# extra-tiny overrides so that running all six artefacts stays test-suite cheap
TINY_OVERRIDES = {
    "fig1-regression": {"n_per_cluster": 6, "num_epochs": 3, "num_predictions": 2,
                        "hmc_num_samples": 4, "hmc_warmup": 4},
    "table1-resnet": {"methods": "ml,mf", "train_per_class": 4, "test_per_class": 3,
                      "num_ood": 8, "ml_epochs": 1, "vi_epochs": 1, "num_predictions": 2},
    "fig2-calibration": {"train_per_class": 4, "test_per_class": 3, "num_ood": 8,
                         "ml_epochs": 1, "vi_epochs": 1, "num_predictions": 2},
    "table2-gnn": {"num_nodes": 60, "train_per_class": 5, "val_per_class": 5, "num_runs": 1,
                   "ml_iterations": 5, "mf_iterations": 5, "num_predictions": 2},
    "fig3-nerf": {"image_size": 6, "num_samples_per_ray": 4, "num_train_views": 3,
                  "num_test_views": 2, "det_iterations": 3, "bayes_iterations": 3,
                  "num_posterior_samples": 2},
    "fig4-vcl": {"suite": "mnist", "num_tasks": 2, "train_per_class": 4, "test_per_class": 3,
                 "epochs_per_task": 2, "num_predictions": 2},
}


class TestRegistry:
    def test_all_six_artefacts_registered_in_order(self):
        # filter to the paper artefacts (E*): auxiliary workloads may register
        # too when the benchmark/exec suites are collected in the same run
        specs = [s for s in all_experiments() if s.number.startswith("E")]
        assert [s.number for s in specs] == ["E1", "E2", "E3", "E4", "E5", "E6"]
        paper_ids = [s.experiment_id for s in specs]
        assert paper_ids == ["fig1-regression", "table1-resnet", "fig2-calibration",
                             "table2-gnn", "fig3-nerf", "fig4-vcl"]
        assert set(paper_ids) <= set(experiment_ids())
        assert {s.artefact for s in specs} == {"Figure 1", "Figure 2", "Figure 3", "Figure 4",
                                               "Table 1", "Table 2"}

    def test_specs_expose_config_protocol(self):
        for spec in all_experiments():
            assert issubclass(spec.config_cls, BaseExperimentConfig)
            fast = spec.config_cls.fast()
            assert fast.fast is True
            default = spec.config_cls()
            assert default.fast is False
            # the batched evaluation engine is the default everywhere
            assert default.vectorized_eval is True

    def test_unknown_id_raises_with_known_ids(self):
        with pytest.raises(KeyError, match="fig1-regression"):
            get_experiment("fig9-unknown")

    def test_run_rejects_config_plus_overrides(self):
        spec = get_experiment("fig1-regression")
        with pytest.raises(ValueError, match="not both"):
            spec.run(spec.config_cls(), fast=True)


class TestConfigProtocol:
    def test_typed_overrides(self):
        spec = get_experiment("fig1-regression")
        config = spec.make_config(overrides={"num_epochs": "7", "learning_rate": "0.5",
                                             "panels": "hmc", "vectorized_eval": "false",
                                             "output_dir": "none"})
        assert config.num_epochs == 7 and isinstance(config.num_epochs, int)
        assert config.learning_rate == 0.5
        assert config.panels == "hmc"
        assert config.vectorized_eval is False
        assert config.output_dir is None

    def test_unknown_override_key_rejected(self):
        spec = get_experiment("fig1-regression")
        with pytest.raises(ValueError, match="no field"):
            spec.make_config(overrides={"nonexistent_knob": "1"})

    def test_bad_boolean_override_rejected(self):
        spec = get_experiment("fig3-nerf")
        with pytest.raises(ValueError, match="boolean"):
            spec.make_config(overrides={"vectorized_eval": "maybe"})

    def test_parse_overrides(self):
        assert parse_overrides(["a=1", "b=x=y"]) == {"a": "1", "b": "x=y"}
        with pytest.raises(ValueError):
            parse_overrides(["missing-equals"])

    def test_parse_overrides_strips_keys_and_values(self):
        # `--set key= value` (a shell-split space after the `=`) must
        # round-trip the same as `--set key=value`; inner whitespace stays
        assert parse_overrides(["key= value"]) == parse_overrides(["key=value"])
        assert parse_overrides([" key =\tvalue "]) == {"key": "value"}
        assert parse_overrides(["title= a b "]) == {"title": "a b"}
        with pytest.raises(ValueError):
            parse_overrides([" =value"])  # blank key is still rejected

    def test_parse_overrides_repeated_key_last_wins(self):
        assert parse_overrides(["seed=1", "seed= 2"]) == {"seed": "2"}

    def test_stripped_override_value_coerces_like_unstripped(self):
        spec = get_experiment("fig3-nerf")
        plain = spec.make_config(overrides=parse_overrides(["num_posterior_samples=4"]))
        spaced = spec.make_config(overrides=parse_overrides(["num_posterior_samples= 4"]))
        assert plain == spaced
        assert plain.num_posterior_samples == 4

    def test_config_dict_round_trip(self):
        for spec in all_experiments():
            config = spec.make_config(fast=True)
            rebuilt = spec.config_cls.from_dict(config.to_dict())
            assert rebuilt == config

    def test_seed_all_is_shared_idiom(self):
        config = get_experiment("fig1-regression").make_config(overrides={"seed": 123})
        rng = config.seed_all()
        # the returned generator and the global ppl generator are both fresh
        # generators seeded with config.seed
        assert rng.standard_normal() == np.random.default_rng(123).standard_normal()
        assert (ppl.get_rng().standard_normal()
                == np.random.default_rng(123).standard_normal())


class TestArtifactRoundTrip:
    @pytest.mark.parametrize("experiment_id", sorted(TINY_OVERRIDES))
    def test_result_serializes_and_round_trips(self, experiment_id, tmp_path):
        spec = get_experiment(experiment_id)
        overrides = dict(TINY_OVERRIDES[experiment_id])
        overrides["output_dir"] = str(tmp_path)
        result = spec.run(fast=True, overrides=overrides)

        assert result.experiment_id == experiment_id
        assert result.schema_version == SCHEMA_VERSION
        assert result.metrics, "every experiment must report at least one metric"
        assert result.wall_clock_seconds > 0.0
        assert result.config["fast"] is True

        artifact = tmp_path / f"{experiment_id}.json"
        assert artifact.exists(), "run() must write the artifact when output_dir is set"
        payload = json.loads(artifact.read_text())
        assert payload["experiment_id"] == experiment_id

        loaded = ExperimentResult.load(artifact)
        assert loaded == result  # metrics, config echo and wall clock all equal
        assert loaded.metrics == result.metrics
        assert loaded.config == result.config

        round_tripped = ExperimentResult.from_json(result.to_json())
        assert round_tripped == result

    def test_from_json_rejects_missing_keys_and_bad_versions(self):
        with pytest.raises(ValueError, match="missing"):
            ExperimentResult.from_json("{}")
        good = ExperimentResult("x", {}, {"m": 1.0}, 0.1).to_json()
        bad = good.replace(f'"schema_version": {SCHEMA_VERSION}', '"schema_version": 999')
        with pytest.raises(ValueError, match="schema_version"):
            ExperimentResult.from_json(bad)

    def test_write_is_atomic_no_tmp_residue(self, tmp_path):
        result = ExperimentResult("x", {"seed": 0}, {"m": 1.0}, 0.1)
        path = result.write(tmp_path / "x.json")
        assert [p.name for p in tmp_path.iterdir()] == ["x.json"]
        assert ExperimentResult.load(path) == result

    def test_torn_artifact_raises_corrupted_error_with_path(self, tmp_path):
        from repro.experiments.api import ResultCorruptedError

        result = ExperimentResult("x", {"seed": 0}, {"m": 1.0}, 0.1)
        path = result.write(tmp_path / "x.json")
        text = path.read_text()
        path.write_text(text[: len(text) // 2])  # tear it mid-document
        with pytest.raises(ResultCorruptedError) as excinfo:
            ExperimentResult.load(path)
        assert excinfo.value.path == path
        assert str(path) in str(excinfo.value)
        # the torn-file error is still a ValueError for legacy callers
        assert isinstance(excinfo.value, ValueError)


class TestDeterminismAndLegacyEquality:
    def test_same_seed_same_summary(self):
        overrides = dict(TINY_OVERRIDES["fig1-regression"], panels="local_reparameterization",
                        seed=7)
        first = run_experiment("fig1-regression", fast=True, overrides=overrides)
        second = run_experiment("fig1-regression", fast=True, overrides=overrides)
        assert first.metrics == second.metrics

    def test_legacy_shim_warns_and_matches_registry(self):
        from repro.experiments.regression import run_figure1

        spec = get_experiment("fig1-regression")
        config = spec.make_config(fast=True, overrides=TINY_OVERRIDES["fig1-regression"])
        registry_result = spec.run(config)
        with pytest.warns(DeprecationWarning, match="fig1-regression"):
            legacy = run_figure1(config)
        assert set(legacy) == {"local_reparameterization", "shared_weight_samples", "hmc"}
        for method, panel in legacy.items():
            for key, value in panel.summary().items():
                if key == "method":
                    continue
                assert registry_result.metrics[f"{method}_{key}"] == pytest.approx(value)

    def test_legacy_continual_shims_warn(self):
        from repro.experiments.continual import run_ml_baseline
        from repro.experiments.continual import ContinualConfig

        config = ContinualConfig.fast().with_overrides(TINY_OVERRIDES["fig4-vcl"])
        with pytest.warns(DeprecationWarning, match="fig4-vcl"):
            result = run_ml_baseline(config)
        assert len(result.mean_accuracies) == config.num_tasks
