"""In-process smoke tests for the ``repro`` console script.

Invokes :func:`repro.experiments.api.cli.main` directly (no subprocess) for
``repro list`` and ``repro run <id> --fast`` on the two cheapest
experiments, asserting exit code 0 and that a schema-conformant artifact
file is written.
"""

import json

import pytest

from repro.experiments.api import SCHEMA_VERSION, experiment_ids
from repro.experiments.api.cli import main

# the two cheapest artefacts, shrunk further via typed --set overrides
CHEAP_RUNS = {
    "fig1-regression": ["--set", "panels=local_reparameterization",
                        "--set", "n_per_cluster=6", "--set", "num_epochs=3",
                        "--set", "num_predictions=2"],
    "table2-gnn": ["--set", "num_nodes=60", "--set", "train_per_class=5",
                   "--set", "val_per_class=5", "--set", "num_runs=1",
                   "--set", "ml_iterations=5", "--set", "mf_iterations=5",
                   "--set", "num_predictions=2"],
}


def test_list_prints_every_registered_id(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for experiment_id in experiment_ids():
        assert experiment_id in out
    for number in ("E1", "E2", "E3", "E4", "E5", "E6"):
        assert number in out


@pytest.mark.parametrize("experiment_id", sorted(CHEAP_RUNS))
def test_run_fast_writes_artifact(experiment_id, tmp_path, capsys):
    argv = ["run", experiment_id, "--fast", "--seed", "5",
            "--output-dir", str(tmp_path)] + CHEAP_RUNS[experiment_id]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert experiment_id in out

    artifact = tmp_path / f"{experiment_id}.json"
    assert artifact.exists()
    payload = json.loads(artifact.read_text())
    assert payload["schema_version"] == SCHEMA_VERSION
    assert payload["experiment_id"] == experiment_id
    assert payload["config"]["seed"] == 5
    assert payload["config"]["fast"] is True
    assert payload["metrics"]
    assert payload["wall_clock_seconds"] > 0.0


def test_set_output_dir_override_respected(tmp_path):
    target = tmp_path / "viaset"
    argv = ["run", "fig1-regression", "--fast",
            "--set", f"output_dir={target}"] + CHEAP_RUNS["fig1-regression"]
    assert main(argv) == 0
    assert (target / "fig1-regression.json").exists()


def test_run_no_artifact_flag(tmp_path):
    argv = ["run", "fig1-regression", "--fast", "--no-artifact",
            "--output-dir", str(tmp_path)] + CHEAP_RUNS["fig1-regression"]
    assert main(argv) == 0
    assert not (tmp_path / "fig1-regression.json").exists()


def test_unknown_experiment_id_exits_2(capsys):
    assert main(["run", "fig9-unknown"]) == 2
    assert "fig9-unknown" in capsys.readouterr().err


def test_bad_override_exits_2(capsys):
    assert main(["run", "fig1-regression", "--fast", "--set", "not_a_field=1"]) == 2
    assert "not_a_field" in capsys.readouterr().err
