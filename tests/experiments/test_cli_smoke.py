"""In-process smoke tests for the ``repro`` console script.

Invokes :func:`repro.experiments.api.cli.main` directly (no subprocess) for
``repro list`` and ``repro run <id> --fast`` on the two cheapest
experiments, asserting exit code 0 and that a schema-conformant artifact
file is written.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.api import SCHEMA_VERSION, experiment_ids
from repro.experiments.api.cli import main

# the two cheapest artefacts, shrunk further via typed --set overrides
CHEAP_RUNS = {
    "fig1-regression": ["--set", "panels=local_reparameterization",
                        "--set", "n_per_cluster=6", "--set", "num_epochs=3",
                        "--set", "num_predictions=2"],
    "table2-gnn": ["--set", "num_nodes=60", "--set", "train_per_class=5",
                   "--set", "val_per_class=5", "--set", "num_runs=1",
                   "--set", "ml_iterations=5", "--set", "mf_iterations=5",
                   "--set", "num_predictions=2"],
}


def test_list_prints_every_registered_id(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for experiment_id in experiment_ids():
        assert experiment_id in out
    for number in ("E1", "E2", "E3", "E4", "E5", "E6"):
        assert number in out


@pytest.mark.parametrize("experiment_id", sorted(CHEAP_RUNS))
def test_run_fast_writes_artifact(experiment_id, tmp_path, capsys):
    argv = ["run", experiment_id, "--fast", "--seed", "5",
            "--output-dir", str(tmp_path)] + CHEAP_RUNS[experiment_id]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert experiment_id in out

    artifact = tmp_path / f"{experiment_id}.json"
    assert artifact.exists()
    payload = json.loads(artifact.read_text())
    assert payload["schema_version"] == SCHEMA_VERSION
    assert payload["experiment_id"] == experiment_id
    assert payload["config"]["seed"] == 5
    assert payload["config"]["fast"] is True
    assert payload["metrics"]
    assert payload["wall_clock_seconds"] > 0.0


def test_set_output_dir_override_respected(tmp_path):
    target = tmp_path / "viaset"
    argv = ["run", "fig1-regression", "--fast",
            "--set", f"output_dir={target}"] + CHEAP_RUNS["fig1-regression"]
    assert main(argv) == 0
    assert (target / "fig1-regression.json").exists()


def test_run_no_artifact_flag(tmp_path):
    argv = ["run", "fig1-regression", "--fast", "--no-artifact",
            "--output-dir", str(tmp_path)] + CHEAP_RUNS["fig1-regression"]
    assert main(argv) == 0
    assert not (tmp_path / "fig1-regression.json").exists()


def test_run_verbose_prints_lazy_graph_stats(capsys):
    argv = ["run", "fig1-regression", "--fast", "--no-artifact",
            "--verbose"] + CHEAP_RUNS["fig1-regression"]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "lazy graph:" in out
    assert "ops recorded" in out
    assert "realizations" in out


def test_unknown_experiment_id_exits_2(capsys):
    assert main(["run", "fig9-unknown"]) == 2
    assert "fig9-unknown" in capsys.readouterr().err


def test_bad_override_exits_2(capsys):
    assert main(["run", "fig1-regression", "--fast", "--set", "not_a_field=1"]) == 2
    assert "not_a_field" in capsys.readouterr().err


class TestRunAllRobustness:
    """``repro run-all`` finishes the sweep, summarizes and exits 1 on failure."""

    @staticmethod
    def _spec(experiment_id, runner, number="E9"):
        from repro.experiments.api.base import BaseExperimentConfig
        from repro.experiments.api.registry import ExperimentSpec

        return ExperimentSpec(experiment_id=experiment_id,
                              config_cls=BaseExperimentConfig, runner=runner,
                              number=number, artefact="Test", title="test spec")

    def _patch(self, monkeypatch, specs):
        from repro.experiments.api import cli

        monkeypatch.setattr(cli, "all_experiments", lambda: specs)

    def test_continues_past_failures_and_exits_1(self, monkeypatch, capsys):
        ran = []

        def ok_runner(config):
            ran.append("ok")
            return {"metric": 1.0}, None

        def boom_runner(config):
            ran.append("boom")
            raise RuntimeError("kaboom")

        self._patch(monkeypatch, [self._spec("exp-boom", boom_runner, "E8"),
                                  self._spec("exp-ok", ok_runner, "E9")])
        assert main(["run-all", "--no-artifact"]) == 1
        captured = capsys.readouterr()
        # the failure did not abort the sweep: the later experiment still ran
        assert ran == ["boom", "ok"]
        assert "kaboom" in captured.err
        assert "run-all: 1/2 experiments passed" in captured.out
        assert "FAIL  exp-boom" in captured.out
        assert "PASS  exp-ok" in captured.out

    def test_non_value_errors_are_caught(self, monkeypatch, capsys):
        def type_error_runner(config):
            raise TypeError("not a ValueError")

        self._patch(monkeypatch, [self._spec("exp-typeerror", type_error_runner)])
        assert main(["run-all", "--no-artifact"]) == 1
        assert "TypeError" in capsys.readouterr().err

    def test_set_overrides_reach_every_experiment(self, monkeypatch, capsys):
        seen = []

        def recording_runner(config):
            seen.append(config.seed)
            return {"m": 1.0}, None

        self._patch(monkeypatch, [self._spec("exp-a", recording_runner, "E8"),
                                  self._spec("exp-b", recording_runner, "E9")])
        assert main(["run-all", "--no-artifact", "--set", "seed=7"]) == 0
        assert seen == [7, 7]

    def test_malformed_set_override_exits_2(self, monkeypatch, capsys):
        self._patch(monkeypatch, [self._spec("exp-a", lambda c: ({"m": 1.0}, None))])
        assert main(["run-all", "--no-artifact", "--set", "missing-equals"]) == 2
        assert "missing-equals" in capsys.readouterr().err

    def test_unknown_key_fails_only_that_experiment(self, monkeypatch, capsys):
        # per-experiment config errors are sweep failures, not argument errors
        self._patch(monkeypatch, [self._spec("exp-a", lambda c: ({"m": 1.0}, None))])
        assert main(["run-all", "--no-artifact", "--set", "not_a_field=1"]) == 1
        captured = capsys.readouterr()
        assert "not_a_field" in captured.err
        assert "run-all: 0/1 experiments passed" in captured.out

    def test_all_passing_exits_0_with_summary(self, monkeypatch, capsys):
        self._patch(monkeypatch, [self._spec("exp-a", lambda c: ({"m": 1.0}, None), "E8"),
                                  self._spec("exp-b", lambda c: ({"m": 2.0}, None), "E9")])
        assert main(["run-all", "--no-artifact"]) == 0
        out = capsys.readouterr().out
        assert "run-all: 2/2 experiments passed" in out
        assert out.count("PASS") == 2 and "FAIL" not in out


class TestRunFailureDiagnostics:
    """A failing runner exits 1 with a one-line diagnostic, not a traceback."""

    @staticmethod
    def _patch_boom(monkeypatch):
        from repro.experiments.api import cli
        from repro.experiments.api.base import BaseExperimentConfig
        from repro.experiments.api.registry import ExperimentSpec

        def boom_runner(config):
            raise RuntimeError("kaboom mid-run")

        spec = ExperimentSpec(experiment_id="exp-boom",
                              config_cls=BaseExperimentConfig, runner=boom_runner,
                              number="E9", artefact="Test", title="boom")
        monkeypatch.setattr(cli, "get_experiment", lambda _id: spec)

    def test_runner_failure_exits_1_with_one_line(self, monkeypatch, capsys):
        self._patch_boom(monkeypatch)
        assert main(["run", "exp-boom", "--no-artifact"]) == 1
        err = capsys.readouterr().err
        assert "repro: exp-boom: RuntimeError: kaboom mid-run" in err
        assert "Traceback" not in err

    def test_verbose_keeps_the_traceback(self, monkeypatch, capsys):
        self._patch_boom(monkeypatch)
        assert main(["run", "exp-boom", "--no-artifact", "--verbose"]) == 1
        err = capsys.readouterr().err
        assert "Traceback (most recent call last)" in err
        assert "repro: exp-boom: RuntimeError: kaboom mid-run" in err

    def test_bad_arguments_still_exit_2(self, monkeypatch, capsys):
        # config-building errors are usage errors (2), not runner failures (1)
        self._patch_boom(monkeypatch)
        assert main(["run", "exp-boom", "--set", "nofield=1"]) == 2


class TestRunAllEngineFlags:
    """run-all rides the execution engine: journal + resume, flag validation."""

    def _specs(self, recorder):
        from repro.experiments.api.base import BaseExperimentConfig
        from repro.experiments.api.registry import ExperimentSpec

        def make(experiment_id, number):
            def runner(config):
                recorder.append(experiment_id)
                return {"m": 1.0}, None
            return ExperimentSpec(experiment_id=experiment_id,
                                  config_cls=BaseExperimentConfig, runner=runner,
                                  number=number, artefact="Test", title="t")
        return [make("exp-a", "E8"), make("exp-b", "E9")]

    def _patch(self, monkeypatch, specs):
        from repro.experiments.api import cli

        monkeypatch.setattr(cli, "all_experiments", lambda: specs)

    def test_resume_skips_journaled_experiments(self, monkeypatch, tmp_path,
                                                capsys):
        ran = []
        self._patch(monkeypatch, self._specs(ran))
        out_dir = str(tmp_path)
        assert main(["run-all", "--output-dir", out_dir]) == 0
        assert ran == ["exp-a", "exp-b"]
        assert (tmp_path / ".run-all" / "journal" / "exp-a.json").exists()
        capsys.readouterr()
        assert main(["run-all", "--output-dir", out_dir, "--resume"]) == 0
        assert ran == ["exp-a", "exp-b"]  # nothing re-ran
        out = capsys.readouterr().out
        assert "run-all: 2/2 experiments passed (2 journaled, skipped)" in out
        assert out.count("SKIP") == 2

    def test_resume_without_artifacts_exits_2(self, monkeypatch, capsys):
        self._patch(monkeypatch, self._specs([]))
        assert main(["run-all", "--no-artifact", "--resume"]) == 2
        assert "--resume" in capsys.readouterr().err

    def test_timeout_without_workers_exits_2(self, monkeypatch, capsys):
        self._patch(monkeypatch, self._specs([]))
        assert main(["run-all", "--no-artifact", "--timeout", "5"]) == 2
        assert "--workers" in capsys.readouterr().err

    def test_retries_recover_transient_failures(self, monkeypatch, capsys):
        from repro.experiments.api.base import BaseExperimentConfig
        from repro.experiments.api.registry import ExperimentSpec

        calls = []

        def flaky(config):
            calls.append(1)
            if len(calls) == 1:
                raise RuntimeError("transient")
            return {"m": 1.0}, None

        spec = ExperimentSpec(experiment_id="exp-flaky",
                              config_cls=BaseExperimentConfig, runner=flaky,
                              number="E9", artefact="Test", title="t")
        self._patch(monkeypatch, [spec])
        assert main(["run-all", "--no-artifact", "--retries", "1",
                     "--backoff", "0"]) == 0
        out = capsys.readouterr().out
        assert "run-all: 1/1 experiments passed" in out
        assert "PASS  exp-flaky (attempts=2)" in out


def test_list_empty_registry_prints_friendly_message(monkeypatch, capsys):
    from repro.experiments.api import cli

    monkeypatch.setattr(cli, "all_experiments", lambda: [])
    assert main(["list"]) == 0
    assert "no experiments registered" in capsys.readouterr().out


class TestLintCommand:
    """``repro lint``: exit 0 clean / 1 findings / 2 usage error."""

    def test_clean_file_exits_0(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("import numpy as np\ngen = np.random.default_rng(0)\n")
        assert main(["lint", str(clean)]) == 0
        out = capsys.readouterr().out
        assert "0 errors, 0 warnings" in out

    def test_findings_exit_1_and_are_printed(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import numpy as np\ngen = np.random.default_rng()\n")
        assert main(["lint", str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "R001" in out and "dirty.py" in out

    def test_missing_path_exits_2(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "no-such-dir")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_shipped_src_tree_is_clean(self, capsys):
        import repro

        src_repro = Path(repro.__file__).parent
        assert main(["lint", str(src_repro)]) == 0


class TestCheckModelCommand:
    """``repro check-model``: static model/guide validation through the CLI."""

    def test_unknown_id_exits_2(self, capsys):
        assert main(["check-model", "fig9-unknown"]) == 2
        assert "fig9-unknown" in capsys.readouterr().err

    def test_no_ids_without_all_exits_2(self, capsys):
        assert main(["check-model"]) == 2
        assert "--all" in capsys.readouterr().err

    def test_fig1_fast_exits_0(self, capsys):
        assert main(["check-model", "fig1-regression", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "fig1-regression/mean-field-vi: ok" in out

    def test_all_fast_exits_0(self, capsys):
        assert main(["check-model", "--all", "--fast"]) == 0
        out = capsys.readouterr().out
        for experiment_id in experiment_ids():
            assert experiment_id in out
        assert "0 with findings" in out

    def test_defective_target_exits_1(self, monkeypatch, capsys):
        import numpy as np

        import repro.ppl as ppl
        import repro.ppl.distributions as dist
        from repro.analysis import ValidationTarget
        from repro.experiments.api import cli as api_cli
        from repro.experiments.api.base import BaseExperimentConfig
        from repro.experiments.api.registry import ExperimentSpec

        def model():
            ppl.sample("z", dist.Normal(np.zeros(5), np.ones(5)).to_event(1))

        def guide():
            ppl.sample("z", dist.Delta(ppl.param("loc", np.zeros(6)), event_dim=1))

        spec = ExperimentSpec(
            experiment_id="exp-defective", config_cls=BaseExperimentConfig,
            runner=lambda c: ({}, None), number="E9", artefact="Test", title="t",
            validation_targets=lambda config: [ValidationTarget("pair", model, guide)])
        monkeypatch.setattr("repro.experiments.api.registry.get_experiment",
                            lambda experiment_id: spec)
        assert main(["check-model", "exp-defective"]) == 1
        out = capsys.readouterr().out
        assert "shape-mismatch" in out and "1 with errors" in out
