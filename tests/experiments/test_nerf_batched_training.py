"""Equivalence tests for the batched NeRF *training* path.

``NeRFConfig.batched_train_views`` renders a minibatch of training views per
optimizer step through one :meth:`VolumetricRenderer.render_batch` field
evaluation.  The contract mirrors the evaluation engine's:

* ``batched_train_views=1`` is RNG-identical to the reference one-view-per-
  step loop (``batched_train_views=None``) — same view-index draws, same
  field queries, same losses and trained parameters, for both the
  deterministic and the Bayesian (``PytorchBNN``) variants;
* for ``B > 1`` the minibatch loss equals the average of the per-view losses
  of the same views, gradients included.
"""

import numpy as np
import pytest

from repro import nn, ppl
from repro.experiments.nerf import (NeRFConfig, _minibatch_view_loss, _train_bayesian,
                                    _train_deterministic, _train_step_loss, _view_loss)
from repro.render import VolumetricRenderer, make_nerf_field, make_scene_dataset

ATOL = 1e-12


def _tiny_config(**overrides) -> NeRFConfig:
    config = NeRFConfig(image_size=6, num_samples_per_ray=4, num_train_views=4,
                        num_test_views=2, hidden=8, depth=2, num_frequencies=2,
                        det_iterations=5, bayes_iterations=5, kl_anneal_iterations=3,
                        num_posterior_samples=2, fast=True)
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def _tiny_scene(config):
    renderer = VolumetricRenderer(image_size=config.image_size,
                                  num_samples_per_ray=config.num_samples_per_ray)
    angles = np.linspace(0.0, 300.0, config.num_train_views)
    return renderer, make_scene_dataset(renderer, angles)


class TestBatchOfOneMatchesReference:
    def test_deterministic_training_is_rng_identical(self):
        config = _tiny_config()
        renderer, train_set = _tiny_scene(config)

        def train(batched):
            ppl.clear_param_store()
            ppl.set_rng_seed(0)
            config.batched_train_views = batched
            return _train_deterministic(renderer, train_set, config,
                                        np.random.default_rng(7))

        reference = train(None)
        batched = train(1)
        for (name, p_ref), (_, p_bat) in zip(reference.named_parameters(),
                                             batched.named_parameters()):
            np.testing.assert_allclose(p_bat.data, p_ref.data, atol=ATOL, rtol=0,
                                       err_msg=name)

    def test_bayesian_training_is_rng_identical(self):
        config = _tiny_config()
        renderer, train_set = _tiny_scene(config)

        def train(batched):
            ppl.clear_param_store()
            ppl.set_rng_seed(0)
            config.batched_train_views = batched
            return _train_bayesian(renderer, train_set, config,
                                   np.random.default_rng(7))

        reference = train(None)
        ref_params = [p.data.copy() for p in reference.guide_parameters()]
        batched = train(1)
        bat_params = [p.data.copy() for p in batched.guide_parameters()]
        assert ref_params and len(ref_params) == len(bat_params)
        for ref, bat in zip(ref_params, bat_params):
            np.testing.assert_allclose(bat, ref, atol=ATOL, rtol=0)

    def test_step_loss_is_identical_and_consumes_same_view_stream(self):
        config = _tiny_config()
        renderer, train_set = _tiny_scene(config)
        field = make_nerf_field(num_frequencies=2, hidden=8, depth=2,
                                rng=np.random.default_rng(3))
        config.batched_train_views = None
        rng_ref = np.random.default_rng(5)
        reference = _train_step_loss(renderer, field, train_set, config, rng_ref)
        config.batched_train_views = 1
        rng_bat = np.random.default_rng(5)
        batched = _train_step_loss(renderer, field, train_set, config, rng_bat)
        assert float(batched.item()) == pytest.approx(float(reference.item()), rel=1e-12)
        # both paths consumed exactly one view-index draw
        assert rng_ref.integers(1000) == rng_bat.integers(1000)


class TestMinibatchLoss:
    def test_equals_average_of_per_view_losses(self):
        config = _tiny_config()
        renderer, train_set = _tiny_scene(config)
        field = make_nerf_field(num_frequencies=2, hidden=8, depth=2,
                                rng=np.random.default_rng(1))
        targets = train_set[:3]
        images, silhouettes = renderer.render_batch([t["angle"] for t in targets], field)
        batched = _minibatch_view_loss(images, silhouettes, targets,
                                       config.silhouette_weight)
        per_view = []
        for target in targets:
            image, silhouette = renderer(target["angle"], field)
            per_view.append(float(_view_loss(image, silhouette, target,
                                             config.silhouette_weight).item()))
        assert float(batched.item()) == pytest.approx(float(np.mean(per_view)), rel=1e-10)

    def test_gradients_match_average_of_per_view_gradients(self):
        config = _tiny_config()
        renderer, train_set = _tiny_scene(config)
        field = make_nerf_field(num_frequencies=2, hidden=8, depth=2,
                                rng=np.random.default_rng(2))
        targets = train_set[:3]
        params = list(field.parameters())

        images, silhouettes = renderer.render_batch([t["angle"] for t in targets], field)
        _minibatch_view_loss(images, silhouettes, targets,
                             config.silhouette_weight).backward()
        batched_grads = [p.grad.copy() for p in params]
        for p in params:
            p.grad = None

        total = None
        for target in targets:
            image, silhouette = renderer(target["angle"], field)
            loss = _view_loss(image, silhouette, target, config.silhouette_weight)
            total = loss if total is None else total + loss
        (total / float(len(targets))).backward()
        for p, batched in zip(params, batched_grads):
            np.testing.assert_allclose(batched, p.grad, atol=1e-10, rtol=1e-10)

    def test_invalid_batch_size_rejected(self):
        config = _tiny_config(batched_train_views=0)
        renderer, train_set = _tiny_scene(config)
        field = make_nerf_field(num_frequencies=2, hidden=8, depth=2,
                                rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="batched_train_views"):
            _train_step_loss(renderer, field, train_set, config,
                             np.random.default_rng(0))


class TestEndToEndKnob:
    def test_experiment_runs_with_view_minibatches(self):
        from repro.experiments.api import run_experiment

        result = run_experiment(
            "fig3-nerf", fast=True,
            overrides={"batched_train_views": 2, "image_size": 6,
                       "num_samples_per_ray": 4, "num_train_views": 4,
                       "num_test_views": 2, "hidden": 8, "depth": 2,
                       "det_iterations": 4, "bayes_iterations": 4,
                       "kl_anneal_iterations": 2, "num_posterior_samples": 2,
                       "output_dir": None})
        assert result.config["batched_train_views"] == 2
        assert np.isfinite(result.metrics["bayesian_heldout_error"])
