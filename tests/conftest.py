"""Shared fixtures: every test runs with a fresh parameter store and fixed seeds."""

import numpy as np
import pytest

from repro import ppl


@pytest.fixture(autouse=True)
def _fresh_ppl_state():
    """Isolate tests from each other's parameter store and RNG state."""
    ppl.clear_param_store()
    ppl.set_rng_seed(0)
    yield
    ppl.clear_param_store()


@pytest.fixture
def rng():
    """A deterministic NumPy generator for test data."""
    return np.random.default_rng(12345)


def gradcheck(fn, x, eps=1e-6, atol=1e-5):
    """Compare analytic and central-difference gradients of a scalar function.

    ``fn`` maps a Tensor to a scalar Tensor; ``x`` is a NumPy array input.
    Returns the maximum absolute deviation (also asserted to be below atol).
    """
    from repro.nn.tensor import Tensor

    x_t = Tensor(np.asarray(x, dtype=np.float64), requires_grad=True)
    out = fn(x_t)
    out.backward()
    analytic = x_t.grad.copy()
    numeric = np.zeros_like(analytic)
    flat = np.asarray(x, dtype=np.float64)
    it = np.nditer(flat, flags=["multi_index"])
    for _ in it:
        idx = it.multi_index
        xp = flat.copy()
        xm = flat.copy()
        xp[idx] += eps
        xm[idx] -= eps
        numeric[idx] = (fn(Tensor(xp)).item() - fn(Tensor(xm)).item()) / (2 * eps)
    max_err = float(np.max(np.abs(analytic - numeric)))
    assert max_err < atol, f"gradcheck failed: max deviation {max_err}"
    return max_err


@pytest.fixture
def grad_check():
    """Expose the gradcheck helper as a fixture."""
    return gradcheck
