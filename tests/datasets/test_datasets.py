"""Unit tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import (foong_regression, make_citation_graph, make_image_classification_data,
                            make_ood_images, make_split_cifar_like, make_split_mnist_like,
                            make_split_tasks, regression_grid, true_function)


class TestRegressionData:
    def test_shapes_and_clusters(self):
        x, y = foong_regression(n_per_cluster=30, seed=0)
        assert x.shape == (60, 1) and y.shape == (60, 1)
        assert np.all((x[:30] >= -1.0) & (x[:30] <= -0.7))
        assert np.all((x[30:] >= 0.5) & (x[30:] <= 1.0))

    def test_targets_follow_cosine(self):
        x, y = foong_regression(n_per_cluster=200, noise_scale=0.01, seed=1)
        np.testing.assert_allclose(y, true_function(x), atol=0.05)

    def test_reproducible_with_seed(self):
        x1, y1 = foong_regression(seed=3)
        x2, y2 = foong_regression(seed=3)
        np.testing.assert_array_equal(x1, x2)
        np.testing.assert_array_equal(y1, y2)

    def test_grid_covers_gap(self):
        grid = regression_grid(-1.5, 1.5, 100)
        assert grid.shape == (100, 1)
        assert grid.min() == -1.5 and grid.max() == 1.5


class TestImageData:
    def test_shapes_and_balance(self):
        data = make_image_classification_data(num_classes=4, image_size=6, channels=3,
                                               train_per_class=10, test_per_class=5, seed=0)
        assert data.train_images.shape == (40, 3, 6, 6)
        assert data.test_images.shape == (20, 3, 6, 6)
        assert data.num_classes == 4
        counts = np.bincount(data.train_labels, minlength=4)
        np.testing.assert_array_equal(counts, 10)

    def test_classes_are_distinguishable(self):
        """A nearest-template classifier should beat chance by a wide margin."""
        data = make_image_classification_data(num_classes=4, image_size=8, channels=1,
                                               train_per_class=20, test_per_class=20,
                                               noise_scale=0.5, seed=1)
        flat_templates = data.templates.reshape(4, -1)
        flat_test = data.test_images.reshape(len(data.test_images), -1)
        distances = ((flat_test[:, None, :] - flat_templates[None]) ** 2).sum(-1)
        accuracy = (distances.argmin(1) == data.test_labels).mean()
        assert accuracy > 0.6

    def test_ood_images_differ_from_templates(self):
        data = make_image_classification_data(num_classes=4, image_size=6, seed=0)
        ood = make_ood_images(30, image_size=6, channels=3, seed=1000, num_classes=4)
        assert ood.shape == (30, 3, 6, 6)
        # OOD images are not centred on the in-distribution templates
        flat_templates = data.templates.reshape(4, -1)
        flat_ood = ood.reshape(30, -1)
        distances = ((flat_ood[:, None, :] - flat_templates[None]) ** 2).sum(-1).min(1)
        flat_test = data.test_images.reshape(len(data.test_images), -1)
        test_distances = ((flat_test[:, None, :] - flat_templates[None]) ** 2).sum(-1).min(1)
        assert distances.mean() > test_distances.mean()

    def test_seed_controls_generation(self):
        d1 = make_image_classification_data(seed=5, num_classes=3, train_per_class=4,
                                            test_per_class=2)
        d2 = make_image_classification_data(seed=5, num_classes=3, train_per_class=4,
                                            test_per_class=2)
        np.testing.assert_array_equal(d1.train_images, d2.train_images)


class TestCitationGraph:
    def test_structure_and_split(self):
        data = make_citation_graph(num_nodes=100, num_classes=4, train_per_class=5,
                                   val_per_class=5, seed=0)
        assert data.graph.num_nodes == 100
        assert data.features.shape[0] == 100
        assert data.num_classes == 4
        assert data.train_mask.sum() == 20
        assert data.val_mask.sum() == 20
        assert not np.any(data.train_mask & data.val_mask)
        assert not np.any(data.train_mask & data.test_mask)
        assert (data.train_mask | data.val_mask | data.test_mask).all()

    def test_homophily(self):
        """Nodes of the same class connect more often (the SBM property GCNs exploit)."""
        data = make_citation_graph(num_nodes=200, num_classes=3, p_in=0.1, p_out=0.005, seed=1)
        adjacency = data.graph.adjacency
        same = data.labels[:, None] == data.labels[None, :]
        intra = adjacency[same].mean()
        inter = adjacency[~same].mean()
        assert intra > 3 * inter

    def test_features_correlate_with_labels(self):
        data = make_citation_graph(num_nodes=300, num_classes=4, feature_noise=0.5, seed=2)
        class_mean_signal = np.array([
            data.features[data.labels == k, k].mean() for k in range(4)
        ])
        assert np.all(class_mean_signal > 0.5)

    def test_reproducibility(self):
        d1 = make_citation_graph(seed=7)
        d2 = make_citation_graph(seed=7)
        np.testing.assert_array_equal(d1.graph.adjacency, d2.graph.adjacency)
        np.testing.assert_array_equal(d1.labels, d2.labels)


class TestContinualTasks:
    def test_split_mnist_like_structure(self):
        tasks = make_split_mnist_like(num_tasks=5, train_per_class=10, test_per_class=5)
        assert len(tasks) == 5
        for task in tasks:
            assert task.num_classes == 2
            assert set(np.unique(task.train_labels)) <= {0, 1}
            assert task.train_inputs.ndim == 2  # flattened for the MLP

    def test_split_cifar_like_structure(self):
        tasks = make_split_cifar_like(num_tasks=3, train_per_class=8, test_per_class=4)
        assert len(tasks) == 3
        assert tasks[0].train_inputs.ndim == 4  # NCHW images for the conv net

    def test_tasks_use_disjoint_classes(self):
        tasks = make_split_mnist_like(num_tasks=3, train_per_class=5, test_per_class=5)
        class_sets = [set(task.classes) for task in tasks]
        for i in range(len(class_sets)):
            for j in range(i + 1, len(class_sets)):
                assert class_sets[i].isdisjoint(class_sets[j])

    def test_make_split_tasks_relabels(self):
        images = np.zeros((8, 4))
        labels = np.array([2, 2, 3, 3, 4, 4, 5, 5])
        tasks = make_split_tasks(images, labels, images, labels, classes_per_task=2)
        assert len(tasks) == 2
        assert set(np.unique(tasks[0].train_labels)) == {0, 1}
        assert tasks[0].classes == (2, 3)

    def test_incomplete_final_task_dropped(self):
        images = np.zeros((6, 4))
        labels = np.array([0, 0, 1, 1, 2, 2])
        tasks = make_split_tasks(images, labels, images, labels, classes_per_task=2)
        assert len(tasks) == 1
