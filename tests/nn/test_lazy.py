"""Tests for the lazy op-graph execution engine (``repro.nn.lazy``).

Covers the PR's acceptance surface: bit-identical forward/grad vs eager for
fused elementwise chains (including broadcasting and shared subgraphs),
elision of no-op movement ops, single evaluation of diamond graphs (via
``graph_stats()``), the ``REPRO_LAZY=0`` escape hatch, and the lazy
``Tensor.clone()`` fix.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn import lazy
from repro.nn.tensor import Tensor


@pytest.fixture(autouse=True)
def _lazy_on():
    """Force laziness on (whatever REPRO_LAZY says) and zero the counters."""
    previous = lazy.lazy_enabled()
    lazy.set_lazy_enabled(True)
    lazy.reset_stats()
    try:
        yield
    finally:
        lazy.set_lazy_enabled(previous)


def _chain(x, y):
    """A representative elementwise chain with broadcasting."""
    return ((x * 2.0 + y).tanh().relu() - 0.25).exp() / (y.abs() + 1.0)


class TestEagerEquivalence:
    def test_fused_chain_bit_identical_to_eager(self):
        rng = np.random.default_rng(0)
        xv = rng.normal(size=(32, 16))
        yv = rng.normal(size=(16,))  # broadcasts against x
        out_lazy = _chain(nn.tensor(xv), nn.tensor(yv))
        assert not out_lazy.is_realized
        with lazy.lazy_mode(False):
            out_eager = _chain(nn.tensor(xv), nn.tensor(yv))
            assert out_eager.is_realized
        np.testing.assert_array_equal(out_lazy.numpy(), out_eager.numpy())
        assert out_lazy.dtype == out_eager.dtype

    def test_shared_subgraph_bit_identical(self):
        xv = np.linspace(-2.0, 2.0, 101)
        x = nn.tensor(xv)
        shared = (x * 3.0).sigmoid()
        out = shared * 2.0 + shared.log()
        with lazy.lazy_mode(False):
            e_shared = (nn.tensor(xv) * 3.0).sigmoid()
            expected = (e_shared * 2.0 + e_shared.log()).numpy()
        np.testing.assert_array_equal(out.numpy(), expected)

    def test_grad_chain_matches_lazy_off(self):
        xv = np.linspace(-1.5, 1.5, 64).reshape(8, 8)
        x = nn.tensor(xv, requires_grad=True)
        loss = ((x * 2.0).tanh().relu() + x.sigmoid()).sum()
        loss.backward()
        with lazy.lazy_mode(False):
            x2 = nn.tensor(xv, requires_grad=True)
            loss2 = ((x2 * 2.0).tanh().relu() + x2.sigmoid()).sum()
            loss2.backward()
        np.testing.assert_array_equal(loss.numpy(), loss2.numpy())
        np.testing.assert_array_equal(x.grad, x2.grad)

    def test_mixed_grad_and_lazy_operands(self):
        # a no-grad lazy tensor feeding a grad-requiring op realizes cleanly
        base = (nn.tensor([1.0, 2.0, 3.0]) * 2.0).sqrt()
        w = nn.tensor([0.5, 0.5, 0.5], requires_grad=True)
        loss = (base * w).sum()
        loss.backward()
        np.testing.assert_array_equal(w.grad, np.sqrt([2.0, 4.0, 6.0]))

    def test_int_dtype_promotion_matches_eager(self):
        a = nn.tensor(np.array([1, 2, 3], dtype=np.int64))
        lazy_div = (a / 2)
        with lazy.lazy_mode(False):
            eager_div = nn.tensor(np.array([1, 2, 3], dtype=np.int64)) / 2
        assert lazy_div.dtype == eager_div.dtype
        np.testing.assert_array_equal(lazy_div.numpy(), eager_div.numpy())


class TestRealizationPoints:
    def test_ops_defer_until_data_access(self):
        x = nn.tensor(np.ones((4, 4)))
        y = (x + 1.0) * 3.0
        assert not y.is_realized
        stats = lazy.graph_stats()
        assert stats["ops_recorded"] == 2
        assert stats["ops_evaluated"] == 0
        _ = y.data  # realization point
        assert y.is_realized
        assert lazy.graph_stats()["ops_evaluated"] == 2

    def test_explicit_realize_returns_self(self):
        y = nn.tensor([1.0]) + 1.0
        assert y.realize() is y
        assert y.is_realized

    def test_item_and_comparison_realize(self):
        assert (nn.tensor(2.0) * 3.0).item() == 6.0
        mask = (nn.tensor([1.0, 5.0]) * 2.0) > nn.tensor([3.0, 3.0])
        assert isinstance(mask, np.ndarray)  # comparison realized both sides
        np.testing.assert_array_equal(mask, [False, True])

    def test_shape_metadata_without_realization(self):
        x = nn.tensor(np.ones((2, 3, 4)))
        y = (x * 2.0).reshape(4, 6).transpose(1, 0)
        assert y.shape == (6, 4)
        assert y.ndim == 2
        assert y.size == 24
        assert y.dtype == np.float64
        assert not y.is_realized


class TestFusion:
    def test_chain_fuses_into_reused_buffers(self):
        x = nn.tensor(np.ones(1000))
        y = x * 2.0
        for _ in range(9):
            y = y + 1.0
        y.realize()
        stats = lazy.graph_stats()
        assert stats["ops_evaluated"] == 10
        # every op after the first writes into the dead temp from its parent
        assert stats["ops_fused"] == 9
        assert stats["realizations"] == 1

    def test_diamond_graph_evaluates_shared_node_once(self):
        x = nn.tensor(np.arange(8.0))
        mid = (x * 2.0).exp()   # shared by both branches
        left = mid + 1.0
        right = mid * 3.0
        out = left + right
        out.realize()
        stats = lazy.graph_stats()
        # exp, mul, add, mul, add — the shared `mid` is evaluated exactly once
        assert stats["ops_evaluated"] == 5
        assert stats["realizations"] == 1
        np.testing.assert_array_equal(
            out.numpy(), (np.exp(np.arange(8.0) * 2.0) + 1.0)
            + np.exp(np.arange(8.0) * 2.0) * 3.0)

    def test_shared_node_not_clobbered_by_fusion(self):
        # the shared node's buffer must not be reused as an out= destination
        x = nn.tensor(np.full(16, 2.0))
        shared = x + 1.0
        a = shared * 10.0
        b = shared - 1.0
        np.testing.assert_array_equal(a.numpy(), np.full(16, 30.0))
        np.testing.assert_array_equal(b.numpy(), np.full(16, 2.0))

    def test_realizing_shared_prefix_then_suffix(self):
        x = nn.tensor(np.ones(4))
        mid = x + 1.0
        out = mid * 5.0
        mid.realize()
        evaluated_after_mid = lazy.graph_stats()["ops_evaluated"]
        out.realize()
        stats = lazy.graph_stats()
        # the suffix realization reuses mid's cached buffer
        assert stats["ops_evaluated"] == evaluated_after_mid + 1
        np.testing.assert_array_equal(out.numpy(), np.full(4, 10.0))


class TestMovementElision:
    def test_identity_reshape_elided(self):
        x = nn.tensor(np.ones((2, 3)))
        assert x.reshape(2, 3) is x
        assert x.reshape(2, -1) is x
        assert lazy.graph_stats()["buffers_elided"] == 2

    def test_double_transpose_elided(self):
        x = nn.tensor(np.ones((2, 3, 4))) * 1.5
        t = x.transpose(2, 0, 1)
        assert t.transpose(1, 2, 0) is x
        assert lazy.graph_stats()["buffers_elided"] == 1

    def test_identity_permutation_elided(self):
        x = nn.tensor(np.ones((2, 3)))
        assert x.transpose((0, 1)) is x  # tuple form: explicit permutation
        assert lazy.graph_stats()["buffers_elided"] == 1

    def test_contiguous_on_contiguous_elided(self):
        x = nn.tensor(np.ones((4, 4)))
        assert x.contiguous() is x
        y = x * 2.0
        assert y.contiguous() is y  # unrealized: realization makes it contiguous
        assert lazy.graph_stats()["buffers_elided"] == 2

    def test_non_identity_movement_still_works(self):
        xv = np.arange(6.0).reshape(2, 3)
        y = (nn.tensor(xv) + 1.0).reshape(3, 2).transpose(1, 0)
        np.testing.assert_array_equal(y.numpy(), (xv + 1.0).reshape(3, 2).T)

    def test_squeeze_unsqueeze_stay_lazy(self):
        x = nn.tensor(np.ones((2, 1, 3)))
        y = (x * 2.0).squeeze(1).unsqueeze(0)
        assert y.shape == (1, 2, 3)
        assert not y.is_realized
        np.testing.assert_array_equal(y.numpy(), np.full((1, 2, 3), 2.0))


class TestClone:
    def test_clone_of_lazy_tensor_does_not_realize_source(self):
        x = nn.tensor(np.ones(8))
        y = x * 2.0
        c = y.clone()
        assert not y.is_realized
        assert not c.is_realized
        np.testing.assert_array_equal(c.numpy(), np.full(8, 2.0))

    def test_clone_is_a_copy(self):
        x = nn.tensor([1.0, 2.0])
        c = x.clone()
        c.realize()
        c.data[0] = 99.0
        assert x.data[0] == 1.0

    def test_clone_grad_flows(self):
        x = nn.tensor([1.0, 2.0], requires_grad=True)
        (x.clone() * 3.0).sum().backward()
        np.testing.assert_array_equal(x.grad, [3.0, 3.0])


class TestEscapeHatch:
    def test_env_parsing(self):
        assert lazy._env_enabled(None)
        assert lazy._env_enabled("1")
        assert lazy._env_enabled("yes")
        for off in ("0", "false", "False", "off", "OFF", "no", " 0 "):
            assert not lazy._env_enabled(off)

    def test_lazy_off_is_fully_eager(self):
        with lazy.lazy_mode(False):
            y = nn.tensor([1.0, 2.0]) * 2.0 + 1.0
            assert y.is_realized
        assert lazy.graph_stats()["ops_recorded"] == 0

    def test_lazy_off_no_elision_identity(self):
        with lazy.lazy_mode(False):
            x = nn.tensor(np.ones((2, 3)))
            r = x.reshape(2, 3)
            assert isinstance(r, Tensor)
            np.testing.assert_array_equal(r.numpy(), x.numpy())
        assert lazy.graph_stats()["buffers_elided"] == 0

    def test_parity_lazy_on_vs_off(self):
        rng = np.random.default_rng(7)
        xv = rng.normal(size=(10, 5))
        on = _chain(nn.tensor(xv), nn.tensor(xv[0])).numpy()
        with lazy.lazy_mode(False):
            off = _chain(nn.tensor(xv), nn.tensor(xv[0])).numpy()
        np.testing.assert_array_equal(on, off)


class TestModuleIntegration:
    def test_no_grad_mlp_forward_matches_eager(self):
        from repro.ppl.rng import set_rng_seed

        def forward(xv):
            set_rng_seed(0)
            net = nn.Sequential(nn.Linear(4, 8), nn.Tanh(), nn.Linear(8, 1))
            with nn.no_grad():
                return net(nn.tensor(xv)).numpy()

        xv = np.random.default_rng(3).normal(size=(16, 4))
        out_lazy = forward(xv)
        with lazy.lazy_mode(False):
            out_eager = forward(xv)
        np.testing.assert_array_equal(out_lazy, out_eager)

    def test_training_step_matches_eager(self):
        from repro.ppl.rng import set_rng_seed

        def step(xv, tv):
            set_rng_seed(1)
            net = nn.Linear(3, 1)
            opt = nn.SGD(net.parameters(), lr=0.1)
            for _ in range(3):
                opt.zero_grad()
                loss = ((net(nn.tensor(xv)) - nn.tensor(tv)) ** 2).sum()
                loss.backward()
                opt.step()
            return [p.numpy().copy() for p in net.parameters()]

        rng = np.random.default_rng(5)
        xv, tv = rng.normal(size=(8, 3)), rng.normal(size=(8, 1))
        params_lazy = step(xv, tv)
        with lazy.lazy_mode(False):
            params_eager = step(xv, tv)
        for a, b in zip(params_lazy, params_eager):
            np.testing.assert_array_equal(a, b)
