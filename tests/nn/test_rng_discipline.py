"""set_rng_seed must govern every stochastic fallback in ``repro.nn``.

Regression tests for the R001 lint findings: before this change,
``nn.randn``/``nn.rand``, dropout, parameter init and the data utilities fell
back to a bare ``np.random.default_rng()`` (fresh OS entropy per call), so
two identically-seeded runs that omitted ``rng=`` were not reproducible.
"""

import numpy as np

import repro.nn as nn
import repro.ppl as ppl
from repro.nn import functional as F


def _twice(fn):
    ppl.set_rng_seed(123)
    first = fn()
    ppl.set_rng_seed(123)
    second = fn()
    return first, second


class TestSeededFallbacks:
    def test_randn_and_rand_are_seed_deterministic(self):
        a, b = _twice(lambda: (nn.randn(4, 3).data, nn.rand(5).data))
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_dropout_mask_is_seed_deterministic(self):
        x = nn.Tensor(np.ones((8, 8)))
        a, b = _twice(lambda: F.dropout(x, p=0.5, training=True).data)
        np.testing.assert_array_equal(a, b)
        assert (a == 0).any()  # the mask actually dropped something

    def test_init_is_seed_deterministic(self):
        def build():
            t = nn.Tensor(np.empty((6, 4)))
            nn.init.normal_(t)
            return t.data.copy()

        a, b = _twice(build)
        np.testing.assert_array_equal(a, b)

    def test_linear_layer_construction_is_seed_deterministic(self):
        a, b = _twice(lambda: nn.Linear(7, 3).weight.data.copy())
        np.testing.assert_array_equal(a, b)

    def test_dataloader_shuffle_is_seed_deterministic(self):
        ds = nn.TensorDataset(np.arange(32, dtype=np.float64), np.arange(32))

        def batches():
            loader = nn.DataLoader(ds, batch_size=8, shuffle=True)
            return [x.data.copy() for x, _ in loader]

        a, b = _twice(batches)
        for x1, x2 in zip(a, b):
            np.testing.assert_array_equal(x1, x2)

    def test_dataloader_reseeding_after_construction_governs_shuffle(self):
        # the generator is resolved per-iteration, not captured at __init__
        ds = nn.TensorDataset(np.arange(16, dtype=np.float64), np.arange(16))
        loader = nn.DataLoader(ds, batch_size=16, shuffle=True)
        ppl.set_rng_seed(9)
        first = next(iter(loader))[0].data.copy()
        ppl.set_rng_seed(9)
        second = next(iter(loader))[0].data.copy()
        np.testing.assert_array_equal(first, second)

    def test_random_split_is_seed_deterministic(self):
        ds = nn.TensorDataset(np.arange(20, dtype=np.float64), np.arange(20))

        def split_indices():
            subsets = nn.random_split(ds, [12, 8])
            return [np.asarray(s.indices).copy() for s in subsets]

        a, b = _twice(split_indices)
        for s1, s2 in zip(a, b):
            np.testing.assert_array_equal(s1, s2)

    def test_explicit_rng_still_wins(self):
        ppl.set_rng_seed(0)
        explicit = nn.randn(3, rng=np.random.default_rng(42)).data
        np.testing.assert_array_equal(
            explicit, np.random.default_rng(42).standard_normal(3))
