"""Unit tests for datasets and data loaders."""

import numpy as np
import pytest

from repro import nn


class TestTensorDataset:
    def test_length_and_items(self, rng):
        x, y = rng.standard_normal((10, 3)), rng.integers(0, 2, 10)
        ds = nn.TensorDataset(x, y)
        assert len(ds) == 10
        xi, yi = ds[3]
        np.testing.assert_allclose(xi, x[3])
        assert yi == y[3]

    def test_mismatched_lengths_raise(self, rng):
        with pytest.raises(ValueError):
            nn.TensorDataset(rng.standard_normal((10, 3)), rng.standard_normal(9))

    def test_accepts_tensors(self, rng):
        ds = nn.TensorDataset(nn.Tensor(rng.standard_normal((5, 2))))
        assert len(ds) == 5


class TestSubsetAndSplit:
    def test_subset_indexing(self, rng):
        ds = nn.TensorDataset(np.arange(10))
        sub = nn.Subset(ds, [2, 4, 6])
        assert len(sub) == 3
        assert sub[1][0] == 4

    def test_random_split_partitions(self, rng):
        ds = nn.TensorDataset(np.arange(10))
        a, b = nn.random_split(ds, [7, 3], rng=rng)
        values = sorted([a[i][0] for i in range(len(a))] + [b[i][0] for i in range(len(b))])
        assert values == list(range(10))

    def test_random_split_wrong_lengths(self):
        with pytest.raises(ValueError):
            nn.random_split(nn.TensorDataset(np.arange(10)), [5, 4])


class TestDataLoader:
    def test_batches_cover_dataset(self, rng):
        x, y = rng.standard_normal((23, 2)), np.arange(23)
        loader = nn.DataLoader(nn.TensorDataset(x, y), batch_size=5)
        seen = []
        for xb, yb in loader:
            assert isinstance(xb, nn.Tensor)
            seen.extend(yb.data.tolist())
        assert sorted(seen) == list(range(23))
        assert len(loader) == 5

    def test_drop_last(self, rng):
        loader = nn.DataLoader(nn.TensorDataset(np.arange(23)), batch_size=5, drop_last=True)
        assert len(loader) == 4
        batches = list(loader)
        assert all(len(b[0]) == 5 for b in batches)

    def test_shuffle_changes_order(self):
        ds = nn.TensorDataset(np.arange(100))
        loader = nn.DataLoader(ds, batch_size=100, shuffle=True, rng=np.random.default_rng(0))
        (batch,) = list(loader)
        assert not np.array_equal(batch[0].data, np.arange(100))
        assert sorted(batch[0].data.tolist()) == list(range(100))

    def test_no_shuffle_preserves_order(self):
        loader = nn.DataLoader(nn.TensorDataset(np.arange(10)), batch_size=4, shuffle=False)
        first = next(iter(loader))
        np.testing.assert_array_equal(first[0].data, [0, 1, 2, 3])

    def test_yields_length_two_tuples_for_supervised_data(self, rng):
        loader = nn.DataLoader(nn.TensorDataset(rng.standard_normal((8, 2)), np.arange(8)),
                               batch_size=4)
        batch = next(iter(loader))
        assert len(batch) == 2
