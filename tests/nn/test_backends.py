"""Backend registry semantics + a conformance suite over every backend.

The conformance tests are parametrized over every *registered* backend name
(``numpy``, ``torch``, ...).  An unavailable optional backend skips with its
:class:`~repro.nn.backends.BackendUnavailable` reason instead of failing, so
the same suite runs everywhere and exercises torch only where it is
installed (the CI ``backend`` job).

Tolerance contract: the ``numpy`` backend must be **bit-identical** to the
plain-numpy expressions its kernels were moved from; accelerated backends
are ``allclose``-checked against the reference.  Autograd on the reference
backend is byte-identity-pinned against hand-written numpy formulas.
"""

import numpy as np
import pytest
from scipy import special

from repro import nn
from repro.nn import backends, functional as F, lazy
from repro.nn.backends import (Backend, BackendUnavailable, available_backends,
                               backend_mode, get_backend, set_backend)
from repro.nn.tensor import Tensor

RTOL, ATOL = 1e-6, 1e-9


@pytest.fixture(params=sorted(backends.backend_names()))
def any_backend(request):
    """Every registered backend, active for the duration of the test."""
    name = request.param
    reason = available_backends()[name]
    if reason is not None:
        pytest.skip(f"backend {name!r} unavailable: {reason}")
    with backend_mode(name):
        yield get_backend()


def _reference():
    """The reference backend instance (not activated)."""
    return backends._instantiate("numpy")


def _check(backend, actual, expected):
    """Bit-identity on the reference backend, allclose on accelerated ones."""
    actual = np.asarray(actual)
    expected = np.asarray(expected)
    assert actual.shape == expected.shape
    if backend.name == "numpy":
        assert actual.dtype == expected.dtype
        np.testing.assert_array_equal(actual, expected)
    else:
        np.testing.assert_allclose(actual, expected, rtol=RTOL, atol=ATOL)


# ----------------------------------------------------------------- registry
class TestRegistry:
    def test_default_backend_is_numpy(self):
        backends.reset_backend()
        try:
            assert get_backend().name == "numpy"
        finally:
            backends.reset_backend()

    def test_both_builtin_backends_registered(self):
        assert set(backends.backend_names()) >= {"numpy", "torch"}

    def test_unknown_backend_raises_with_known_names(self):
        with pytest.raises(ValueError, match="numpy"):
            set_backend("definitely-not-a-backend")
        assert get_backend().name  # the active selection survived the error

    def test_unavailable_backend_carries_reason(self):
        reasons = available_backends()
        assert reasons["numpy"] is None
        if reasons["torch"] is not None:
            with pytest.raises(BackendUnavailable, match="torch"):
                set_backend("torch")

    def test_env_var_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        backends.reset_backend()
        try:
            assert get_backend().name == "numpy"
            monkeypatch.setenv("REPRO_BACKEND", "no-such-backend")
            backends.reset_backend()
            with pytest.raises(ValueError, match="no-such-backend"):
                get_backend()
        finally:
            monkeypatch.delenv("REPRO_BACKEND")
            backends.reset_backend()

    def test_backend_mode_restores_previous(self):
        before = get_backend()
        with backend_mode("numpy") as active:
            assert active.name == "numpy"
        assert get_backend() is before

    def test_incomplete_backend_rejected_on_activation(self):
        class Hollow(Backend):
            name = "hollow"
            elementwise = {"add": lambda srcs, params, out=None: srcs[0]}

        backends.register_backend("hollow", Hollow)
        try:
            with pytest.raises(ValueError, match="missing elementwise"):
                set_backend("hollow")
        finally:
            backends._FACTORIES.pop("hollow", None)
            backends._INSTANCES.pop("hollow", None)
            backends.reset_backend()

    def test_graph_stats_reports_active_backend(self):
        assert lazy.graph_stats()["backend"] == get_backend().name


# ------------------------------------------------------- elementwise kernels
#: op id -> (input builder, plain-numpy expectation) — the expectation is the
#: literal pre-backend kernel expression, making numpy bit-identity explicit
def _x(rng):
    return rng.normal(size=(3, 4))


def _pos(rng):
    return np.abs(rng.normal(size=(3, 4))) + 0.5


ELEMENTWISE_CASES = {
    "add": (lambda rng: [_x(rng), _x(rng)], lambda a, b: np.add(a, b)),
    "sub": (lambda rng: [_x(rng), _x(rng)], lambda a, b: np.subtract(a, b)),
    "mul": (lambda rng: [_x(rng), _x(rng)], lambda a, b: np.multiply(a, b)),
    "div": (lambda rng: [_x(rng), _pos(rng)], lambda a, b: np.true_divide(a, b)),
    "neg": (lambda rng: [_x(rng)], lambda a: np.negative(a)),
    "abs": (lambda rng: [_x(rng)], lambda a: np.absolute(a)),
    "exp": (lambda rng: [_x(rng)], lambda a: np.exp(a)),
    "log": (lambda rng: [_pos(rng)], lambda a: np.log(a)),
    "log1p": (lambda rng: [_pos(rng)], lambda a: np.log1p(a)),
    "sqrt": (lambda rng: [_pos(rng)], lambda a: np.sqrt(a)),
    "tanh": (lambda rng: [_x(rng)], lambda a: np.tanh(a)),
    "sin": (lambda rng: [_x(rng)], lambda a: np.sin(a)),
    "cos": (lambda rng: [_x(rng)], lambda a: np.cos(a)),
    "erf": (lambda rng: [_x(rng)], lambda a: special.erf(a)),
    "sigmoid": (lambda rng: [_x(rng)], lambda a: special.expit(a)),
    "softplus": (lambda rng: [_x(rng)], lambda a: np.logaddexp(0.0, a)),
    "relu": (lambda rng: [_x(rng)], lambda a: np.maximum(a, 0.0)),
    "pow": (lambda rng: [_pos(rng)], None),    # params-taking ops below
    "clamp": (lambda rng: [_x(rng)], None),
    "clone": (lambda rng: [_x(rng)], lambda a: a.copy()),
}

_PARAMS = {"pow": {"exponent": 2.5}, "clamp": {"min": -0.5, "max": 0.5}}
_PARAM_EXPECT = {"pow": lambda a: np.power(a, 2.5),
                 "clamp": lambda a: np.clip(a, -0.5, 0.5)}


class TestElementwiseConformance:
    def test_table_mirrors_elementwise_ops(self, any_backend):
        assert set(any_backend.elementwise) >= set(lazy.ELEMENTWISE_OPS)

    def test_cases_cover_the_whole_table(self):
        assert set(ELEMENTWISE_CASES) == set(lazy.ELEMENTWISE_OPS)

    @pytest.mark.parametrize("op", sorted(ELEMENTWISE_CASES))
    def test_kernel_matches_reference(self, any_backend, op, rng):
        build, expect = ELEMENTWISE_CASES[op]
        srcs = build(rng)
        params = _PARAMS.get(op, {})
        expected = (_PARAM_EXPECT[op] if expect is None else expect)(*srcs)
        actual = any_backend.elementwise[op](srcs, params)
        _check(any_backend, actual, expected)

    @pytest.mark.parametrize("op", sorted(ELEMENTWISE_CASES))
    def test_out_contract_writes_in_place(self, any_backend, op, rng):
        """The fusion pass hands kernels a dead buffer; they must fill it."""
        build, expect = ELEMENTWISE_CASES[op]
        srcs = build(rng)
        params = _PARAMS.get(op, {})
        expected = (_PARAM_EXPECT[op] if expect is None else expect)(*srcs)
        out = np.empty(expected.shape, dtype=expected.dtype)
        result = any_backend.elementwise[op](srcs, params, out=out)
        assert result is out
        _check(any_backend, out, expected)


# ----------------------------------------------------------- kernel entries
class TestKernelConformance:
    def test_matmul_2d_and_batched(self, any_backend, rng):
        a2, b2 = rng.normal(size=(5, 7)), rng.normal(size=(7, 3))
        _check(any_backend, any_backend.matmul(a2, b2), a2 @ b2)
        ab, bb = rng.normal(size=(4, 5, 7)), rng.normal(size=(7, 3))
        _check(any_backend, any_backend.matmul(ab, bb), ab @ bb)

    def test_matmul_vector_contraction(self, any_backend, rng):
        va, vb = rng.normal(size=9), rng.normal(size=9)
        _check(any_backend, any_backend.matmul(va, vb), va @ vb)

    def test_im2col_and_col2im(self, any_backend, rng):
        x = rng.normal(size=(2, 3, 6, 6))
        ref = _reference()
        for kh, kw, stride in [(3, 3, 1), (2, 2, 2)]:
            cols, out_h, out_w = any_backend.im2col(x, kh, kw, stride)
            ref_cols, ref_h, ref_w = ref.im2col(x, kh, kw, stride)
            assert (out_h, out_w) == (ref_h, ref_w)
            _check(any_backend, cols, ref_cols)
            grad = rng.normal(size=ref_cols.shape)
            _check(any_backend, any_backend.col2im(grad, x.shape, kh, kw, stride),
                   ref.col2im(grad, x.shape, kh, kw, stride))

    def test_max_pool2d_values_and_window_indices(self, any_backend, rng):
        x = rng.normal(size=(2, 3, 6, 6))
        for kernel, stride in [(2, 2), (3, 1)]:
            pooled, idx = any_backend.max_pool2d(x, kernel, stride)
            ref_pooled, ref_idx = _reference().max_pool2d(x, kernel, stride)
            _check(any_backend, pooled, ref_pooled)
            # the within-window argmax convention is part of the contract:
            # random floats make ties (the only legal divergence) improbable
            np.testing.assert_array_equal(idx, ref_idx)
            assert idx.min() >= 0 and idx.max() < kernel * kernel

    def test_avg_pool2d(self, any_backend, rng):
        x = rng.normal(size=(2, 3, 6, 6))
        _check(any_backend, any_backend.avg_pool2d(x, 2, 2),
               _reference().avg_pool2d(x, 2, 2))

    @pytest.mark.parametrize("axis,keepdims", [
        (None, False), (None, True), (0, False), (1, True), ((0, 2), False),
    ])
    def test_reductions(self, any_backend, rng, axis, keepdims):
        x = rng.normal(size=(3, 4, 5))
        _check(any_backend, any_backend.sum(x, axis=axis, keepdims=keepdims),
               np.sum(x, axis=axis, keepdims=keepdims))
        _check(any_backend, any_backend.mean(x, axis=axis, keepdims=keepdims),
               np.mean(x, axis=axis, keepdims=keepdims))
        if not isinstance(axis, tuple):
            _check(any_backend, any_backend.max(x, axis=axis, keepdims=keepdims),
                   np.max(x, axis=axis, keepdims=keepdims))

    def test_cumsum(self, any_backend, rng):
        x = rng.normal(size=(3, 4, 5))
        for axis in range(x.ndim):
            _check(any_backend, any_backend.cumsum(x, axis),
                   np.cumsum(x, axis=axis))

    def test_integer_sum_keeps_integer_dtype(self, any_backend):
        x = np.arange(12, dtype=np.int64).reshape(3, 4)
        result = any_backend.sum(x, axis=0)
        assert result.dtype == np.int64
        np.testing.assert_array_equal(result, x.sum(axis=0))


# -------------------------------------------------- tensor-layer integration
class TestTensorIntegration:
    def test_full_forward_chain_matches_reference(self, any_backend, rng):
        """A realistic matmul+elementwise+reduction chain through Tensor."""
        a = rng.normal(size=(8, 16))
        b = rng.normal(size=(16, 4))

        def run():
            z = nn.tensor(a) @ nn.tensor(b)
            return (((z * 0.5).tanh() + 1.0).exp().sum()).item()

        actual = run()
        with backend_mode("numpy"):
            expected = run()
        if any_backend.name == "numpy":
            assert actual == expected
        else:
            assert actual == pytest.approx(expected, rel=1e-9)

    def test_conv_and_pool_forward(self, any_backend, rng):
        x = Tensor(rng.normal(size=(2, 3, 8, 8)))
        w = Tensor(rng.normal(size=(4, 3, 3, 3)))
        bias = Tensor(rng.normal(size=4))
        out = F.max_pool2d(F.conv2d(x, w, bias, stride=1), 2)
        with backend_mode("numpy"):
            expected = F.max_pool2d(F.conv2d(x, w, bias, stride=1), 2)
        _check(any_backend, out.numpy(), expected.numpy())

    def test_lazy_and_eager_agree_per_backend(self, any_backend, rng):
        """The fusion scheduler and compute_eager run the same kernels."""
        data = rng.normal(size=257)
        x = nn.tensor(data)
        with lazy.lazy_mode(True):
            fused = ((x * 1.5).relu() + 0.25).sqrt().numpy()
        with lazy.lazy_mode(False):
            eager = ((x * 1.5).relu() + 0.25).sqrt().numpy()
        np.testing.assert_array_equal(fused, eager)


# ------------------------------------------- autograd byte-identity (reference)
class TestReferenceAutogradByteIdentity:
    """Gradients on the reference backend are pinned to raw numpy formulas."""

    def test_sin_cos_erf_softplus_grads(self, rng):
        from scipy import special

        xv = rng.normal(size=(3, 4))
        with backend_mode("numpy"):
            for fn, expected in [
                (lambda t: t.sin(), np.cos(xv)),
                (lambda t: t.cos(), -np.sin(xv)),
                (lambda t: t.erf(),
                 2.0 / np.sqrt(np.pi) * np.exp(-xv ** 2)),
                (lambda t: t.softplus(), special.expit(xv)),
            ]:
                x = Tensor(xv.copy(), requires_grad=True)
                fn(x).sum().backward()
                np.testing.assert_array_equal(x.grad, expected)

    def test_cumsum_grad_is_reversed_scan(self, rng):
        xv = rng.normal(size=(4, 5))
        with backend_mode("numpy"):
            x = Tensor(xv.copy(), requires_grad=True)
            (x.cumsum(axis=1) * 2.0).sum().backward()
            g = 2.0 * np.ones_like(xv)
            expected = np.flip(np.cumsum(np.flip(g, axis=1), axis=1), axis=1)
            np.testing.assert_array_equal(x.grad, expected)

    def test_matmul_grads(self, rng):
        av, bv = rng.normal(size=(3, 4)), rng.normal(size=(4, 2))
        with backend_mode("numpy"):
            a = Tensor(av.copy(), requires_grad=True)
            b = Tensor(bv.copy(), requires_grad=True)
            (a @ b).sum().backward()
            g = np.ones((3, 2))
            np.testing.assert_array_equal(a.grad, g @ bv.T)
            np.testing.assert_array_equal(b.grad, av.T @ g)

    def test_adam_step_matches_raw_formula(self, rng):
        from repro.nn.optim import Adam

        pv = rng.normal(size=(5,))
        gv = rng.normal(size=(5,))
        with backend_mode("numpy"):
            p = Tensor(pv.copy(), requires_grad=True)
            p.grad = gv.copy()
            Adam([p], lr=0.1).step()
            # (1 - 0.9) etc., not 0.1: the literals differ in the last ulp
            m = (1 - 0.9) * gv
            v = (1 - 0.999) * gv ** 2
            step = 0.1 * np.sqrt(1 - 0.999) / (1 - 0.9)
            expected = pv - step * m / (np.sqrt(v) + 1e-8)
            np.testing.assert_array_equal(p.data, expected)


# ---------------------------------------------------------- config plumbing
class TestConfigPlumbing:
    def test_seed_all_applies_and_resets_backend(self):
        from repro.experiments.api.base import BaseExperimentConfig

        BaseExperimentConfig(backend="numpy").seed_all()
        assert get_backend().name == "numpy"
        # backend=None resets so REPRO_BACKEND/default re-resolve per cell
        BaseExperimentConfig().seed_all()
        assert backends._ACTIVE is None
        assert get_backend().name == "numpy"

    def test_seed_all_rejects_unknown_backend(self):
        from repro.experiments.api.base import BaseExperimentConfig

        with pytest.raises(ValueError, match="unknown backend"):
            BaseExperimentConfig(backend="nope").seed_all()

    def test_cli_override_coercion(self):
        from repro.experiments.api.base import BaseExperimentConfig

        config = BaseExperimentConfig().with_overrides({"backend": "torch"})
        assert config.backend == "torch"
        assert BaseExperimentConfig().with_overrides(
            {"backend": "none"}).backend is None
