"""Unit tests for functional neural-network operations."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.tensor import Tensor


class TestLinear:
    def test_matches_manual_computation(self, rng):
        x, w, b = rng.standard_normal((4, 3)), rng.standard_normal((5, 3)), rng.standard_normal(5)
        out = F.linear(Tensor(x), Tensor(w), Tensor(b))
        np.testing.assert_allclose(out.data, x @ w.T + b, rtol=1e-12)

    def test_no_bias(self, rng):
        x, w = rng.standard_normal((4, 3)), rng.standard_normal((5, 3))
        np.testing.assert_allclose(F.linear(Tensor(x), Tensor(w)).data, x @ w.T)

    def test_gradcheck_weight(self, grad_check, rng):
        x = rng.standard_normal((3, 4))
        grad_check(lambda w: (F.linear(Tensor(x), w) ** 2).sum(), rng.standard_normal((2, 4)),
                   atol=1e-4)

    def test_effect_handler_interception(self, rng):
        class Doubler:
            def process_linear_op(self, op, x, weight, bias, default_fn, **kwargs):
                return default_fn(x, weight, bias, **kwargs) * 2.0

        x, w = Tensor(rng.standard_normal((2, 3))), Tensor(rng.standard_normal((4, 3)))
        plain = F.linear(x, w)
        handler = Doubler()
        F.register_linear_op_handler(handler)
        try:
            doubled = F.linear(x, w)
        finally:
            F.unregister_linear_op_handler(handler)
        np.testing.assert_allclose(doubled.data, 2 * plain.data)
        assert not F.active_linear_op_handlers()

    def test_handler_returning_none_falls_through(self, rng):
        class Passive:
            def process_linear_op(self, *args, **kwargs):
                return None

        x, w = Tensor(rng.standard_normal((2, 3))), Tensor(rng.standard_normal((4, 3)))
        handler = Passive()
        F.register_linear_op_handler(handler)
        try:
            out = F.linear(x, w)
        finally:
            F.unregister_linear_op_handler(handler)
        np.testing.assert_allclose(out.data, x.data @ w.data.T)


class TestConv2d:
    def test_output_shape(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 8, 8)))
        w = Tensor(rng.standard_normal((5, 3, 3, 3)))
        assert F.conv2d(x, w, stride=1, padding=1).shape == (2, 5, 8, 8)
        assert F.conv2d(x, w, stride=2, padding=1).shape == (2, 5, 4, 4)
        assert F.conv2d(x, w, stride=1, padding=0).shape == (2, 5, 6, 6)

    def test_matches_naive_convolution(self, rng):
        x = rng.standard_normal((1, 2, 5, 5))
        w = rng.standard_normal((3, 2, 3, 3))
        b = rng.standard_normal(3)
        out = F.conv2d(Tensor(x), Tensor(w), Tensor(b), stride=1, padding=0).data
        # naive reference
        expected = np.zeros((1, 3, 3, 3))
        for oc in range(3):
            for i in range(3):
                for j in range(3):
                    patch = x[0, :, i:i + 3, j:j + 3]
                    expected[0, oc, i, j] = (patch * w[oc]).sum() + b[oc]
        np.testing.assert_allclose(out, expected, rtol=1e-10)

    def test_input_gradcheck(self, grad_check, rng):
        w = rng.standard_normal((2, 2, 3, 3))
        grad_check(lambda x: (F.conv2d(x, Tensor(w), stride=2, padding=1) ** 2).sum(),
                   rng.standard_normal((1, 2, 5, 5)), atol=1e-4)

    def test_weight_and_bias_gradients_populated(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 6, 6)))
        w = Tensor(rng.standard_normal((4, 3, 3, 3)), requires_grad=True)
        b = Tensor(rng.standard_normal(4), requires_grad=True)
        F.conv2d(x, w, b, padding=1).sum().backward()
        assert w.grad.shape == w.shape
        assert b.grad.shape == b.shape


class TestPooling:
    def test_max_pool_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = F.max_pool2d(x, 2, 2)
        np.testing.assert_allclose(out.data[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_max_pool_gradcheck(self, grad_check, rng):
        grad_check(lambda x: (F.max_pool2d(x, 2, 2) ** 2).sum(),
                   rng.standard_normal((2, 2, 4, 4)), atol=1e-4)

    def test_avg_pool_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = F.avg_pool2d(x, 2, 2)
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_overlapping_stride(self, rng):
        x = rng.standard_normal((2, 3, 6, 6))
        out = F.avg_pool2d(Tensor(x), 3, 1)
        expected = np.zeros((2, 3, 4, 4))
        for i in range(4):
            for j in range(4):
                expected[:, :, i, j] = x[:, :, i:i + 3, j:j + 3].mean(axis=(-2, -1))
        np.testing.assert_allclose(out.data, expected, atol=1e-12)

    def test_avg_pool_gradcheck(self, grad_check, rng):
        grad_check(lambda x: (F.avg_pool2d(x, 2, 2) ** 2).sum(),
                   rng.standard_normal((2, 2, 4, 4)), atol=1e-4)

    def test_avg_pool_overlapping_gradcheck(self, grad_check, rng):
        grad_check(lambda x: (F.avg_pool2d(x, 2, 1) ** 2).sum(),
                   rng.standard_normal((1, 2, 4, 4)), atol=1e-4)

    def test_avg_pool_folds_leading_sample_dims(self, rng):
        x = rng.standard_normal((3, 2, 2, 6, 6))
        pooled = F.avg_pool2d(Tensor(x), 2)
        assert pooled.shape == (3, 2, 2, 3, 3)
        for s in range(3):
            np.testing.assert_allclose(pooled.data[s], F.avg_pool2d(Tensor(x[s]), 2).data,
                                       atol=1e-12)

    def test_adaptive_avg_pool_global(self, rng):
        x = rng.standard_normal((2, 3, 5, 5))
        out = F.adaptive_avg_pool2d(Tensor(x), 1)
        np.testing.assert_allclose(out.data, x.mean(axis=(2, 3), keepdims=True))

    def test_adaptive_avg_pool_rejects_other_sizes(self, rng):
        with pytest.raises(NotImplementedError):
            F.adaptive_avg_pool2d(Tensor(rng.standard_normal((1, 1, 4, 4))), 2)


class TestBatchNormAndDropout:
    def test_batch_norm_normalizes_in_training(self, rng):
        x = Tensor(rng.standard_normal((16, 4, 3, 3)) * 3 + 2)
        running_mean, running_var = np.zeros(4), np.ones(4)
        out = F.batch_norm(x, running_mean, running_var, None, None, training=True)
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.data.std(axis=(0, 2, 3)), 1.0, atol=1e-2)

    def test_batch_norm_updates_running_stats(self, rng):
        x = Tensor(rng.standard_normal((16, 4, 3, 3)) + 5.0)
        running_mean, running_var = np.zeros(4), np.ones(4)
        F.batch_norm(x, running_mean, running_var, None, None, training=True, momentum=0.5)
        assert np.all(running_mean > 1.0)

    def test_batch_norm_eval_uses_running_stats(self, rng):
        x = Tensor(rng.standard_normal((8, 2, 3, 3)))
        running_mean, running_var = np.full(2, 1.0), np.full(2, 4.0)
        out = F.batch_norm(x, running_mean, running_var, None, None, training=False)
        np.testing.assert_allclose(out.data, (x.data - 1.0) / np.sqrt(4.0 + 1e-5), rtol=1e-6)

    def test_batch_norm_2d_input(self, rng):
        x = Tensor(rng.standard_normal((10, 4)))
        out = F.batch_norm(x, np.zeros(4), np.ones(4), None, None, training=True)
        assert out.shape == (10, 4)

    def test_batch_norm_rejects_out_of_range_rank(self, rng):
        with pytest.raises(ValueError):
            F.batch_norm(Tensor(rng.standard_normal(4)), np.zeros(4), np.ones(4),
                         None, None, training=True)
        with pytest.raises(ValueError):
            F.batch_norm(Tensor(rng.standard_normal((2, 2, 3, 4, 3, 3))), np.zeros(3),
                         np.ones(3), None, None, training=True)

    def test_batch_norm_vectorized_matches_per_sample_loop(self, rng):
        # a leading sample dim normalizes per sample AND applies the same
        # sequential running-buffer updates the looped path would
        x = rng.standard_normal((3, 6, 4, 2, 2)) + 2.0
        rm_vec, rv_vec = np.zeros(4), np.ones(4)
        out = F.batch_norm(Tensor(x), rm_vec, rv_vec, None, None, training=True,
                           momentum=0.1)
        rm_loop, rv_loop = np.zeros(4), np.ones(4)
        loops = [F.batch_norm(Tensor(x[s]), rm_loop, rv_loop, None, None, training=True,
                              momentum=0.1).data for s in range(3)]
        np.testing.assert_allclose(out.data, np.stack(loops), atol=1e-12)
        np.testing.assert_allclose(rm_vec, rm_loop, atol=1e-12)
        np.testing.assert_allclose(rv_vec, rv_loop, atol=1e-12)

    def test_dropout_eval_is_identity(self, rng):
        x = Tensor(rng.standard_normal((5, 5)))
        out = F.dropout(x, p=0.5, training=False)
        np.testing.assert_allclose(out.data, x.data)

    def test_dropout_training_scales_survivors(self, rng):
        x = Tensor(np.ones((1000,)))
        out = F.dropout(x, p=0.5, training=True, rng=np.random.default_rng(0))
        survivors = out.data[out.data > 0]
        np.testing.assert_allclose(survivors, 2.0)
        assert 0.3 < (out.data > 0).mean() < 0.7


class TestSoftmaxAndLosses:
    def test_softmax_sums_to_one(self, rng):
        out = F.softmax(Tensor(rng.standard_normal((3, 5))))
        np.testing.assert_allclose(out.data.sum(axis=-1), 1.0, rtol=1e-10)

    def test_log_softmax_consistency(self, rng):
        x = Tensor(rng.standard_normal((3, 5)))
        np.testing.assert_allclose(F.log_softmax(x).data, np.log(F.softmax(x).data), rtol=1e-8)

    def test_softmax_stable_with_large_logits(self):
        out = F.softmax(Tensor(np.array([[1000.0, 1000.0]])))
        np.testing.assert_allclose(out.data, [[0.5, 0.5]])

    def test_cross_entropy_matches_manual(self, rng):
        logits = rng.standard_normal((4, 3))
        labels = np.array([0, 1, 2, 1])
        loss = F.cross_entropy(Tensor(logits), labels)
        log_probs = logits - np.log(np.exp(logits).sum(-1, keepdims=True))
        expected = -log_probs[np.arange(4), labels].mean()
        assert loss.item() == pytest.approx(expected, rel=1e-8)

    def test_cross_entropy_reductions(self, rng):
        logits = Tensor(rng.standard_normal((4, 3)))
        labels = np.array([0, 1, 2, 1])
        total = F.cross_entropy(logits, labels, reduction="sum").item()
        mean = F.cross_entropy(logits, labels, reduction="mean").item()
        assert total == pytest.approx(4 * mean, rel=1e-8)
        assert F.cross_entropy(logits, labels, reduction="none").shape == (4,)

    def test_cross_entropy_gradcheck(self, grad_check, rng):
        labels = np.array([0, 2, 1])
        grad_check(lambda t: F.cross_entropy(t, labels), rng.standard_normal((3, 4)), atol=1e-4)

    def test_mse_loss(self, rng):
        pred, target = rng.standard_normal((3, 2)), rng.standard_normal((3, 2))
        assert F.mse_loss(Tensor(pred), target).item() == pytest.approx(((pred - target) ** 2).mean())
        assert F.mse_loss(Tensor(pred), target, reduction="sum").item() == pytest.approx(
            ((pred - target) ** 2).sum())

    def test_bce_with_logits_matches_reference(self, rng):
        logits = rng.standard_normal(20)
        targets = (rng.random(20) > 0.5).astype(float)
        loss = F.binary_cross_entropy_with_logits(Tensor(logits), targets).item()
        p = 1 / (1 + np.exp(-logits))
        expected = -(targets * np.log(p) + (1 - targets) * np.log(1 - p)).mean()
        assert loss == pytest.approx(expected, rel=1e-6)

    def test_one_hot(self):
        oh = F.one_hot(np.array([0, 2]), 3)
        np.testing.assert_allclose(oh, [[1, 0, 0], [0, 0, 1]])

    def test_nll_loss(self, rng):
        log_probs = F.log_softmax(Tensor(rng.standard_normal((5, 4))))
        labels = np.array([0, 1, 2, 3, 0])
        assert F.nll_loss(log_probs, labels).item() > 0
