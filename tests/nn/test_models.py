"""Unit tests for the model zoo."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.models import (BasicBlock, ConvBlock, make_mlp, make_resnet, regression_net,
                             resnet8, small_convnet, vcl_cifar_net, vcl_mnist_net)
from repro.nn.tensor import Tensor


class TestMLPs:
    def test_make_mlp_structure(self, rng):
        net = make_mlp(4, [8, 8], 2, activation="relu", rng=rng)
        assert net(Tensor(rng.standard_normal((3, 4)))).shape == (3, 2)
        assert len([p for p in net.parameters()]) == 6

    def test_regression_net_is_paper_architecture(self, rng):
        net = regression_net(50, rng=rng)
        names = [n for n, _ in net.named_parameters()]
        assert names == ["0.weight", "0.bias", "2.weight", "2.bias"]
        assert net(Tensor(rng.standard_normal((5, 1)))).shape == (5, 1)

    def test_vcl_mnist_net(self, rng):
        net = vcl_mnist_net(64, 200, 10, rng=rng)
        assert net(Tensor(rng.standard_normal((2, 64)))).shape == (2, 10)

    def test_unknown_activation_raises(self):
        with pytest.raises(ValueError):
            make_mlp(2, [4], 1, activation="swish")


class TestConvNets:
    def test_conv_block_halves_resolution(self, rng):
        block = ConvBlock(3, 8, rng=rng)
        assert block(Tensor(rng.standard_normal((2, 3, 8, 8)))).shape == (2, 8, 4, 4)

    def test_vcl_cifar_net_forward(self, rng):
        net = vcl_cifar_net(3, image_size=8, num_classes=10, rng=rng)
        assert net(Tensor(rng.standard_normal((2, 3, 8, 8)))).shape == (2, 10)

    def test_small_convnet_forward_backward(self, rng):
        net = small_convnet(1, image_size=8, num_classes=4, rng=rng)
        logits = net(Tensor(rng.standard_normal((3, 1, 8, 8))))
        F.cross_entropy(logits, np.array([0, 1, 2])).backward()
        assert all(p.grad is not None for p in net.parameters())


class TestResNet:
    def test_resnet8_output_shape(self, rng):
        net = resnet8(num_classes=10, base_width=4, rng=rng)
        assert net(Tensor(rng.standard_normal((2, 3, 8, 8)))).shape == (2, 10)

    def test_make_resnet_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            make_resnet(9)

    def test_deeper_resnet_has_more_blocks(self, rng):
        net8 = make_resnet(8, base_width=4, rng=rng)
        net14 = make_resnet(14, base_width=4, rng=rng)
        assert len(list(net14.named_parameters())) > len(list(net8.named_parameters()))

    def test_basic_block_identity_shortcut(self, rng):
        block = BasicBlock(8, 8, stride=1, rng=rng)
        assert block.downsample is None
        assert block(Tensor(rng.standard_normal((1, 8, 4, 4)))).shape == (1, 8, 4, 4)

    def test_basic_block_projection_shortcut(self, rng):
        block = BasicBlock(4, 8, stride=2, rng=rng)
        assert block.downsample is not None
        assert block(Tensor(rng.standard_normal((1, 4, 8, 8)))).shape == (1, 8, 4, 4)

    def test_resnet_has_batchnorm_and_fc(self, rng):
        net = resnet8(rng=rng)
        module_types = {type(m).__name__ for m in net.modules()}
        assert "BatchNorm2d" in module_types
        assert isinstance(net.fc, nn.Linear)

    def test_resnet_backward_reaches_all_parameters(self, rng):
        net = resnet8(num_classes=5, base_width=4, rng=rng)
        logits = net(Tensor(rng.standard_normal((2, 3, 8, 8))))
        F.cross_entropy(logits, np.array([0, 1])).backward()
        missing = [n for n, p in net.named_parameters() if p.grad is None]
        assert missing == []

    def test_resnet_training_reduces_loss(self, rng):
        net = resnet8(num_classes=3, base_width=4, rng=rng)
        x = Tensor(rng.standard_normal((12, 3, 8, 8)))
        y = np.array([0, 1, 2] * 4)
        opt = nn.Adam(net.parameters(), lr=1e-2)
        losses = []
        for _ in range(10):
            opt.zero_grad()
            loss = F.cross_entropy(net(x), y)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]
