"""Unit tests for the Module system."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Parameter, Tensor


class TestModuleRegistration:
    def test_parameters_registered_via_setattr(self):
        layer = nn.Linear(3, 4)
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}
        assert isinstance(names["weight"], Parameter)

    def test_nested_module_parameter_names(self):
        net = nn.Sequential(nn.Linear(2, 3), nn.Tanh(), nn.Linear(3, 1))
        names = [n for n, _ in net.named_parameters()]
        assert names == ["0.weight", "0.bias", "2.weight", "2.bias"]

    def test_named_modules_includes_self_and_children(self):
        net = nn.Sequential(nn.Linear(2, 2))
        names = [n for n, _ in net.named_modules()]
        assert "" in names and "0" in names

    def test_get_submodule_and_parameter(self):
        net = nn.Sequential(nn.Linear(2, 3))
        assert net.get_submodule("0") is net[0]
        assert net.get_parameter("0.weight") is net[0].weight

    def test_set_parameter_replaces_entry(self):
        net = nn.Sequential(nn.Linear(2, 3))
        replacement = Tensor(np.zeros((3, 2)))
        net.set_parameter("0.weight", replacement)
        assert net.get_parameter("0.weight") is replacement

    def test_missing_attribute_raises(self):
        with pytest.raises(AttributeError):
            nn.Linear(2, 2).nonexistent

    def test_register_buffer(self):
        bn = nn.BatchNorm2d(4)
        buffers = dict(bn.named_buffers())
        assert set(buffers) == {"running_mean", "running_var"}

    def test_bias_false_registers_none(self):
        layer = nn.Linear(3, 4, bias=False)
        assert "bias" not in dict(layer.named_parameters())
        out = layer(Tensor(np.ones((2, 3))))
        assert out.shape == (2, 4)


class TestTrainEvalAndState:
    def test_train_eval_propagates(self):
        net = nn.Sequential(nn.Linear(2, 2), nn.Dropout(0.5))
        net.eval()
        assert not net.training and not net[1].training
        net.train()
        assert net.training and net[1].training

    def test_state_dict_roundtrip(self, rng):
        net1 = nn.Sequential(nn.Linear(3, 4, rng=rng), nn.ReLU(), nn.Linear(4, 2, rng=rng))
        net2 = nn.Sequential(nn.Linear(3, 4, rng=rng), nn.ReLU(), nn.Linear(4, 2, rng=rng))
        net2.load_state_dict(net1.state_dict())
        for (_, p1), (_, p2) in zip(net1.named_parameters(), net2.named_parameters()):
            np.testing.assert_allclose(p1.data, p2.data)

    def test_state_dict_includes_buffers(self):
        bn = nn.BatchNorm2d(2)
        state = bn.state_dict()
        assert "running_mean" in state and "weight" in state

    def test_zero_grad(self, rng):
        net = nn.Linear(3, 2, rng=rng)
        out = net(Tensor(rng.standard_normal((4, 3))))
        out.sum().backward()
        assert net.weight.grad is not None
        net.zero_grad()
        assert net.weight.grad is None

    def test_apply_visits_all_modules(self):
        net = nn.Sequential(nn.Linear(2, 2), nn.Sequential(nn.Linear(2, 2)))
        visited = []
        net.apply(lambda m: visited.append(type(m).__name__))
        assert visited.count("Linear") == 2
        assert "Sequential" in visited


class TestLayers:
    def test_linear_forward_shape(self, rng):
        assert nn.Linear(5, 7, rng=rng)(Tensor(rng.standard_normal((3, 5)))).shape == (3, 7)

    def test_conv_forward_shape(self, rng):
        layer = nn.Conv2d(3, 8, 3, stride=2, padding=1, rng=rng)
        assert layer(Tensor(rng.standard_normal((2, 3, 8, 8)))).shape == (2, 8, 4, 4)

    def test_batchnorm_training_vs_eval(self, rng):
        bn = nn.BatchNorm2d(3)
        x = Tensor(rng.standard_normal((8, 3, 4, 4)) + 3.0)
        out_train = bn(x)
        assert abs(out_train.data.mean()) < 1e-6
        bn.eval()
        out_eval = bn(x)
        # eval output uses running statistics, which only partially absorbed the shift
        assert abs(out_eval.data.mean()) > abs(out_train.data.mean())

    def test_maxpool_avgpool_layers(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 4, 4)))
        assert nn.MaxPool2d(2)(x).shape == (1, 2, 2, 2)
        assert nn.AvgPool2d(2)(x).shape == (1, 2, 2, 2)
        assert nn.AdaptiveAvgPool2d(1)(x).shape == (1, 2, 1, 1)

    def test_flatten_layer(self, rng):
        assert nn.Flatten()(Tensor(rng.standard_normal((2, 3, 4)))).shape == (2, 12)

    def test_activation_layers(self):
        x = Tensor(np.array([-1.0, 1.0]))
        assert nn.ReLU()(x).data.tolist() == [0.0, 1.0]
        np.testing.assert_allclose(nn.Tanh()(x).data, np.tanh(x.data))
        np.testing.assert_allclose(nn.Sigmoid()(x).data, 1 / (1 + np.exp(-x.data)))
        assert nn.Identity()(x) is x
        assert nn.Softplus()(x).data[0] > 0

    def test_dropout_respects_training_flag(self, rng):
        drop = nn.Dropout(0.9)
        x = Tensor(np.ones(100))
        drop.eval()
        np.testing.assert_allclose(drop(x).data, 1.0)

    def test_repr_smoke(self):
        text = repr(nn.Sequential(nn.Linear(2, 2), nn.ReLU()))
        assert "Linear" in text and "ReLU" in text


class TestSequentialAndModuleList:
    def test_sequential_indexing_and_len(self):
        net = nn.Sequential(nn.Linear(2, 3), nn.ReLU(), nn.Linear(3, 1))
        assert len(net) == 3
        assert isinstance(net[1], nn.ReLU)
        assert len(list(iter(net))) == 3

    def test_sequential_append(self):
        net = nn.Sequential(nn.Linear(2, 2))
        net.append(nn.ReLU())
        assert len(net) == 2

    def test_sequential_forward_order(self, rng):
        net = nn.Sequential(nn.Linear(3, 3, rng=rng), nn.ReLU())
        out = net(Tensor(rng.standard_normal((2, 3))))
        assert np.all(out.data >= 0)

    def test_module_list(self, rng):
        heads = nn.ModuleList([nn.Linear(4, 2, rng=rng) for _ in range(3)])
        assert len(heads) == 3
        assert heads[2](Tensor(rng.standard_normal((1, 4)))).shape == (1, 2)
        # parameters of all list entries are registered
        assert len(list(heads.parameters())) == 6
