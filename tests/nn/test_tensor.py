"""Unit tests for the autograd tensor engine."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor, unbroadcast


class TestTensorBasics:
    def test_construction_from_list(self):
        t = nn.tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert not t.requires_grad

    def test_construction_requires_grad_casts_to_float(self):
        t = Tensor(np.array([1, 2, 3]), requires_grad=True)
        assert np.issubdtype(t.dtype, np.floating)

    def test_detach_shares_data_but_no_grad(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        d.data[0] = 5.0
        assert t.data[0] == 5.0

    def test_item_on_scalar(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))

    def test_len_and_size(self):
        t = nn.zeros(4, 5)
        assert len(t) == 4
        assert t.size == 20
        assert t.ndim == 2

    def test_factory_functions(self):
        assert nn.ones(2, 3).data.sum() == 6
        assert nn.zeros((2, 2)).data.sum() == 0
        assert nn.full((2,), 3.0).data.tolist() == [3.0, 3.0]
        assert nn.eye(3).data.trace() == 3
        assert nn.arange(5).shape == (5,)

    def test_zeros_like_ones_like(self):
        t = Tensor(np.arange(6).reshape(2, 3))
        assert nn.zeros_like(t).shape == (2, 3)
        assert nn.ones_like(t).data.sum() == 6


class TestArithmeticBackward:
    def test_add_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])

    def test_mul_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [3.0, 4.0])
        np.testing.assert_allclose(b.grad, [1.0, 2.0])

    def test_sub_and_neg(self):
        a = Tensor([2.0], requires_grad=True)
        b = Tensor([5.0], requires_grad=True)
        (a - b).sum().backward()
        assert a.grad[0] == 1.0
        assert b.grad[0] == -1.0
        c = Tensor([2.0], requires_grad=True)
        (-c).sum().backward()
        assert c.grad[0] == -1.0

    def test_div_backward(self):
        a = Tensor([6.0], requires_grad=True)
        b = Tensor([3.0], requires_grad=True)
        (a / b).sum().backward()
        assert a.grad[0] == pytest.approx(1 / 3)
        assert b.grad[0] == pytest.approx(-6 / 9)

    def test_pow_backward(self):
        a = Tensor([3.0], requires_grad=True)
        (a ** 2).sum().backward()
        assert a.grad[0] == pytest.approx(6.0)

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_radd_rmul_with_scalars(self):
        a = Tensor([2.0], requires_grad=True)
        (3.0 + 2.0 * a).sum().backward()
        assert a.grad[0] == pytest.approx(2.0)

    def test_rsub_rtruediv(self):
        a = Tensor([2.0], requires_grad=True)
        out = 1.0 - a
        assert out.data[0] == pytest.approx(-1.0)
        out2 = 1.0 / Tensor([4.0])
        assert out2.data[0] == pytest.approx(0.25)

    def test_grad_accumulates_across_uses(self):
        a = Tensor([2.0], requires_grad=True)
        (a * a + a).sum().backward()
        assert a.grad[0] == pytest.approx(2 * 2.0 + 1.0)

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()


class TestBroadcasting:
    def test_unbroadcast_sums_new_axes(self):
        grad = np.ones((4, 3))
        assert unbroadcast(grad, (3,)).tolist() == [4.0, 4.0, 4.0]

    def test_unbroadcast_sums_expanded_axes(self):
        grad = np.ones((4, 3))
        np.testing.assert_allclose(unbroadcast(grad, (4, 1)), np.full((4, 1), 3.0))

    def test_broadcast_add_backward(self):
        a = Tensor(np.ones((4, 3)), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(b.grad, [4.0, 4.0, 4.0])

    def test_broadcast_mul_scalar_tensor(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        s = Tensor(2.0, requires_grad=True)
        (a * s).sum().backward()
        assert s.grad == pytest.approx(4.0)

    def test_broadcast_to_backward(self):
        a = Tensor(np.ones(3), requires_grad=True)
        a.broadcast_to((5, 3)).sum().backward()
        np.testing.assert_allclose(a.grad, [5.0, 5.0, 5.0])


class TestMatmul:
    def test_matmul_2d(self, grad_check, rng):
        w = rng.standard_normal((4, 3))
        grad_check(lambda x: (x @ Tensor(w)).sum(), rng.standard_normal((2, 4)))

    def test_matmul_vector_matrix(self, rng):
        v = Tensor(rng.standard_normal(3), requires_grad=True)
        m = Tensor(rng.standard_normal((3, 2)), requires_grad=True)
        (v @ m).sum().backward()
        assert v.grad.shape == (3,)
        assert m.grad.shape == (3, 2)

    def test_matmul_vector_vector(self, rng):
        a = Tensor(rng.standard_normal(5), requires_grad=True)
        b = Tensor(rng.standard_normal(5), requires_grad=True)
        (a @ b).backward()
        np.testing.assert_allclose(a.grad, b.data)

    def test_matmul_batched(self, rng):
        a = Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal((2, 4, 5)), requires_grad=True)
        out = a @ b
        assert out.shape == (2, 3, 5)
        out.sum().backward()
        assert a.grad.shape == (2, 3, 4)
        assert b.grad.shape == (2, 4, 5)

    def test_rmatmul(self, rng):
        m = rng.standard_normal((2, 3))
        t = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        out = m @ t
        assert out.shape == (2, 4)


class TestElementwiseOps:
    @pytest.mark.parametrize("op", ["exp", "log", "sqrt", "tanh", "sigmoid", "softplus",
                                    "sin", "cos", "erf", "log1p", "abs"])
    def test_gradcheck_elementwise(self, op, grad_check, rng):
        x = rng.uniform(0.2, 2.0, size=(3, 4))  # positive domain for log/sqrt
        grad_check(lambda t: getattr(t, op)().sum(), x, atol=1e-4)

    def test_relu_gradient_mask(self):
        x = Tensor([-1.0, 2.0], requires_grad=True)
        x.relu().sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0])

    def test_clamp_gradient_mask(self):
        x = Tensor([-2.0, 0.5, 3.0], requires_grad=True)
        x.clamp(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_logsumexp_matches_numpy(self, rng):
        x = rng.standard_normal((4, 6))
        t = Tensor(x)
        expected = np.log(np.exp(x).sum(axis=-1))
        np.testing.assert_allclose(t.logsumexp(axis=-1).data, expected, rtol=1e-10)

    def test_logsumexp_gradcheck(self, grad_check, rng):
        grad_check(lambda t: t.logsumexp(axis=-1).sum(), rng.standard_normal((3, 4)), atol=1e-4)


class TestReductions:
    def test_sum_axis_keepdims(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
        out = x.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1, 4)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3, 4)))

    def test_sum_negative_axis(self, rng):
        x = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        x.sum(axis=-1).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_mean_gradient_scaled(self):
        x = Tensor(np.ones((2, 4)), requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 4), 1 / 8))

    def test_var_and_std(self, rng):
        data = rng.standard_normal((5, 10))
        t = Tensor(data)
        np.testing.assert_allclose(t.var(axis=1).data, data.var(axis=1), rtol=1e-10)
        np.testing.assert_allclose(t.std(axis=1).data, data.std(axis=1), rtol=1e-10)

    def test_max_with_ties_splits_gradient(self):
        x = Tensor([2.0, 2.0, 1.0], requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.5, 0.5, 0.0])

    def test_max_axis_gradcheck(self, grad_check, rng):
        grad_check(lambda t: (t.max(axis=1) ** 2).sum(), rng.standard_normal((3, 5)), atol=1e-4)

    def test_min(self, rng):
        data = rng.standard_normal((3, 4))
        np.testing.assert_allclose(Tensor(data).min(axis=0).data, data.min(axis=0))

    def test_argmax(self, rng):
        data = rng.standard_normal((3, 4))
        np.testing.assert_array_equal(Tensor(data).argmax(axis=1), data.argmax(axis=1))


class TestCumsum:
    def test_inclusive_matches_numpy(self, rng):
        data = rng.standard_normal((3, 5, 7))
        for axis in (-1, 0, 1, 2):
            np.testing.assert_allclose(Tensor(data).cumsum(axis=axis).data,
                                       np.cumsum(data, axis=axis))

    def test_exclusive_matches_triangular_matmul(self, rng):
        # the renderer's transmittance used to be built from this O(n^2) matmul
        data = rng.standard_normal((4, 6))
        lower = np.tril(np.ones((6, 6)), k=-1).T
        np.testing.assert_allclose(Tensor(data).cumsum(axis=-1, exclusive=True).data,
                                   data @ lower, atol=1e-12)

    def test_exclusive_starts_at_zero(self, rng):
        out = Tensor(rng.standard_normal((2, 5))).cumsum(axis=-1, exclusive=True)
        np.testing.assert_allclose(out.data[:, 0], 0.0)

    def test_inclusive_gradcheck(self, grad_check, rng):
        grad_check(lambda t: (t.cumsum(axis=-1) ** 2).sum(),
                   rng.standard_normal((3, 6)), atol=1e-4)

    def test_exclusive_gradcheck(self, grad_check, rng):
        grad_check(lambda t: (t.cumsum(axis=-1, exclusive=True) ** 2).sum(),
                   rng.standard_normal((3, 6)), atol=1e-4)

    def test_gradient_matches_triangular_matmul_reference(self, rng):
        data = rng.standard_normal((4, 8))
        seed = rng.standard_normal((4, 8))
        x = Tensor(data, requires_grad=True)
        x.cumsum(axis=-1, exclusive=True).backward(seed)
        ref = Tensor(data, requires_grad=True)
        (ref @ Tensor(np.tril(np.ones((8, 8)), k=-1).T)).backward(seed)
        np.testing.assert_allclose(x.grad, ref.grad, atol=1e-12)

    def test_axis_out_of_bounds_raises(self, rng):
        with pytest.raises(ValueError):
            Tensor(rng.standard_normal((2, 3))).cumsum(axis=2)

    def test_middle_axis_gradient(self, rng):
        data = rng.standard_normal((2, 4, 3))
        x = Tensor(data, requires_grad=True)
        x.cumsum(axis=1).sum().backward()
        # d/dx_j sum_i out_i = number of outputs j contributes to
        expected = np.broadcast_to(np.arange(4, 0, -1.0)[None, :, None], (2, 4, 3))
        np.testing.assert_allclose(x.grad, expected)


class TestShaping:
    def test_reshape_backward(self, rng):
        x = Tensor(rng.standard_normal((2, 6)), requires_grad=True)
        x.reshape(3, 4).sum().backward()
        assert x.grad.shape == (2, 6)

    def test_transpose_roundtrip(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
        out = x.transpose((2, 0, 1))
        assert out.shape == (4, 2, 3)
        out.sum().backward()
        assert x.grad.shape == (2, 3, 4)

    def test_torch_style_transpose_two_dims(self, rng):
        x = Tensor(rng.standard_normal((2, 3)))
        assert x.transpose(0, 1).shape == (3, 2)

    def test_T_property(self, rng):
        assert Tensor(rng.standard_normal((2, 5))).T.shape == (5, 2)

    def test_squeeze_unsqueeze(self):
        x = Tensor(np.ones((1, 3, 1)))
        assert x.squeeze().shape == (3,)
        assert x.squeeze(0).shape == (3, 1)
        assert Tensor(np.ones(3)).unsqueeze(0).shape == (1, 3)

    def test_flatten(self):
        assert Tensor(np.ones((2, 3, 4))).flatten(1).shape == (2, 12)

    def test_getitem_backward_scatter(self):
        x = Tensor(np.arange(6.0), requires_grad=True)
        x[np.array([0, 0, 2])].sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 0.0, 1.0, 0.0, 0.0, 0.0])

    def test_getitem_slice(self, rng):
        x = Tensor(rng.standard_normal((4, 5)), requires_grad=True)
        x[:, 1:3].sum().backward()
        expected = np.zeros((4, 5))
        expected[:, 1:3] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_pad2d(self):
        x = Tensor(np.ones((1, 1, 2, 2)), requires_grad=True)
        out = x.pad2d(1)
        assert out.shape == (1, 1, 4, 4)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((1, 1, 2, 2)))


class TestCombinators:
    def test_stack_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        out = nn.stack([a, b])
        assert out.shape == (2, 2)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])

    def test_concatenate_backward(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        out = nn.concatenate([a, b], axis=0)
        assert out.shape == (5, 2)
        (out * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 2), 2.0))
        np.testing.assert_allclose(b.grad, np.full((3, 2), 2.0))

    def test_where_backward(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = Tensor([3.0, 4.0], requires_grad=True)
        nn.where(np.array([True, False]), x, y).sum().backward()
        np.testing.assert_allclose(x.grad, [1.0, 0.0])
        np.testing.assert_allclose(y.grad, [0.0, 1.0])

    def test_maximum_minimum(self):
        a = Tensor([1.0, 5.0])
        b = Tensor([3.0, 2.0])
        np.testing.assert_allclose(nn.maximum(a, b).data, [3.0, 5.0])
        np.testing.assert_allclose(nn.minimum(a, b).data, [1.0, 2.0])


class TestGradMode:
    def test_no_grad_blocks_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with nn.no_grad():
            out = x * 2.0
        assert not out.requires_grad

    def test_enable_grad_restores(self):
        with nn.no_grad():
            with nn.enable_grad():
                assert nn.is_grad_enabled()
            assert not nn.is_grad_enabled()
        assert nn.is_grad_enabled()

    def test_comparisons_return_arrays(self):
        x = Tensor([1.0, 3.0])
        assert (x > 2.0).dtype == bool
        assert (x <= 3.0).all()
        assert (x.eq(np.array([1.0, 0.0]))).tolist() == [True, False]

    def test_clone_backward(self):
        x = Tensor([2.0], requires_grad=True)
        (x.clone() * 3.0).sum().backward()
        assert x.grad[0] == pytest.approx(3.0)

    def test_copy_inplace(self):
        x = Tensor([1.0, 2.0])
        x.copy_(np.array([5.0, 6.0]))
        np.testing.assert_allclose(x.data, [5.0, 6.0])
