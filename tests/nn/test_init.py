"""Unit tests for weight initializers."""

import numpy as np
import pytest

from repro.nn import init
from repro.nn.tensor import Parameter


class TestFanCalculation:
    def test_linear_weight(self):
        assert init.calculate_fan_in_and_fan_out((10, 5)) == (5, 10)

    def test_conv_weight(self):
        fan_in, fan_out = init.calculate_fan_in_and_fan_out((8, 4, 3, 3))
        assert fan_in == 4 * 9
        assert fan_out == 8 * 9

    def test_bias_shape(self):
        assert init.calculate_fan_in_and_fan_out((7,)) == (7, 7)

    def test_scalar_shape(self):
        assert init.calculate_fan_in_and_fan_out(()) == (1, 1)


class TestFanInScale:
    def test_radford(self):
        assert init.fan_in_scale((10, 4), "radford") == pytest.approx(0.5)

    def test_kaiming(self):
        assert init.fan_in_scale((10, 8), "kaiming") == pytest.approx(0.5)

    def test_xavier(self):
        assert init.fan_in_scale((6, 2), "xavier") == pytest.approx(0.5)

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError):
            init.fan_in_scale((4, 4), "glorot")


class TestInitializers:
    def test_constant_zeros_ones(self):
        p = Parameter(np.empty((3, 3)))
        init.zeros_(p)
        assert np.all(p.data == 0)
        init.ones_(p)
        assert np.all(p.data == 1)
        init.constant_(p, 0.3)
        assert np.all(p.data == 0.3)

    def test_normal_statistics(self, rng):
        p = Parameter(np.empty(20000))
        init.normal_(p, mean=1.0, std=2.0, rng=rng)
        assert abs(p.data.mean() - 1.0) < 0.1
        assert abs(p.data.std() - 2.0) < 0.1

    def test_uniform_bounds(self, rng):
        p = Parameter(np.empty(1000))
        init.uniform_(p, -0.25, 0.25, rng=rng)
        assert p.data.min() >= -0.25 and p.data.max() <= 0.25

    def test_xavier_uniform_bounds(self, rng):
        p = Parameter(np.empty((20, 30)))
        init.xavier_uniform_(p, rng=rng)
        bound = np.sqrt(6.0 / 50)
        assert np.all(np.abs(p.data) <= bound)

    @pytest.mark.parametrize("fn,expected_std", [
        (init.radford_normal_, 1 / np.sqrt(100)),
        (init.kaiming_normal_, np.sqrt(2 / 100)),
        (init.xavier_normal_, np.sqrt(2 / 150)),
    ])
    def test_scaled_normals(self, fn, expected_std, rng):
        p = Parameter(np.empty((50, 100)))
        fn(p, rng=rng)
        assert p.data.std() == pytest.approx(expected_std, rel=0.1)
