"""Unit tests for optimizers and learning-rate schedulers."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Parameter, Tensor


def _quadratic_loss(params, targets):
    loss = None
    for p, t in zip(params, targets):
        term = ((p - Tensor(t)) ** 2).sum()
        loss = term if loss is None else loss + term
    return loss


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0, -3.0]))
        target = np.array([1.0, 2.0])
        opt = nn.SGD([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            _quadratic_loss([p], [target]).backward()
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-3)

    def test_momentum_accelerates(self):
        def run(momentum):
            p = Parameter(np.array([10.0]))
            opt = nn.SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                ((p - 0.0) ** 2).sum().backward()
                opt.step()
            return abs(p.data[0])

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks_weights(self):
        p = Parameter(np.array([1.0]))
        opt = nn.SGD([p], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        (p * 0.0).sum().backward()
        opt.step()
        assert p.data[0] < 1.0

    def test_empty_parameter_list_raises(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)

    def test_skips_params_without_grad(self):
        p1, p2 = Parameter(np.array([1.0])), Parameter(np.array([2.0]))
        opt = nn.SGD([p1, p2], lr=0.1)
        (p1 ** 2).sum().backward()
        opt.step()
        assert p2.data[0] == 2.0


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0, -3.0, 0.5]))
        target = np.array([1.0, 2.0, -1.0])
        opt = nn.Adam([p], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            _quadratic_loss([p], [target]).backward()
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-3)

    def test_add_param_group(self):
        p1 = Parameter(np.array([3.0]))
        p2 = Parameter(np.array([4.0]))
        opt = nn.Adam([p1], lr=0.1)
        opt.add_param_group({"params": [p2]})
        for _ in range(100):
            opt.zero_grad()
            _quadratic_loss([p1, p2], [np.zeros(1), np.zeros(1)]).backward()
            opt.step()
        assert abs(p1.data[0]) < 0.1 and abs(p2.data[0]) < 0.1

    def test_trains_small_network(self, rng):
        net = nn.models.make_mlp(2, [16], 1, rng=rng)
        x = rng.standard_normal((64, 2))
        y = (x[:, :1] * 2 - x[:, 1:] + 0.5)
        opt = nn.Adam(net.parameters(), lr=1e-2)
        first_loss, last_loss = None, None
        for i in range(200):
            opt.zero_grad()
            loss = nn.functional.mse_loss(net(Tensor(x)), Tensor(y))
            loss.backward()
            opt.step()
            if i == 0:
                first_loss = loss.item()
            last_loss = loss.item()
        assert last_loss < 0.1 * first_loss

    def test_weight_decay(self):
        p = Parameter(np.array([1.0]))
        opt = nn.Adam([p], lr=0.01, weight_decay=1.0)
        opt.zero_grad()
        (p * 0.0).sum().backward()
        opt.step()
        assert p.data[0] < 1.0

    def test_set_get_lr(self):
        opt = nn.Adam([Parameter(np.zeros(1))], lr=0.5)
        assert opt.get_lr() == 0.5
        opt.set_lr(0.1)
        assert opt.get_lr() == 0.1


class TestSchedulers:
    def test_step_lr(self):
        opt = nn.SGD([Parameter(np.zeros(1))], lr=1.0)
        scheduler = nn.StepLR(opt, step_size=2, gamma=0.1)
        scheduler.step()
        assert opt.get_lr() == pytest.approx(1.0)
        scheduler.step()
        assert opt.get_lr() == pytest.approx(0.1)
        scheduler.step()
        scheduler.step()
        assert opt.get_lr() == pytest.approx(0.01)

    def test_exponential_lr(self):
        opt = nn.Adam([Parameter(np.zeros(1))], lr=1.0)
        scheduler = nn.ExponentialLR(opt, gamma=0.5)
        scheduler.step()
        assert opt.get_lr() == pytest.approx(0.5)
        scheduler.step()
        assert opt.get_lr() == pytest.approx(0.25)
