"""Fixtures for the execution-engine suite: a cheap registered toy experiment.

The toy experiment is written to a real module file on ``sys.path`` (not
defined inline) so that *worker subprocesses* can resolve it: forked workers
inherit the parent's registry, and the CLI subprocess tests import it
explicitly via ``repro sweep --import toysweep_mod`` with the module's
directory on ``PYTHONPATH``.
"""

import importlib
import sys
import textwrap

import pytest

TOY_MODULE = "toysweep_mod"
TOY_ID = "toy-sweep"

TOY_SOURCE = '''
"""Registered toy experiment for exercising the sweep engine in tests."""

import time
from dataclasses import dataclass

from repro.experiments.api import BaseExperimentConfig, register


@dataclass
class ToySweepConfig(BaseExperimentConfig):
    lr: float = 0.1
    width: int = 2
    sleep: float = 0.0

    @classmethod
    def fast(cls):
        return cls(fast=True, width=1)


def _validation_targets(config):
    # keep the "every registered experiment validates" invariant intact even
    # though the toy runner is RNG-trivial
    import numpy as np

    import repro.ppl as ppl
    import repro.ppl.distributions as dist
    from repro.analysis import ValidationTarget

    def model():
        w = ppl.sample("w", dist.Normal(0.0, 1.0))
        ppl.sample("obs", dist.Normal(w, 1.0), obs=np.array(0.0))

    def guide():
        ppl.sample("w", dist.Delta(ppl.param("w_loc", np.array(0.0))))

    return [ValidationTarget("toy-sweep", model, guide)]


@register("toy-sweep", config_cls=ToySweepConfig, number="T1", artefact="Toy",
          title="toy sweep target (cheap, deterministic)",
          validation_targets=_validation_targets)
def _toy_runner(config):
    rng = config.seed_all()
    if config.sleep:
        time.sleep(config.sleep)
    noise = float(rng.normal())
    metrics = {
        "loss": config.lr * config.width + 1e-3 * noise,
        "noise": noise,
        "width_sq": float(config.width ** 2),
    }
    return metrics, None
'''


@pytest.fixture(scope="session")
def toy_experiment(tmp_path_factory):
    """Register the toy experiment and return its (module, id, dir) handle."""
    from repro.experiments.api.registry import _REGISTRY

    module_dir = tmp_path_factory.mktemp("toyexp")
    (module_dir / f"{TOY_MODULE}.py").write_text(textwrap.dedent(TOY_SOURCE))
    sys.path.insert(0, str(module_dir))
    if TOY_ID not in _REGISTRY:
        importlib.import_module(TOY_MODULE)
    return {"module": TOY_MODULE, "id": TOY_ID, "dir": module_dir}


@pytest.fixture(autouse=True)
def _no_ambient_faults(monkeypatch):
    """Each test starts (and ends) with fault injection fully disarmed."""
    from repro.exec import faults

    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.set_fault_specs(None)
    yield
    faults.set_fault_specs(None)
