"""The sweep journal: atomic writes, corrupt-entry scanning, manifest round-trip."""

from repro.exec import SweepJournal, load_manifest, write_manifest
from repro.experiments.api import ExperimentResult


def _result(experiment_id="exp", seed=0, loss=1.5):
    return ExperimentResult(experiment_id=experiment_id,
                            config={"seed": seed, "output_dir": None},
                            metrics={"loss": loss}, wall_clock_seconds=0.01)


class TestJournal:
    def test_record_load_roundtrip(self, tmp_path):
        journal = SweepJournal(tmp_path)
        journal.record("abc123", _result(loss=2.5))
        loaded = journal.load("abc123")
        assert loaded.metrics == {"loss": 2.5}
        assert loaded.experiment_id == "exp"

    def test_record_leaves_no_tmp_residue(self, tmp_path):
        journal = SweepJournal(tmp_path)
        journal.record("abc123", _result())
        assert [p.name for p in journal.dir.iterdir()] == ["abc123.json"]

    def test_scan_splits_valid_and_corrupt(self, tmp_path):
        journal = SweepJournal(tmp_path)
        journal.record("good1", _result(loss=1.0))
        journal.record("good2", _result(loss=2.0))
        # tear one entry the non-atomic way (half the document)
        torn = journal.path_for("torn0")
        text = _result().to_json()
        torn.write_text(text[: len(text) // 2])
        # and one that is valid JSON but not a valid artifact
        journal.path_for("badschema").write_text('{"schema_version": 99}\n')
        valid, corrupt = journal.scan()
        assert sorted(valid) == ["good1", "good2"]
        assert sorted(p.stem for p in corrupt) == ["badschema", "torn0"]
        assert journal.completed_keys() == ["good1", "good2"]

    def test_scan_on_missing_dir_is_empty(self, tmp_path):
        valid, corrupt = SweepJournal(tmp_path / "nowhere").scan()
        assert valid == {} and corrupt == []

    def test_record_overwrites_atomically(self, tmp_path):
        journal = SweepJournal(tmp_path)
        journal.record("k", _result(loss=1.0))
        journal.record("k", _result(loss=9.0))
        assert journal.load("k").metrics["loss"] == 9.0


class TestManifest:
    def test_roundtrip_and_version_stamp(self, tmp_path):
        write_manifest(tmp_path, {"experiment_id": "exp", "cells": []})
        manifest = load_manifest(tmp_path)
        assert manifest["experiment_id"] == "exp"
        assert manifest["manifest_version"] == 1

    def test_missing_manifest_is_none(self, tmp_path):
        assert load_manifest(tmp_path / "nowhere") is None
