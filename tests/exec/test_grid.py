"""Unit coverage for ``--set`` grid expansion, cell identity and sharding."""

import pytest

from repro.exec import cell_key, expand_grid, parse_axis_values, shard_cells
from repro.exec.grid import parse_grid_axes, parse_shard


class TestParseAxisValues:
    def test_comma_list(self):
        assert parse_axis_values("0.1,0.01,0.001") == ("0.1", "0.01", "0.001")

    def test_single_value(self):
        assert parse_axis_values("mnist") == ("mnist",)

    def test_ascending_range_inclusive(self):
        assert parse_axis_values("0..4") == ("0", "1", "2", "3", "4")

    def test_descending_range(self):
        assert parse_axis_values("4..2") == ("4", "3", "2")

    def test_negative_range(self):
        assert parse_axis_values("-2..1") == ("-2", "-1", "0", "1")

    def test_degenerate_range(self):
        assert parse_axis_values("3..3") == ("3",)

    def test_values_are_stripped(self):
        assert parse_axis_values(" 0.1 , 0.2 ") == ("0.1", "0.2")

    def test_empty_list_entry_rejected(self):
        with pytest.raises(ValueError, match="empty value"):
            parse_axis_values("0.1,,0.2")


class TestParseGridAxes:
    def test_axes_keep_flag_order(self):
        axes = parse_grid_axes(["lr=0.1,0.01", "seed=0..1"])
        assert list(axes) == ["lr", "seed"]
        assert axes["seed"] == ("0", "1")

    def test_repeated_key_last_wins(self):
        axes = parse_grid_axes(["lr=0.1", "seed=0", "lr=0.5,0.9"])
        assert list(axes) == ["lr", "seed"]
        assert axes["lr"] == ("0.5", "0.9")

    def test_malformed_pair_rejected(self):
        with pytest.raises(ValueError, match="key=value"):
            parse_grid_axes(["no-equals-sign"])


class TestExpandGrid:
    def test_cartesian_product_last_axis_fastest(self):
        cells = expand_grid("exp", ["a=1,2", "b=x,y"])
        assert [c.cell_id for c in cells] == ["a=1,b=x", "a=1,b=y",
                                             "a=2,b=x", "a=2,b=y"]
        assert [c.index for c in cells] == [0, 1, 2, 3]

    def test_no_axes_is_single_defaults_cell(self):
        cells = expand_grid("exp", [])
        assert len(cells) == 1
        assert cells[0].cell_id == "<defaults>"
        assert cells[0].overrides == {}

    def test_base_overrides_apply_but_axes_shadow(self):
        cells = expand_grid("exp", ["seed=0,1"],
                            base_overrides={"seed": "9", "output_dir": "none"})
        assert all(c.overrides["output_dir"] == "none" for c in cells)
        assert [c.overrides["seed"] for c in cells] == ["0", "1"]

    def test_keys_stable_across_relaunch(self):
        first = expand_grid("exp", ["a=1,2"], fast=True)
        second = expand_grid("exp", ["a=1,2"], fast=True)
        assert [c.key for c in first] == [c.key for c in second]

    def test_keys_distinguish_cells_fast_and_experiment(self):
        cells = expand_grid("exp", ["a=1,2"])
        assert len({c.key for c in cells}) == 2
        assert (cell_key("exp", {"a": "1"}, fast=False)
                != cell_key("exp", {"a": "1"}, fast=True))
        assert (cell_key("exp", {"a": "1"}, fast=False)
                != cell_key("other", {"a": "1"}, fast=False))

    def test_key_order_insensitive_to_override_order(self):
        assert (cell_key("exp", {"a": "1", "b": "2"}, fast=False)
                == cell_key("exp", {"b": "2", "a": "1"}, fast=False))


class TestSharding:
    def test_none_spec_keeps_all_cells(self):
        cells = expand_grid("exp", ["a=0..5"])
        assert shard_cells(cells, None) == list(cells)

    def test_shards_partition_the_grid(self):
        cells = expand_grid("exp", ["a=0..6"])  # 7 cells over 3 shards
        shards = [shard_cells(cells, f"{i}/3") for i in (1, 2, 3)]
        assert [len(s) for s in shards] == [3, 2, 2]
        seen = [c.key for shard in shards for c in shard]
        assert sorted(seen) == sorted(c.key for c in cells)
        assert len(set(seen)) == len(cells)

    def test_parse_shard_validates(self):
        assert parse_shard("2/4", 10) == (2, 4)
        with pytest.raises(ValueError, match="i/N"):
            parse_shard("2-4", 10)
        with pytest.raises(ValueError, match="1 <= i <= N"):
            parse_shard("5/4", 10)
        with pytest.raises(ValueError, match="1 <= i <= N"):
            parse_shard("0/4", 10)
