"""The worker pool: crash isolation, timeouts, retries, resume, both executors."""

import pytest

from repro.exec import (FAIL, PASS, SKIPPED, TIMEOUT, SweepJournal, execute,
                        expand_grid)
from repro.exec import faults
from repro.experiments.api import ExperimentResult

TOY_ID = "toy-sweep"


def _cells(set_args, **kwargs):
    return expand_grid(TOY_ID, set_args, **kwargs)


class _FakeSpec:
    """Minimal stand-in for ExperimentSpec usable via the resolve hook."""

    def __init__(self, runner):
        self._runner = runner

    def run(self, fast=False, overrides=None):
        metrics = self._runner(dict(overrides or {}))
        return ExperimentResult(experiment_id=TOY_ID, config=dict(overrides or {}),
                                metrics=metrics, wall_clock_seconds=0.0)


class TestInProcessExecutor:
    def test_passes_and_journals(self, toy_experiment, tmp_path):
        journal = SweepJournal(tmp_path)
        outcomes = execute(_cells(["seed=0,1"]), journal=journal, workers=0)
        assert [o.status for o in outcomes] == [PASS, PASS]
        assert journal.completed_keys() == sorted(c.key for c in _cells(["seed=0,1"]))

    def test_failure_retries_then_passes(self, tmp_path):
        calls = []

        def flaky(overrides):
            calls.append(1)
            if len(calls) == 1:
                raise RuntimeError("transient")
            return {"m": 1.0}

        events = []
        outcomes = execute(_cells([]), workers=0, retries=1, backoff=0.0,
                           resolve=lambda _id: _FakeSpec(flaky),
                           on_event=lambda kind, cell, **info: events.append(kind))
        assert outcomes[0].status == PASS
        assert outcomes[0].attempts == 2 and outcomes[0].retried
        assert events == ["attempt-failed", "pass"]

    def test_budget_exhausted_is_terminal_fail(self):
        def boom(overrides):
            raise RuntimeError("kaboom")

        outcomes = execute(_cells([]), workers=0, retries=2, backoff=0.0,
                           resolve=lambda _id: _FakeSpec(boom))
        assert outcomes[0].status == FAIL
        assert outcomes[0].attempts == 3
        assert "RuntimeError: kaboom" in outcomes[0].error

    def test_timeout_unsupported_in_process(self):
        with pytest.raises(ValueError, match="workers >= 1"):
            execute(_cells([]), workers=0, timeout=1.0)


class TestSubprocessPool:
    def test_parallel_matches_serial(self, toy_experiment, tmp_path):
        cells = _cells(["seed=0..2", "lr=0.1,0.3"])
        serial = SweepJournal(tmp_path / "serial")
        parallel = SweepJournal(tmp_path / "parallel")
        assert all(o.status == PASS
                   for o in execute(cells, journal=serial, workers=0))
        assert all(o.status == PASS
                   for o in execute(cells, journal=parallel, workers=2))
        serial_valid, _ = serial.scan()
        parallel_valid, _ = parallel.scan()
        assert sorted(serial_valid) == sorted(parallel_valid)
        for key, result in serial_valid.items():
            assert parallel_valid[key].metrics == result.metrics
            assert parallel_valid[key].config == result.config

    def test_outcomes_keep_input_order(self, toy_experiment):
        cells = _cells(["seed=0..3"])
        outcomes = execute(cells, workers=3)
        assert [o.cell.key for o in outcomes] == [c.key for c in cells]

    def test_worker_exception_is_contained(self, toy_experiment):
        outcomes = execute(_cells(["nofield=1"]), workers=1)
        assert outcomes[0].status == FAIL
        assert "ValueError" in outcomes[0].error
        assert "nofield" in outcomes[0].error

    def test_crash_is_classified_and_fails_without_budget(self, toy_experiment):
        faults.set_fault_specs("crash")
        outcomes = execute(_cells([]), workers=1)
        assert outcomes[0].status == FAIL
        assert "signal 9" in outcomes[0].error

    def test_crash_retried_to_success(self, toy_experiment, tmp_path):
        faults.set_fault_specs("crash:max_attempts=1")
        journal = SweepJournal(tmp_path)
        outcomes = execute(_cells([]), journal=journal, workers=1, retries=1,
                           backoff=0.01)
        assert outcomes[0].status == PASS
        assert outcomes[0].attempts == 2
        assert journal.completed_keys() == [outcomes[0].cell.key]

    def test_timeout_kills_and_reports(self, toy_experiment):
        outcomes = execute(_cells(["sleep=30"]), workers=1, timeout=0.4,
                           kill_grace=0.3)
        assert outcomes[0].status == TIMEOUT
        assert "timed out" in outcomes[0].error

    def test_sigterm_ignoring_hang_forces_kill_escalation(self, toy_experiment):
        faults.set_fault_specs("hang:ignore_term=1,max_attempts=1")
        outcomes = execute(_cells([]), workers=1, timeout=0.4, kill_grace=0.3,
                           retries=1, backoff=0.01)
        assert outcomes[0].status == PASS
        assert outcomes[0].attempts == 2

    def test_torn_artifact_detected_and_retried(self, toy_experiment, tmp_path):
        faults.set_fault_specs("corrupt-artifact:max_attempts=1")
        events = []
        outcomes = execute(_cells([]), journal=SweepJournal(tmp_path), workers=1,
                           retries=1, backoff=0.01,
                           on_event=lambda kind, cell, **info:
                           events.append((kind, info.get("error"))))
        assert outcomes[0].status == PASS and outcomes[0].attempts == 2
        assert "corrupted result artifact" in events[0][1]

    def test_torn_artifact_without_budget_fails(self, toy_experiment, tmp_path):
        faults.set_fault_specs("corrupt-artifact")
        journal = SweepJournal(tmp_path)
        outcomes = execute(_cells([]), journal=journal, workers=1)
        assert outcomes[0].status == FAIL
        assert journal.completed_keys() == []


class TestResume:
    def test_resume_skips_journaled_cells(self, toy_experiment, tmp_path):
        cells = _cells(["seed=0..2"])
        journal = SweepJournal(tmp_path)
        execute(cells[:2], journal=journal, workers=0)
        outcomes = execute(cells, journal=journal, workers=0, resume=True)
        assert [o.status for o in outcomes] == [SKIPPED, SKIPPED, PASS]
        assert outcomes[0].attempts == 0
        assert outcomes[0].result is not None  # skipped cells carry their result

    def test_resume_deletes_and_reruns_corrupt_entries(self, toy_experiment,
                                                       tmp_path):
        cells = _cells(["seed=0,1"])
        journal = SweepJournal(tmp_path)
        execute(cells, journal=journal, workers=0)
        good = journal.load(cells[0].key)
        torn = journal.path_for(cells[1].key)
        torn.write_text(torn.read_text()[:40])
        outcomes = execute(cells, journal=journal, workers=0, resume=True)
        assert [o.status for o in outcomes] == [SKIPPED, PASS]
        # the re-run cell was journaled afresh; the good one was untouched
        assert journal.load(cells[1].key).metrics
        assert journal.load(cells[0].key).metrics == good.metrics

    def test_without_resume_cells_rerun(self, toy_experiment, tmp_path):
        cells = _cells([])
        journal = SweepJournal(tmp_path)
        execute(cells, journal=journal, workers=0)
        outcomes = execute(cells, journal=journal, workers=0)
        assert outcomes[0].status == PASS and outcomes[0].attempts == 1
