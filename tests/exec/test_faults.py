"""The fault-injection harness, and the engine's headline equivalence proof.

The acceptance test at the bottom runs a 10-cell sweep under crashes
(p = 0.3), one SIGTERM-ignoring hang (killed by the pool's timeout
escalation) and one torn artifact write — and asserts the surviving journal
is *identical* (metrics and config echo) to a serial fault-free run.  All
injection decisions are SHA-256 hashes of ``(seed, kind, cell_id, attempt)``,
so the test is deterministic on every machine; the salt below was chosen so
every cell converges within the retry budget.
"""

import pytest

from repro.exec import SweepJournal, execute, expand_grid, exit_code
from repro.exec import faults

TOY_ID = "toy-sweep"


class TestSpecParsing:
    def test_bare_kind(self):
        (spec,) = faults.parse_fault_specs("crash")
        assert spec.kind == "crash" and spec.p == 1.0 and spec.cell is None

    def test_options(self):
        (spec,) = faults.parse_fault_specs(
            "hang:p=0.5,cell=seed=3,max_attempts=2,seed=7,ignore_term=1")
        assert spec.p == 0.5
        assert spec.cell == "seed=3"
        assert spec.max_attempts == 2
        assert spec.seed == 7
        assert spec.ignore_term is True

    def test_multiple_specs(self):
        specs = faults.parse_fault_specs("crash:p=0.3;corrupt-artifact:cell=seed=1")
        assert [s.kind for s in specs] == ["crash", "corrupt-artifact"]

    def test_empty_string_no_faults(self):
        assert faults.parse_fault_specs("") == ()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            faults.parse_fault_specs("explode")

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError, match="unknown fault options"):
            faults.parse_fault_specs("crash:power=9000")


class TestDecisions:
    def test_decide_is_deterministic_and_uniform_range(self):
        draws = [faults.decide(0, "crash", f"seed={i}", 1) for i in range(50)]
        assert draws == [faults.decide(0, "crash", f"seed={i}", 1)
                         for i in range(50)]
        assert all(0.0 <= d < 1.0 for d in draws)
        assert len(set(draws)) == 50  # distinct cells draw distinct values

    def test_decide_varies_with_every_input(self):
        base = faults.decide(0, "crash", "seed=0", 1)
        assert faults.decide(1, "crash", "seed=0", 1) != base
        assert faults.decide(0, "hang", "seed=0", 1) != base
        assert faults.decide(0, "crash", "seed=0", 2) != base

    def test_applies_filters_cell_and_attempt(self):
        spec = faults.FaultSpec(kind="crash", p=1.0, cell="seed=3", max_attempts=1)
        assert spec.applies("seed=3,lr=0.1", 1)
        assert not spec.applies("seed=4,lr=0.1", 1)
        assert not spec.applies("seed=3,lr=0.1", 2)

    def test_p_zero_never_injects(self):
        spec = faults.FaultSpec(kind="crash", p=0.0)
        assert not any(spec.applies(f"seed={i}", 1) for i in range(20))

    def test_env_var_drives_active_specs(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "crash:p=0.25")
        (spec,) = faults.active_specs()
        assert spec.kind == "crash" and spec.p == 0.25

    def test_set_fault_specs_overrides_env(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "crash")
        faults.set_fault_specs("hang")
        assert [s.kind for s in faults.active_specs()] == ["hang"]
        faults.set_fault_specs(None)
        assert [s.kind for s in faults.active_specs()] == ["crash"]


# ---------------------------------------------------------------------------
# The engine's contract: a faulty sweep converges to the fault-free journal.
# ---------------------------------------------------------------------------
SALT = 1  # chosen so every cell below converges within retries=3
HANG_CELL = "seed=3,lr=0.1"
CORRUPT_CELL = "seed=1,lr=0.05"


class TestFaultySweepEquivalence:
    def test_faulty_parallel_sweep_matches_serial_fault_free_run(
            self, toy_experiment, tmp_path):
        cells = expand_grid(TOY_ID, ["seed=0..4", "lr=0.1,0.05"])
        assert len(cells) == 10

        # the serial, fault-free reference journal
        reference = SweepJournal(tmp_path / "reference")
        assert exit_code(execute(cells, journal=reference, workers=0)) == 0

        # sanity: with this salt the crash spec really fires on first attempts
        crash_cells = [c.cell_id for c in cells
                       if faults.decide(SALT, "crash", c.cell_id, 1) < 0.3]
        assert len(crash_cells) >= 2
        assert HANG_CELL not in crash_cells and CORRUPT_CELL not in crash_cells

        # cell ids contain commas, which the env-spec mini-language reserves
        # for option separation — target them through the sequence form
        faults.set_fault_specs((
            faults.FaultSpec(kind="crash", p=0.3, seed=SALT),
            faults.FaultSpec(kind="hang", cell=HANG_CELL, max_attempts=1,
                             ignore_term=True),
            faults.FaultSpec(kind="corrupt-artifact", cell=CORRUPT_CELL,
                             max_attempts=1),
        ))
        journal = SweepJournal(tmp_path / "faulty")
        outcomes = execute(cells, journal=journal, workers=2, timeout=1.0,
                           kill_grace=0.3, retries=3, backoff=0.02)

        # every cell survived its faults -> sweep exit code 0
        assert exit_code(outcomes) == 0
        by_id = {o.cell.cell_id: o for o in outcomes}
        assert all(o.status == "pass" for o in outcomes)
        # the injected faults actually happened and were retried away
        assert by_id[HANG_CELL].attempts >= 2      # killed by timeout, re-run
        assert by_id[CORRUPT_CELL].attempts >= 2   # torn handoff, re-run
        assert any(by_id[cid].attempts >= 2 for cid in crash_cells)

        # the surviving journal is identical to the fault-free serial one
        faulty_valid, faulty_corrupt = journal.scan()
        reference_valid, _ = reference.scan()
        assert faulty_corrupt == []
        assert sorted(faulty_valid) == sorted(reference_valid)
        for key, expected in reference_valid.items():
            assert faulty_valid[key].metrics == expected.metrics
            assert faulty_valid[key].config == expected.config
