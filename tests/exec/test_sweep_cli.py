"""``repro sweep`` / ``repro results`` through the CLI, including kill/resume.

Most tests drive :func:`repro.experiments.api.cli.main` in-process; the
mid-flight SIGKILL test launches the real console script in a subprocess,
kills it dead between journal writes, and resumes — the acceptance scenario
for the journal's crash-safety contract.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.exec import SweepJournal, expand_grid
from repro.experiments.api import run_experiment
from repro.experiments.api.cli import main

TOY_ID = "toy-sweep"
TOY_MODULE = "toysweep_mod"


def _normalized(text):
    payload = json.loads(text)
    payload["wall_clock_seconds"] = 0.0
    return json.dumps(payload, indent=2, sort_keys=True)


class TestSweepCommand:
    def test_grid_sweep_journals_and_reports(self, toy_experiment, tmp_path,
                                             capsys):
        sweep_dir = tmp_path / "sw"
        argv = ["sweep", TOY_ID, "--set", "seed=0..1", "--set", "lr=0.1,0.2",
                "--workers", "2", "--sweep-dir", str(sweep_dir)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "4 cells" in out and out.count("PASS") == 4
        assert len(SweepJournal(sweep_dir).completed_keys()) == 4
        report = json.loads((sweep_dir / "report.json").read_text())
        assert report["counts"] == {"pass": 4}
        manifest = json.loads((sweep_dir / "manifest.json").read_text())
        assert manifest["grid"] == {"seed": ["0", "1"], "lr": ["0.1", "0.2"]}

    def test_single_value_grid_matches_repro_run_byte_for_byte(
            self, toy_experiment, tmp_path):
        sweep_dir = tmp_path / "sw"
        assert main(["sweep", TOY_ID, "--set", "lr=0.25", "--seed", "7",
                     "--workers", "0", "--sweep-dir", str(sweep_dir)]) == 0
        journal = SweepJournal(sweep_dir)
        (key,) = journal.completed_keys()
        sweep_text = journal.path_for(key).read_text()

        run_result = run_experiment(TOY_ID, overrides={
            "lr": "0.25", "seed": "7", "output_dir": "none"})
        assert _normalized(sweep_text) == _normalized(run_result.to_json())

    def test_failing_cells_exit_1(self, toy_experiment, tmp_path, capsys):
        sweep_dir = tmp_path / "sw"
        assert main(["sweep", TOY_ID, "--set", "nofield=1,2", "--retries", "0",
                     "--workers", "1", "--sweep-dir", str(sweep_dir)]) == 1
        captured = capsys.readouterr()
        assert "FAIL" in captured.out
        assert "nofield" in captured.err

    def test_unknown_id_exits_2(self, capsys):
        assert main(["sweep", "fig9-unknown"]) == 2
        assert "fig9-unknown" in capsys.readouterr().err

    def test_bad_shard_exits_2(self, toy_experiment, tmp_path, capsys):
        assert main(["sweep", TOY_ID, "--shard", "9/4",
                     "--sweep-dir", str(tmp_path / "sw")]) == 2
        assert "shard" in capsys.readouterr().err

    def test_workers0_with_timeout_exits_2(self, toy_experiment, tmp_path,
                                           capsys):
        assert main(["sweep", TOY_ID, "--workers", "0", "--timeout", "5",
                     "--sweep-dir", str(tmp_path / "sw")]) == 2
        assert "--workers" in capsys.readouterr().err

    def test_reused_dir_with_different_grid_exits_2(self, toy_experiment,
                                                    tmp_path, capsys):
        sweep_dir = tmp_path / "sw"
        assert main(["sweep", TOY_ID, "--set", "seed=0,1", "--workers", "0",
                     "--sweep-dir", str(sweep_dir)]) == 0
        assert main(["sweep", TOY_ID, "--set", "seed=5,6", "--workers", "0",
                     "--sweep-dir", str(sweep_dir)]) == 2
        assert "different grid" in capsys.readouterr().err

    def test_shards_cover_grid_between_invocations(self, toy_experiment,
                                                   tmp_path):
        sweep_dir = tmp_path / "sw"
        base = ["sweep", TOY_ID, "--set", "seed=0..4", "--workers", "0",
                "--sweep-dir", str(sweep_dir)]
        assert main(base + ["--shard", "1/2"]) == 0
        journal = SweepJournal(sweep_dir)
        assert len(journal.completed_keys()) == 3  # cells 0, 2, 4
        assert main(base + ["--shard", "2/2"]) == 0
        cells = expand_grid(TOY_ID, ["seed=0..4"],
                            base_overrides={"output_dir": "none"})
        assert sorted(journal.completed_keys()) == sorted(c.key for c in cells)


class TestResultsCommand:
    @pytest.fixture()
    def sweep_dir(self, toy_experiment, tmp_path):
        path = tmp_path / "sw"
        assert main(["sweep", TOY_ID, "--set", "lr=0.1,0.2", "--workers", "0",
                     "--sweep-dir", str(path)]) == 0
        return path

    def test_table_lists_cells_and_aggregates(self, sweep_dir, capsys):
        capsys.readouterr()
        assert main(["results", str(sweep_dir)]) == 0
        out = capsys.readouterr().out
        assert "lr=0.1" in out and "lr=0.2" in out
        assert "loss" in out and "mean" in out

    def test_metric_filter(self, sweep_dir, capsys):
        capsys.readouterr()
        assert main(["results", str(sweep_dir), "--metric", "loss"]) == 0
        out = capsys.readouterr().out
        assert "loss" in out and "width_sq" not in out

    def test_unknown_metric_exits_2(self, sweep_dir, capsys):
        assert main(["results", str(sweep_dir), "--metric", "nope"]) == 2
        assert "unknown metrics" in capsys.readouterr().err

    def test_json_output_is_machine_readable(self, sweep_dir, capsys):
        capsys.readouterr()
        assert main(["results", str(sweep_dir), "--json"]) == 0
        index = json.loads(capsys.readouterr().out)
        assert index["experiment_id"] == TOY_ID
        assert {row["status"] for row in index["rows"]} == {"done"}
        assert index["aggregates"]["loss"]["n"] == 2

    def test_aggregates_carry_latency_style_percentiles(self, sweep_dir,
                                                        capsys):
        capsys.readouterr()
        assert main(["results", str(sweep_dir), "--json"]) == 0
        agg = json.loads(capsys.readouterr().out)["aggregates"]["loss"]
        assert {"min", "p50", "mean", "p95", "p99", "max", "n"} <= set(agg)
        assert agg["min"] <= agg["p50"] <= agg["p95"] <= agg["p99"] <= agg["max"]
        capsys.readouterr()
        assert main(["results", str(sweep_dir)]) == 0
        out = capsys.readouterr().out
        assert "p50" in out and "p95" in out and "p99" in out

    def test_percentile_matches_numpy_linear_interpolation(self):
        import numpy as np

        from repro.exec.report import _percentile

        values = sorted([3.0, 1.0, 4.0, 1.5, 9.0, 2.5, 6.0])
        for q in (50.0, 95.0, 99.0):
            assert _percentile(values, q) == pytest.approx(
                float(np.percentile(values, q)))
        assert _percentile([7.25], 99.0) == 7.25

    def test_partial_sweep_rows_marked_missing(self, toy_experiment, tmp_path,
                                               capsys):
        path = tmp_path / "partial"
        assert main(["sweep", TOY_ID, "--set", "seed=0..3", "--shard", "1/2",
                     "--workers", "0", "--sweep-dir", str(path)]) == 0
        capsys.readouterr()
        assert main(["results", str(path), "--json"]) == 0
        index = json.loads(capsys.readouterr().out)
        statuses = [row["status"] for row in index["rows"]]
        assert statuses.count("done") == 2 and statuses.count("missing") == 2

    def test_missing_dir_exits_2(self, tmp_path, capsys):
        assert main(["results", str(tmp_path / "nope")]) == 2
        assert "no such sweep directory" in capsys.readouterr().err


class TestKillAndResume:
    """SIGKILL the sweep mid-flight; --resume re-runs only unjournaled cells."""

    def test_sigkill_then_resume_reruns_only_missing_cells(
            self, toy_experiment, tmp_path, capsys):
        sweep_dir = tmp_path / "sw"
        grid = ["--set", "seed=0..5", "--set", "sleep=0.4"]
        src = str(Path(repro.__file__).parent.parent)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [src, str(toy_experiment["dir"])]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.experiments.api.cli", "sweep", TOY_ID,
             *grid, "--workers", "1", "--retries", "0",
             "--sweep-dir", str(sweep_dir), "--import", TOY_MODULE],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        journal = SweepJournal(sweep_dir)
        try:
            deadline = time.monotonic() + 60.0
            while len(journal.completed_keys()) < 2:
                assert proc.poll() is None, "sweep finished before it was killed"
                assert time.monotonic() < deadline, "no journal entries in time"
                time.sleep(0.05)
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)

        survivors = {path.name: path.stat().st_mtime_ns
                     for path in journal.dir.glob("*.json")}
        assert len(survivors) >= 2
        # every surviving entry is complete and loadable (atomic writes)
        valid, corrupt = journal.scan()
        assert corrupt == [] and len(valid) == len(survivors)

        assert main(["sweep", TOY_ID, *grid, "--workers", "0",
                     "--sweep-dir", str(sweep_dir), "--resume"]) == 0
        out = capsys.readouterr().out
        assert out.count("SKIP") == len(survivors)
        assert out.count("PASS") == 6 - len(survivors)
        assert len(journal.completed_keys()) == 6
        # resumed run did not rewrite the surviving entries
        for name, mtime_ns in survivors.items():
            assert (journal.dir / name).stat().st_mtime_ns == mtime_ns
