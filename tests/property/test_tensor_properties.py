"""Property-based tests (hypothesis) for the autograd engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro import nn
from repro.nn.tensor import Tensor, unbroadcast

settings.register_profile("ci", max_examples=50, deadline=None)
settings.load_profile("ci")


finite_floats = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False,
                          allow_infinity=False, width=64)


def arrays(shape):
    return hnp.arrays(np.float64, shape, elements=finite_floats)


@st.composite
def matched_arrays(draw, max_side=4, count=2):
    shape = tuple(draw(st.lists(st.integers(1, max_side), min_size=1, max_size=3)))
    return [draw(arrays(shape)) for _ in range(count)]


class TestAlgebraicProperties:
    @given(matched_arrays())
    def test_addition_commutes(self, pair):
        a, b = pair
        left = (Tensor(a) + Tensor(b)).data
        right = (Tensor(b) + Tensor(a)).data
        np.testing.assert_allclose(left, right)

    @given(matched_arrays(count=3))
    def test_addition_associates(self, triple):
        a, b, c = triple
        left = ((Tensor(a) + Tensor(b)) + Tensor(c)).data
        right = (Tensor(a) + (Tensor(b) + Tensor(c))).data
        np.testing.assert_allclose(left, right, rtol=1e-10, atol=1e-12)

    @given(matched_arrays())
    def test_subtraction_is_inverse_of_addition(self, pair):
        a, b = pair
        np.testing.assert_allclose(((Tensor(a) + Tensor(b)) - Tensor(b)).data, a,
                                   rtol=1e-10, atol=1e-10)

    @given(matched_arrays(count=1))
    def test_exp_log_roundtrip(self, single):
        (a,) = single
        positive = np.abs(a) + 0.5
        np.testing.assert_allclose(Tensor(positive).log().exp().data, positive, rtol=1e-10)

    @given(matched_arrays(count=1))
    def test_tanh_bounded(self, single):
        (a,) = single
        out = Tensor(a).tanh().data
        assert np.all(out >= -1.0) and np.all(out <= 1.0)

    @given(matched_arrays(count=1))
    def test_relu_idempotent(self, single):
        (a,) = single
        once = Tensor(a).relu()
        twice = once.relu()
        np.testing.assert_allclose(once.data, twice.data)

    @given(matched_arrays(count=1))
    def test_softmax_is_probability_vector(self, single):
        (a,) = single
        out = nn.functional.softmax(Tensor(a), axis=-1).data
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-8)
        assert np.all(out >= 0)


class TestGradientProperties:
    @given(matched_arrays())
    def test_sum_gradient_is_ones(self, pair):
        a, _ = pair
        t = Tensor(a, requires_grad=True)
        (t.sum()).backward()
        np.testing.assert_allclose(t.grad, np.ones_like(a))

    @given(matched_arrays())
    def test_linear_combination_gradients(self, pair):
        a, b = pair
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        (2.0 * ta + 3.0 * tb).sum().backward()
        np.testing.assert_allclose(ta.grad, 2.0 * np.ones_like(a))
        np.testing.assert_allclose(tb.grad, 3.0 * np.ones_like(b))

    @given(matched_arrays(count=1))
    def test_gradient_of_mean_sums_to_one(self, single):
        (a,) = single
        t = Tensor(a, requires_grad=True)
        t.mean().backward()
        assert np.isclose(t.grad.sum(), 1.0)

    @given(matched_arrays())
    def test_product_rule(self, pair):
        a, b = pair
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        (ta * tb).sum().backward()
        np.testing.assert_allclose(ta.grad, b, rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(tb.grad, a, rtol=1e-10, atol=1e-12)

    @given(st.integers(1, 5), st.integers(1, 5))
    def test_unbroadcast_restores_shape(self, rows, cols):
        grad = np.ones((rows, cols))
        assert unbroadcast(grad, (cols,)).shape == (cols,)
        assert unbroadcast(grad, (1, cols)).shape == (1, cols)
        assert unbroadcast(grad, (rows, 1)).shape == (rows, 1)

    @given(matched_arrays(count=1))
    def test_detach_stops_gradients(self, single):
        (a,) = single
        t = Tensor(a, requires_grad=True)
        out = (t.detach() * 2.0).sum()
        assert not out.requires_grad

    @given(matched_arrays(count=1))
    def test_reshape_preserves_gradient_total(self, single):
        (a,) = single
        t = Tensor(a, requires_grad=True)
        t.reshape(-1).sum().backward()
        np.testing.assert_allclose(t.grad, np.ones_like(a))
