"""Property-based tests for distributions and probabilistic invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ppl
from repro.nn.tensor import Tensor
from repro.ppl import distributions as dist

settings.register_profile("dist", max_examples=40, deadline=None)
settings.load_profile("dist")

locs = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False)
scales = st.floats(min_value=0.05, max_value=3.0, allow_nan=False)
probs = st.floats(min_value=0.05, max_value=0.95)


class TestNormalProperties:
    @given(locs, scales)
    def test_log_prob_maximized_at_mean(self, loc, scale):
        d = dist.Normal(loc, scale)
        at_mean = d.log_prob(np.array(loc)).item()
        away = d.log_prob(np.array(loc + 2 * scale)).item()
        assert at_mean >= away

    @given(locs, scales, st.floats(min_value=-3, max_value=3))
    def test_log_prob_symmetry(self, loc, scale, offset):
        d = dist.Normal(loc, scale)
        left = d.log_prob(np.array(loc - offset)).item()
        right = d.log_prob(np.array(loc + offset)).item()
        assert np.isclose(left, right, rtol=1e-8)

    @given(locs, scales)
    def test_kl_self_is_zero(self, loc, scale):
        d = dist.Normal(loc, scale)
        assert abs(dist.kl_divergence(d, dist.Normal(loc, scale)).item()) < 1e-10

    @given(locs, scales, locs, scales)
    def test_kl_nonnegative(self, loc1, scale1, loc2, scale2):
        kl = dist.kl_divergence(dist.Normal(loc1, scale1), dist.Normal(loc2, scale2)).item()
        assert kl >= -1e-10

    @given(locs, scales)
    def test_entropy_increases_with_scale(self, loc, scale):
        smaller = dist.Normal(loc, scale).entropy().item()
        larger = dist.Normal(loc, 2 * scale).entropy().item()
        assert larger > smaller

    @given(locs, scales)
    def test_cdf_monotone(self, loc, scale):
        d = dist.Normal(loc, scale)
        points = np.linspace(loc - 3 * scale, loc + 3 * scale, 7)
        values = [d.cdf(np.array(p)).item() for p in points]
        assert all(b >= a for a, b in zip(values, values[1:]))

    @given(locs, scales)
    def test_rsample_reparameterization_consistency(self, loc, scale):
        """Two rsamples with the same underlying seed differ only through loc/scale."""
        ppl.set_rng_seed(123)
        s1 = dist.Normal(loc, scale).rsample().item()
        ppl.set_rng_seed(123)
        s2 = dist.Normal(loc, scale).rsample().item()
        assert np.isclose(s1, s2)


class TestDiscreteProperties:
    @given(st.lists(st.floats(min_value=-4, max_value=4), min_size=2, max_size=6))
    def test_categorical_log_probs_normalize(self, logits):
        d = dist.Categorical(logits=np.array(logits))
        total = sum(np.exp(d.log_prob(np.array(k)).item()) for k in range(len(logits)))
        assert np.isclose(total, 1.0, rtol=1e-6)

    @given(st.lists(st.floats(min_value=-4, max_value=4), min_size=2, max_size=6))
    def test_categorical_entropy_bounded(self, logits):
        d = dist.Categorical(logits=np.array(logits))
        entropy = d.entropy().item()
        assert -1e-9 <= entropy <= np.log(len(logits)) + 1e-9

    @given(probs)
    def test_bernoulli_probabilities_sum_to_one(self, p):
        d = dist.Bernoulli(probs=np.array(p))
        total = np.exp(d.log_prob(np.array(1.0)).item()) + np.exp(d.log_prob(np.array(0.0)).item())
        assert np.isclose(total, 1.0, rtol=1e-8)

    @given(probs)
    def test_bernoulli_mean_matches_prob(self, p):
        assert np.isclose(dist.Bernoulli(probs=np.array(p)).mean.item(), p)

    @given(st.floats(min_value=0.2, max_value=10.0))
    def test_poisson_mean_equals_variance(self, rate):
        d = dist.Poisson(np.array(rate))
        assert np.isclose(d.mean.item(), d.variance.item())


class TestIndependentProperties:
    @given(st.integers(1, 4), st.integers(1, 4))
    def test_to_event_log_prob_equals_sum(self, rows, cols):
        rng = np.random.default_rng(0)
        loc = rng.standard_normal((rows, cols))
        d_base = dist.Normal(loc, np.ones((rows, cols)))
        d_event = d_base.to_event(2)
        value = rng.standard_normal((rows, cols))
        assert np.isclose(d_event.log_prob(value).item(), d_base.log_prob(value).data.sum(),
                          rtol=1e-8)

    @given(st.integers(1, 5))
    def test_event_shape_accounting(self, n):
        d = dist.Normal(np.zeros((2, n)), 1.0).to_event(1)
        assert d.batch_shape == (2,)
        assert d.event_shape == (n,)


class TestGuideAndELBOProperties:
    @given(locs, scales)
    def test_elbo_lower_bounds_log_evidence(self, mu_prior, obs_noise):
        """For a conjugate Gaussian model the (analytic) ELBO at the true posterior
        equals the log evidence; at any other guide it must be lower."""
        x = np.array([0.3, -0.5, 0.8])
        prior = dist.Normal(mu_prior, 1.0)
        post_var = 1.0 / (1.0 + len(x) / obs_noise ** 2)
        post_mean = post_var * (mu_prior + x.sum() / obs_noise ** 2)

        def elbo(q_mean, q_std, num=2000):
            ppl.set_rng_seed(0)
            q = dist.Normal(q_mean, q_std)
            z = q.rsample((num,))
            lik = sum_log_lik = dist.Normal(z.reshape(-1, 1), obs_noise).log_prob(x).data.sum(-1)
            joint = lik + prior.log_prob(z).data
            return (joint - q.log_prob(z).data).mean()

        optimal = elbo(post_mean, np.sqrt(post_var))
        worse = elbo(post_mean + 1.0, np.sqrt(post_var) * 2)
        assert optimal >= worse - 0.05
