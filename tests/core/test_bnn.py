"""Unit and integration tests for the BNN wrapper classes."""

from functools import partial

import numpy as np
import pytest

from repro import nn, ppl
import repro.core as tyxe
from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.ppl import distributions as dist


def _regression_data(rng, n=60, noise=0.1):
    x = np.concatenate([rng.uniform(-1, -0.5, (n // 2, 1)), rng.uniform(0.5, 1, (n // 2, 1))])
    y = np.cos(4 * x + 0.8) + rng.normal(0, noise, x.shape)
    return x, y


def _small_net(rng, hidden=16):
    return nn.Sequential(nn.Linear(1, hidden, rng=rng), nn.Tanh(), nn.Linear(hidden, 1, rng=rng))


@pytest.fixture
def prior():
    return tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0))


class TestBNNBookkeeping:
    def test_bayesian_sites_and_deterministic_parameters(self, rng):
        net = _small_net(rng)
        prior = tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0), hide_parameters=["bias"])
        bnn = tyxe.VariationalBNN(net, prior, tyxe.likelihoods.HomoskedasticGaussian(10, 0.1),
                                  tyxe.guides.AutoNormal)
        assert set(bnn.bayesian_sites()) == {"0.weight", "2.weight"}
        det_names = len(bnn.deterministic_parameters())
        assert det_names == 2  # the two bias vectors

    def test_update_prior_merges_distributions(self, rng, prior):
        net = _small_net(rng)
        bnn = tyxe.VariationalBNN(net, prior, tyxe.likelihoods.HomoskedasticGaussian(10, 0.1),
                                  tyxe.guides.AutoNormal)
        new = {"0.weight": dist.Normal(np.zeros((16, 1)), np.full((16, 1), 0.01)).to_event(2)}
        bnn.update_prior(tyxe.priors.DictPrior(new))
        assert bnn.param_dists["0.weight"] is new["0.weight"]
        assert "2.weight" in bnn.param_dists  # untouched sites are kept

    def test_net_model_substitutes_and_restores_parameters(self, rng, prior):
        net = _small_net(rng)
        bnn = tyxe.VariationalBNN(net, prior, tyxe.likelihoods.HomoskedasticGaussian(10, 0.1),
                                  tyxe.guides.AutoNormal)
        original_weight = net[0].weight
        bnn.net_model(Tensor(np.zeros((3, 1))))
        assert net[0].weight is original_weight

    def test_unique_guide_prefixes_for_multiple_bnns(self, rng, prior):
        net_a, net_b = _small_net(rng), _small_net(rng)
        lik = tyxe.likelihoods.HomoskedasticGaussian(10, 0.1)
        bnn_a = tyxe.VariationalBNN(net_a, prior, lik, tyxe.guides.AutoNormal)
        bnn_b = tyxe.VariationalBNN(net_b, prior, lik, tyxe.guides.AutoNormal)
        assert bnn_a.net_guide.prefix != bnn_b.net_guide.prefix


class TestVariationalBNN:
    def test_listing1_five_line_setup(self, rng):
        """The paper's Listing 1 translated to this package's API."""
        net = nn.Sequential(nn.Linear(1, 50, rng=rng), nn.Tanh(), nn.Linear(50, 1, rng=rng))
        likelihood = tyxe.likelihoods.HomoskedasticGaussian(80, scale=0.1)
        prior = tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0))
        guide_factory = tyxe.guides.AutoNormal
        bnn = tyxe.VariationalBNN(net, prior, likelihood, guide_factory)
        assert isinstance(bnn, tyxe.VariationalBNN)

    def test_fit_reduces_elbo_loss(self, rng, prior):
        x, y = _regression_data(rng)
        net = _small_net(rng)
        bnn = tyxe.VariationalBNN(net, prior,
                                  tyxe.likelihoods.HomoskedasticGaussian(len(x), 0.1),
                                  partial(tyxe.guides.AutoNormal, init_scale=1e-2))
        loader = nn.DataLoader(nn.TensorDataset(x, y), batch_size=30, shuffle=True, rng=rng)
        losses = []
        bnn.fit(loader, ppl.optim.Adam({"lr": 1e-2}), 30,
                callback=lambda b, e, l: losses.append(l) and False)
        assert losses[-1] < losses[0]

    def test_callback_can_stop_training(self, rng, prior):
        x, y = _regression_data(rng)
        net = _small_net(rng)
        bnn = tyxe.VariationalBNN(net, prior,
                                  tyxe.likelihoods.HomoskedasticGaussian(len(x), 0.1),
                                  tyxe.guides.AutoNormal)
        loader = nn.DataLoader(nn.TensorDataset(x, y), batch_size=30, rng=rng)
        epochs_seen = []
        bnn.fit(loader, ppl.optim.Adam({"lr": 1e-2}), 50,
                callback=lambda b, e, l: epochs_seen.append(e) or e >= 2)
        assert epochs_seen[-1] == 2

    def test_predict_aggregate_and_stacked(self, rng, prior):
        x, y = _regression_data(rng)
        net = _small_net(rng)
        bnn = tyxe.VariationalBNN(net, prior,
                                  tyxe.likelihoods.HomoskedasticGaussian(len(x), 0.1),
                                  tyxe.guides.AutoNormal)
        loader = nn.DataLoader(nn.TensorDataset(x, y), batch_size=30, rng=rng)
        bnn.fit(loader, ppl.optim.Adam({"lr": 1e-2}), 2)
        stacked = bnn.predict(x[:10], num_predictions=5, aggregate=False)
        assert stacked.shape == (5, 10, 1)
        aggregated = bnn.predict(x[:10], num_predictions=5, aggregate=True)
        assert aggregated.shape == (10, 1)

    def test_predictions_vary_across_samples(self, rng, prior):
        x, y = _regression_data(rng)
        net = _small_net(rng)
        bnn = tyxe.VariationalBNN(net, prior,
                                  tyxe.likelihoods.HomoskedasticGaussian(len(x), 0.1),
                                  partial(tyxe.guides.AutoNormal, init_scale=0.1))
        loader = nn.DataLoader(nn.TensorDataset(x, y), batch_size=30, rng=rng)
        bnn.fit(loader, ppl.optim.Adam({"lr": 1e-2}), 1)
        stacked = bnn.predict(x[:5], num_predictions=4, aggregate=False)
        assert stacked.data.std(axis=0).max() > 0

    def test_evaluate_returns_ll_and_error(self, rng, prior):
        x, y = _regression_data(rng)
        net = _small_net(rng)
        bnn = tyxe.VariationalBNN(net, prior,
                                  tyxe.likelihoods.HomoskedasticGaussian(len(x), 0.1),
                                  partial(tyxe.guides.AutoNormal, init_scale=1e-3))
        loader = nn.DataLoader(nn.TensorDataset(x, y), batch_size=30, rng=rng)
        bnn.fit(loader, ppl.optim.Adam({"lr": 1e-2}), 20)
        ll, err = bnn.evaluate(x, y, num_predictions=4)
        assert np.isfinite(ll)
        assert err < 1.0

    def test_learning_improves_fit_versus_prior(self, rng, prior):
        x, y = _regression_data(rng)
        net = _small_net(rng)
        bnn = tyxe.VariationalBNN(net, prior,
                                  tyxe.likelihoods.HomoskedasticGaussian(len(x), 0.1),
                                  partial(tyxe.guides.AutoNormal, init_scale=1e-3))
        _, err_before = bnn.evaluate(x, y, num_predictions=4)
        loader = nn.DataLoader(nn.TensorDataset(x, y), batch_size=30, rng=rng)
        bnn.fit(loader, ppl.optim.Adam({"lr": 1e-2}), 40)
        _, err_after = bnn.evaluate(x, y, num_predictions=4)
        assert err_after < err_before

    def test_classification_bnn(self, rng):
        images = rng.standard_normal((40, 4))
        labels = (images[:, 0] > 0).astype(int)
        net = nn.Sequential(nn.Linear(4, 16, rng=rng), nn.ReLU(), nn.Linear(16, 2, rng=rng))
        bnn = tyxe.VariationalBNN(net, tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0)),
                                  tyxe.likelihoods.Categorical(len(images)),
                                  partial(tyxe.guides.AutoNormal, init_scale=1e-3))
        loader = nn.DataLoader(nn.TensorDataset(images, labels), batch_size=20, rng=rng)
        bnn.fit(loader, ppl.optim.Adam({"lr": 1e-2}), 30)
        _, err = bnn.evaluate(images, labels, num_predictions=8)
        assert err < 0.2

    def test_batchnorm_parameters_trained_deterministically(self, rng):
        net = nn.models.resnet8(num_classes=3, base_width=4, rng=rng)
        prior = tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0), hide_module_types=[nn.BatchNorm2d])
        bnn = tyxe.VariationalBNN(net, prior, tyxe.likelihoods.Categorical(12),
                                  partial(tyxe.guides.AutoNormal, init_scale=1e-3))
        assert not any("bn" in name for name in bnn.bayesian_sites())
        x = rng.standard_normal((12, 3, 8, 8))
        y = rng.integers(0, 3, 12)
        loader = nn.DataLoader(nn.TensorDataset(x, y), batch_size=12, rng=rng)
        before = net.bn1.weight.data.copy()
        bnn.fit(loader, ppl.optim.Adam({"lr": 1e-2}), 3)
        assert not np.allclose(before, net.bn1.weight.data)


class TestPytorchBNN:
    def test_forward_returns_predictions_and_caches_kl(self, rng, prior):
        net = _small_net(rng)
        pbnn = tyxe.PytorchBNN(net, prior, partial(tyxe.guides.AutoNormal, init_scale=1e-2))
        out = pbnn(Tensor(rng.standard_normal((5, 1))))
        assert out.shape == (5, 1)
        assert pbnn.cached_kl_loss is not None
        assert pbnn.cached_kl_loss.item() >= 0

    def test_pytorch_parameters_requires_data_and_returns_trainables(self, rng, prior):
        net = _small_net(rng)
        pbnn = tyxe.PytorchBNN(net, prior, partial(tyxe.guides.AutoNormal, init_scale=1e-2))
        params = pbnn.pytorch_parameters(Tensor(rng.standard_normal((3, 1))))
        # loc + scale for each of the 4 parameter tensors
        assert len(params) == 8

    def test_trains_with_plain_pytorch_optimizer(self, rng, prior):
        x, y = _regression_data(rng, n=40)
        net = _small_net(rng)
        pbnn = tyxe.PytorchBNN(net, prior, partial(tyxe.guides.AutoNormal, init_scale=1e-2))
        optim = nn.Adam(pbnn.pytorch_parameters(Tensor(x)), lr=1e-2)
        losses = []
        for _ in range(60):
            optim.zero_grad()
            out = pbnn(Tensor(x))
            loss = F.mse_loss(out, Tensor(y)) + pbnn.cached_kl_loss / (100 * len(x))
            loss.backward()
            optim.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]

    def test_kl_decreases_when_posterior_matches_prior(self, rng):
        net = _small_net(rng)
        prior = tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0))
        guide = partial(tyxe.guides.AutoNormal, init_scale=1.0,
                        init_loc_fn=tyxe.guides.init_to_constant(0.0))
        pbnn = tyxe.PytorchBNN(net, prior, guide)
        pbnn(Tensor(rng.standard_normal((2, 1))))
        kl_matched = pbnn.cached_kl_loss.item()
        guide2 = partial(tyxe.guides.AutoNormal, init_scale=1e-3,
                         init_loc_fn=tyxe.guides.init_to_constant(5.0))
        pbnn2 = tyxe.PytorchBNN(net, prior, guide2)
        pbnn2(Tensor(rng.standard_normal((2, 1))))
        assert pbnn2.cached_kl_loss.item() > kl_matched

    def test_stochastic_forward_differs_between_calls(self, rng, prior):
        net = _small_net(rng)
        pbnn = tyxe.PytorchBNN(net, prior, partial(tyxe.guides.AutoNormal, init_scale=0.5))
        x = Tensor(rng.standard_normal((4, 1)))
        out1, out2 = pbnn(x).data, pbnn(x).data
        assert not np.allclose(out1, out2)


class TestMCMCBNN:
    def test_fit_and_predict_with_hmc(self, rng, prior):
        x, y = _regression_data(rng, n=30)
        net = nn.Sequential(nn.Linear(1, 8, rng=rng), nn.Tanh(), nn.Linear(8, 1, rng=rng))
        bnn = tyxe.MCMC_BNN(net, prior, tyxe.likelihoods.HomoskedasticGaussian(len(x), 0.1),
                            partial(ppl.infer.HMC, step_size=1e-3, num_steps=5))
        bnn.fit((x, y), num_samples=20, warmup_steps=10)
        assert bnn.num_posterior_samples == 20
        stacked = bnn.predict(x[:5], num_predictions=4, aggregate=False)
        assert stacked.shape == (4, 5, 1)
        aggregated = bnn.predict(x[:5], num_predictions=4)
        assert aggregated.shape == (5, 1)

    def test_fit_accepts_data_loader(self, rng, prior):
        x, y = _regression_data(rng, n=20)
        net = nn.Sequential(nn.Linear(1, 4, rng=rng), nn.Tanh(), nn.Linear(4, 1, rng=rng))
        loader = nn.DataLoader(nn.TensorDataset(x, y), batch_size=10)
        bnn = tyxe.MCMC_BNN(net, prior, tyxe.likelihoods.HomoskedasticGaussian(len(x), 0.1),
                            partial(ppl.infer.HMC, step_size=1e-3, num_steps=3))
        bnn.fit(loader, num_samples=5, warmup_steps=5)
        assert bnn.num_posterior_samples == 5

    def test_predict_before_fit_raises(self, rng, prior):
        net = nn.Sequential(nn.Linear(1, 4, rng=rng), nn.Tanh(), nn.Linear(4, 1, rng=rng))
        bnn = tyxe.MCMC_BNN(net, prior, tyxe.likelihoods.HomoskedasticGaussian(10, 0.1),
                            partial(ppl.infer.HMC, step_size=1e-3, num_steps=3))
        with pytest.raises(RuntimeError):
            bnn.predict(np.zeros((2, 1)))

    def test_posterior_samples_shapes(self, rng, prior):
        x, y = _regression_data(rng, n=20)
        net = nn.Sequential(nn.Linear(1, 4, rng=rng), nn.Tanh(), nn.Linear(4, 1, rng=rng))
        bnn = tyxe.MCMC_BNN(net, prior, tyxe.likelihoods.HomoskedasticGaussian(len(x), 0.1),
                            partial(ppl.infer.NUTS, step_size=1e-3, max_tree_depth=3))
        bnn.fit((x, y), num_samples=5, warmup_steps=5)
        samples = bnn.posterior_samples()
        assert samples["0.weight"].shape == (5, 4, 1)
