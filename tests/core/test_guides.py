"""Unit tests for the TyXe-style guides."""

import numpy as np
import pytest

from repro import nn, ppl
import repro.core as tyxe
from repro.nn.tensor import Tensor
from repro.ppl import distributions as dist
from repro.ppl import poutine


def _model_factory(net, prior):
    """A minimal weight-space model over the given net's parameters."""
    dists = prior.get_distributions(net)

    def model():
        for name, d in dists.items():
            ppl.sample(name, d)

    return model


@pytest.fixture
def net(rng):
    return nn.Sequential(nn.Linear(2, 4, rng=rng), nn.Tanh(), nn.Linear(4, 1, rng=rng))


@pytest.fixture
def prior():
    return tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0))


class TestPretrainedInitializer:
    def test_from_net_records_all_parameters(self, net):
        init = tyxe.guides.PretrainedInitializer.from_net(net)
        assert "0.weight" in init and "2.bias" in init

    def test_returns_copy_of_values(self, net):
        init = tyxe.guides.PretrainedInitializer.from_net(net)
        value = init({"name": "0.weight", "value": net[0].weight})
        np.testing.assert_allclose(value, net[0].weight.data)
        value[0, 0] = 123.0
        assert net[0].weight.data[0, 0] != 123.0

    def test_fallback_for_unknown_site(self, net):
        init = tyxe.guides.PretrainedInitializer.from_net(
            net, fallback=lambda site: np.full(site["value"].shape, 9.0))
        out = init({"name": "unknown", "value": Tensor(np.zeros(3)), "fn": dist.Normal(0.0, 1.0)})
        np.testing.assert_allclose(out, 9.0)

    def test_prefix(self, net):
        init = tyxe.guides.PretrainedInitializer.from_net(net, prefix="net.")
        assert "net.0.weight" in init


class TestInitFunctions:
    def test_init_to_normal_scales_with_fan_in(self):
        site = {"name": "w", "value": Tensor(np.zeros((50, 100))), "fn": None}
        values = tyxe.guides.init_to_normal("radford")(site)
        assert values.std() == pytest.approx(0.1, rel=0.2)

    def test_init_to_normal_zero_for_biases(self):
        site = {"name": "b", "value": Tensor(np.zeros(10)), "fn": None}
        np.testing.assert_allclose(tyxe.guides.init_to_normal()(site), 0.0)

    def test_init_to_constant(self):
        site = {"name": "w", "value": Tensor(np.zeros((2, 2))), "fn": None}
        np.testing.assert_allclose(tyxe.guides.init_to_constant(0.3)(site), 0.3)


class TestAutoNormalGuide:
    def test_means_initialized_to_pretrained_values(self, net, prior):
        model = _model_factory(net, prior)
        guide = tyxe.guides.AutoNormal(model,
                                       init_loc_fn=tyxe.guides.PretrainedInitializer.from_net(net),
                                       init_scale=1e-3)
        guide()
        store = ppl.get_param_store()
        np.testing.assert_allclose(store.get_param("auto.loc.0.weight").data, net[0].weight.data)

    def test_train_loc_false_freezes_means(self, net, prior):
        model = _model_factory(net, prior)
        guide = tyxe.guides.AutoNormal(model, train_loc=False)
        guide()
        store = ppl.get_param_store()
        assert not store.get_unconstrained("auto.loc.0.weight").requires_grad
        assert store.get_unconstrained("auto.scale.0.weight").requires_grad

    def test_max_guide_scale_clips_scale(self, net, prior):
        model = _model_factory(net, prior)
        guide = tyxe.guides.AutoNormal(model, max_guide_scale=0.1, init_scale=1e-2)
        guide()
        store = ppl.get_param_store()
        unconstrained = store.get_unconstrained("auto.scale.0.weight")
        unconstrained.data[...] = 100.0  # push the optimizer way past the cap
        assert np.all(store.get_param("auto.scale.0.weight").data <= 0.1)

    def test_init_scale_respected(self, net, prior):
        model = _model_factory(net, prior)
        guide = tyxe.guides.AutoNormal(model, init_scale=1e-4)
        guide()
        store = ppl.get_param_store()
        np.testing.assert_allclose(store.get_param("auto.scale.0.weight").data, 1e-4, rtol=1e-4)

    def test_get_detached_distributions_for_vcl(self, net, prior):
        model = _model_factory(net, prior)
        guide = tyxe.guides.AutoNormal(model, init_scale=1e-3)
        guide()
        posteriors = guide.get_detached_distributions()
        assert set(posteriors) == {"0.weight", "0.bias", "2.weight", "2.bias"}
        for d in posteriors.values():
            base = d.base_dist if isinstance(d, dist.Independent) else d
            assert not base.loc.requires_grad

    def test_guide_samples_match_site_shapes(self, net, prior):
        model = _model_factory(net, prior)
        guide = tyxe.guides.AutoNormal(model)
        samples = guide()
        assert samples["0.weight"].shape == (4, 2)
        assert samples["2.bias"].shape == (1,)

    def test_guide_trace_records_normal_sites(self, net, prior):
        model = _model_factory(net, prior)
        guide = tyxe.guides.AutoNormal(model)
        tr = poutine.trace(guide).get_trace()
        site = tr["0.weight"]
        base = site["fn"].base_dist if isinstance(site["fn"], dist.Independent) else site["fn"]
        assert isinstance(base, dist.Normal)


class TestAutoDeltaAndLowRankReexports:
    def test_autodelta_available_through_tyxe_guides(self, net, prior):
        model = _model_factory(net, prior)
        guide = tyxe.guides.AutoDelta(model)
        samples = guide()
        assert set(samples) == {"0.weight", "0.bias", "2.weight", "2.bias"}

    def test_lowrank_available_through_tyxe_guides(self, net, prior):
        model = _model_factory(net, prior)
        guide = tyxe.guides.AutoLowRankMultivariateNormal(model, rank=3)
        samples = guide()
        assert samples["0.weight"].shape == (4, 2)
