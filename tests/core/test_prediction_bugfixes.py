"""Regression tests for the prediction-path bugfixes.

Each test pins one of the fixes that shipped with the vectorized
posterior-predictive engine:

* ``MCMC_BNN.predict(num_predictions=1)`` used posterior sample index 0 (the
  oldest, least-mixed draw) because ``np.linspace(0, total-1, 1) == [0.]``;
  it now uses the final sample.
* ``Poisson.aggregate_predictions`` averaged raw network outputs and applied
  the softplus link afterwards, understating the mean rate (Jensen's
  inequality); it now averages the per-sample rates.
* ``SGLDSampler`` thinned on the global step counter, so the number of
  collected samples depended on how ``burn_in`` aligned with ``thinning``;
  it now counts post-burn-in steps.
* ``expected_calibration_error``/``calibration_curve`` used a strict
  ``confidences > low`` test for every bin, leaving confidence exactly 0.0
  outside every bin; the first bin now includes its left edge.
"""

import numpy as np
import pytest

from repro import nn, ppl
import repro.core as tyxe
from repro.metrics import calibration
from repro.nn.tensor import Tensor
from repro.ppl import distributions as dist
from repro.ppl.infer import SGLD, SGLDSampler


# --------------------------------------------------------------- MCMC indices
class TestMCMCPredictionIndices:
    def test_single_prediction_uses_final_sample(self):
        np.testing.assert_array_equal(tyxe.MCMC_BNN._prediction_indices(10, 1), [9])
        np.testing.assert_array_equal(tyxe.MCMC_BNN._prediction_indices(100, 1), [99])

    def test_multi_prediction_indices_unchanged(self):
        np.testing.assert_array_equal(tyxe.MCMC_BNN._prediction_indices(10, 2), [0, 9])
        np.testing.assert_array_equal(tyxe.MCMC_BNN._prediction_indices(10, 10), np.arange(10))

    def test_predict_with_one_sample_matches_final_weights(self, rng):
        net = nn.Sequential(nn.Linear(2, 4, rng=rng), nn.Tanh(), nn.Linear(4, 1, rng=rng))
        bnn = tyxe.MCMC_BNN(net, tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0)),
                            tyxe.likelihoods.HomoskedasticGaussian(5, 0.1),
                            kernel_builder=lambda model: None)
        total = 7
        bnn._weight_samples = {name: rng.standard_normal((total,) + bnn.net.get_parameter(name).shape)
                               for name in bnn.param_dists}
        x = rng.standard_normal((5, 2))
        predicted = bnn.predict(x, num_predictions=1, aggregate=False)
        expected = bnn.guided_forward(Tensor(x), sample_index=total - 1)
        np.testing.assert_allclose(predicted.data[0], expected.data)
        # and definitely not the stalest draw
        oldest = bnn.guided_forward(Tensor(x), sample_index=0)
        assert not np.allclose(predicted.data[0], oldest.data)


# ------------------------------------------------------------ Poisson Jensen
class TestPoissonRateAggregation:
    def test_aggregated_rate_is_mean_of_per_sample_rates(self, rng):
        lik = tyxe.likelihoods.Poisson(dataset_size=3)
        stacked = Tensor(rng.standard_normal((8, 3)) * 2.0)
        per_sample_rates = lik.predictive_distribution(stacked).rate.data
        aggregated = lik.aggregate_predictions(stacked)
        np.testing.assert_allclose(lik.predictive_distribution(aggregated).rate.data,
                                   per_sample_rates.mean(axis=0), rtol=1e-9)

    def test_old_logit_space_mean_understates_the_rate(self, rng):
        # the Jensen gap the fix removes: softplus(mean raw) < mean softplus(raw)
        lik = tyxe.likelihoods.Poisson(dataset_size=3)
        stacked = Tensor(rng.standard_normal((8, 3)) * 2.0)
        old_rate = lik.predictive_distribution(stacked.mean(axis=0)).rate.data
        new_rate = lik.predictive_distribution(lik.aggregate_predictions(stacked)).rate.data
        assert np.all(new_rate > old_rate)

    def test_large_rates_aggregate_without_overflow(self):
        lik = tyxe.likelihoods.Poisson(dataset_size=2)
        stacked = Tensor(np.array([[800.0], [900.0]]))
        with np.errstate(over="raise"):
            aggregated = lik.aggregate_predictions(stacked)
        # softplus is ~identity this far out, so the mean passes through
        np.testing.assert_allclose(aggregated.data, [850.0], rtol=1e-12)

    def test_error_consistent_with_aggregated_rate(self, rng):
        lik = tyxe.likelihoods.Poisson(dataset_size=2)
        stacked = Tensor(rng.standard_normal((5, 2, 1)))
        aggregated = lik.aggregate_predictions(stacked)
        targets = Tensor(np.array([[1.0], [3.0]]))
        rate = lik.predictive_distribution(aggregated).rate.data
        expected = ((rate - targets.data) ** 2).reshape(2, -1).sum(-1).mean()
        assert lik.error(aggregated, targets) == pytest.approx(expected)


# ---------------------------------------------------------------- SGLD thinning
def _scalar_model(data, _targets):
    mu = ppl.sample("mu", dist.Normal(0.0, 1.0))
    ppl.sample("obs", dist.Normal(mu, 1.0), obs=data)


class TestSGLDThinningAlignment:
    def _run(self, burn_in, thinning, num_steps, rng):
        batches = [(Tensor(rng.standard_normal(4)), None) for _ in range(num_steps)]
        sampler = SGLDSampler(SGLD(_scalar_model, step_size=1e-3), burn_in=burn_in,
                              thinning=thinning)
        sampler.run(batches, num_epochs=1)
        return sampler.num_samples

    def test_sample_count_is_deterministic_under_misalignment(self, rng):
        # global-step thinning would collect at steps {3, 6} (2 samples);
        # post-burn-in thinning collects exactly (6 - 2) // 3 == 1
        assert self._run(burn_in=2, thinning=3, num_steps=6, rng=rng) == 1

    @pytest.mark.parametrize("burn_in,thinning,num_steps", [
        (0, 1, 5), (0, 2, 7), (1, 3, 10), (4, 2, 11), (3, 5, 9),
    ])
    def test_sample_count_formula(self, burn_in, thinning, num_steps, rng):
        expected = (num_steps - burn_in) // thinning
        assert self._run(burn_in, thinning, num_steps, rng) == expected


# -------------------------------------------------------------- calibration bins
class TestCalibrationBinEdges:
    def test_first_bin_includes_left_edge(self):
        confidences = np.array([0.0, 0.05, 0.1])
        first = calibration._bin_mask(confidences, 0.0, 0.1, first=True)
        np.testing.assert_array_equal(first, [True, True, True])
        # the old strict lower bound would have dropped the 0.0 sample
        old = (confidences > 0.0) & (confidences <= 0.1)
        assert not old[0]
        # non-first bins keep the half-open convention (no double counting)
        second = calibration._bin_mask(confidences, 0.1, 0.2, first=False)
        np.testing.assert_array_equal(second, [False, False, False])

    def test_boundary_confidences_are_partitioned_exactly_once(self):
        # 10-class probabilities whose max sits exactly on bin edges
        conf_targets = [0.1, 0.2, 0.5, 1.0]
        rows = []
        for c in conf_targets:
            row = np.full(10, (1.0 - c) / 9.0)
            row[0] = c
            rows.append(row)
        probs = np.stack(rows)
        labels = np.zeros(len(rows), dtype=np.int64)
        _, _, counts = calibration.calibration_curve(probs, labels, num_bins=10)
        assert counts.sum() == len(rows)

    def test_ece_weights_sum_to_one_with_boundary_confidences(self):
        probs = np.array([[0.1] * 10, [1.0] + [0.0] * 9])
        labels = np.array([0, 0])
        # uniform row -> confidence exactly 0.1 (a bin edge); one-hot -> 1.0
        ece = calibration.expected_calibration_error(probs, labels, num_bins=10)
        # sample 1: conf 0.1, acc 1 -> gap 0.9; sample 2: conf 1.0, acc 1 -> gap 0
        assert ece == pytest.approx(0.45)
