"""Unit tests for the prior classes and their hide/expose logic."""

import numpy as np
import pytest

from repro import nn
import repro.core as tyxe
from repro.ppl import distributions as dist


@pytest.fixture
def small_resnet(rng):
    return nn.models.resnet8(num_classes=4, base_width=4, rng=rng)


@pytest.fixture
def mlp(rng):
    return nn.Sequential(nn.Linear(3, 8, rng=rng), nn.ReLU(), nn.Linear(8, 2, rng=rng))


class TestIIDPrior:
    def test_exposes_all_parameters_by_default(self, mlp):
        prior = tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0))
        dists = prior.get_distributions(mlp)
        assert set(dists) == {"0.weight", "0.bias", "2.weight", "2.bias"}

    def test_distribution_event_shape_matches_parameter(self, mlp):
        prior = tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0))
        dists = prior.get_distributions(mlp)
        assert dists["0.weight"].event_shape == (8, 3)
        assert dists["0.weight"].log_prob(np.zeros((8, 3))).shape == ()

    def test_rejects_non_scalar_base(self):
        with pytest.raises(ValueError):
            tyxe.priors.IIDPrior(dist.Normal(np.zeros(3), np.ones(3)))

    def test_hide_module_types_excludes_batchnorm(self, small_resnet):
        prior = tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0), expose_all=True,
                                     hide_module_types=[nn.BatchNorm2d])
        dists = prior.get_distributions(small_resnet)
        assert not any("bn" in name for name in dists)
        assert not any("downsample.1" in name for name in dists)
        assert any(name.endswith("conv1.weight") for name in dists)

    def test_expose_modules_last_layer_only(self, small_resnet):
        prior = tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0), expose_all=False,
                                     expose_modules=[small_resnet.fc])
        dists = prior.get_distributions(small_resnet)
        assert set(dists) == {"fc.weight", "fc.bias"}

    def test_hide_by_full_name(self, mlp):
        prior = tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0), hide=["0.bias"])
        assert "0.bias" not in prior.get_distributions(mlp)

    def test_hide_by_parameter_name(self, mlp):
        prior = tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0), hide_parameters=["bias"])
        dists = prior.get_distributions(mlp)
        assert set(dists) == {"0.weight", "2.weight"}

    def test_expose_all_and_hide_all_conflict(self):
        with pytest.raises(ValueError):
            tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0), expose_all=True, hide_all=True)

    def test_hide_all_with_explicit_expose(self, mlp):
        prior = tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0), expose_all=False, hide_all=True,
                                     expose=["2.weight"])
        assert set(prior.get_distributions(mlp)) == {"2.weight"}

    def test_hidden_parameters_complement(self, small_resnet):
        prior = tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0), hide_module_types=[nn.BatchNorm2d])
        exposed = set(prior.get_distributions(small_resnet))
        hidden = {name for name, _ in prior.hidden_parameters(small_resnet)}
        all_names = {name for name, _ in small_resnet.named_parameters()}
        assert exposed | hidden == all_names
        assert exposed & hidden == set()


class TestLayerwiseNormalPrior:
    @pytest.mark.parametrize("method,expected_scale", [
        ("radford", 1 / np.sqrt(3)),
        ("kaiming", np.sqrt(2 / 3)),
        ("xavier", np.sqrt(2 / 11)),
    ])
    def test_weight_scale_follows_fan_in(self, mlp, method, expected_scale):
        prior = tyxe.priors.LayerwiseNormalPrior(method=method)
        d = prior.get_distributions(mlp)["0.weight"]
        base = d.base_dist if isinstance(d, dist.Independent) else d
        np.testing.assert_allclose(base.scale.data, expected_scale, rtol=1e-10)

    def test_bias_gets_unit_scale(self, mlp):
        prior = tyxe.priors.LayerwiseNormalPrior()
        d = prior.get_distributions(mlp)["0.bias"]
        base = d.base_dist if isinstance(d, dist.Independent) else d
        np.testing.assert_allclose(base.scale.data, 1.0)

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError):
            tyxe.priors.LayerwiseNormalPrior(method="lecun")


class TestDictAndLambdaPriors:
    def test_dict_prior_only_exposes_listed_sites(self, mlp):
        custom = {"0.weight": dist.Normal(np.zeros((8, 3)), np.ones((8, 3))).to_event(2)}
        prior = tyxe.priors.DictPrior(custom)
        dists = prior.get_distributions(mlp)
        assert set(dists) == {"0.weight"}
        assert dists["0.weight"] is custom["0.weight"]

    def test_dict_prior_update(self, mlp):
        prior = tyxe.priors.DictPrior({"0.weight": dist.Normal(np.zeros((8, 3)),
                                                               np.ones((8, 3))).to_event(2)})
        new_dist = dist.Normal(np.zeros((2, 8)), np.full((2, 8), 0.5)).to_event(2)
        prior.update({"2.weight": new_dist})
        assert "2.weight" in prior.get_distributions(mlp)

    def test_lambda_prior_receives_parameter(self, mlp):
        def fn(name, module, parameter):
            return dist.Normal(np.zeros(parameter.shape),
                               np.full(parameter.shape, 0.1)).to_event(parameter.ndim)

        prior = tyxe.priors.LambdaPrior(fn)
        d = prior.get_distributions(mlp)["2.weight"]
        assert d.event_shape == (2, 8)

    def test_base_prior_update_not_supported(self):
        prior = tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0))
        with pytest.raises(NotImplementedError):
            prior.update({})
