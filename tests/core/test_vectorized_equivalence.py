"""Equivalence suite for the leading-sample-dimension (vectorized) engine.

The vectorized paths are required to be *numerically equivalent* to the
looped reference paths under the same RNG seed, not merely statistically
similar: guide samples are drawn in the identical stream order, and the
batched forward pass computes the same per-sample arithmetic.  These tests
pin that contract for

* ``VariationalBNN.predict``  (looped vs ``vectorized=True``),
* ``MCMC_BNN.predict``        (looped vs ``vectorized=True``),
* ``Trace_ELBO`` / ``TraceMeanField_ELBO``
  (``num_particles``-looped vs ``vectorize_particles=True``), including the
  gradients reaching the variational parameters,

for both a regression (HomoskedasticGaussian) and a classification
(Categorical) likelihood, for MLPs and for a conv net exercising the
``Conv2d``/``MaxPool2d``/``Flatten`` sample-dimension support.
"""

from functools import partial

import numpy as np
import pytest

from repro import nn, ppl
import repro.core as tyxe
from repro.nn.tensor import Tensor
from repro.ppl import distributions as dist
from repro.ppl.infer import Trace_ELBO, TraceMeanField_ELBO

ATOL = 1e-8


def _mlp(rng, in_dim=1, hidden=16, out_dim=1):
    return nn.Sequential(nn.Linear(in_dim, hidden, rng=rng), nn.Tanh(),
                         nn.Linear(hidden, out_dim, rng=rng))


def _regression_bnn(rng, n, guide_kwargs=None):
    net = _mlp(rng)
    return tyxe.VariationalBNN(net, tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0)),
                               tyxe.likelihoods.HomoskedasticGaussian(n, 0.1),
                               partial(tyxe.guides.AutoNormal, init_scale=0.05,
                                       **(guide_kwargs or {})))


def _classification_bnn(rng, n, num_classes=3):
    net = _mlp(rng, in_dim=2, hidden=12, out_dim=num_classes)
    return tyxe.VariationalBNN(net, tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0)),
                               tyxe.likelihoods.Categorical(n),
                               partial(tyxe.guides.AutoNormal, init_scale=0.05))


class TestVariationalPredictEquivalence:
    def test_regression_predict_matches_looped(self, rng):
        x = rng.standard_normal((40, 1))
        bnn = _regression_bnn(rng, len(x))
        bnn.predict(x, num_predictions=1)  # instantiate guide parameters
        ppl.set_rng_seed(123)
        looped = bnn.predict(x, num_predictions=16, aggregate=False)
        ppl.set_rng_seed(123)
        vectorized = bnn.predict(x, num_predictions=16, aggregate=False, vectorized=True)
        assert vectorized.shape == looped.shape == (16, 40, 1)
        np.testing.assert_allclose(vectorized.data, looped.data, atol=ATOL, rtol=0)

    def test_regression_aggregated_and_evaluate_match(self, rng):
        x = rng.standard_normal((25, 1))
        y = np.sin(2 * x)
        bnn = _regression_bnn(rng, len(x))
        bnn.predict(x, num_predictions=1)
        ppl.set_rng_seed(7)
        agg_looped = bnn.predict(x, num_predictions=8)
        ppl.set_rng_seed(7)
        agg_vec = bnn.predict(x, num_predictions=8, vectorized=True)
        np.testing.assert_allclose(agg_vec.data, agg_looped.data, atol=ATOL, rtol=0)
        ppl.set_rng_seed(7)
        ll_l, err_l = bnn.evaluate(x, y, num_predictions=8)
        ppl.set_rng_seed(7)
        ll_v, err_v = bnn.evaluate(x, y, num_predictions=8, vectorized=True)
        assert ll_v == pytest.approx(ll_l, abs=ATOL)
        assert err_v == pytest.approx(err_l, abs=ATOL)

    def test_classification_predict_matches_looped(self, rng):
        x = rng.standard_normal((30, 2))
        bnn = _classification_bnn(rng, len(x))
        bnn.predict(x, num_predictions=1)
        ppl.set_rng_seed(5)
        looped = bnn.predict(x, num_predictions=12, aggregate=False)
        ppl.set_rng_seed(5)
        vectorized = bnn.predict(x, num_predictions=12, aggregate=False, vectorized=True)
        np.testing.assert_allclose(vectorized.data, looped.data, atol=ATOL, rtol=0)
        ppl.set_rng_seed(5)
        agg_l = bnn.predict(x, num_predictions=12)
        ppl.set_rng_seed(5)
        agg_v = bnn.predict(x, num_predictions=12, vectorized=True)
        np.testing.assert_allclose(agg_v.data, agg_l.data, atol=ATOL, rtol=0)

    def test_fresh_guide_first_call_matches_looped(self, rng):
        # the very first predict also instantiates the variational parameters;
        # the vectorized path must reproduce the looped path's interleaved
        # init-draw/sample-draw RNG stream on that cold start
        x = rng.standard_normal((10, 1))

        def fresh(seed):
            ppl.clear_param_store()
            ppl.set_rng_seed(seed)
            return _regression_bnn(np.random.default_rng(2), len(x))

        looped = fresh(9).predict(x, num_predictions=4, aggregate=False)
        vectorized = fresh(9).predict(x, num_predictions=4, aggregate=False, vectorized=True)
        np.testing.assert_allclose(vectorized.data, looped.data, atol=ATOL, rtol=0)

    def test_frozen_loc_guide_matches_looped(self, rng):
        # the TyXe "sd only" guide configuration goes through the same path
        x = rng.standard_normal((10, 1))
        bnn = _regression_bnn(rng, len(x), guide_kwargs={"train_loc": False,
                                                         "max_guide_scale": 0.1})
        bnn.predict(x, num_predictions=1)
        ppl.set_rng_seed(3)
        looped = bnn.predict(x, num_predictions=4, aggregate=False)
        ppl.set_rng_seed(3)
        vectorized = bnn.predict(x, num_predictions=4, aggregate=False, vectorized=True)
        np.testing.assert_allclose(vectorized.data, looped.data, atol=ATOL, rtol=0)


class TestVectorizedGuideCoverage:
    def test_latent_likelihood_scale_matches_looped(self, rng):
        # a guide-covered latent observation scale is replayed as a (K,)
        # stack; it must score each particle's predictions with that
        # particle's scale only (regression: it used to broadcast (K,) vs
        # (K, N, 1) into (K, N, K) and silently compute a wrong loss)
        x = rng.standard_normal((20, 1))
        y = np.sin(2 * x)
        net = _mlp(rng)
        bnn = tyxe.VariationalBNN(
            net, tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0)),
            tyxe.likelihoods.HomoskedasticGaussian(len(x), dist.Normal(1.0, 0.1)),
            partial(tyxe.guides.AutoNormal, init_scale=0.05),
            likelihood_guide_builder=partial(tyxe.guides.AutoNormal, init_scale=0.05))
        bnn.predict(x, num_predictions=1)
        bnn.guide(x, y)  # instantiate the likelihood guide's parameters too
        ppl.set_rng_seed(13)
        loss_looped = Trace_ELBO(num_particles=4).loss(bnn.model, bnn.guide, x, y)
        ppl.set_rng_seed(13)
        loss_vec = Trace_ELBO(num_particles=4, vectorize_particles=True).loss(
            bnn.model, bnn.guide, x, y)
        assert loss_vec == pytest.approx(loss_looped, rel=1e-10)

    def _latent_scale_bnn(self, rng, x):
        net = _mlp(rng)
        return tyxe.VariationalBNN(
            net, tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0)),
            tyxe.likelihoods.HomoskedasticGaussian(len(x), dist.Normal(1.0, 0.1)),
            partial(tyxe.guides.AutoNormal, init_scale=0.05))

    @pytest.mark.parametrize("elbo_cls", [Trace_ELBO, TraceMeanField_ELBO])
    def test_uncovered_latent_site_single_particle_matches_exactly(self, rng, elbo_cls):
        # a latent scale sampled from the prior (no likelihood guide) used to
        # make the vectorized estimator refuse; it now draws per-particle
        # prior samples inside the replay.  With one particle the batched
        # draw consumes the RNG stream exactly like the looped draw, so the
        # losses — and the guide-parameter gradients — agree bit-for-bit.
        x = rng.standard_normal((10, 1))
        y = np.sin(x)
        bnn = self._latent_scale_bnn(rng, x)
        bnn.predict(x, num_predictions=1)
        ppl.set_rng_seed(11)
        loss_looped = elbo_cls(num_particles=1).differentiable_loss(bnn.model, bnn.guide, x, y)
        ppl.set_rng_seed(11)
        loss_vec = elbo_cls(num_particles=1, vectorize_particles=True).differentiable_loss(
            bnn.model, bnn.guide, x, y)
        assert float(loss_vec.item()) == pytest.approx(float(loss_looped.item()), rel=1e-12)
        params = bnn.guide_parameters()
        assert params
        for p in params:
            p.grad = None
        loss_looped.backward()
        grads = [p.grad.copy() for p in params]
        for p in params:
            p.grad = None
        loss_vec.backward()
        for g, p in zip(grads, params):
            np.testing.assert_allclose(p.grad, g, atol=1e-12, rtol=1e-12)

    @pytest.mark.parametrize("elbo_cls", [Trace_ELBO, TraceMeanField_ELBO])
    def test_uncovered_latent_site_deterministic_guide_matches_exactly(self, rng, elbo_cls):
        # with an AutoDelta guide the guide stack consumes no randomness, so
        # the only RNG the estimator touches is the uncovered site's prior
        # draws — which the batched (K,) draw consumes exactly like K looped
        # per-particle draws.  Multi-particle losses therefore match exactly.
        x = rng.standard_normal((8, 1))
        y = np.sin(x)
        net = _mlp(rng)
        bnn = tyxe.VariationalBNN(
            net, tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0)),
            tyxe.likelihoods.HomoskedasticGaussian(len(x), dist.Normal(1.0, 0.1)),
            tyxe.guides.AutoDelta)
        bnn.predict(x, num_predictions=1)
        ppl.set_rng_seed(29)
        loss_looped = elbo_cls(num_particles=5).loss(bnn.model, bnn.guide, x, y)
        ppl.set_rng_seed(29)
        loss_vec = elbo_cls(num_particles=5, vectorize_particles=True).loss(
            bnn.model, bnn.guide, x, y)
        assert loss_vec == pytest.approx(loss_looped, rel=1e-12)

    def test_uncovered_latent_site_matches_looped_in_expectation(self, rng):
        # with a stochastic guide the coarse draw order differs (all guide
        # draws, then the prior stack), so multi-particle losses agree in
        # distribution rather than bit-for-bit: compare the estimators'
        # means over repeated evaluations against their standard errors
        x = rng.standard_normal((10, 1))
        y = np.sin(x)
        bnn = self._latent_scale_bnn(rng, x)
        bnn.predict(x, num_predictions=1)
        repeats = 60
        ppl.set_rng_seed(101)
        looped = np.array([Trace_ELBO(num_particles=3).loss(bnn.model, bnn.guide, x, y)
                           for _ in range(repeats)])
        ppl.set_rng_seed(202)
        vectorized = np.array([
            Trace_ELBO(num_particles=3, vectorize_particles=True).loss(bnn.model, bnn.guide, x, y)
            for _ in range(repeats)])
        stderr = np.hypot(looped.std(ddof=1), vectorized.std(ddof=1)) / np.sqrt(repeats)
        assert abs(looped.mean() - vectorized.mean()) < 5 * stderr

    def test_uncovered_bayesian_site_vectorized_predict(self, rng):
        # a Bayesian weight site hidden from the guide used to make
        # vectorized_forward refuse; it now draws stacked per-sample prior
        # values.  With an AutoDelta guide (no guide randomness) the
        # predictions are bit-identical to the looped path.
        x = rng.standard_normal((6, 1))
        net = _mlp(rng)
        bnn = tyxe.VariationalBNN(
            net, tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0)),
            tyxe.likelihoods.HomoskedasticGaussian(6, 0.1),
            lambda model: tyxe.guides.AutoDelta(
                ppl.poutine.block(model, hide=["0.bias"])))
        bnn.predict(x, num_predictions=1)
        ppl.set_rng_seed(17)
        looped = bnn.predict(x, num_predictions=4, aggregate=False)
        ppl.set_rng_seed(17)
        vectorized = bnn.predict(x, num_predictions=4, aggregate=False, vectorized=True)
        np.testing.assert_allclose(vectorized.data, looped.data, atol=ATOL, rtol=0)
        # the uncovered site's prior draws must differ per sample: the
        # predictions may not collapse onto one shared weight draw
        assert float(vectorized.data.std(axis=0).mean()) > 0

    def test_uncovered_bayesian_site_stochastic_guide_predicts(self, rng):
        # with a stochastic (AutoNormal) partial guide the draw order differs
        # from the looped path; check the single-prediction stream identity
        # and the multi-sample moments instead
        x = rng.standard_normal((6, 1))
        net = _mlp(rng)
        bnn = tyxe.VariationalBNN(
            net, tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0)),
            tyxe.likelihoods.HomoskedasticGaussian(6, 0.1),
            lambda model: tyxe.guides.AutoNormal(
                ppl.poutine.block(model, hide=["0.bias"]), init_scale=0.05))
        bnn.predict(x, num_predictions=1)
        ppl.set_rng_seed(23)
        looped = bnn.predict(x, num_predictions=1, aggregate=False)
        ppl.set_rng_seed(23)
        vectorized = bnn.predict(x, num_predictions=1, aggregate=False, vectorized=True)
        np.testing.assert_allclose(vectorized.data, looped.data, atol=ATOL, rtol=0)
        stack = bnn.predict(x, num_predictions=64, aggregate=False, vectorized=True)
        assert stack.shape == (64, 6, 1)
        assert float(stack.data.std(axis=0).mean()) > 0
        # posterior_weight_samples completes uncovered sites from the prior
        draws = bnn.posterior_weight_samples(3, Tensor(x))
        assert set(draws) == set(bnn.param_dists)
        assert draws["0.bias"].shape[0] == 3
        assert float(draws["0.bias"].data.std(axis=0).mean()) > 0


class TestConvNetPredictEquivalence:
    def test_convnet_with_pool_and_flatten_matches_looped(self, rng):
        x = rng.standard_normal((4, 1, 8, 8))
        net = nn.models.small_convnet(in_channels=1, image_size=8, num_classes=3,
                                      width=4, rng=rng)
        bnn = tyxe.VariationalBNN(net, tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0)),
                                  tyxe.likelihoods.Categorical(4),
                                  partial(tyxe.guides.AutoNormal, init_scale=0.05))
        bnn.predict(x, num_predictions=1)
        ppl.set_rng_seed(21)
        looped = bnn.predict(x, num_predictions=6, aggregate=False)
        ppl.set_rng_seed(21)
        vectorized = bnn.predict(x, num_predictions=6, aggregate=False, vectorized=True)
        assert vectorized.shape == (6, 4, 3)
        np.testing.assert_allclose(vectorized.data, looped.data, atol=ATOL, rtol=0)


class TestPytorchBNNVectorizedForward:
    def _pytorch_bnn(self, rng):
        net = _mlp(rng, in_dim=3, hidden=10, out_dim=4)
        return tyxe.PytorchBNN(net, tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0)),
                               partial(tyxe.guides.AutoNormal, init_scale=0.05))

    def test_vectorized_forward_matches_looped_forwards(self, rng):
        bnn = self._pytorch_bnn(rng)
        x = Tensor(rng.standard_normal((7, 3)))
        bnn.pytorch_parameters(x)
        ppl.set_rng_seed(4)
        looped = np.stack([bnn(x).data.copy() for _ in range(5)])
        ppl.set_rng_seed(4)
        with nn.no_grad():
            vectorized = bnn.vectorized_forward(x, num_samples=5)
        assert vectorized.shape == (5, 7, 4)
        np.testing.assert_allclose(vectorized.data, looped, atol=ATOL, rtol=0)

    def test_precomputed_samples_match_internal_draws(self, rng):
        bnn = self._pytorch_bnn(rng)
        x = Tensor(rng.standard_normal((5, 3)))
        bnn.pytorch_parameters(x)
        with nn.no_grad():
            ppl.set_rng_seed(8)
            internal = bnn.vectorized_forward(x, num_samples=3)
            ppl.set_rng_seed(8)
            draws = bnn.posterior_weight_samples(3, x)
            external = bnn.vectorized_forward(x, samples=draws)
        np.testing.assert_allclose(external.data, internal.data, atol=ATOL, rtol=0)

    def test_conflicting_num_samples_and_samples_rejected(self, rng):
        bnn = self._pytorch_bnn(rng)
        x = Tensor(rng.standard_normal((4, 3)))
        bnn.pytorch_parameters(x)
        with nn.no_grad():
            draws = bnn.posterior_weight_samples(2, x)
            with pytest.raises(ValueError, match="not both"):
                bnn.vectorized_forward(x, num_samples=5, samples=draws)

    def test_pytorch_parameters_preserves_rng_stream(self, rng):
        # parameter instantiation used to consume RNG draws as a side effect,
        # shifting the sampling stream before training even started
        x = Tensor(rng.standard_normal((4, 3)))
        ppl.set_rng_seed(123)
        bnn = self._pytorch_bnn(np.random.default_rng(0))
        params = bnn.pytorch_parameters(x)
        assert params  # the trace did run and created the guide parameters
        after = ppl.get_rng().standard_normal(8)
        ppl.set_rng_seed(123)
        np.testing.assert_array_equal(after, ppl.get_rng().standard_normal(8))


class TestPredictGroupedEquivalence:
    def test_matches_per_group_looped_predict(self, rng):
        x = rng.standard_normal((3, 12, 2))
        bnn = _classification_bnn(rng, 12)
        bnn.predict(x[0], num_predictions=1)
        ppl.set_rng_seed(6)
        looped = [bnn.predict(x[g], num_predictions=5, aggregate=False).data
                  for g in range(3)]
        ppl.set_rng_seed(6)
        grouped = bnn.predict_grouped(x, num_predictions=5, aggregate=False)
        assert grouped.shape == (3, 5, 12, 3)
        np.testing.assert_allclose(grouped.data, np.stack(looped), atol=ATOL, rtol=0)

    def test_aggregated_matches_per_group_predict(self, rng):
        x = rng.standard_normal((4, 9, 1))
        bnn = _regression_bnn(rng, 9)
        bnn.predict(x[0], num_predictions=1)
        ppl.set_rng_seed(14)
        looped = [bnn.predict(x[g], num_predictions=6).data for g in range(4)]
        ppl.set_rng_seed(14)
        grouped = bnn.predict_grouped(x, num_predictions=6)
        np.testing.assert_allclose(grouped.data, np.stack(looped), atol=ATOL, rtol=0)

    def test_rejects_non_grouped_input(self, rng):
        bnn = _regression_bnn(rng, 5)
        bnn.predict(rng.standard_normal((5, 1)), num_predictions=1)
        with pytest.raises(ValueError):
            bnn.predict_grouped(np.zeros(3), num_predictions=2)


class TestContinualEvaluationEquivalence:
    def _tasks_and_bnn(self, suite, rng_seed=0, single_head=True):
        from repro.experiments.continual import ContinualConfig, _make_net, _make_tasks

        config = ContinualConfig.fast(suite)
        config.single_head = single_head
        config.train_per_class = 4
        config.test_per_class = 3
        config.image_size = 8 if suite == "cifar" else 4
        tasks = _make_tasks(config)
        net = _make_net(config, np.random.default_rng(rng_seed))
        bnn = tyxe.VariationalBNN(net, tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0)),
                                  tyxe.likelihoods.Categorical(len(tasks[0].train_inputs)),
                                  partial(tyxe.guides.AutoNormal, init_scale=0.05))
        bnn.predict(tasks[0].test_inputs, num_predictions=1)
        return tasks, net, bnn

    @pytest.mark.parametrize("suite", ["mnist", "cifar"])
    def test_vectorized_accuracies_match_looped(self, suite):
        from repro.experiments.continual import _evaluate_task_accuracies

        tasks, net, bnn = self._tasks_and_bnn(suite)
        ppl.set_rng_seed(9)
        looped = _evaluate_task_accuracies(bnn, net, tasks, 4, vectorized=False)
        ppl.set_rng_seed(9)
        vectorized = _evaluate_task_accuracies(bnn, net, tasks, 4, vectorized=True)
        assert looped == vectorized

    def test_mismatched_test_set_sizes_fall_back_to_per_task(self):
        from repro.experiments.continual import _evaluate_task_accuracies

        tasks, net, bnn = self._tasks_and_bnn("mnist")
        tasks[0].test_inputs = tasks[0].test_inputs[:-1]
        tasks[0].test_labels = tasks[0].test_labels[:-1]
        ppl.set_rng_seed(21)
        looped = _evaluate_task_accuracies(bnn, net, tasks, 3, vectorized=False)
        ppl.set_rng_seed(21)
        vectorized = _evaluate_task_accuracies(bnn, net, tasks, 3, vectorized=True)
        assert looped == vectorized

    def test_multi_head_shares_one_batched_forward(self):
        # single_head=False: the head-indexed batched forward (task schedule)
        # must agree with the looped reference and with the legacy per-task
        # predict(vectorized=True) fallback exactly, logits included
        from repro.experiments.continual import _evaluate_task_accuracies

        tasks, net, bnn = self._tasks_and_bnn("mnist", single_head=False)
        assert len(net.heads) == len(tasks) > 1
        ppl.set_rng_seed(33)
        looped = _evaluate_task_accuracies(bnn, net, tasks, 4, vectorized=False)
        ppl.set_rng_seed(33)
        vectorized = _evaluate_task_accuracies(bnn, net, tasks, 4, vectorized=True)
        assert looped == vectorized

        ppl.set_rng_seed(33)
        per_task = []
        for task in tasks:
            net.set_active_task(task.task_id)
            per_task.append(bnn.predict(nn.Tensor(task.test_inputs), num_predictions=4,
                                        aggregate=False, vectorized=True).data)
        ppl.set_rng_seed(33)
        net.set_task_schedule(np.repeat([t.task_id for t in tasks], 4))
        try:
            grouped = bnn.predict_grouped(np.stack([t.test_inputs for t in tasks]),
                                          num_predictions=4, aggregate=False)
        finally:
            net.set_task_schedule(None)
        np.testing.assert_allclose(grouped.data, np.stack(per_task), atol=ATOL, rtol=0)

    def test_task_schedule_validates_length(self):
        tasks, net, bnn = self._tasks_and_bnn("mnist", single_head=False)
        net.set_task_schedule([0, 1])
        try:
            with pytest.raises(ValueError, match="schedule"):
                with nn.no_grad():
                    net(nn.Tensor(np.stack([t.test_inputs for t in tasks])))
        finally:
            net.set_task_schedule(None)


class TestMCMCPredictEquivalence:
    def _bnn_with_samples(self, rng, total=9):
        net = _mlp(rng, in_dim=2, hidden=6, out_dim=2)
        bnn = tyxe.MCMC_BNN(net, tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0)),
                            tyxe.likelihoods.Categorical(10),
                            kernel_builder=lambda model: None)
        bnn._weight_samples = {name: rng.standard_normal((total,) + bnn.net.get_parameter(name).shape)
                               for name in bnn.param_dists}
        return bnn

    def test_predict_matches_looped(self, rng):
        bnn = self._bnn_with_samples(rng)
        x = rng.standard_normal((15, 2))
        looped = bnn.predict(x, num_predictions=5, aggregate=False)
        vectorized = bnn.predict(x, num_predictions=5, aggregate=False, vectorized=True)
        np.testing.assert_allclose(vectorized.data, looped.data, atol=ATOL, rtol=0)
        agg_l = bnn.predict(x, num_predictions=5)
        agg_v = bnn.predict(x, num_predictions=5, vectorized=True)
        np.testing.assert_allclose(agg_v.data, agg_l.data, atol=ATOL, rtol=0)


class TestVectorizedELBOEquivalence:
    @pytest.mark.parametrize("elbo_cls", [Trace_ELBO, TraceMeanField_ELBO])
    def test_regression_loss_and_grads_match(self, rng, elbo_cls):
        x = rng.standard_normal((20, 1))
        y = np.sin(2 * x) + 0.1 * rng.standard_normal((20, 1))
        bnn = _regression_bnn(rng, len(x))
        bnn.predict(x, num_predictions=1)
        ppl.set_rng_seed(99)
        loss_looped = elbo_cls(num_particles=4).differentiable_loss(bnn.model, bnn.guide, x, y)
        ppl.set_rng_seed(99)
        loss_vec = elbo_cls(num_particles=4, vectorize_particles=True).differentiable_loss(
            bnn.model, bnn.guide, x, y)
        assert float(loss_vec.item()) == pytest.approx(float(loss_looped.item()), rel=1e-10)
        params = bnn.guide_parameters()
        assert params
        for p in params:
            p.grad = None
        loss_looped.backward()
        grads_looped = [p.grad.copy() for p in params]
        for p in params:
            p.grad = None
        loss_vec.backward()
        for g_looped, p in zip(grads_looped, params):
            np.testing.assert_allclose(p.grad, g_looped, atol=1e-9, rtol=1e-9)

    @pytest.mark.parametrize("elbo_cls", [Trace_ELBO, TraceMeanField_ELBO])
    def test_classification_loss_matches(self, rng, elbo_cls):
        x = rng.standard_normal((18, 2))
        y = rng.integers(0, 3, 18)
        bnn = _classification_bnn(rng, len(x))
        bnn.predict(x, num_predictions=1)
        ppl.set_rng_seed(31)
        loss_looped = elbo_cls(num_particles=3).loss(bnn.model, bnn.guide, x, y)
        ppl.set_rng_seed(31)
        loss_vec = elbo_cls(num_particles=3, vectorize_particles=True).loss(
            bnn.model, bnn.guide, x, y)
        assert loss_vec == pytest.approx(loss_looped, rel=1e-10)

    def test_single_particle_vectorized_matches(self, rng):
        x = rng.standard_normal((10, 1))
        y = np.sin(x)
        bnn = _regression_bnn(rng, len(x))
        bnn.predict(x, num_predictions=1)
        ppl.set_rng_seed(17)
        loss_looped = Trace_ELBO(num_particles=1).loss(bnn.model, bnn.guide, x, y)
        ppl.set_rng_seed(17)
        loss_vec = Trace_ELBO(num_particles=1, vectorize_particles=True).loss(
            bnn.model, bnn.guide, x, y)
        assert loss_vec == pytest.approx(loss_looped, rel=1e-10)

    def test_fit_with_vectorized_particles_reduces_loss(self, rng):
        x = rng.standard_normal((24, 1))
        y = np.sin(2 * x)
        bnn = _regression_bnn(rng, len(x))
        loader = nn.DataLoader(nn.TensorDataset(x, y), batch_size=12, rng=rng)
        losses = []
        bnn.fit(loader, ppl.optim.Adam({"lr": 1e-2}), num_epochs=15, num_particles=2,
                vectorize_particles=True,
                callback=lambda b, e, l: losses.append(l) or False)
        assert losses[-1] < losses[0]
