"""Tests for the Monte Carlo dropout effect handler (paper Appendix D)."""

import numpy as np
import pytest

from repro import nn
import repro.core as tyxe
from repro.nn import functional as F
from repro.nn.tensor import Tensor


@pytest.fixture
def dropout_net(rng):
    return nn.Sequential(nn.Linear(4, 32, rng=rng), nn.ReLU(), nn.Dropout(0.5),
                         nn.Linear(32, 2, rng=rng))


class TestMCDropoutMessenger:
    def test_forces_dropout_in_eval_mode(self, dropout_net, rng):
        dropout_net.eval()
        x = Tensor(rng.standard_normal((6, 4)))
        plain1, plain2 = dropout_net(x).data, dropout_net(x).data
        np.testing.assert_allclose(plain1, plain2)  # eval dropout is a no-op
        with tyxe.poutine.mc_dropout():
            mc1, mc2 = dropout_net(x).data, dropout_net(x).data
        assert not np.allclose(mc1, mc2)  # stochastic even in eval mode

    def test_handler_unregisters_on_exit(self, dropout_net, rng):
        dropout_net.eval()
        x = Tensor(rng.standard_normal((3, 4)))
        with tyxe.poutine.mc_dropout():
            pass
        out1, out2 = dropout_net(x).data, dropout_net(x).data
        np.testing.assert_allclose(out1, out2)

    def test_fixed_mask_reuses_sample(self, dropout_net, rng):
        dropout_net.eval()
        x = Tensor(rng.standard_normal((5, 4)))
        with tyxe.poutine.mc_dropout(fix_mask=True) as handler:
            out1, out2 = dropout_net(x).data, dropout_net(x).data
            np.testing.assert_allclose(out1, out2)  # same mask across calls
            handler.reset_masks()
            out3 = dropout_net(x).data
        assert not np.allclose(out1, out3)

    def test_override_probability(self, rng):
        x = Tensor(np.ones((1, 1000)))
        with tyxe.poutine.mc_dropout(p=0.9):
            out = F.dropout(x, p=0.1, training=False)
        dropped_fraction = (out.data == 0).mean()
        assert dropped_fraction > 0.8  # the handler's p overrides the call's p

    def test_zero_probability_is_identity(self, rng):
        x = Tensor(rng.standard_normal((4, 4)))
        with tyxe.poutine.mc_dropout(p=0.0):
            out = F.dropout(x, p=0.5, training=False)
        np.testing.assert_allclose(out.data, x.data)

    def test_predictive_uncertainty_from_mc_dropout(self, dropout_net, rng):
        """MC dropout gives non-degenerate predictive variance on a trained net."""
        x = rng.standard_normal((64, 4))
        y = (x[:, 0] > 0).astype(int)
        optim = nn.Adam(dropout_net.parameters(), lr=1e-2)
        for _ in range(50):
            optim.zero_grad()
            loss = F.cross_entropy(dropout_net(Tensor(x)), y)
            loss.backward()
            optim.step()
        dropout_net.eval()
        with tyxe.poutine.mc_dropout():
            samples = np.stack([F.softmax(dropout_net(Tensor(x[:8]))).data for _ in range(16)])
        assert samples.std(axis=0).mean() > 1e-3

    def test_dropout_handler_registry_roundtrip(self):
        class Constant:
            def process_dropout(self, x, p, training, default_fn):
                return x * 0.0

        handler = Constant()
        F.register_dropout_handler(handler)
        try:
            out = F.dropout(Tensor(np.ones(3)), p=0.5, training=True)
            np.testing.assert_allclose(out.data, 0.0)
        finally:
            F.unregister_dropout_handler(handler)
        out = F.dropout(Tensor(np.ones(3)), p=0.0, training=True)
        np.testing.assert_allclose(out.data, 1.0)
