"""Tests for the BNN-specific effect handlers: local reparameterization,
flipout and selective masking."""

from functools import partial

import numpy as np
import pytest

from repro import nn, ppl
import repro.core as tyxe
from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.ppl import distributions as dist
from repro.ppl import poutine as ppl_poutine


def _register_weight_sample(messenger, weight_value, loc, scale):
    """Feed a fake sample message through the messenger's bookkeeping."""
    messenger.postprocess_message({
        "type": "sample",
        "name": "w",
        "fn": dist.Normal(Tensor(loc), Tensor(scale)).to_event(2),
        "value": weight_value,
        "is_observed": False,
    })


class TestLocalReparameterization:
    def test_linear_output_distribution_matches_weight_sampling(self, rng):
        """Sampling pre-activations must give the same mean/variance as sampling weights.

        The weight-sampling distribution of ``x W^T`` with ``W ~ N(loc, scale^2)``
        factorized has mean ``x loc^T`` and variance ``x^2 (scale^2)^T``; the
        messenger's output samples must match those analytic moments.
        """
        ppl.set_rng_seed(0)
        x = rng.standard_normal((1, 3))
        loc = rng.standard_normal((4, 3))
        scale = np.full((4, 3), 0.5)
        expected_mean = x @ loc.T
        expected_std = np.sqrt((x ** 2) @ (scale ** 2).T)

        messenger = tyxe.poutine.LocalReparameterizationMessenger()
        outs = []
        num_samples = 5000
        with messenger:
            weight = Tensor(loc)  # the actual sampled value is ignored by local reparam
            _register_weight_sample(messenger, weight, loc, scale)
            for _ in range(num_samples):
                outs.append(F.linear(Tensor(x), weight, None).data)
        ours = np.stack(outs)
        # tolerances: ~5 standard errors of the Monte Carlo estimates
        mean_tol = 5 * expected_std / np.sqrt(num_samples)
        assert np.all(np.abs(ours.mean(0) - expected_mean) < mean_tol)
        np.testing.assert_allclose(ours.std(0), expected_std, rtol=0.1)

    def test_per_datapoint_samples_are_decorrelated(self, rng):
        """With a shared weight sample the outputs for identical rows are identical;
        under local reparameterization they differ."""
        x = np.tile(rng.standard_normal((1, 3)), (2, 1))
        loc, scale = rng.standard_normal((4, 3)), np.full((4, 3), 0.5)
        messenger = tyxe.poutine.LocalReparameterizationMessenger()
        with messenger:
            weight = Tensor(loc)
            _register_weight_sample(messenger, weight, loc, scale)
            out = F.linear(Tensor(x), weight, None).data
        assert not np.allclose(out[0], out[1])

    def test_ignores_unregistered_weights(self, rng):
        x, w = Tensor(rng.standard_normal((2, 3))), Tensor(rng.standard_normal((4, 3)))
        with tyxe.poutine.local_reparameterization():
            out = F.linear(x, w, None)
        np.testing.assert_allclose(out.data, x.data @ w.data.T)

    def test_conv2d_variance_increases_with_scale(self, rng):
        x = rng.standard_normal((1, 2, 5, 5))
        loc = rng.standard_normal((3, 2, 3, 3)) * 0.1

        def conv_std(scale_value):
            messenger = tyxe.poutine.LocalReparameterizationMessenger()
            outs = []
            with messenger:
                weight = Tensor(loc)
                messenger.postprocess_message({
                    "type": "sample", "name": "w", "value": weight, "is_observed": False,
                    "fn": dist.Normal(Tensor(loc), Tensor(np.full(loc.shape, scale_value))).to_event(4),
                })
                for _ in range(200):
                    outs.append(F.conv2d(x if isinstance(x, Tensor) else Tensor(x), weight,
                                         None, stride=1, padding=1).data)
            return np.stack(outs).std(0).mean()

        assert conv_std(0.5) > conv_std(0.05)

    def test_handler_registered_and_unregistered(self):
        before = len(F.active_linear_op_handlers())
        with tyxe.poutine.local_reparameterization():
            assert len(F.active_linear_op_handlers()) == before + 1
        assert len(F.active_linear_op_handlers()) == before

    def test_gradient_flows_to_variational_parameters(self, rng):
        loc = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        scale = Tensor(np.full((4, 3), 0.3), requires_grad=True)
        messenger = tyxe.poutine.LocalReparameterizationMessenger()
        with messenger:
            weight = Tensor(loc.data)
            messenger.postprocess_message({
                "type": "sample", "name": "w", "value": weight, "is_observed": False,
                "fn": dist.Normal(loc, scale).to_event(2),
            })
            out = F.linear(Tensor(rng.standard_normal((5, 3))), weight, None)
        (out ** 2).sum().backward()
        assert loc.grad is not None and scale.grad is not None


class TestFlipout:
    def test_marginal_distribution_preserved(self, rng):
        ppl.set_rng_seed(0)
        x = rng.standard_normal((1, 3))
        loc = rng.standard_normal((4, 3))
        scale = np.full((4, 3), 0.5)
        messenger = tyxe.poutine.FlipoutMessenger()
        outs = []
        with messenger:
            for _ in range(4000):
                w_sample = Tensor(loc + scale * rng.standard_normal((4, 3)))
                _register_weight_sample(messenger, w_sample, loc, scale)
                outs.append(F.linear(Tensor(x), w_sample, None).data)
        ours = np.stack(outs)
        expected_mean = x @ loc.T
        expected_std = np.sqrt((x ** 2) @ (scale ** 2).T)
        np.testing.assert_allclose(ours.mean(0), expected_mean, atol=0.06)
        np.testing.assert_allclose(ours.std(0), expected_std, rtol=0.1)

    def test_decorrelates_identical_inputs(self, rng):
        x = np.tile(rng.standard_normal((1, 3)), (2, 1))
        loc, scale = rng.standard_normal((4, 3)), np.full((4, 3), 0.5)
        messenger = tyxe.poutine.FlipoutMessenger()
        with messenger:
            w_sample = Tensor(loc + scale * rng.standard_normal((4, 3)))
            _register_weight_sample(messenger, w_sample, loc, scale)
            out = F.linear(Tensor(x), w_sample, None).data
        assert not np.allclose(out[0], out[1])

    def test_conv2d_flipout_shape(self, rng):
        x = Tensor(rng.standard_normal((2, 2, 5, 5)))
        loc = rng.standard_normal((3, 2, 3, 3))
        messenger = tyxe.poutine.FlipoutMessenger()
        with messenger:
            w_sample = Tensor(loc + 0.1 * rng.standard_normal(loc.shape))
            messenger.postprocess_message({
                "type": "sample", "name": "w", "value": w_sample, "is_observed": False,
                "fn": dist.Normal(Tensor(loc), Tensor(np.full(loc.shape, 0.1))).to_event(4),
            })
            out = F.conv2d(x, w_sample, None, stride=1, padding=1)
        assert out.shape == (2, 3, 5, 5)


class TestSelectiveMask:
    def test_masks_only_exposed_sites(self):
        def model():
            ppl.sample("likelihood.data", dist.Normal(0.0, 1.0), obs=np.array([1.0, 1.0, 1.0]))
            ppl.sample("other", dist.Normal(0.0, 1.0), obs=np.array(1.0))

        mask = np.array([1.0, 0.0, 0.0])
        with_mask = tyxe.poutine.selective_mask(mask=mask, expose=["likelihood.data"])
        tr = ppl_poutine.trace(with_mask(model)).get_trace()
        tr.compute_log_prob()
        single = dist.Normal(0.0, 1.0).log_prob(np.array(1.0)).item()
        assert tr["likelihood.data"]["log_prob_sum"].item() == pytest.approx(single)
        assert tr["other"]["log_prob_sum"].item() == pytest.approx(single)

    def test_hide_semantics(self):
        def model():
            ppl.sample("a", dist.Normal(0.0, 1.0), obs=np.array([1.0, 1.0]))
            ppl.sample("b", dist.Normal(0.0, 1.0), obs=np.array([1.0, 1.0]))

        mask = np.array([1.0, 0.0])
        handler = tyxe.poutine.selective_mask(mask=mask, hide=["b"])
        tr = ppl_poutine.trace(handler(model)).get_trace()
        tr.compute_log_prob()
        single = dist.Normal(0.0, 1.0).log_prob(np.array(1.0)).item()
        assert tr["a"]["log_prob_sum"].item() == pytest.approx(single)
        assert tr["b"]["log_prob_sum"].item() == pytest.approx(2 * single)

    def test_composes_with_existing_mask(self):
        def model():
            ppl.sample("x", dist.Normal(0.0, 1.0), obs=np.array([1.0, 1.0, 1.0]))

        def wrapped():
            with ppl_poutine.mask(mask=np.array([1.0, 1.0, 0.0])):
                with tyxe.poutine.selective_mask(mask=np.array([1.0, 0.0, 1.0]), expose=["x"]):
                    model()

        tr = ppl_poutine.trace(wrapped).get_trace()
        tr.compute_log_prob()
        single = dist.Normal(0.0, 1.0).log_prob(np.array(1.0)).item()
        assert tr["x"]["log_prob_sum"].item() == pytest.approx(single)

    def test_gnn_style_usage_with_bnn_fit(self, rng):
        """Masked semi-supervised training runs end to end (Listing 4 shape)."""
        from repro.datasets import make_citation_graph
        from repro.gnn import two_layer_gcn

        data = make_citation_graph(num_nodes=40, num_classes=3, feature_dim=8,
                                   train_per_class=3, val_per_class=3, seed=0)
        gnn = two_layer_gcn(data.num_features, 8, data.num_classes, rng=rng)
        bnn = tyxe.VariationalBNN(gnn, tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0)),
                                  tyxe.likelihoods.Categorical(dataset_size=data.graph.num_nodes),
                                  partial(tyxe.guides.AutoNormal, init_scale=1e-2))
        features = Tensor(data.features)
        train_data = [((data.graph, features), Tensor(data.labels))]
        with tyxe.poutine.selective_mask(mask=data.train_mask.astype(float),
                                         expose=[bnn.likelihood.data_site]):
            bnn.fit(train_data, ppl.optim.Adam({"lr": 1e-2}), 3)
        preds = bnn.predict((data.graph, features), num_predictions=2)
        assert preds.shape == (40, 3)
