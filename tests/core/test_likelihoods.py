"""Unit tests for the likelihood classes."""

import numpy as np
import pytest

from repro import ppl
import repro.core as tyxe
from repro.nn.tensor import Tensor
from repro.ppl import distributions as dist
from repro.ppl import poutine


class TestCategorical:
    def test_data_site_name_and_scaling(self):
        lik = tyxe.likelihoods.Categorical(dataset_size=100)
        logits = Tensor(np.random.default_rng(0).standard_normal((10, 3)))
        labels = np.random.default_rng(1).integers(0, 3, 10)
        tr = poutine.trace(lambda: lik(logits, labels)).get_trace()
        assert lik.data_site in tr
        assert tr[lik.data_site]["scale"] == pytest.approx(10.0)  # 100 / batch of 10

    def test_log_likelihood_matches_manual(self, rng):
        lik = tyxe.likelihoods.Categorical(dataset_size=10)
        logits = rng.standard_normal((6, 4))
        labels = rng.integers(0, 4, 6)
        manual = dist.Categorical(logits=logits).log_prob(labels).data.mean()
        assert lik.log_likelihood(Tensor(logits), Tensor(labels)) == pytest.approx(manual)

    def test_error_is_classification_error(self):
        lik = tyxe.likelihoods.Categorical(dataset_size=4)
        logits = np.array([[5.0, 0.0], [0.0, 5.0], [5.0, 0.0], [0.0, 5.0]])
        labels = np.array([0, 1, 1, 1])
        assert lik.error(Tensor(logits), Tensor(labels)) == pytest.approx(0.25)

    def test_aggregate_predictions_averages_probabilities(self, rng):
        lik = tyxe.likelihoods.Categorical(dataset_size=4)
        stacked = Tensor(rng.standard_normal((5, 3, 4)))
        agg = lik.aggregate_predictions(stacked)
        assert agg.shape == (3, 4)
        probs = np.exp(agg.data)
        np.testing.assert_allclose(probs.sum(-1), 1.0, rtol=1e-6)

    def test_prob_parameterization(self, rng):
        lik = tyxe.likelihoods.Categorical(dataset_size=4, logit_predictions=False)
        probs = np.full((2, 2), 0.5)
        np.testing.assert_allclose(lik.probs(Tensor(probs)).data, probs)


class TestBernoulli:
    def test_error_thresholds_at_half(self):
        lik = tyxe.likelihoods.Bernoulli(dataset_size=4)
        logits = np.array([2.0, -2.0, 2.0, -2.0])
        labels = np.array([1.0, 0.0, 0.0, 0.0])
        assert lik.error(Tensor(logits), Tensor(labels)) == pytest.approx(0.25)

    def test_log_likelihood(self):
        lik = tyxe.likelihoods.Bernoulli(dataset_size=2)
        logits = np.array([0.0, 0.0])
        labels = np.array([1.0, 0.0])
        assert lik.log_likelihood(Tensor(logits), Tensor(labels)) == pytest.approx(np.log(0.5))

    def test_aggregation(self, rng):
        lik = tyxe.likelihoods.Bernoulli(dataset_size=4)
        stacked = Tensor(rng.standard_normal((7, 5)))
        assert lik.aggregate_predictions(stacked).shape == (5,)


class TestHomoskedasticGaussian:
    def test_data_site_scaling_under_minibatch(self, rng):
        lik = tyxe.likelihoods.HomoskedasticGaussian(dataset_size=80, scale=0.1)
        preds = Tensor(rng.standard_normal((8, 1)))
        obs = Tensor(rng.standard_normal((8, 1)))
        tr = poutine.trace(lambda: lik(preds, obs)).get_trace()
        assert tr[lik.data_site]["scale"] == pytest.approx(10.0)

    def test_log_likelihood_matches_normal(self, rng):
        lik = tyxe.likelihoods.HomoskedasticGaussian(dataset_size=5, scale=0.3)
        preds, targets = rng.standard_normal(5), rng.standard_normal(5)
        manual = dist.Normal(preds, 0.3).log_prob(targets).data.mean()
        assert lik.log_likelihood(Tensor(preds), Tensor(targets)) == pytest.approx(manual)

    def test_error_is_squared_error(self):
        lik = tyxe.likelihoods.HomoskedasticGaussian(dataset_size=2, scale=1.0)
        preds = np.array([[1.0], [2.0]])
        targets = np.array([[0.0], [4.0]])
        assert lik.error(Tensor(preds), Tensor(targets)) == pytest.approx((1.0 + 4.0) / 2)

    def test_aggregate_is_mean_over_samples(self, rng):
        lik = tyxe.likelihoods.HomoskedasticGaussian(dataset_size=4, scale=1.0)
        stacked = rng.standard_normal((6, 3, 1))
        np.testing.assert_allclose(lik.aggregate_predictions(Tensor(stacked)).data,
                                   stacked.mean(axis=0))

    def test_predictive_stddev_combines_noise_and_epistemic(self, rng):
        lik = tyxe.likelihoods.HomoskedasticGaussian(dataset_size=4, scale=0.1)
        stacked = Tensor(rng.standard_normal((50, 3, 1)))
        std = lik.predictive_stddev(stacked)
        epistemic = stacked.data.std(axis=0)
        assert np.all(std >= epistemic - 1e-9)
        assert np.all(std >= 0.1 - 1e-9)

    def test_latent_scale_site(self):
        scale_prior = dist.LogNormal(0.0, 0.1)
        lik = tyxe.likelihoods.HomoskedasticGaussian(dataset_size=4, scale=scale_prior)
        assert lik.scale_is_latent
        preds = Tensor(np.zeros(4))
        tr = poutine.trace(lambda: lik(preds, Tensor(np.zeros(4)))).get_trace()
        assert "likelihood.scale" in tr
        assert not tr["likelihood.scale"]["is_observed"]


class TestHeteroskedasticGaussian:
    def test_split_and_log_likelihood(self, rng):
        lik = tyxe.likelihoods.HeteroskedasticGaussian(dataset_size=3)
        means = rng.standard_normal((3, 2))
        raw_scales = rng.standard_normal((3, 2))
        preds = np.concatenate([means, raw_scales], axis=-1)
        targets = rng.standard_normal((3, 2))
        scales = np.logaddexp(0, raw_scales) + 1e-6
        manual = dist.Normal(means, scales).log_prob(targets).data
        # per-example log densities are summed over the output dimension, then averaged
        assert lik.log_likelihood(Tensor(preds), Tensor(targets)) == pytest.approx(
            manual.sum(-1).mean(), rel=1e-6)

    def test_rejects_odd_dimension(self):
        lik = tyxe.likelihoods.HeteroskedasticGaussian(dataset_size=3)
        with pytest.raises(ValueError):
            lik.predictive_distribution(Tensor(np.zeros((2, 3))))

    def test_aggregation_precision_weighted(self, rng):
        lik = tyxe.likelihoods.HeteroskedasticGaussian(dataset_size=3, positive_scale=True)
        means = np.stack([np.zeros((4, 1)), np.ones((4, 1))])
        scales = np.stack([np.full((4, 1), 0.1), np.full((4, 1), 10.0)])
        preds = Tensor(np.concatenate([means, scales], axis=-1))
        agg = lik.aggregate_predictions(preds)
        agg_mean = agg.data[..., 0]
        # the low-variance component (mean 0) should dominate
        assert np.all(agg_mean < 0.1)

    def test_error_uses_mean_component(self):
        lik = tyxe.likelihoods.HeteroskedasticGaussian(dataset_size=2, positive_scale=True)
        preds = np.array([[1.0, 1.0], [2.0, 1.0]])
        targets = np.array([[0.0], [0.0]])
        assert lik.error(Tensor(preds), Tensor(targets)) == pytest.approx((1 + 4) / 2)


class TestPoisson:
    def test_log_likelihood_positive_rate(self, rng):
        lik = tyxe.likelihoods.Poisson(dataset_size=5)
        preds = rng.standard_normal(5)
        counts = rng.poisson(2.0, 5).astype(float)
        value = lik.log_likelihood(Tensor(preds), Tensor(counts))
        assert np.isfinite(value)

    def test_error_is_squared_error_on_rate(self):
        lik = tyxe.likelihoods.Poisson(dataset_size=1)
        preds = Tensor(np.array([[0.0]]))
        rate = np.logaddexp(0, 0.0) + 1e-6
        assert lik.error(preds, Tensor(np.array([[2.0]]))) == pytest.approx((rate - 2.0) ** 2)

    def test_aggregate_averages_rates(self, rng):
        # aggregation must happen in rate space: softplus is convex, so
        # averaging raw outputs first would understate the mean rate (Jensen)
        lik = tyxe.likelihoods.Poisson(dataset_size=1)
        stacked = rng.standard_normal((3, 4))
        agg = lik.aggregate_predictions(Tensor(stacked))
        per_sample_rates = lik.predictive_distribution(Tensor(stacked)).rate.data
        np.testing.assert_allclose(lik.predictive_distribution(agg).rate.data,
                                   per_sample_rates.mean(axis=0), rtol=1e-9)


class TestLikelihoodBase:
    def test_repr(self):
        assert "dataset_size=7" in repr(tyxe.likelihoods.Categorical(dataset_size=7))

    def test_custom_site_name(self):
        lik = tyxe.likelihoods.Categorical(dataset_size=3, name="obs_model")
        assert lik.data_site == "obs_model.data"

    def test_sampling_without_obs_draws_from_predictive(self, rng):
        lik = tyxe.likelihoods.Categorical(dataset_size=5)
        logits = Tensor(rng.standard_normal((5, 3)))
        sampled = lik(logits, obs=None)
        assert sampled.shape == (5,)
        assert np.all((sampled.data >= 0) & (sampled.data < 3))
