"""Tests for ``repro.core.util`` helpers."""

import numpy as np
import pytest

from repro import nn
import repro.core as tyxe
from repro.core.util import fan_in_fan_out, named_pyro_samples, pyro_sample_sites, to_numpy
from repro.nn.tensor import Tensor
from repro.ppl import distributions as dist


@pytest.fixture
def bnn(rng):
    net = nn.Sequential(nn.Linear(2, 4, rng=rng), nn.ReLU(), nn.Linear(4, 1, rng=rng))
    return tyxe.VariationalBNN(net, tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0)),
                               tyxe.likelihoods.HomoskedasticGaussian(10, 0.1),
                               tyxe.guides.AutoNormal)


class TestPyroSampleSites:
    def test_returns_all_bayesian_sites(self, bnn):
        sites = pyro_sample_sites(bnn)
        assert set(sites) == {"0.weight", "0.bias", "2.weight", "2.bias"}

    def test_respects_prior_hiding(self, rng):
        net = nn.Sequential(nn.Linear(2, 4, rng=rng), nn.ReLU(), nn.Linear(4, 1, rng=rng))
        prior = tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0), hide_parameters=["bias"])
        bnn = tyxe.VariationalBNN(net, prior, tyxe.likelihoods.HomoskedasticGaussian(10, 0.1),
                                  tyxe.guides.AutoNormal)
        assert set(pyro_sample_sites(bnn)) == {"0.weight", "2.weight"}

    def test_rejects_plain_objects(self):
        with pytest.raises(TypeError):
            pyro_sample_sites(object())

    def test_named_pyro_samples_returns_distributions(self, bnn):
        dists = named_pyro_samples(bnn)
        assert set(dists) == set(pyro_sample_sites(bnn))
        for d in dists.values():
            assert hasattr(d, "log_prob")


class TestSmallHelpers:
    def test_fan_in_fan_out(self):
        assert fan_in_fan_out((8, 3)) == (3, 8)
        assert fan_in_fan_out((16, 4, 3, 3)) == (36, 144)

    def test_to_numpy_tensor_and_scalar(self):
        arr = to_numpy(Tensor(np.array([1.0, 2.0])))
        np.testing.assert_allclose(arr, [1.0, 2.0])
        assert to_numpy(3.5) == pytest.approx(3.5)
        np.testing.assert_allclose(to_numpy(np.ones(3)), 1.0)
