"""Tests for variational continual learning support."""

from functools import partial

import numpy as np
import pytest

from repro import nn, ppl
import repro.core as tyxe
from repro.core.vcl import VCLState, update_prior_to_posterior
from repro.ppl import distributions as dist


def _toy_task(rng, shift):
    x = rng.standard_normal((40, 4)) + shift
    y = (x[:, 0] > shift).astype(int)
    return x, y


@pytest.fixture
def fitted_bnn(rng):
    x, y = _toy_task(rng, 0.0)
    net = nn.Sequential(nn.Linear(4, 8, rng=rng), nn.ReLU(), nn.Linear(8, 2, rng=rng))
    bnn = tyxe.VariationalBNN(net, tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0)),
                              tyxe.likelihoods.Categorical(len(x)),
                              partial(tyxe.guides.AutoNormal, init_scale=1e-2))
    loader = nn.DataLoader(nn.TensorDataset(x, y), batch_size=20, rng=rng)
    bnn.fit(loader, ppl.optim.Adam({"lr": 3e-2}), 40)
    return bnn


class TestUpdatePriorToPosterior:
    def test_listing6_roundtrip(self, fitted_bnn):
        """Listing 6: sample sites -> detached posteriors -> DictPrior update."""
        bayesian_weights = tyxe.util.pyro_sample_sites(fitted_bnn)
        posteriors = fitted_bnn.net_guide.get_detached_distributions(bayesian_weights)
        fitted_bnn.update_prior(tyxe.priors.DictPrior(posteriors))
        assert isinstance(fitted_bnn.prior, tyxe.priors.DictPrior)
        for name in bayesian_weights:
            assert fitted_bnn.param_dists[name] is posteriors[name]

    def test_helper_returns_posteriors(self, fitted_bnn):
        posteriors = update_prior_to_posterior(fitted_bnn)
        assert set(posteriors) == set(fitted_bnn.bayesian_sites())

    def test_new_prior_matches_guide_statistics(self, fitted_bnn):
        posteriors = update_prior_to_posterior(fitted_bnn)
        guide_dist = fitted_bnn.net_guide.get_distribution("0.weight")
        base_prior = posteriors["0.weight"]
        base_prior = base_prior.base_dist if isinstance(base_prior, dist.Independent) else base_prior
        base_guide = guide_dist.base_dist if isinstance(guide_dist, dist.Independent) else guide_dist
        np.testing.assert_allclose(base_prior.loc.data, base_guide.loc.data)
        np.testing.assert_allclose(base_prior.scale.data, base_guide.scale.data)

    def test_posterior_prior_is_detached(self, fitted_bnn):
        posteriors = update_prior_to_posterior(fitted_bnn)
        for d in posteriors.values():
            base = d.base_dist if isinstance(d, dist.Independent) else d
            assert not base.loc.requires_grad
            assert not base.scale.requires_grad

    def test_training_continues_after_prior_update(self, fitted_bnn, rng):
        update_prior_to_posterior(fitted_bnn)
        x, y = _toy_task(rng, 0.0)
        fitted_bnn.likelihood = tyxe.likelihoods.Categorical(len(x))
        loader = nn.DataLoader(nn.TensorDataset(x, y), batch_size=20, rng=rng)
        fitted_bnn.fit(loader, ppl.optim.Adam({"lr": 3e-2}), 20)
        _, err = fitted_bnn.evaluate(x, y, num_predictions=8)
        assert err <= 0.4

    def test_regularization_towards_previous_posterior(self, fitted_bnn, rng):
        """After the prior update, weights stay closer to the previous posterior
        means than they would under the original N(0,1) prior when trained on
        disjoint data."""
        old_means = fitted_bnn.net_guide.get_distribution("0.weight")
        old_means = (old_means.base_dist if isinstance(old_means, dist.Independent)
                     else old_means).loc.data.copy()
        update_prior_to_posterior(fitted_bnn)
        x, y = _toy_task(rng, 3.0)
        fitted_bnn.likelihood = tyxe.likelihoods.Categorical(len(x))
        loader = nn.DataLoader(nn.TensorDataset(x, y), batch_size=20, rng=rng)
        fitted_bnn.fit(loader, ppl.optim.Adam({"lr": 1e-2}), 5)
        new_means = fitted_bnn.net_guide.get_distribution("0.weight")
        new_means = (new_means.base_dist if isinstance(new_means, dist.Independent)
                     else new_means).loc.data
        # posterior variances after the first task are tiny, so the drift must be small
        assert np.abs(new_means - old_means).mean() < 0.5


class TestVCLState:
    def test_records_and_mean_accuracy(self):
        state = VCLState(3)
        state.record(0, [0.9])
        state.record(1, [0.8, 0.95])
        assert state.mean_accuracy(0) == pytest.approx(0.9)
        assert state.mean_accuracy(1) == pytest.approx(0.875)
        assert state.mean_accuracies() == pytest.approx([0.9, 0.875])

    def test_forgetting_measures_drop(self):
        state = VCLState(2)
        state.record(0, [1.0])
        state.record(1, [0.6, 0.9])
        assert state.forgetting() == pytest.approx(0.4)

    def test_forgetting_zero_when_no_history(self):
        assert VCLState(2).forgetting() == 0.0

    def test_accuracy_matrix_shape(self):
        state = VCLState(4)
        assert state.accuracy_matrix.shape == (4, 4)
