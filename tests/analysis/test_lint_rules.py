"""Good/bad fixture coverage for every lint rule (R001-R008) and noqa handling."""

import textwrap

import pytest

from repro.analysis import ERROR, WARNING, all_rules, get_rule, lint_file, lint_paths


def _write(tmp_path, source, name="fixture.py"):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def _rule_ids(findings):
    return [f.rule_id for f in findings]


class TestFramework:
    def test_all_rules_registered(self):
        assert [r.rule_id for r in all_rules()] == ["R001", "R002", "R003", "R004",
                                                    "R005", "R006", "R007", "R008"]

    def test_get_rule_unknown_raises(self):
        with pytest.raises(KeyError):
            get_rule("R999")

    def test_rules_carry_metadata(self):
        for rule in all_rules():
            assert rule.description
            assert rule.severity in (ERROR, WARNING)

    def test_syntax_error_reports_r000(self, tmp_path):
        path = _write(tmp_path, "def broken(:\n")
        findings = lint_file(path)
        assert _rule_ids(findings) == ["R000"]
        assert findings[0].severity == ERROR

    def test_findings_sorted_and_formatted(self, tmp_path):
        path = _write(tmp_path, """
            import numpy as np

            def late():
                return np.random.normal(0.0, 1.0)

            def early():
                return np.random.rand(3)
        """)
        findings = lint_file(path)
        assert _rule_ids(findings) == ["R001", "R001"]
        assert findings[0].line < findings[1].line
        formatted = findings[0].format()
        assert "R001" in formatted and str(path.as_posix()) in formatted


class TestR001RngDiscipline:
    def test_bare_default_rng_flagged(self, tmp_path):
        path = _write(tmp_path, """
            import numpy as np
            gen = np.random.default_rng()
        """)
        assert _rule_ids(lint_file(path)) == ["R001"]

    def test_legacy_sampler_flagged(self, tmp_path):
        path = _write(tmp_path, """
            import numpy as np
            x = np.random.randn(3)
        """)
        assert _rule_ids(lint_file(path)) == ["R001"]

    def test_seeded_default_rng_allowed(self, tmp_path):
        path = _write(tmp_path, """
            import numpy as np
            gen = np.random.default_rng(0)
            gen2 = np.random.default_rng(seed=42)
        """)
        assert lint_file(path) == []

    def test_generator_methods_allowed(self, tmp_path):
        path = _write(tmp_path, """
            import numpy as np
            gen = np.random.default_rng(7)
            x = gen.standard_normal(3)
        """)
        assert lint_file(path) == []

    def test_rng_module_exempt(self, tmp_path):
        path = _write(tmp_path, """
            import numpy as np
            _RNG = np.random.default_rng()
        """, name="rng.py")
        assert lint_file(path) == []

    def test_finding_is_autofixable(self, tmp_path):
        path = _write(tmp_path, "import numpy as np\ng = np.random.default_rng()\n")
        (finding,) = lint_file(path)
        assert finding.autofixable


class TestR002SampleSiteNames:
    def test_duplicate_literal_name_flagged(self, tmp_path):
        path = _write(tmp_path, """
            import repro.ppl as ppl

            def model(d):
                ppl.sample("z", d)
                ppl.sample("z", d)
        """)
        findings = lint_file(path)
        assert _rule_ids(findings) == ["R002"]
        assert "'z'" in findings[0].message

    def test_first_use_precedes_duplicate(self, tmp_path):
        path = _write(tmp_path, """
            import repro.ppl as ppl

            def model(d):
                ppl.sample("z", d)
                ppl.sample("z", d)
        """)
        (finding,) = lint_file(path)
        assert "first use at line 5" in finding.message
        assert finding.line == 6

    def test_fstring_name_flagged(self, tmp_path):
        path = _write(tmp_path, """
            import repro.ppl as ppl

            def model(d, i):
                ppl.sample(f"z_{i}", d)
        """)
        assert _rule_ids(lint_file(path)) == ["R002"]

    def test_format_and_concat_names_flagged(self, tmp_path):
        path = _write(tmp_path, """
            import repro.ppl as ppl

            def model(d, i):
                ppl.param("w_{}".format(i), d)
                ppl.sample("z_" + str(i), d)
        """)
        assert _rule_ids(lint_file(path)) == ["R002", "R002"]

    def test_variable_names_allowed(self, tmp_path):
        path = _write(tmp_path, """
            import repro.ppl as ppl

            def model(dists):
                for name, d in dists.items():
                    ppl.sample(name, d)
        """)
        assert lint_file(path) == []

    def test_same_name_in_different_functions_allowed(self, tmp_path):
        path = _write(tmp_path, """
            import repro.ppl as ppl

            def model(d):
                ppl.sample("z", d)

            def guide(d):
                ppl.sample("z", d)
        """)
        assert lint_file(path) == []

    def test_nested_function_scopes_are_separate(self, tmp_path):
        path = _write(tmp_path, """
            import repro.ppl as ppl

            def outer(d):
                ppl.sample("z", d)

                def inner():
                    ppl.sample("z", d)
        """)
        assert lint_file(path) == []


class TestR003EagerMaterialization:
    def _hot(self, tmp_path, source):
        return _write(tmp_path, source, name="repro/nn/hot.py")

    def test_data_on_call_result_flagged_in_hot_path(self, tmp_path):
        path = self._hot(tmp_path, """
            def f(net, x):
                return net(x).data
        """)
        findings = lint_file(path)
        assert _rule_ids(findings) == ["R003"]
        assert findings[0].severity == WARNING

    def test_asarray_on_call_result_flagged(self, tmp_path):
        path = self._hot(tmp_path, """
            import numpy as np

            def f(net, x):
                return np.asarray(net(x))
        """)
        assert _rule_ids(lint_file(path)) == ["R003"]

    def test_data_on_bound_name_allowed(self, tmp_path):
        path = self._hot(tmp_path, """
            def f(net, x):
                out = net(x)
                return out.data
        """)
        assert lint_file(path) == []

    def test_cold_path_exempt(self, tmp_path):
        path = _write(tmp_path, """
            def f(net, x):
                return net(x).data
        """, name="experiments/report.py")
        assert lint_file(path) == []

    def test_numpy_on_intermediate_call_result_flagged(self, tmp_path):
        path = self._hot(tmp_path, """
            def f(net, x):
                arr = net(x).relu().numpy()
                return arr.sum()
        """)
        findings = lint_file(path)
        assert _rule_ids(findings) == ["R003"]
        assert "fusion" in findings[0].message

    def test_numpy_in_return_statement_allowed(self, tmp_path):
        path = self._hot(tmp_path, """
            def f(net, x):
                return net(x).relu().numpy()
        """)
        assert lint_file(path) == []

    def test_numpy_on_bound_name_allowed(self, tmp_path):
        path = self._hot(tmp_path, """
            def f(net, x):
                out = net(x)
                arr = out.numpy()
                return arr
        """)
        assert lint_file(path) == []

    def test_numpy_intermediate_noqa_suppresses(self, tmp_path):
        path = self._hot(tmp_path, """
            def f(net, x):
                arr = net(x).numpy()  # repro: noqa[R003]
                return arr.sum()
        """)
        assert lint_file(path) == []


class TestR004SeedBeforeSampling:
    def test_runner_without_seed_all_flagged(self, tmp_path):
        path = _write(tmp_path, """
            from repro.experiments.api import register

            @register("exp", config_cls=object, number="E9", artefact="X", title="t")
            def runner(config):
                return {}, None
        """)
        findings = lint_file(path)
        assert _rule_ids(findings) == ["R004"]
        assert "seed_all" in findings[0].message

    def test_direct_seed_all_allowed(self, tmp_path):
        path = _write(tmp_path, """
            from repro.experiments.api import register

            @register("exp", config_cls=object, number="E9", artefact="X", title="t")
            def runner(config):
                config.seed_all()
                return {}, None
        """)
        assert lint_file(path) == []

    def test_seed_all_via_helper_allowed(self, tmp_path):
        path = _write(tmp_path, """
            from repro.experiments.api import register

            def _impl(config):
                config.seed_all()
                return {}, None

            @register("exp", config_cls=object, number="E9", artefact="X", title="t")
            def runner(config):
                return _impl(config)
        """)
        assert lint_file(path) == []

    def test_seed_all_via_partial_dispatch_allowed(self, tmp_path):
        path = _write(tmp_path, """
            from functools import partial
            from repro.experiments.api import register

            def _impl(config, flag):
                config.seed_all()
                return {}, None

            @register("exp", config_cls=object, number="E9", artefact="X", title="t")
            def runner(config):
                runners = {"a": partial(_impl, flag=True)}
                return runners["a"](config)
        """)
        assert lint_file(path) == []

    def test_unregistered_function_not_flagged(self, tmp_path):
        path = _write(tmp_path, """
            def helper(config):
                return {}, None
        """)
        assert lint_file(path) == []


class TestR005SizedVectorizedContext:
    def test_sizeless_context_with_sample_flagged(self, tmp_path):
        path = _write(tmp_path, """
            import repro.ppl as ppl
            from repro import nn

            def forward(d):
                with nn.vectorized_samples(1):
                    return ppl.sample("z", d)
        """)
        findings = lint_file(path)
        assert _rule_ids(findings) == ["R005"]
        assert "sizes" in findings[0].message

    def test_sized_context_allowed(self, tmp_path):
        path = _write(tmp_path, """
            import repro.ppl as ppl
            from repro import nn

            def forward(d, k):
                with nn.vectorized_samples(1, sizes=(k,)):
                    return ppl.sample("z", d)
        """)
        assert lint_file(path) == []

    def test_sizeless_context_without_sampling_allowed(self, tmp_path):
        path = _write(tmp_path, """
            from repro import nn

            def forward(net, x):
                with nn.vectorized_samples(1):
                    return net(x)
        """)
        assert lint_file(path) == []

    def test_sample_in_nested_def_not_counted(self, tmp_path):
        path = _write(tmp_path, """
            import repro.ppl as ppl
            from repro import nn

            def forward(net, x, d):
                with nn.vectorized_samples(1):
                    def later():
                        return ppl.sample("z", d)
                    return net(x)
        """)
        assert lint_file(path) == []


class TestR006SilentExceptionSwallow:
    def test_bare_except_pass_flagged(self, tmp_path):
        path = _write(tmp_path, """
            def load(path):
                try:
                    return path.read_text()
                except:
                    pass
        """, name="repro/mod.py")
        findings = lint_file(path)
        assert _rule_ids(findings) == ["R006"]
        assert "bare except:" in findings[0].message

    def test_except_exception_pass_flagged(self, tmp_path):
        path = _write(tmp_path, """
            def load(path):
                try:
                    return path.read_text()
                except Exception:
                    pass
        """, name="repro/mod.py")
        assert _rule_ids(lint_file(path)) == ["R006"]

    def test_broad_name_in_tuple_flagged(self, tmp_path):
        path = _write(tmp_path, """
            def load(path):
                try:
                    return path.read_text()
                except (ValueError, BaseException):
                    pass
        """, name="repro/mod.py")
        assert _rule_ids(lint_file(path)) == ["R006"]

    def test_except_exception_continue_flagged(self, tmp_path):
        path = _write(tmp_path, """
            def load(paths):
                out = []
                for path in paths:
                    try:
                        out.append(path.read_text())
                    except Exception:
                        continue
                return out
        """, name="repro/mod.py")
        assert _rule_ids(lint_file(path)) == ["R006"]

    def test_narrow_except_pass_allowed(self, tmp_path):
        path = _write(tmp_path, """
            def unlink(path):
                try:
                    path.unlink()
                except FileNotFoundError:
                    pass
        """, name="repro/mod.py")
        assert lint_file(path) == []

    def test_handled_broad_except_allowed(self, tmp_path):
        path = _write(tmp_path, """
            def run(fn, log):
                try:
                    return fn()
                except Exception as exc:
                    log.append(str(exc))
                    raise
        """, name="repro/mod.py")
        assert lint_file(path) == []

    def test_noqa_suppresses(self, tmp_path):
        path = _write(tmp_path, """
            def cleanup(path):
                try:
                    path.unlink()
                except Exception:  # repro: noqa[R006]
                    pass
        """, name="repro/mod.py")
        assert lint_file(path) == []

    def test_files_outside_repro_exempt(self, tmp_path):
        path = _write(tmp_path, """
            def load(path):
                try:
                    return path.read_text()
                except Exception:
                    pass
        """, name="thirdparty/mod.py")
        assert lint_file(path) == []


class TestR007AsyncBlockingCall:
    def test_time_sleep_in_async_def_flagged(self, tmp_path):
        path = _write(tmp_path, """
            import time

            async def handle(request):
                time.sleep(0.1)
                return request
        """, name="repro/serve/mod.py")
        assert _rule_ids(lint_file(path)) == ["R007"]

    def test_sync_open_and_read_text_flagged(self, tmp_path):
        path = _write(tmp_path, """
            async def load(path):
                with open(path) as fh:
                    data = fh.read()
                return data + path.read_text()
        """, name="repro/serve/mod.py")
        assert _rule_ids(lint_file(path)) == ["R007", "R007"]

    def test_numpy_realization_flagged(self, tmp_path):
        path = _write(tmp_path, """
            async def respond(tensor):
                return tensor.numpy()
        """, name="repro/serve/mod.py")
        assert _rule_ids(lint_file(path)) == ["R007"]

    def test_sync_def_and_nested_def_exempt(self, tmp_path):
        path = _write(tmp_path, """
            import time

            def warmup():
                time.sleep(0.1)

            async def handle(request):
                def realize(t):
                    return t.numpy()
                return realize(request)
        """, name="repro/serve/mod.py")
        assert lint_file(path) == []

    def test_async_sleep_and_executor_allowed(self, tmp_path):
        path = _write(tmp_path, """
            import asyncio

            async def handle(loop, engine, batch):
                await asyncio.sleep(0.01)
                return await loop.run_in_executor(None, engine.predict, batch)
        """, name="repro/serve/mod.py")
        assert lint_file(path) == []

    def test_noqa_suppresses(self, tmp_path):
        path = _write(tmp_path, """
            import time

            async def debug_handle(request):
                time.sleep(0.1)  # repro: noqa[R007]
                return request
        """, name="repro/serve/mod.py")
        assert lint_file(path) == []

    def test_files_outside_serve_exempt(self, tmp_path):
        path = _write(tmp_path, """
            import time

            async def handle(request):
                time.sleep(0.1)
        """, name="repro/exec/mod.py")
        assert lint_file(path) == []


class TestNoqa:
    def test_line_level_noqa_suppresses_named_rule(self, tmp_path):
        path = _write(tmp_path, """
            import numpy as np
            gen = np.random.default_rng()  # repro: noqa[R001]
        """)
        assert lint_file(path) == []

    def test_line_level_noqa_wrong_rule_keeps_finding(self, tmp_path):
        path = _write(tmp_path, """
            import numpy as np
            gen = np.random.default_rng()  # repro: noqa[R002]
        """)
        assert _rule_ids(lint_file(path)) == ["R001"]

    def test_bare_line_noqa_suppresses_everything_on_line(self, tmp_path):
        path = _write(tmp_path, """
            import numpy as np
            gen = np.random.default_rng()  # repro: noqa
        """)
        assert lint_file(path) == []

    def test_file_level_noqa_on_comment_line(self, tmp_path):
        path = _write(tmp_path, """
            # repro: noqa[R001]
            import numpy as np
            gen = np.random.default_rng()
            x = np.random.randn(3)
        """)
        assert lint_file(path) == []

    def test_file_level_noqa_only_covers_listed_rules(self, tmp_path):
        path = _write(tmp_path, """
            # repro: noqa[R001]
            import repro.ppl as ppl

            def model(d, i):
                ppl.sample(f"z_{i}", d)
        """)
        assert _rule_ids(lint_file(path)) == ["R002"]

    def test_multiple_rules_in_one_directive(self, tmp_path):
        path = _write(tmp_path, """
            # repro: noqa[R001, R002]
            import numpy as np
            import repro.ppl as ppl

            gen = np.random.default_rng()

            def model(d, i):
                ppl.sample(f"z_{i}", d)
        """)
        assert lint_file(path) == []


class TestR008BackendBypass:
    def test_np_kernel_call_in_nn_flagged(self, tmp_path):
        path = _write(tmp_path, """
            import numpy as np

            def forward(x):
                return np.exp(np.matmul(x, x))
        """, name="repro/nn/fast.py")
        assert _rule_ids(lint_file(path)) == ["R008", "R008"]

    def test_stride_tricks_windowing_flagged(self, tmp_path):
        path = _write(tmp_path, """
            import numpy as np

            def windows(x, k):
                return np.lib.stride_tricks.as_strided(x, (k, k), x.strides)
        """, name="repro/nn/functional.py")
        findings = lint_file(path)
        assert _rule_ids(findings) == ["R008"]
        assert "im2col" in findings[0].message

    def test_cumsum_and_reduction_flagged(self, tmp_path):
        path = _write(tmp_path, """
            import numpy as np

            def scan(x):
                return np.cumsum(x, axis=0) + np.sum(x)
        """, name="repro/nn/tensor.py")
        assert _rule_ids(lint_file(path)) == ["R008", "R008"]

    def test_backends_package_exempt(self, tmp_path):
        path = _write(tmp_path, """
            import numpy as np

            def kernel(srcs, params, out=None):
                return np.exp(srcs[0], out=out)
        """, name="repro/nn/backends/numpy_backend.py")
        assert lint_file(path) == []

    def test_outside_nn_exempt(self, tmp_path):
        path = _write(tmp_path, """
            import numpy as np

            def summarize(x):
                return np.mean(np.exp(x))
        """, name="repro/ppl/infer.py")
        assert lint_file(path) == []

    def test_non_kernel_numpy_stays_legal(self, tmp_path):
        path = _write(tmp_path, """
            import numpy as np

            def alloc(shape, idx, grad, updates):
                buf = np.empty(shape, dtype=np.float64)
                np.add.at(grad, idx, updates)
                return np.transpose(buf), np.unravel_index(idx, shape)
        """, name="repro/nn/lazy.py")
        assert lint_file(path) == []

    def test_noqa_suppression(self, tmp_path):
        path = _write(tmp_path, """
            import numpy as np

            def forward(x):
                return np.exp(x)  # repro: noqa[R008]
        """, name="repro/nn/fast.py")
        assert lint_file(path) == []


class TestLintPaths:
    def test_directory_discovery_skips_pycache(self, tmp_path):
        _write(tmp_path, "import numpy as np\ng = np.random.default_rng()\n",
               name="pkg/mod.py")
        _write(tmp_path, "import numpy as np\ng = np.random.default_rng()\n",
               name="pkg/__pycache__/mod.py")
        findings = lint_paths([tmp_path])
        assert len(findings) == 1
        assert "__pycache__" not in findings[0].path

    def test_duplicate_paths_deduplicated(self, tmp_path):
        path = _write(tmp_path, "import numpy as np\ng = np.random.default_rng()\n")
        findings = lint_paths([path, path, tmp_path])
        assert len(findings) == 1
