"""The shipped tree must satisfy its own linter (the repo eats its own dog food)."""

from pathlib import Path

import pytest

from repro.analysis import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def _format_all(findings):
    return "\n".join(f.format() for f in findings)


def test_shipped_src_is_lint_clean():
    findings = lint_paths([REPO_ROOT / "src" / "repro"])
    assert findings == [], f"src/repro has lint findings:\n{_format_all(findings)}"


@pytest.mark.parametrize("tree", ["tests", "benchmarks", "examples"])
def test_support_trees_are_lint_clean(tree):
    path = REPO_ROOT / tree
    if not path.exists():
        pytest.skip(f"no {tree}/ directory")
    findings = lint_paths([path])
    assert findings == [], f"{tree}/ has lint findings:\n{_format_all(findings)}"
