"""The static model/guide validator: shape-only tracing and defect reporting."""

import numpy as np
import pytest

import repro.nn as nn
import repro.ppl as ppl
import repro.ppl.distributions as dist
from repro.analysis import ModelGuideReport, ValidationTarget, validate
from repro.analysis.validate import validate_target
from repro.ppl import poutine


def _model():
    z = ppl.sample("z", dist.Normal(np.zeros(3), np.ones(3)).to_event(1))
    w = ppl.sample("w", dist.Normal(0.0, 1.0))
    ppl.sample("obs", dist.Normal(z.sum() + w, 1.0), obs=np.array(0.5))


def _guide_full():
    loc = ppl.param("z_loc", np.zeros(3))
    ppl.sample("z", dist.Delta(loc, event_dim=1))
    ppl.sample("w", dist.Delta(ppl.param("w_loc", np.array(0.0))))


def _guide_uncovered():
    loc = ppl.param("z_loc", np.zeros(3))
    ppl.sample("z", dist.Delta(loc, event_dim=1))


def _guide_bad_shape():
    loc = ppl.param("z_loc_bad", np.zeros(4))
    ppl.sample("z", dist.Delta(loc, event_dim=1))
    ppl.sample("w", dist.Delta(ppl.param("w_loc", np.array(0.0))))


class TestShapeOnlyMode:
    def test_values_are_zero_placeholders_of_correct_shape(self):
        with poutine.shape_only():
            tr = poutine.trace(_model).get_trace()
        assert tr["z"]["value"].shape == (3,)
        assert tr["w"]["value"].shape == ()
        np.testing.assert_array_equal(tr["z"]["value"].data, np.zeros(3))
        assert tr["z"]["shape_only"] is True

    def test_observed_values_kept(self):
        with poutine.shape_only():
            tr = poutine.trace(_model).get_trace()
        assert tr["obs"]["is_observed"]
        assert float(tr["obs"]["value"].data) == 0.5

    def test_no_rng_consumption(self):
        ppl.set_rng_seed(7)
        expected = ppl.get_rng().standard_normal(4)
        ppl.set_rng_seed(7)
        with poutine.shape_only():
            poutine.trace(_model).get_trace()
        np.testing.assert_array_equal(ppl.get_rng().standard_normal(4), expected)

    def test_mode_restored_after_exit(self):
        assert not poutine.shape_only_active()
        with poutine.shape_only():
            assert poutine.shape_only_active()
        assert not poutine.shape_only_active()

    def test_site_shapes_summary(self):
        with poutine.shape_only():
            tr = poutine.trace(_model).get_trace()
        shapes = tr.site_shapes()
        assert list(shapes) == ["z", "w", "obs"]
        assert shapes["z"]["event_shape"] == (3,)
        assert shapes["z"]["value_shape"] == (3,)
        assert not shapes["z"]["is_observed"]
        assert shapes["obs"]["is_observed"]


class TestValidate:
    def test_clean_pair(self):
        report = validate(_model, _guide_full)
        assert isinstance(report, ModelGuideReport)
        assert report.ok and report.clean
        assert "ok" in report.format()

    def test_uncovered_site_reported(self):
        report = validate(_model, _guide_uncovered)
        kinds = {f.kind for f in report.findings}
        assert kinds == {"uncovered-site"}
        (finding,) = report.findings
        assert finding.site == "w"
        assert report.ok  # warning only: prior fallback is legal

    def test_shape_mismatch_reported(self):
        report = validate(_model, _guide_bad_shape)
        mismatches = [f for f in report.findings if f.kind == "shape-mismatch"]
        assert [f.site for f in mismatches] == ["z"]
        assert not report.ok
        assert "(4,)" in mismatches[0].message

    def test_orphaned_guide_site_reported(self):
        def guide():
            _guide_full()
            ppl.sample("ghost", dist.Delta(ppl.param("g_loc", np.array(0.0))))

        report = validate(_model, guide)
        kinds = [f.kind for f in report.findings]
        assert kinds == ["orphaned-guide-site"]
        assert report.findings[0].site == "ghost"

    def test_particle_collision_reported_statically(self):
        num_particles = 2

        def model():
            # uncovered site whose batch axis equals the particle count: the
            # configuration the vectorized replay refuses at runtime
            ppl.sample("child", dist.Normal(np.zeros((num_particles, 3)), 1.0).to_event(1))

        def guide():
            pass

        report = validate(model, guide, num_particles=num_particles)
        kinds = {f.kind for f in report.findings}
        assert "vectorize-collision" in kinds
        assert not report.ok

    def test_trace_failure_is_a_finding(self):
        def broken():
            raise RuntimeError("boom")

        report = validate(_model, broken)
        assert [f.kind for f in report.findings] == ["trace-failure"]
        assert not report.ok
        assert "boom" in report.findings[0].message

    def test_rng_state_restored_even_on_failure(self):
        ppl.set_rng_seed(3)
        state = ppl.get_rng().bit_generator.state

        def broken():
            ppl.get_rng().standard_normal(100)
            raise RuntimeError("boom")

        validate(_model, broken)
        assert ppl.get_rng().bit_generator.state == state

    def test_num_particles_must_be_positive(self):
        with pytest.raises(ValueError):
            validate(_model, _guide_full, num_particles=0)

    def test_validate_target_wrapper(self):
        target = ValidationTarget("toy", _model, _guide_full)
        assert validate_target(target).clean


class TestRuntimeRefusalPointsAtChecker:
    def test_vectorized_collision_message_names_check_model(self):
        def model():
            ppl.sample("child", dist.Normal(np.zeros((2, 3)), 1.0).to_event(1))

        with pytest.raises(ValueError, match="repro check-model"):
            with nn.functional.vectorized_samples(1, sizes=(2,)):
                poutine.trace(model).get_trace()

    def test_shape_only_records_collision_instead_of_raising(self):
        def model():
            ppl.sample("child", dist.Normal(np.zeros((2, 3)), 1.0).to_event(1))

        with poutine.shape_only():
            with nn.functional.vectorized_samples(1, sizes=(2,)):
                tr = poutine.trace(model).get_trace()
        error = tr["child"].get("shape_only_error")
        assert error is not None and "repro check-model" in error
        assert tr.site_shapes()["child"]["shape_only_error"] == error


class TestExperimentTargets:
    def test_every_registered_experiment_exposes_targets(self):
        from repro.experiments.api.registry import all_experiments

        for spec in all_experiments():
            targets = spec.make_validation_targets(fast=True)
            assert targets, f"{spec.experiment_id} has no validation targets"
            for target in targets:
                assert isinstance(target, ValidationTarget)

    def test_fig1_target_validates_clean(self):
        from repro.experiments.api.registry import get_experiment

        spec = get_experiment("fig1-regression")
        (target,) = spec.make_validation_targets(fast=True)
        report = validate_target(target)
        assert report.clean, report.format()
