"""Unit tests for the evaluation metrics."""

import numpy as np
import pytest

from repro import metrics
from repro.nn.tensor import Tensor


class TestClassificationMetrics:
    def test_accuracy_perfect_and_zero(self):
        probs = np.array([[0.9, 0.1], [0.2, 0.8]])
        assert metrics.accuracy(probs, np.array([0, 1])) == 1.0
        assert metrics.accuracy(probs, np.array([1, 0])) == 0.0

    def test_accuracy_from_logits(self):
        logits = np.array([[5.0, 0.0], [0.0, 5.0]])
        assert metrics.accuracy(logits, np.array([0, 1]), from_logits=True) == 1.0

    def test_nll_matches_manual(self):
        probs = np.array([[0.7, 0.3], [0.4, 0.6]])
        labels = np.array([0, 1])
        expected = -np.mean([np.log(0.7), np.log(0.6)])
        assert metrics.nll(probs, labels) == pytest.approx(expected)

    def test_nll_accepts_tensor(self):
        probs = Tensor(np.array([[0.5, 0.5]]))
        assert metrics.nll(probs, np.array([0])) == pytest.approx(np.log(2))

    def test_brier_score_bounds(self):
        perfect = np.array([[1.0, 0.0]])
        worst = np.array([[0.0, 1.0]])
        assert metrics.brier_score(perfect, np.array([0])) == pytest.approx(0.0)
        assert metrics.brier_score(worst, np.array([0])) == pytest.approx(2.0)

    def test_as_probs_normalizes(self):
        raw = np.array([[2.0, 2.0]])
        np.testing.assert_allclose(metrics.as_probs(raw), [[0.5, 0.5]])


class TestCalibration:
    def test_perfectly_calibrated_predictor_has_zero_ece(self, rng):
        # construct predictions whose confidence equals their accuracy per bin
        n = 4000
        confidences = rng.uniform(0.55, 0.95, n)
        labels = (rng.random(n) < confidences).astype(int)
        probs = np.stack([confidences, 1 - confidences], axis=1)
        # label 0 means "the predicted (first) class is correct"
        ece = metrics.expected_calibration_error(probs, 1 - labels)
        assert ece < 0.05

    def test_overconfident_predictor_has_high_ece(self, rng):
        n = 1000
        probs = np.tile(np.array([[0.99, 0.01]]), (n, 1))
        labels = (rng.random(n) < 0.6).astype(int)  # only 60% of them are class 0
        ece = metrics.expected_calibration_error(probs, 1 - labels)
        assert ece > 0.3

    def test_ece_bins_parameter(self, rng):
        probs = rng.dirichlet(np.ones(3), size=50)
        labels = rng.integers(0, 3, 50)
        e10 = metrics.expected_calibration_error(probs, labels, num_bins=10)
        e5 = metrics.expected_calibration_error(probs, labels, num_bins=5)
        assert e10 >= 0 and e5 >= 0

    def test_calibration_curve_outputs(self, rng):
        probs = rng.dirichlet(np.ones(4), size=200)
        labels = rng.integers(0, 4, 200)
        conf, acc, count = metrics.calibration_curve(probs, labels, num_bins=10)
        assert conf.shape == acc.shape == count.shape == (10,)
        assert count.sum() == 200
        valid = count > 0
        assert np.all((acc[valid] >= 0) & (acc[valid] <= 1))

    def test_empty_bins_are_nan(self):
        probs = np.array([[0.99, 0.01]] * 10)
        labels = np.zeros(10, dtype=int)
        conf, acc, count = metrics.calibration_curve(probs, labels, num_bins=10)
        assert np.isnan(conf[0])
        assert count[-1] == 10


class TestOOD:
    def test_predictive_entropy(self):
        uniform = np.array([[0.5, 0.5]])
        confident = np.array([[0.99, 0.01]])
        assert metrics.predictive_entropy(uniform)[0] == pytest.approx(np.log(2))
        assert metrics.predictive_entropy(confident)[0] < 0.1

    def test_auroc_perfect_and_random(self, rng):
        pos = rng.normal(2.0, 0.1, 500)
        neg = rng.normal(-2.0, 0.1, 500)
        assert metrics.auroc(pos, neg) == pytest.approx(1.0)
        same = rng.normal(0.0, 1.0, 2000)
        assert metrics.auroc(same[:1000], same[1000:]) == pytest.approx(0.5, abs=0.05)

    def test_auroc_handles_ties(self):
        assert metrics.auroc(np.ones(10), np.ones(10)) == pytest.approx(0.5)

    def test_ood_auroc_max_prob(self):
        test_probs = np.array([[0.95, 0.05]] * 50)
        ood_probs = np.array([[0.55, 0.45]] * 50)
        assert metrics.ood_auroc_max_prob(test_probs, ood_probs) == pytest.approx(1.0)

    def test_entropy_cdf_monotone(self, rng):
        probs = rng.dirichlet(np.ones(5), size=100)
        grid = np.linspace(0, np.log(5), 20)
        cdf = metrics.entropy_cdf(probs, grid)
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[-1] == pytest.approx(1.0)


class TestRegressionMetrics:
    def test_mse_rmse(self):
        pred, target = np.array([1.0, 2.0]), np.array([0.0, 4.0])
        assert metrics.mean_squared_error(pred, target) == pytest.approx(2.5)
        assert metrics.root_mean_squared_error(pred, target) == pytest.approx(np.sqrt(2.5))

    def test_gaussian_nll(self):
        value = metrics.gaussian_nll(np.zeros(3), np.ones(3), np.zeros(3))
        assert value == pytest.approx(0.5 * np.log(2 * np.pi))

    def test_coverage(self, rng):
        mean = np.zeros(2000)
        std = np.ones(2000)
        targets = rng.standard_normal(2000)
        coverage = metrics.prediction_interval_coverage(mean, std, targets, num_std=2.0)
        assert coverage == pytest.approx(0.95, abs=0.03)

    def test_image_error_accepts_tensors(self, rng):
        a = Tensor(rng.random((4, 4, 3)))
        b = Tensor(rng.random((4, 4, 3)))
        assert metrics.image_error(a, b) == pytest.approx(((a.data - b.data) ** 2).mean())
