"""Bayesian ResNet image classification (paper Listing 3, Table 1, Figure 2).

Trains a small residual network on a synthetic CIFAR-like dataset with
several inference strategies (maximum likelihood, MAP, mean-field variants,
last-layer guides) and prints the Table-1 style comparison of NLL, accuracy,
expected calibration error and OOD detection AUROC, plus the Figure-2
entropy statistics on test vs. out-of-distribution data.

Run with::

    python examples/resnet.py [--fast]
"""

import argparse

import numpy as np

from repro import metrics
from repro.datasets import make_image_classification_data
from repro.experiments.api import run_experiment
from repro.experiments.image_classification import figure2_curves, table1_rows


def main(fast: bool = False) -> None:
    print(f"Running the inference comparison ({'fast' if fast else 'full'} configuration, "
          "equivalent to `repro run table1-resnet`)...")
    table1 = run_experiment("table1-resnet", fast=fast)
    results, config = table1.raw, table1.config

    print("\nTable 1 — Bayesian ResNet predictive performance")
    print(f"{'inference':<12} {'NLL↓':>8} {'Acc.↑(%)':>10} {'ECE↓(%)':>9} {'OOD↑':>7}")
    for row in table1_rows(results):
        print(f"{row['method']:<12} {row['nll']:>8.3f} {100 * row['accuracy']:>10.2f} "
              f"{100 * row['ece']:>9.2f} {row['ood_auroc']:>7.3f}")

    # Figure 2 quantities on the same runs: calibration curve + entropy CDFs
    # (the standalone `repro run fig2-calibration` retrains just ml and mf)
    data = make_image_classification_data(
        num_classes=config["num_classes"], image_size=config["image_size"],
        channels=config["channels"], train_per_class=config["train_per_class"],
        test_per_class=config["test_per_class"], noise_scale=config["noise_scale"],
        seed=config["seed"])
    curves = figure2_curves(results, labels=data.test_labels)

    print("\nFigure 2(b) — mean predictive entropy (test vs OOD), higher OOD entropy is better")
    for method, result in results.items():
        test_entropy = metrics.predictive_entropy(result.test_probs).mean()
        ood_entropy = metrics.predictive_entropy(result.ood_probs).mean()
        print(f"  {method:<12} test {test_entropy:.3f}   ood {ood_entropy:.3f}")

    print("\nFigure 2(a) — calibration curve of the mean-field method (confidence -> accuracy)")
    mf = curves.get("mf") or next(iter(curves.values()))
    for conf, acc, count in zip(mf["bin_confidence"], mf["bin_accuracy"], mf["bin_count"]):
        if count > 0:
            print(f"  predicted {conf:.2f}   empirical {acc:.2f}   ({count} samples)")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="run a tiny smoke-test configuration")
    main(parser.parse_args().fast)
