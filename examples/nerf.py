"""Bayesian neural radiance field with a custom loss (paper Listing 5, Figure 3).

A NeRF-style density/colour field is trained to render views of a procedural
scene; a 90° sector of viewing angles is held out.  The Bayesian variant
wraps the field in ``PytorchBNN`` — a drop-in replacement for the
deterministic network — and adds the cached KL term to the image+silhouette
loss, trained with a plain ``repro.nn`` optimizer.  The script reports the
held-out-view errors of both models and the predictive uncertainty on
training vs. held-out views (the paper's Figure 3).

Run with::

    python examples/nerf.py [--fast]
"""

import argparse

import numpy as np

from repro.experiments.api import run_experiment


def main(fast: bool = False) -> None:
    print(f"Training deterministic and Bayesian NeRF ({'fast' if fast else 'full'} config, "
          "equivalent to `repro run fig3-nerf`)...")
    result = run_experiment("fig3-nerf", fast=fast).raw

    print("\nFigure 3 — held-out view reconstruction error (lower is better)")
    print(f"  deterministic NeRF : {result.deterministic_heldout_error:.2e}")
    print(f"  Bayesian NeRF      : {result.bayesian_heldout_error:.2e}")
    print("\ntraining-view reconstruction error")
    print(f"  deterministic NeRF : {result.deterministic_train_error:.2e}")
    print(f"  Bayesian NeRF      : {result.bayesian_train_error:.2e}")

    print("\npredictive uncertainty (mean pixel std across posterior samples)")
    print(f"  training views : {result.train_uncertainty:.2e}")
    print(f"  held-out views : {result.heldout_uncertainty:.2e}  "
          f"(higher on unseen angles = useful uncertainty)")

    sample_map = result.extra["uncertainty_maps_heldout"][0]
    print("\nuncertainty map of the first held-out view (per-pixel std, x1000):")
    for row in sample_map.mean(axis=-1):
        print("  " + " ".join(f"{1000 * value:4.0f}" for value in row))


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="run a tiny smoke-test configuration")
    main(parser.parse_args().fast)
