"""Bayesian graph neural network on a citation-style graph (paper Listing 4, Table 2).

Builds a two-layer GCN over a synthetic stochastic-block-model graph
(standing in for Cora), compares maximum likelihood, MAP and mean-field
variational inference in the semi-supervised transductive setting, and shows
the ``selective_mask`` effect handler restricting the log-likelihood to
labelled nodes.

Run with::

    python examples/gnn.py [--fast]
"""

import argparse
from functools import partial

import numpy as np

from repro import nn, ppl
import repro.core as tyxe
from repro.datasets import make_citation_graph
from repro.experiments.api import run_experiment
from repro.experiments.gnn_classification import table2_rows
from repro.gnn import two_layer_gcn
from repro.ppl import distributions as dist


def listing4_demo(seed: int = 0) -> None:
    """A direct transcription of the paper's Listing 4 on one graph."""
    ppl.set_rng_seed(seed)
    ppl.clear_param_store()
    rng = np.random.default_rng(seed)
    data = make_citation_graph(seed=seed)

    gnn = two_layer_gcn(data.num_features, 16, data.num_classes, rng=rng)
    prior = tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0))
    likelihood = tyxe.likelihoods.Categorical(dataset_size=data.graph.num_nodes)
    guide = partial(tyxe.guides.AutoNormal, init_scale=1e-2, max_guide_scale=0.1)
    bgnn = tyxe.VariationalBNN(gnn, prior, likelihood, guide)

    graph, x, y = data.graph, nn.Tensor(data.features), nn.Tensor(data.labels)
    mask = data.train_mask.astype(np.float64)
    optim = ppl.optim.Adam({"lr": 2e-2})
    with tyxe.poutine.selective_mask(mask=mask, expose=["likelihood.data"]):
        bgnn.fit([((graph, x), y)], optim, 200)

    probs = bgnn.predict((graph, x), num_predictions=8)
    test_probs = np.exp(probs.data)[data.test_mask]
    test_labels = data.labels[data.test_mask]
    accuracy = (test_probs.argmax(-1) == test_labels).mean()
    print(f"Listing-4 Bayesian GCN test accuracy: {accuracy:.3f} "
          f"({int(data.train_mask.sum())} labelled of {data.graph.num_nodes} nodes)\n")


def main(fast: bool = False) -> None:
    listing4_demo()
    print("Running the Table-2 comparison through the registry "
          "(equivalent to `repro run table2-gnn`)...")
    result = run_experiment("table2-gnn", fast=fast)
    print(f"\nTable 2 — deterministic vs Bayesian GNN (mean ± 2 s.e., "
          f"{result.config['num_runs']} seeds, {result.wall_clock_seconds:.1f}s)")
    print(f"{'inference':<8} {'NLL↓':>16} {'Acc.↑(%)':>18} {'ECE↓(%)':>18}")
    for row in table2_rows(result.raw):
        print(f"{row['method']:<8} {row['nll']:>8.3f} ±{row['nll_2se']:.3f}  "
              f"{100 * row['accuracy']:>9.2f} ±{100 * row['accuracy_2se']:.2f}  "
              f"{100 * row['ece']:>9.2f} ±{100 * row['ece_2se']:.2f}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="run a tiny smoke-test configuration")
    main(parser.parse_args().fast)
