"""Quickstart: Bayesian nonlinear regression in five lines (paper Listings 1-2).

Builds the two-cluster synthetic regression problem from the paper, turns a
plain two-layer ``repro.nn`` network into a variational BNN, fits it under
local reparameterization and prints the predictive uncertainty on a grid —
small on the data clusters, larger in the gap between them.

Prediction uses ``vectorized=True``: all 32 posterior weight samples are
drawn up front and pushed through one batched forward pass (leading-sample-
dimension execution) instead of 32 traced passes — several times faster and
numerically identical to the looped path under the same seed (see
``benchmarks/test_perf_vectorized_predict.py``).

Run with::

    python examples/quickstart.py

(The full Figure-1 experiment this snippet condenses is registered as
``fig1-regression`` — reproduce it with ``repro run fig1-regression``.)
"""

from functools import partial

import numpy as np

from repro import nn, ppl
import repro.core as tyxe
from repro.datasets import foong_regression, regression_grid, true_function
from repro.ppl import distributions as dist


def main(seed: int = 42) -> None:
    ppl.set_rng_seed(seed)
    ppl.clear_param_store()
    rng = np.random.default_rng(seed)

    x, y = foong_regression(n_per_cluster=40, noise_scale=0.1, seed=seed)
    dataset_size = len(x)

    # ----- the paper's Listing 1: five lines from a Pytorch-style net to a BNN
    net = nn.Sequential(nn.Linear(1, 50, rng=rng), nn.Tanh(), nn.Linear(50, 1, rng=rng))
    likelihood = tyxe.likelihoods.HomoskedasticGaussian(dataset_size, scale=0.1)
    prior = tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0))
    guide_factory = partial(tyxe.guides.AutoNormal, init_scale=0.05,
                            init_loc_fn=tyxe.guides.init_to_normal("radford"))
    bnn = tyxe.VariationalBNN(net, prior, likelihood, guide_factory)

    # ----- the paper's Listing 2: fit under local reparameterization, then predict
    loader = nn.DataLoader(nn.TensorDataset(x, y), batch_size=40, shuffle=True, rng=rng)
    optim = ppl.optim.Adam({"lr": 1e-2})
    print("Fitting the variational BNN (this takes a few seconds)...")
    with tyxe.poutine.local_reparameterization():
        bnn.fit(loader, optim, num_epochs=400,
                callback=lambda b, e, l: print(f"  epoch {e:4d}  elbo-loss {l:9.2f}")
                if e % 100 == 0 else False)

    x_grid = regression_grid()
    # vectorized=True runs all 32 weight samples through one batched forward
    predictions = bnn.predict(x_grid, num_predictions=32, aggregate=False, vectorized=True)
    mean = predictions.data.mean(axis=0).squeeze()
    std = bnn.likelihood.predictive_stddev(predictions).squeeze()

    log_lik, squared_error = bnn.evaluate(x, y, num_predictions=32, vectorized=True)
    print(f"\ntrain log likelihood {log_lik:.3f}   train squared error {squared_error:.4f}\n")
    print("      x    true f(x)   pred mean   pred std")
    for i in range(0, len(x_grid), 10):
        xi = x_grid[i, 0]
        print(f"  {xi:+.2f}   {true_function(np.array(xi)): .3f}       "
              f"{mean[i]: .3f}      {std[i]:.3f}")

    grid = x_grid.squeeze()
    gap = std[(grid > -0.5) & (grid < 0.3)].mean()
    on_data = std[((grid >= -1.0) & (grid <= -0.7)) | ((grid >= 0.5) & (grid <= 1.0))].mean()
    print(f"\nmean predictive std on the data clusters: {on_data:.3f}")
    print(f"mean predictive std in the gap between them: {gap:.3f}  (should be larger)")


if __name__ == "__main__":
    main()
