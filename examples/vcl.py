"""Variational continual learning on Split task suites (paper Listing 6, Figure 4).

Trains the same network sequentially on a series of binary classification
tasks.  The maximum-likelihood baseline forgets earlier tasks; variational
continual learning replaces the prior with the previous posterior after each
task (the three lines of the paper's Listing 6) and retains them.  Prints the
mean accuracy over all tasks seen so far after each task — the curves of the
paper's Figure 4 — for both the MNIST-style and the CIFAR-style suite.

Run with::

    python examples/vcl.py [--fast]
"""

import argparse

from repro.experiments.api import run_experiment


def _print_suite(name: str, ml, vcl) -> None:
    print(f"\n{name}: mean accuracy on tasks seen so far (Figure 4)")
    print("  task:      " + "  ".join(f"{i + 1:>6d}" for i in range(len(ml.mean_accuracies))))
    print("  ML:        " + "  ".join(f"{100 * a:6.1f}" for a in ml.mean_accuracies))
    print("  VCL:       " + "  ".join(f"{100 * a:6.1f}" for a in vcl.mean_accuracies))
    print(f"  average forgetting — ML: {100 * ml.forgetting:.1f}%   VCL: {100 * vcl.forgetting:.1f}%")


def main(fast: bool = False) -> None:
    print("Running both Split suites through the registry "
          "(equivalent to `repro run fig4-vcl`)...")
    result = run_experiment("fig4-vcl", fast=fast)
    _print_suite("Split-MNIST (synthetic)",
                 result.raw["mnist"]["ml"], result.raw["mnist"]["vcl"])
    _print_suite("Split-CIFAR (synthetic)",
                 result.raw["cifar"]["ml"], result.raw["cifar"]["vcl"])


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="run a tiny smoke-test configuration")
    main(parser.parse_args().fast)
