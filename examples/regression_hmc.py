"""Figure 1 in full: variational inference vs. HMC on 1-D regression.

Runs all three panels of the paper's Figure 1 — local reparameterization,
shared weight samples and HMC — on the two-cluster regression problem and
prints the predictive mean/std profiles so the difference in "in-between"
uncertainty is visible in the terminal.

Run with::

    python examples/regression_hmc.py [--fast]
"""

import argparse

import numpy as np

from repro.experiments.api import run_experiment


def main(fast: bool = False) -> None:
    overrides = {"n_per_cluster": 20, "hidden_units": 25, "num_epochs": 100,
                 "hmc_num_samples": 30, "hmc_warmup": 30} if fast else None
    print("Running all three Figure-1 panels (variational x2 + HMC) through the "
          "registry (equivalent to `repro run fig1-regression`)...")
    results = run_experiment("fig1-regression", overrides=overrides).raw

    print("\nsummary (predictive std averaged over input regions)")
    print(f"{'method':<28} {'on data':>9} {'in between':>12} {'train sq. err':>15}")
    for name, result in results.items():
        print(f"{name:<28} {result.on_data_std:>9.3f} {result.in_between_std:>12.3f} "
              f"{result.train_squared_error:>15.4f}")

    print("\npredictive profile of the HMC panel (x, mean, std)")
    hmc = results["hmc"]
    for i in range(0, len(hmc.x_grid), 8):
        print(f"  x={hmc.x_grid[i, 0]:+.2f}   mean={hmc.predictive_mean[i]:+.3f}   "
              f"std={hmc.predictive_std[i]:.3f}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="run a smaller configuration")
    main(parser.parse_args().fast)
