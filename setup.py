"""Setuptools shim so ``pip install -e .`` works without the ``wheel`` package
(offline environments fall back to the legacy develop install path)."""

from setuptools import setup

setup()
