"""Setuptools shim so ``pip install -e .`` works without the ``wheel`` package
(offline environments fall back to the legacy develop install path).

Installs the ``repro`` console script (``repro list`` / ``repro run <id>`` /
``repro run-all`` / ``repro sweep`` / ``repro results`` / ``repro lint`` /
``repro check-model``) — the unified CLI over the experiment registry in
``repro.experiments.api``, the fault-tolerant sweep engine in ``repro.exec``,
and the static analysis subsystem in ``repro.analysis``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.8.0",
    package_dir={"": "src"},
    packages=find_packages("src"),
    entry_points={
        "console_scripts": [
            "repro = repro.experiments.api.cli:main",
        ],
    },
)
