"""Experiment E5 — Figure 3: deterministic vs. Bayesian neural radiance fields.

Reproduces the paper's Section 4.2 workflow: a NeRF-style field is trained to
render views of a procedural object from angles covering most of the circle,
with a held-out angular sector as out-of-distribution views.  The Bayesian
variant wraps the field in :class:`repro.core.bnn.PytorchBNN` and adds the
(annealed) KL term to the image + silhouette loss, trained with a plain
``repro.nn`` optimizer — the loss is a custom error, not a likelihood, so the
model is "pseudo-Bayesian" exactly as the paper discusses.  Reported
quantities: held-out-view error of both models and the mean predictive
uncertainty (pixel-wise standard deviation across posterior samples) on
training vs. held-out views.

Registered as ``fig3-nerf``; run it with ``repro run fig3-nerf [--fast]``
or :func:`repro.experiments.api.run_experiment`.  Posterior views are
rendered through the batched engine by default
(``vectorized_eval=True``, RNG-identical to the looped reference); pass
``--set vectorized_eval=false`` for the per-angle/per-sample loops.
Training can likewise render a minibatch of views per optimizer step through
one batched field evaluation: ``--set batched_train_views=4`` (the default
``None`` keeps the reference one-view-per-step loop, and ``1`` reproduces it
bit-for-bit through ``render_batch``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional

import numpy as np

from .. import core as tyxe
from .. import nn
from ..metrics.regression import image_error
from ..nn import functional as F
from ..ppl import distributions as dist
from ..render import VolumetricRenderer, make_nerf_field, make_scene_dataset, train_test_angles
from .api import BaseExperimentConfig, register, warn_deprecated_entry_point

__all__ = ["NeRFConfig", "NeRFResult", "run_nerf_experiment"]


@dataclass
class NeRFConfig(BaseExperimentConfig):
    """Sizes and hyper-parameters of the NeRF experiment."""

    image_size: int = 12
    num_samples_per_ray: int = 12
    num_train_views: int = 20
    num_test_views: int = 8
    hidden: int = 48
    depth: int = 3
    num_frequencies: int = 4
    det_iterations: int = 400
    bayes_iterations: int = 400
    learning_rate: float = 1e-3
    init_scale: float = 1e-2
    kl_anneal_iterations: int = 200
    num_posterior_samples: int = 8
    silhouette_weight: float = 0.5
    # posterior views go through the batched rendering engine when the
    # inherited ``vectorized_eval`` is True (the default; RNG-identical to
    # the looped reference, which stays reachable via vectorized_eval=False)
    # angles per batched forward in vectorized eval (None = all at once)
    render_chunk_size: Optional[int] = None
    # training views rendered per optimizer step through ONE batched field
    # evaluation (``VolumetricRenderer.render_batch``); ``None`` keeps the
    # reference one-view-per-step loop.  ``batched_train_views=1`` is
    # RNG-identical to that reference (same view-index draws, same field
    # queries); larger minibatches average the per-view losses and — for the
    # Bayesian variant — share the step's single posterior weight draw
    # across the minibatch, exactly like the per-view loop within one
    # ``PytorchBNN`` forward would.
    batched_train_views: Optional[int] = None

    @classmethod
    def fast(cls) -> "NeRFConfig":
        return cls(image_size=8, num_samples_per_ray=8, num_train_views=6, num_test_views=3,
                   hidden=24, depth=2, det_iterations=40, bayes_iterations=40,
                   kl_anneal_iterations=20, num_posterior_samples=3, fast=True)


@dataclass
class NeRFResult:
    """Held-out errors and uncertainty statistics (the content of Figure 3)."""

    deterministic_heldout_error: float
    bayesian_heldout_error: float
    deterministic_train_error: float
    bayesian_train_error: float
    train_uncertainty: float
    heldout_uncertainty: float
    extra: Dict = field(default_factory=dict)

    def summary(self) -> Dict[str, float]:
        return {
            "deterministic_heldout_error": self.deterministic_heldout_error,
            "bayesian_heldout_error": self.bayesian_heldout_error,
            "deterministic_train_error": self.deterministic_train_error,
            "bayesian_train_error": self.bayesian_train_error,
            "train_uncertainty": self.train_uncertainty,
            "heldout_uncertainty": self.heldout_uncertainty,
        }


def _view_loss(image: nn.Tensor, silhouette: nn.Tensor, target: Dict[str, np.ndarray],
               silhouette_weight: float) -> nn.Tensor:
    image_loss = F.mse_loss(image, nn.Tensor(target["image"]))
    silhouette_loss = F.mse_loss(silhouette, nn.Tensor(target["silhouette"]))
    return image_loss + silhouette_weight * silhouette_loss


def _minibatch_view_loss(images: nn.Tensor, silhouettes: nn.Tensor, targets: List[Dict],
                         silhouette_weight: float) -> nn.Tensor:
    """Loss of a ``(B, H, W, ...)`` stack of rendered views against its targets.

    ``mse_loss`` means over every element, so this equals the average of the
    per-view :func:`_view_loss` values (and is identical to it for ``B=1``).
    """
    target_images = nn.Tensor(np.stack([t["image"] for t in targets]))
    target_silhouettes = nn.Tensor(np.stack([t["silhouette"] for t in targets]))
    return (F.mse_loss(images, target_images)
            + silhouette_weight * F.mse_loss(silhouettes, target_silhouettes))


def _train_step_loss(renderer: VolumetricRenderer, field, train_set: List[Dict],
                     config: NeRFConfig, rng: np.random.Generator) -> nn.Tensor:
    """Data loss of one training step: sample view(s), render, compare.

    ``config.batched_train_views=None`` is the one-view-per-step reference;
    an integer ``B`` samples ``B`` views (consuming the view-index RNG stream
    exactly like ``B`` sequential reference draws) and renders them through
    one :meth:`VolumetricRenderer.render_batch` field evaluation.
    """
    batch = config.batched_train_views
    if batch is None:
        target = train_set[int(rng.integers(len(train_set)))]
        image, silhouette = renderer(target["angle"], field)
        return _view_loss(image, silhouette, target, config.silhouette_weight)
    if batch < 1:
        raise ValueError("batched_train_views must be a positive view count or None")
    targets = [train_set[int(rng.integers(len(train_set)))] for _ in range(batch)]
    images, silhouettes = renderer.render_batch([t["angle"] for t in targets], field)
    return _minibatch_view_loss(images, silhouettes, targets, config.silhouette_weight)


def _train_deterministic(renderer: VolumetricRenderer, train_set: List[Dict],
                         config: NeRFConfig, rng: np.random.Generator):
    field_net = make_nerf_field(num_frequencies=config.num_frequencies, hidden=config.hidden,
                                depth=config.depth, rng=rng)
    optim = nn.Adam(field_net.parameters(), lr=config.learning_rate)
    for _ in range(config.det_iterations):
        optim.zero_grad()
        loss = _train_step_loss(renderer, field_net, train_set, config, rng)
        loss.backward()
        optim.step()
    return field_net


def _train_bayesian(renderer: VolumetricRenderer, train_set: List[Dict], config: NeRFConfig,
                    rng: np.random.Generator, pretrained_field=None):
    field_net = make_nerf_field(num_frequencies=config.num_frequencies, hidden=config.hidden,
                                depth=config.depth, rng=rng)
    if pretrained_field is not None:
        field_net.load_state_dict(pretrained_field.state_dict())
    prior = tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0))
    guide = partial(tyxe.guides.AutoNormal,
                    init_loc_fn=tyxe.guides.PretrainedInitializer.from_net(field_net),
                    init_scale=config.init_scale)
    nerf_bnn = tyxe.PytorchBNN(field_net, prior, guide)

    # the KL weight is annealed to 1 / (number of observed pixel values)
    total_pixels = len(train_set) * config.image_size ** 2 * 4  # rgb + silhouette
    dummy_points = nn.Tensor(np.zeros((4, 3)))
    optim = nn.Adam(nerf_bnn.pytorch_parameters(dummy_points), lr=config.learning_rate)
    for iteration in range(config.bayes_iterations):
        optim.zero_grad()
        data_loss = _train_step_loss(renderer, nerf_bnn, train_set, config, rng)
        anneal = min(1.0, (iteration + 1) / max(config.kl_anneal_iterations, 1))
        loss = data_loss + anneal / total_pixels * nerf_bnn.cached_kl_loss
        loss.backward()
        optim.step()
    return nerf_bnn


def _render_views(renderer: VolumetricRenderer, field, angles) -> List[np.ndarray]:
    images = []
    with nn.no_grad():
        for angle in angles:
            image, _ = renderer(float(angle), field)
            images.append(image.data.copy())
    return images


def _render_posterior_views(renderer: VolumetricRenderer, bnn: tyxe.PytorchBNN, angles,
                            num_samples: int, vectorized: bool = False,
                            chunk_size: Optional[int] = None) -> Dict[str, List[np.ndarray]]:
    """Posterior mean/std images per angle.

    ``vectorized=True`` replaces the ``angles x num_samples`` per-scene render
    loop with a few batched forward passes via
    :meth:`VolumetricRenderer.render_posterior`; weight draws are consumed in
    the same angle-major order, so the maps are RNG-identical to the loop.
    """
    if vectorized:
        images, _ = renderer.render_posterior(angles, bnn, num_samples,
                                              chunk_size=chunk_size)  # (A, S, H, W, 3)
        return {"mean": [stack.mean(axis=0) for stack in images],
                "std": [stack.std(axis=0) for stack in images]}
    means, stds = [], []
    with nn.no_grad():
        for angle in angles:
            samples = []
            for _ in range(num_samples):
                image, _ = renderer(float(angle), bnn)
                samples.append(image.data.copy())
            stacked = np.stack(samples)
            means.append(stacked.mean(axis=0))
            stds.append(stacked.std(axis=0))
    return {"mean": means, "std": stds}


def _nerf_experiment_impl(config: NeRFConfig) -> NeRFResult:
    """Train both NeRF variants and evaluate held-out-view error and uncertainty."""
    rng = config.seed_all()

    renderer = VolumetricRenderer(image_size=config.image_size,
                                  num_samples_per_ray=config.num_samples_per_ray)
    train_angles, test_angles = train_test_angles(config.num_train_views, config.num_test_views)
    train_set = make_scene_dataset(renderer, train_angles)
    test_set = make_scene_dataset(renderer, test_angles)

    det_field = _train_deterministic(renderer, train_set, config, rng)
    bayes_bnn = _train_bayesian(renderer, train_set, config, rng, pretrained_field=det_field)

    # deterministic errors
    det_train = _render_views(renderer, det_field, [t["angle"] for t in train_set])
    det_test = _render_views(renderer, det_field, [t["angle"] for t in test_set])
    det_train_err = float(np.mean([image_error(img, t["image"])
                                   for img, t in zip(det_train, train_set)]))
    det_test_err = float(np.mean([image_error(img, t["image"])
                                  for img, t in zip(det_test, test_set)]))

    # Bayesian posterior-mean errors and uncertainty maps
    bayes_train = _render_posterior_views(renderer, bayes_bnn, [t["angle"] for t in train_set],
                                          config.num_posterior_samples,
                                          vectorized=config.vectorized_eval,
                                          chunk_size=config.render_chunk_size)
    bayes_test = _render_posterior_views(renderer, bayes_bnn, [t["angle"] for t in test_set],
                                         config.num_posterior_samples,
                                         vectorized=config.vectorized_eval,
                                         chunk_size=config.render_chunk_size)
    bayes_train_err = float(np.mean([image_error(img, t["image"])
                                     for img, t in zip(bayes_train["mean"], train_set)]))
    bayes_test_err = float(np.mean([image_error(img, t["image"])
                                    for img, t in zip(bayes_test["mean"], test_set)]))
    train_uncertainty = float(np.mean([s.mean() for s in bayes_train["std"]]))
    heldout_uncertainty = float(np.mean([s.mean() for s in bayes_test["std"]]))

    return NeRFResult(
        deterministic_heldout_error=det_test_err,
        bayesian_heldout_error=bayes_test_err,
        deterministic_train_error=det_train_err,
        bayesian_train_error=bayes_train_err,
        train_uncertainty=train_uncertainty,
        heldout_uncertainty=heldout_uncertainty,
        extra={"uncertainty_maps_heldout": bayes_test["std"],
               "train_angles": train_angles, "test_angles": test_angles},
    )


def _validation_targets(config: NeRFConfig):
    """The untrained Bayesian field for ``repro check-model`` (no rendering)."""
    from ..analysis import ValidationTarget

    rng = np.random.default_rng(config.seed)
    field_net = make_nerf_field(num_frequencies=config.num_frequencies, hidden=config.hidden,
                                depth=config.depth, rng=rng)
    prior = tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0))
    guide = partial(tyxe.guides.AutoNormal,
                    init_loc_fn=tyxe.guides.PretrainedInitializer.from_net(field_net),
                    init_scale=config.init_scale)
    nerf_bnn = tyxe.PytorchBNN(field_net, prior, guide)
    points = nn.Tensor(np.zeros((4, 3)))
    return [ValidationTarget("field", nerf_bnn.net_model, nerf_bnn.net_guide,
                             args=(points,))]


@register("fig3-nerf", config_cls=NeRFConfig, number="E5", artefact="Figure 3",
          title="Deterministic vs. Bayesian NeRF: held-out-view error and uncertainty",
          validation_targets=_validation_targets)
def _figure3_experiment(config: NeRFConfig):
    result = _nerf_experiment_impl(config)
    return result.summary(), result


# ------------------------------------------------------------ legacy entry points
def run_nerf_experiment(config: Optional[NeRFConfig] = None) -> NeRFResult:
    """Deprecated shim over the ``fig3-nerf`` registry path."""
    warn_deprecated_entry_point("run_nerf_experiment", "fig3-nerf")
    return _nerf_experiment_impl(config or NeRFConfig())
