"""Experiment E1 — Figure 1: Bayesian nonlinear regression.

Reproduces the three panels of the paper's Figure 1 on the Foong et al.
two-cluster dataset with a 1-50-1 tanh network, a standard-normal prior and a
``HomoskedasticGaussian(scale=0.1)`` likelihood:

* (a) mean-field variational inference trained *and predicted* under local
  reparameterization,
* (b) the same posterior with shared weight samples per batch (prediction
  outside the local-reparameterization context),
* (c) HMC.

The quantity of interest is the shape of the predictive uncertainty: small on
the two data clusters, larger in between and outside, with HMC giving the
widest in-between error bars.

Registered as ``fig1-regression``; run it with
``repro run fig1-regression [--fast] [--set panels=hmc]`` or
:func:`repro.experiments.api.run_experiment`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Dict, Optional, Tuple

import numpy as np

from .. import nn, ppl
from .. import core as tyxe
from ..datasets.regression import foong_regression, regression_grid, true_function
from ..ppl import distributions as dist
from .api import (BaseExperimentConfig, parse_name_list, register,
                  warn_deprecated_entry_point)

__all__ = ["RegressionConfig", "RegressionResult", "run_variational_regression",
           "run_hmc_regression", "run_figure1"]

#: panel-selector names accepted by ``RegressionConfig.panels``
PANELS = ("local_reparameterization", "shared_weight_samples", "hmc")


@dataclass
class RegressionConfig(BaseExperimentConfig):
    """Sizes and hyper-parameters for the Figure-1 experiment."""

    n_per_cluster: int = 40
    noise_scale: float = 0.1
    hidden_units: int = 50
    num_epochs: int = 800
    learning_rate: float = 1e-2
    init_scale: float = 0.05
    num_predictions: int = 32
    batch_size: int = 80
    hmc_num_samples: int = 80
    hmc_warmup: int = 80
    hmc_step_size: float = 5e-4
    hmc_num_steps: int = 15
    seed: int = 42
    # comma-separated subset of PANELS, or "all" (the full figure)
    panels: str = "all"

    @classmethod
    def fast(cls) -> "RegressionConfig":
        """A tiny configuration for smoke tests."""
        return cls(n_per_cluster=15, hidden_units=20, num_epochs=30, num_predictions=8,
                   hmc_num_samples=10, hmc_warmup=10, hmc_num_steps=5, fast=True)

    def selected_panels(self) -> Tuple[str, ...]:
        return parse_name_list(self.panels, PANELS, PANELS, "panels")


@dataclass
class RegressionResult:
    """Predictive statistics on the evaluation grid plus summary scalars."""

    method: str
    x_grid: np.ndarray
    predictive_mean: np.ndarray
    predictive_std: np.ndarray
    train_log_likelihood: float
    train_squared_error: float
    in_between_std: float
    on_data_std: float
    extra: Dict = field(default_factory=dict)

    def summary(self) -> Dict[str, float]:
        return {
            "method": self.method,
            "train_log_likelihood": self.train_log_likelihood,
            "train_squared_error": self.train_squared_error,
            "in_between_std": self.in_between_std,
            "on_data_std": self.on_data_std,
        }


def _region_stds(x_grid: np.ndarray, std: np.ndarray) -> Dict[str, float]:
    x = x_grid.squeeze()
    in_between = std[(x > -0.5) & (x < 0.3)].mean()
    on_data = std[((x >= -1.0) & (x <= -0.7)) | ((x >= 0.5) & (x <= 1.0))].mean()
    return {"in_between": float(in_between), "on_data": float(on_data)}


def _build_net(config: RegressionConfig, rng: np.random.Generator) -> nn.Sequential:
    return nn.Sequential(nn.Linear(1, config.hidden_units, rng=rng), nn.Tanh(),
                         nn.Linear(config.hidden_units, 1, rng=rng))


def _make_variational_bnn(config: RegressionConfig, n_data: int,
                          rng: np.random.Generator) -> "tyxe.VariationalBNN":
    """The untrained panel-(a/b) model skeleton (shared with the serve target)."""
    net = _build_net(config, rng)
    likelihood = tyxe.likelihoods.HomoskedasticGaussian(n_data, scale=config.noise_scale)
    prior = tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0))
    guide_factory = partial(tyxe.guides.AutoNormal, init_scale=config.init_scale,
                            init_loc_fn=tyxe.guides.init_to_normal("radford"))
    return tyxe.VariationalBNN(net, prior, likelihood, guide_factory)


def _fit_variational_bnn(config: RegressionConfig):
    """Seed, build and train the mean-field VI posterior.

    Returns ``(bnn, x, y, losses)`` with the global RNG stream positioned
    exactly where the looped experiment path expects it — the experiment
    panels and the ``fig1-regression`` serve target both train through here.
    """
    rng = config.seed_all()
    x, y = foong_regression(config.n_per_cluster, config.noise_scale, seed=config.seed)
    bnn = _make_variational_bnn(config, len(x), rng)
    loader = nn.DataLoader(nn.TensorDataset(x, y), batch_size=config.batch_size, shuffle=True,
                           rng=np.random.default_rng(config.seed))
    optim = ppl.optim.Adam({"lr": config.learning_rate})
    losses = []
    with tyxe.poutine.local_reparameterization():
        bnn.fit(loader, optim, config.num_epochs,
                callback=lambda b, e, l: losses.append(l) and False)
    return bnn, x, y, losses


def _variational_regression(config: RegressionConfig,
                            local_reparam_predict: bool = True) -> RegressionResult:
    """Panels (a)/(b): mean-field VI with/without local reparameterization at test time."""
    bnn, x, y, losses = _fit_variational_bnn(config)
    x_grid = regression_grid()
    if local_reparam_predict:
        with tyxe.poutine.local_reparameterization():
            grid_preds = bnn.predict(x_grid, num_predictions=config.num_predictions, aggregate=False)
    else:
        grid_preds = bnn.predict(x_grid, num_predictions=config.num_predictions, aggregate=False)

    mean = grid_preds.data.mean(axis=0).squeeze()
    std = bnn.likelihood.predictive_stddev(grid_preds).squeeze()
    regions = _region_stds(x_grid, std)
    ll, err = bnn.evaluate(x, y, num_predictions=config.num_predictions)
    method = "local_reparameterization" if local_reparam_predict else "shared_weight_samples"
    return RegressionResult(method=method, x_grid=x_grid, predictive_mean=mean,
                            predictive_std=std, train_log_likelihood=ll,
                            train_squared_error=err, in_between_std=regions["in_between"],
                            on_data_std=regions["on_data"], extra={"losses": losses})


def _hmc_regression(config: RegressionConfig) -> RegressionResult:
    """Panel (c): the same model with HMC as the inference procedure."""
    rng = config.seed_all()
    x, y = foong_regression(config.n_per_cluster, config.noise_scale, seed=config.seed)
    x_grid = regression_grid()

    net = _build_net(config, rng)
    likelihood = tyxe.likelihoods.HomoskedasticGaussian(len(x), scale=config.noise_scale)
    prior = tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0))
    kernel_builder = partial(ppl.infer.HMC, step_size=config.hmc_step_size,
                             num_steps=config.hmc_num_steps)
    bnn = tyxe.MCMC_BNN(net, prior, likelihood, kernel_builder)
    bnn.fit((x, y), num_samples=config.hmc_num_samples, warmup_steps=config.hmc_warmup)

    grid_preds = bnn.predict(x_grid, num_predictions=config.num_predictions, aggregate=False)
    mean = grid_preds.data.mean(axis=0).squeeze()
    std = bnn.likelihood.predictive_stddev(grid_preds).squeeze()
    regions = _region_stds(x_grid, std)
    agg = bnn.predict(x, num_predictions=config.num_predictions, aggregate=True)
    ll = bnn.likelihood.log_likelihood(agg, nn.Tensor(y))
    err = bnn.likelihood.error(agg, nn.Tensor(y))
    accept = float(np.mean([d["accept_prob"] for d in bnn._mcmc.diagnostics]))
    return RegressionResult(method="hmc", x_grid=x_grid, predictive_mean=mean,
                            predictive_std=std, train_log_likelihood=ll,
                            train_squared_error=err, in_between_std=regions["in_between"],
                            on_data_std=regions["on_data"],
                            extra={"mean_accept_prob": accept})


def _figure1(config: RegressionConfig) -> Dict[str, RegressionResult]:
    """Run the selected panels and return their results keyed by method name."""
    runners = {
        "local_reparameterization": partial(_variational_regression,
                                            local_reparam_predict=True),
        "shared_weight_samples": partial(_variational_regression,
                                         local_reparam_predict=False),
        "hmc": _hmc_regression,
    }
    return {panel: runners[panel](config) for panel in config.selected_panels()}


def _validation_targets(config: RegressionConfig):
    """Untrained model/guide pairs for ``repro check-model`` (no training data)."""
    from ..analysis import ValidationTarget

    rng = np.random.default_rng(config.seed)
    net = _build_net(config, rng)
    likelihood = tyxe.likelihoods.HomoskedasticGaussian(8, scale=config.noise_scale)
    prior = tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0))
    guide_factory = partial(tyxe.guides.AutoNormal, init_scale=config.init_scale,
                            init_loc_fn=tyxe.guides.init_to_normal("radford"))
    bnn = tyxe.VariationalBNN(net, prior, likelihood, guide_factory)
    x = nn.Tensor(np.zeros((8, 1)))
    y = nn.Tensor(np.zeros((8, 1)))
    return [ValidationTarget("mean-field-vi", bnn.model, bnn.guide, args=(x, y))]


def _serve_target(config: RegressionConfig):
    """The mean-field VI posterior as a ``repro snapshot``/``repro serve`` model."""
    from ..serve import ServeTarget

    def build():
        rng = np.random.default_rng(config.seed)
        return _make_variational_bnn(config, 2 * config.n_per_cluster, rng)

    def fit():
        return _fit_variational_bnn(config)[0]

    return ServeTarget("mean-field-vi", build, regression_grid()[:8], fit=fit)


@register("fig1-regression", config_cls=RegressionConfig, number="E1", artefact="Figure 1",
          title="Bayesian nonlinear regression: mean-field VI (x2) vs. HMC",
          validation_targets=_validation_targets, serve_target=_serve_target)
def _figure1_experiment(config: RegressionConfig):
    results = _figure1(config)
    metrics = {f"{method}_{key}": value
               for method, result in results.items()
               for key, value in result.summary().items() if key != "method"}
    return metrics, results


# ------------------------------------------------------------ legacy entry points
def run_variational_regression(config: Optional[RegressionConfig] = None,
                               local_reparam_predict: bool = True) -> RegressionResult:
    """Deprecated shim over the ``fig1-regression`` registry path (panels a/b)."""
    warn_deprecated_entry_point("run_variational_regression", "fig1-regression")
    return _variational_regression(config or RegressionConfig(), local_reparam_predict)


def run_hmc_regression(config: Optional[RegressionConfig] = None) -> RegressionResult:
    """Deprecated shim over the ``fig1-regression`` registry path (panel c)."""
    warn_deprecated_entry_point("run_hmc_regression", "fig1-regression")
    return _hmc_regression(config or RegressionConfig())


def run_figure1(config: Optional[RegressionConfig] = None) -> Dict[str, RegressionResult]:
    """Deprecated shim over the ``fig1-regression`` registry path (all panels)."""
    warn_deprecated_entry_point("run_figure1", "fig1-regression")
    return _figure1(config or RegressionConfig())
