"""Experiment E6 — Figure 4: variational continual learning vs. maximum likelihood.

Reproduces the Split-MNIST / Split-CIFAR comparison: a sequence of binary
classification tasks is learned one after the other; after each task the mean
accuracy over all tasks seen so far is recorded.  The ML baseline fine-tunes
the same network sequentially and forgets earlier tasks; VCL updates the BNN
prior to the previous posterior after each task (Listing 6) and retains them.

The networks follow Appendix A.4 at reduced scale: a single-hidden-layer MLP
with one output head per task for the MNIST-style suite, and a small
conv-conv-pool network for the CIFAR-style suite.

Registered as ``fig4-vcl``; run it with ``repro run fig4-vcl [--fast]``
(both suites — the full figure) or ``--set suite=mnist`` for one suite.
Per-task accuracies are evaluated through the batched engine by default
(``vectorized_eval=True``, RNG-identical); ``--set vectorized_eval=false``
selects the per-task prediction loops.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import core as tyxe
from .. import metrics, nn, ppl
from ..core.vcl import VCLState, update_prior_to_posterior
from ..datasets.continual import ContinualTask, make_split_cifar_like, make_split_mnist_like
from ..nn import functional as F
from ..ppl import distributions as dist
from .api import BaseExperimentConfig, register, warn_deprecated_entry_point

__all__ = ["ContinualConfig", "ContinualResult", "MultiHeadNet", "run_vcl", "run_ml_baseline",
           "run_figure4"]


@dataclass
class ContinualConfig(BaseExperimentConfig):
    """Sizes and hyper-parameters of the continual-learning experiment."""

    suite: str = "mnist"  # "mnist" or "cifar" ("both" is valid for fig4-vcl only)
    num_tasks: int = 5
    image_size: int = 8
    train_per_class: int = 30
    test_per_class: int = 20
    hidden: int = 32
    epochs_per_task: int = 100
    learning_rate: float = 3e-3
    init_scale: float = 1e-2
    num_predictions: int = 8
    batch_size: int = 60
    single_head: bool = True
    # per-task accuracies go through one batched forward over the stacked task
    # test sets when the inherited ``vectorized_eval`` is True (the default;
    # RNG-identical — the looped path stays reachable via vectorized_eval=False)

    @classmethod
    def fast(cls, suite: str = "mnist") -> "ContinualConfig":
        num_tasks = 3 if suite == "mnist" else 2
        return cls(suite=suite, num_tasks=num_tasks, train_per_class=12, test_per_class=8,
                   hidden=24, epochs_per_task=10, num_predictions=4, fast=True)


@dataclass
class ContinualResult:
    """Mean-accuracy-over-seen-tasks curve (one line of Figure 4)."""

    method: str
    suite: str
    mean_accuracies: List[float]
    accuracy_matrix: np.ndarray
    forgetting: float
    extra: Dict = field(default_factory=dict)

    def summary(self) -> Dict[str, object]:
        return {"method": self.method, "suite": self.suite,
                "mean_accuracies": self.mean_accuracies, "forgetting": self.forgetting}


class MultiHeadNet(nn.Module):
    """Shared body with one output head per task (the multi-head Split protocol).

    ``set_active_task`` selects which head the forward pass uses; all heads'
    parameters exist from the start so the Bayesian treatment covers them.
    """

    def __init__(self, body: nn.Module, body_out: int, num_tasks: int, classes_per_task: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.body = body
        self.heads = nn.ModuleList([nn.Linear(body_out, classes_per_task, rng=rng)
                                    for _ in range(num_tasks)])
        self.active_task = 0
        object.__setattr__(self, "task_schedule", None)

    def set_active_task(self, task_id: int) -> None:
        # with a single shared head (domain-incremental protocol) every task
        # maps to head 0; otherwise each task has its own head
        object.__setattr__(self, "active_task", task_id if task_id < len(self.heads) else 0)

    def set_task_schedule(self, head_ids: Optional[Sequence[int]]) -> None:
        """Route each leading-sample slice of a batched forward to its own head.

        ``head_ids[s]`` names the head the ``s``-th slice of a stacked
        ``(S, N, ...)`` forward pass goes through — the head-indexed batched
        forward that lets multi-head (``single_head=False``) evaluation share
        one body pass across tasks.  Evaluation-only: the selected logits are
        detached, so use it under ``nn.no_grad()``.  ``None`` restores normal
        single-active-head routing.
        """
        schedule = None if head_ids is None else np.asarray(head_ids, dtype=int)
        if schedule is not None and schedule.ndim != 1:
            raise ValueError("task schedule must be a 1-D sequence of head indices")
        object.__setattr__(self, "task_schedule", schedule)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        features = self.body(x)
        schedule = self.task_schedule
        if schedule is None:
            return self.heads[self.active_task](features)
        if features.shape[0] != len(schedule):
            raise ValueError(
                f"task schedule covers {len(schedule)} leading-sample slices but the "
                f"batched forward carries {features.shape[0]}")
        # one body pass feeds every head; each head is a single (cheap) linear
        # layer, so computing all H head outputs and gathering slice s from
        # head schedule[s] stays far cheaper than per-task body forwards
        head_outputs = [self.heads[h](features).data for h in range(len(self.heads))]
        selected = np.stack([head_outputs[schedule[s]][s] for s in range(len(schedule))])
        return nn.Tensor(selected)


def _make_tasks(config: ContinualConfig) -> List[ContinualTask]:
    if config.suite == "mnist":
        return make_split_mnist_like(num_tasks=config.num_tasks, image_size=config.image_size,
                                     train_per_class=config.train_per_class,
                                     test_per_class=config.test_per_class, seed=config.seed)
    if config.suite == "cifar":
        return make_split_cifar_like(num_tasks=config.num_tasks, image_size=config.image_size,
                                     train_per_class=config.train_per_class,
                                     test_per_class=config.test_per_class, seed=config.seed)
    raise ValueError(f"unknown suite {config.suite!r}; use 'mnist' or 'cifar'")


def _make_net(config: ContinualConfig, rng: np.random.Generator) -> MultiHeadNet:
    num_heads = 1 if config.single_head else config.num_tasks
    if config.suite == "mnist":
        in_features = config.image_size ** 2
        body = nn.Sequential(nn.Linear(in_features, config.hidden, rng=rng), nn.ReLU())
        return MultiHeadNet(body, config.hidden, num_heads, 2, rng=rng)
    channels = (8, 16)
    final_size = config.image_size // 4
    flat = channels[1] * final_size * final_size
    body = nn.Sequential(
        nn.models.ConvBlock(3, channels[0], rng=rng),
        nn.models.ConvBlock(channels[0], channels[1], rng=rng),
        nn.Flatten(),
        nn.Linear(flat, config.hidden, rng=rng),
        nn.ReLU(),
    )
    return MultiHeadNet(body, config.hidden, num_heads, 2, rng=rng)


def _task_accuracy_bnn(bnn: tyxe.VariationalBNN, net: MultiHeadNet, task: ContinualTask,
                       num_predictions: int) -> float:
    net.set_active_task(task.task_id)
    agg = bnn.predict(nn.Tensor(task.test_inputs), num_predictions=num_predictions,
                      aggregate=True)
    return metrics.accuracy(metrics.as_probs(agg, from_logits=True), task.test_labels)


def _evaluate_task_accuracies(bnn: tyxe.VariationalBNN, net: MultiHeadNet,
                              tasks: Sequence[ContinualTask], num_predictions: int,
                              vectorized: bool = False) -> List[float]:
    """Accuracy on every task's test set (the per-step column of Figure 4).

    The looped reference calls ``predict`` once per task.  ``vectorized=True``
    stacks all task test sets and runs ONE batched forward over the
    ``tasks x num_predictions`` leading sample axis via
    :meth:`~repro.core.bnn._SupervisedBNN.predict_grouped` — weight draws are
    consumed task-major, so the accuracies are RNG-identical to the loop.
    Multi-head networks (``single_head=False``) share the same batched body
    forward through :meth:`MultiHeadNet.set_task_schedule`, which routes each
    task's sample slices through its own head.  Only tasks with mismatched
    test-set shapes cannot share one batched forward; they fall back to
    per-task ``predict(vectorized=True)``, which is likewise RNG-identical.
    """
    if not vectorized:
        return [_task_accuracy_bnn(bnn, net, t, num_predictions) for t in tasks]
    shapes = {t.test_inputs.shape for t in tasks}
    if len(shapes) == 1:
        stacked = np.stack([t.test_inputs for t in tasks])  # (T, n, ...)
        if len(net.heads) == 1:
            net.set_active_task(tasks[0].task_id)
            agg = bnn.predict_grouped(stacked, num_predictions=num_predictions)
        else:
            head_ids = [t.task_id if t.task_id < len(net.heads) else 0 for t in tasks]
            net.set_task_schedule(np.repeat(head_ids, num_predictions))
            try:
                agg = bnn.predict_grouped(stacked, num_predictions=num_predictions)
            finally:
                net.set_task_schedule(None)
        return [metrics.accuracy(metrics.as_probs(agg[i], from_logits=True), t.test_labels)
                for i, t in enumerate(tasks)]
    accuracies = []
    for task in tasks:
        net.set_active_task(task.task_id)
        agg = bnn.predict(nn.Tensor(task.test_inputs), num_predictions=num_predictions,
                          aggregate=True, vectorized=True)
        accuracies.append(metrics.accuracy(metrics.as_probs(agg, from_logits=True),
                                           task.test_labels))
    return accuracies


def _task_accuracy_ml(net: MultiHeadNet, task: ContinualTask) -> float:
    net.set_active_task(task.task_id)
    with nn.no_grad():
        logits = net(nn.Tensor(task.test_inputs))
    return metrics.accuracy(metrics.as_probs(logits, from_logits=True), task.test_labels)


def _vcl(config: ContinualConfig) -> ContinualResult:
    """Variational continual learning: prior <- posterior between tasks."""
    rng = config.seed_all()
    tasks = _make_tasks(config)
    net = _make_net(config, rng)

    prior = tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0))
    guide = partial(tyxe.guides.AutoNormal, init_scale=config.init_scale,
                    init_loc_fn=tyxe.guides.PretrainedInitializer.from_net(net))
    state = VCLState(len(tasks))

    bnn: Optional[tyxe.VariationalBNN] = None
    for task in tasks:
        net.set_active_task(task.task_id)
        likelihood = tyxe.likelihoods.Categorical(dataset_size=len(task.train_inputs))
        if bnn is None:
            bnn = tyxe.VariationalBNN(net, prior, likelihood, guide)
        else:
            bnn.likelihood = likelihood
        loader = nn.DataLoader(nn.TensorDataset(task.train_inputs, task.train_labels),
                               batch_size=config.batch_size, shuffle=True,
                               rng=np.random.default_rng(config.seed + task.task_id))
        optim = ppl.optim.Adam({"lr": config.learning_rate})
        with tyxe.poutine.local_reparameterization():
            bnn.fit(loader, optim, config.epochs_per_task)
        # record accuracy on all tasks seen so far
        accuracies = _evaluate_task_accuracies(bnn, net, tasks[: task.task_id + 1],
                                               config.num_predictions,
                                               vectorized=config.vectorized_eval)
        state.record(task.task_id, accuracies)
        # posterior becomes the prior of the next task (Listing 6)
        update_prior_to_posterior(bnn)
    return ContinualResult(method="vcl", suite=config.suite,
                           mean_accuracies=state.mean_accuracies(),
                           accuracy_matrix=state.accuracy_matrix,
                           forgetting=state.forgetting())


def _ml_baseline(config: ContinualConfig) -> ContinualResult:
    """Sequential maximum-likelihood fine-tuning (the forgetting baseline)."""
    rng = config.seed_all()
    tasks = _make_tasks(config)
    net = _make_net(config, rng)
    state = VCLState(len(tasks))
    optim = nn.Adam(net.parameters(), lr=config.learning_rate)

    for task in tasks:
        net.set_active_task(task.task_id)
        loader = nn.DataLoader(nn.TensorDataset(task.train_inputs, task.train_labels),
                               batch_size=config.batch_size, shuffle=True,
                               rng=np.random.default_rng(config.seed + task.task_id))
        for _ in range(config.epochs_per_task):
            for x, y in loader:
                optim.zero_grad()
                loss = F.cross_entropy(net(x), y.data.astype(np.int64))
                loss.backward()
                optim.step()
        accuracies = [_task_accuracy_ml(net, t) for t in tasks[: task.task_id + 1]]
        state.record(task.task_id, accuracies)
    return ContinualResult(method="ml", suite=config.suite,
                           mean_accuracies=state.mean_accuracies(),
                           accuracy_matrix=state.accuracy_matrix,
                           forgetting=state.forgetting())


def _figure4(mnist_config: Optional[ContinualConfig] = None,
             cifar_config: Optional[ContinualConfig] = None
             ) -> Dict[str, Dict[str, ContinualResult]]:
    """Both suites, both methods — the four curves of Figure 4."""
    mnist_config = mnist_config or ContinualConfig(suite="mnist", num_tasks=5)
    cifar_config = cifar_config or ContinualConfig(suite="cifar", num_tasks=6)
    return {
        "mnist": {"ml": _ml_baseline(mnist_config), "vcl": _vcl(mnist_config)},
        "cifar": {"ml": _ml_baseline(cifar_config), "vcl": _vcl(cifar_config)},
    }


def _validation_targets(config: ContinualConfig):
    """The first-task VCL model/guide pair for ``repro check-model``."""
    from ..analysis import ValidationTarget

    if config.suite not in ("mnist", "cifar"):  # "both" has no single network
        config = dataclasses.replace(config, suite="mnist")
    rng = np.random.default_rng(config.seed)
    net = _make_net(config, rng)
    prior = tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0))
    guide = partial(tyxe.guides.AutoNormal, init_scale=config.init_scale,
                    init_loc_fn=tyxe.guides.PretrainedInitializer.from_net(net))
    bnn = tyxe.VariationalBNN(net, prior, tyxe.likelihoods.Categorical(dataset_size=4),
                              guide)
    if config.suite == "mnist":
        x = np.zeros((4, config.image_size ** 2))
    else:
        x = np.zeros((4, 3, config.image_size, config.image_size))
    return [ValidationTarget("vcl-task0", bnn.model, bnn.guide,
                             args=(nn.Tensor(x), nn.Tensor(np.zeros(4))))]


@register("fig4-vcl", config_cls=ContinualConfig, number="E6", artefact="Figure 4",
          title="Variational continual learning vs. sequential maximum likelihood",
          base_overrides={"suite": "both"},
          validation_targets=_validation_targets)
def _figure4_experiment(config: ContinualConfig):
    """Both methods on the configured suite(s).

    The registry default is ``suite="both"`` — the full four-curve figure,
    with the CIFAR-style suite running one more task than the MNIST-style
    suite (the paper's 5/6 split; one task fewer at ``fast`` scale) — while
    ``--set suite=mnist`` (or ``cifar``) reproduces a single suite's pair of
    curves.
    """
    suites = ("mnist", "cifar") if config.suite == "both" else (config.suite,)
    results: Dict[str, Dict[str, ContinualResult]] = {}
    for suite in suites:
        suite_config = dataclasses.replace(config, suite=suite)
        if config.suite == "both" and suite == "cifar":
            # full scale mirrors the paper's 5/6 split; fast mirrors
            # ContinualConfig.fast("cifar"), which runs one task fewer than
            # the MNIST-style smoke suite
            cifar_tasks = max(config.num_tasks - 1, 2) if config.fast else config.num_tasks + 1
            suite_config = dataclasses.replace(suite_config, num_tasks=cifar_tasks)
        results[suite] = {"ml": _ml_baseline(suite_config), "vcl": _vcl(suite_config)}
    metrics_out: Dict[str, object] = {}
    for suite, pair in results.items():
        for method, result in pair.items():
            prefix = f"{suite}_{method}"
            metrics_out[f"{prefix}_final_mean_accuracy"] = result.mean_accuracies[-1]
            metrics_out[f"{prefix}_forgetting"] = result.forgetting
            metrics_out[f"{prefix}_mean_accuracies"] = [float(a)
                                                        for a in result.mean_accuracies]
    return metrics_out, results


# ------------------------------------------------------------ legacy entry points
def run_vcl(config: Optional[ContinualConfig] = None) -> ContinualResult:
    """Deprecated shim over the ``fig4-vcl`` registry path (VCL curve)."""
    warn_deprecated_entry_point("run_vcl", "fig4-vcl")
    return _vcl(config or ContinualConfig())


def run_ml_baseline(config: Optional[ContinualConfig] = None) -> ContinualResult:
    """Deprecated shim over the ``fig4-vcl`` registry path (ML baseline curve)."""
    warn_deprecated_entry_point("run_ml_baseline", "fig4-vcl")
    return _ml_baseline(config or ContinualConfig())


def run_figure4(mnist_config: Optional[ContinualConfig] = None,
                cifar_config: Optional[ContinualConfig] = None
                ) -> Dict[str, Dict[str, ContinualResult]]:
    """Deprecated shim over the ``fig4-vcl`` registry path (all four curves)."""
    warn_deprecated_entry_point("run_figure4", "fig4-vcl")
    return _figure4(mnist_config, cifar_config)
