"""Experiment E6 — Figure 4: variational continual learning vs. maximum likelihood.

Reproduces the Split-MNIST / Split-CIFAR comparison: a sequence of binary
classification tasks is learned one after the other; after each task the mean
accuracy over all tasks seen so far is recorded.  The ML baseline fine-tunes
the same network sequentially and forgets earlier tasks; VCL updates the BNN
prior to the previous posterior after each task (Listing 6) and retains them.

The networks follow Appendix A.4 at reduced scale: a single-hidden-layer MLP
with one output head per task for the MNIST-style suite, and a small
conv-conv-pool network for the CIFAR-style suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import core as tyxe
from .. import metrics, nn, ppl
from ..core.vcl import VCLState, update_prior_to_posterior
from ..datasets.continual import ContinualTask, make_split_cifar_like, make_split_mnist_like
from ..nn import functional as F
from ..ppl import distributions as dist

__all__ = ["ContinualConfig", "ContinualResult", "MultiHeadNet", "run_vcl", "run_ml_baseline",
           "run_figure4"]


@dataclass
class ContinualConfig:
    """Sizes and hyper-parameters of the continual-learning experiment."""

    suite: str = "mnist"  # "mnist" or "cifar"
    num_tasks: int = 5
    image_size: int = 8
    train_per_class: int = 30
    test_per_class: int = 20
    hidden: int = 32
    epochs_per_task: int = 100
    learning_rate: float = 3e-3
    init_scale: float = 1e-2
    num_predictions: int = 8
    batch_size: int = 60
    single_head: bool = True
    seed: int = 0
    # evaluate per-task accuracies through one batched forward over the
    # stacked task test sets (RNG-identical; the looped path is the default)
    vectorized_eval: bool = False

    @classmethod
    def fast(cls, suite: str = "mnist") -> "ContinualConfig":
        num_tasks = 3 if suite == "mnist" else 2
        return cls(suite=suite, num_tasks=num_tasks, train_per_class=12, test_per_class=8,
                   hidden=24, epochs_per_task=10, num_predictions=4)


@dataclass
class ContinualResult:
    """Mean-accuracy-over-seen-tasks curve (one line of Figure 4)."""

    method: str
    suite: str
    mean_accuracies: List[float]
    accuracy_matrix: np.ndarray
    forgetting: float
    extra: Dict = field(default_factory=dict)

    def summary(self) -> Dict[str, object]:
        return {"method": self.method, "suite": self.suite,
                "mean_accuracies": self.mean_accuracies, "forgetting": self.forgetting}


class MultiHeadNet(nn.Module):
    """Shared body with one output head per task (the multi-head Split protocol).

    ``set_active_task`` selects which head the forward pass uses; all heads'
    parameters exist from the start so the Bayesian treatment covers them.
    """

    def __init__(self, body: nn.Module, body_out: int, num_tasks: int, classes_per_task: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.body = body
        self.heads = nn.ModuleList([nn.Linear(body_out, classes_per_task, rng=rng)
                                    for _ in range(num_tasks)])
        self.active_task = 0

    def set_active_task(self, task_id: int) -> None:
        # with a single shared head (domain-incremental protocol) every task
        # maps to head 0; otherwise each task has its own head
        object.__setattr__(self, "active_task", task_id if task_id < len(self.heads) else 0)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        features = self.body(x)
        return self.heads[self.active_task](features)


def _make_tasks(config: ContinualConfig) -> List[ContinualTask]:
    if config.suite == "mnist":
        return make_split_mnist_like(num_tasks=config.num_tasks, image_size=config.image_size,
                                     train_per_class=config.train_per_class,
                                     test_per_class=config.test_per_class, seed=config.seed)
    if config.suite == "cifar":
        return make_split_cifar_like(num_tasks=config.num_tasks, image_size=config.image_size,
                                     train_per_class=config.train_per_class,
                                     test_per_class=config.test_per_class, seed=config.seed)
    raise ValueError(f"unknown suite {config.suite!r}; use 'mnist' or 'cifar'")


def _make_net(config: ContinualConfig, rng: np.random.Generator) -> MultiHeadNet:
    num_heads = 1 if config.single_head else config.num_tasks
    if config.suite == "mnist":
        in_features = config.image_size ** 2
        body = nn.Sequential(nn.Linear(in_features, config.hidden, rng=rng), nn.ReLU())
        return MultiHeadNet(body, config.hidden, num_heads, 2, rng=rng)
    channels = (8, 16)
    final_size = config.image_size // 4
    flat = channels[1] * final_size * final_size
    body = nn.Sequential(
        nn.models.ConvBlock(3, channels[0], rng=rng),
        nn.models.ConvBlock(channels[0], channels[1], rng=rng),
        nn.Flatten(),
        nn.Linear(flat, config.hidden, rng=rng),
        nn.ReLU(),
    )
    return MultiHeadNet(body, config.hidden, num_heads, 2, rng=rng)


def _task_accuracy_bnn(bnn: tyxe.VariationalBNN, net: MultiHeadNet, task: ContinualTask,
                       num_predictions: int) -> float:
    net.set_active_task(task.task_id)
    agg = bnn.predict(nn.Tensor(task.test_inputs), num_predictions=num_predictions,
                      aggregate=True)
    return metrics.accuracy(metrics.as_probs(agg, from_logits=True), task.test_labels)


def _evaluate_task_accuracies(bnn: tyxe.VariationalBNN, net: MultiHeadNet,
                              tasks: Sequence[ContinualTask], num_predictions: int,
                              vectorized: bool = False) -> List[float]:
    """Accuracy on every task's test set (the per-step column of Figure 4).

    The looped reference calls ``predict`` once per task.  ``vectorized=True``
    stacks all task test sets and runs ONE batched forward over the
    ``tasks x num_predictions`` leading sample axis via
    :meth:`~repro.core.bnn._SupervisedBNN.predict_grouped` — weight draws are
    consumed task-major, so the accuracies are RNG-identical to the loop.
    Tasks with mismatched test-set shapes or per-task heads cannot share one
    batched forward; they fall back to per-task ``predict(vectorized=True)``,
    which is likewise RNG-identical.
    """
    if not vectorized:
        return [_task_accuracy_bnn(bnn, net, t, num_predictions) for t in tasks]
    shapes = {t.test_inputs.shape for t in tasks}
    if len(shapes) == 1 and len(net.heads) == 1:
        net.set_active_task(tasks[0].task_id)
        stacked = np.stack([t.test_inputs for t in tasks])  # (T, n, ...)
        agg = bnn.predict_grouped(stacked, num_predictions=num_predictions)
        return [metrics.accuracy(metrics.as_probs(agg[i], from_logits=True), t.test_labels)
                for i, t in enumerate(tasks)]
    accuracies = []
    for task in tasks:
        net.set_active_task(task.task_id)
        agg = bnn.predict(nn.Tensor(task.test_inputs), num_predictions=num_predictions,
                          aggregate=True, vectorized=True)
        accuracies.append(metrics.accuracy(metrics.as_probs(agg, from_logits=True),
                                           task.test_labels))
    return accuracies


def _task_accuracy_ml(net: MultiHeadNet, task: ContinualTask) -> float:
    net.set_active_task(task.task_id)
    with nn.no_grad():
        logits = net(nn.Tensor(task.test_inputs))
    return metrics.accuracy(metrics.as_probs(logits, from_logits=True), task.test_labels)


def run_vcl(config: Optional[ContinualConfig] = None) -> ContinualResult:
    """Variational continual learning: prior <- posterior between tasks."""
    config = config or ContinualConfig()
    ppl.set_rng_seed(config.seed)
    ppl.clear_param_store()
    rng = np.random.default_rng(config.seed)
    tasks = _make_tasks(config)
    net = _make_net(config, rng)

    prior = tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0))
    guide = partial(tyxe.guides.AutoNormal, init_scale=config.init_scale,
                    init_loc_fn=tyxe.guides.PretrainedInitializer.from_net(net))
    state = VCLState(len(tasks))

    bnn: Optional[tyxe.VariationalBNN] = None
    for task in tasks:
        net.set_active_task(task.task_id)
        likelihood = tyxe.likelihoods.Categorical(dataset_size=len(task.train_inputs))
        if bnn is None:
            bnn = tyxe.VariationalBNN(net, prior, likelihood, guide)
        else:
            bnn.likelihood = likelihood
        loader = nn.DataLoader(nn.TensorDataset(task.train_inputs, task.train_labels),
                               batch_size=config.batch_size, shuffle=True,
                               rng=np.random.default_rng(config.seed + task.task_id))
        optim = ppl.optim.Adam({"lr": config.learning_rate})
        with tyxe.poutine.local_reparameterization():
            bnn.fit(loader, optim, config.epochs_per_task)
        # record accuracy on all tasks seen so far
        accuracies = _evaluate_task_accuracies(bnn, net, tasks[: task.task_id + 1],
                                               config.num_predictions,
                                               vectorized=config.vectorized_eval)
        state.record(task.task_id, accuracies)
        # posterior becomes the prior of the next task (Listing 6)
        update_prior_to_posterior(bnn)
    return ContinualResult(method="vcl", suite=config.suite,
                           mean_accuracies=state.mean_accuracies(),
                           accuracy_matrix=state.accuracy_matrix,
                           forgetting=state.forgetting())


def run_ml_baseline(config: Optional[ContinualConfig] = None) -> ContinualResult:
    """Sequential maximum-likelihood fine-tuning (the forgetting baseline)."""
    config = config or ContinualConfig()
    rng = np.random.default_rng(config.seed)
    tasks = _make_tasks(config)
    net = _make_net(config, rng)
    state = VCLState(len(tasks))
    optim = nn.Adam(net.parameters(), lr=config.learning_rate)

    for task in tasks:
        net.set_active_task(task.task_id)
        loader = nn.DataLoader(nn.TensorDataset(task.train_inputs, task.train_labels),
                               batch_size=config.batch_size, shuffle=True,
                               rng=np.random.default_rng(config.seed + task.task_id))
        for _ in range(config.epochs_per_task):
            for x, y in loader:
                optim.zero_grad()
                loss = F.cross_entropy(net(x), y.data.astype(np.int64))
                loss.backward()
                optim.step()
        accuracies = [_task_accuracy_ml(net, t) for t in tasks[: task.task_id + 1]]
        state.record(task.task_id, accuracies)
    return ContinualResult(method="ml", suite=config.suite,
                           mean_accuracies=state.mean_accuracies(),
                           accuracy_matrix=state.accuracy_matrix,
                           forgetting=state.forgetting())


def run_figure4(mnist_config: Optional[ContinualConfig] = None,
                cifar_config: Optional[ContinualConfig] = None
                ) -> Dict[str, Dict[str, ContinualResult]]:
    """Both suites, both methods — the four curves of Figure 4."""
    mnist_config = mnist_config or ContinualConfig(suite="mnist", num_tasks=5)
    cifar_config = cifar_config or ContinualConfig(suite="cifar", num_tasks=6)
    return {
        "mnist": {"ml": run_ml_baseline(mnist_config), "vcl": run_vcl(mnist_config)},
        "cifar": {"ml": run_ml_baseline(cifar_config), "vcl": run_vcl(cifar_config)},
    }
