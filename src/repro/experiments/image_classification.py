"""Experiments E2/E3 — Table 1 and Figure 2: Bayesian ResNet image classification.

Compares inference strategies for a residual network on a synthetic CIFAR-like
dataset, with a synthetic OOD set standing in for SVHN:

* ``ml``          — maximum likelihood (plain training),
* ``map``         — maximum a-posteriori (AutoDelta guide under the N(0,1) prior),
* ``mf_sd_only``  — mean-field VI with means frozen at the pre-trained weights,
* ``mf``          — mean-field VI with learned means (std clipped at 0.1),
* ``ll_mf``       — mean-field VI over the final linear layer only,
* ``ll_lowrank``  — low-rank-plus-diagonal VI over the final linear layer only.

BatchNorm parameters are always excluded from the Bayesian treatment
(``hide_module_types=[nn.BatchNorm2d]``), variational methods start from the
ML solution and are trained with local reparameterization — mirroring the
paper's Listing 3 and Appendix A.1.  Reported metrics are NLL, accuracy, ECE
and OOD AUROC (Table 1) plus calibration curves and test/OOD entropy CDFs
(Figure 2).

Registered as ``table1-resnet`` (E2) and ``fig2-calibration`` (E3); run with
``repro run table1-resnet [--fast] [--set methods=ml,mf]`` or
:func:`repro.experiments.api.run_experiment`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import core as tyxe
from .. import metrics, nn, ppl
from ..datasets.images import make_image_classification_data, make_ood_images
from ..nn import functional as F
from ..ppl import distributions as dist
from .api import (BaseExperimentConfig, parse_name_list, register,
                  warn_deprecated_entry_point)

__all__ = ["ImageClassificationConfig", "MethodResult", "run_inference_comparison",
           "table1_rows", "figure2_curves", "ALL_METHODS"]

ALL_METHODS = ("ml", "map", "mf_sd_only", "mf", "ll_mf", "ll_lowrank")


@dataclass
class ImageClassificationConfig(BaseExperimentConfig):
    """Sizes and hyper-parameters of the ResNet comparison."""

    num_classes: int = 10
    image_size: int = 8
    channels: int = 3
    train_per_class: int = 40
    test_per_class: int = 20
    num_ood: int = 200
    noise_scale: float = 1.0
    base_width: int = 8
    resnet_depth: int = 8
    batch_size: int = 64
    ml_epochs: int = 30
    vi_epochs: int = 15
    learning_rate: float = 1e-3
    vi_learning_rate: float = 1e-3
    init_scale: float = 1e-3
    max_guide_scale: float = 0.1
    low_rank: int = 5
    num_predictions: int = 16
    # comma-separated subset of ALL_METHODS; empty = all of them
    methods: str = ""

    @classmethod
    def fast(cls) -> "ImageClassificationConfig":
        """A tiny configuration for smoke tests."""
        return cls(num_classes=4, image_size=6, train_per_class=10, test_per_class=6,
                   num_ood=24, base_width=4, ml_epochs=3, vi_epochs=2, num_predictions=4,
                   batch_size=32, low_rank=2, fast=True)

    def selected_methods(self) -> Tuple[str, ...]:
        return parse_name_list(self.methods, ALL_METHODS, ALL_METHODS, "methods")


@dataclass
class MethodResult:
    """Per-method predictive metrics (one row of Table 1)."""

    method: str
    nll: float
    accuracy: float
    ece: float
    ood_auroc: float
    test_probs: np.ndarray = field(repr=False, default=None)
    ood_probs: np.ndarray = field(repr=False, default=None)

    def row(self) -> Dict[str, float]:
        return {"method": self.method, "nll": self.nll, "accuracy": self.accuracy,
                "ece": self.ece, "ood_auroc": self.ood_auroc}


def _make_data(config: ImageClassificationConfig):
    """The train/test image dataset for ``config`` (deterministic in the seed)."""
    return make_image_classification_data(
        num_classes=config.num_classes, image_size=config.image_size, channels=config.channels,
        train_per_class=config.train_per_class, test_per_class=config.test_per_class,
        noise_scale=config.noise_scale, seed=config.seed)


def _make_net(config: ImageClassificationConfig, seed_offset: int = 0):
    rng = np.random.default_rng(config.seed + seed_offset)
    return nn.models.make_resnet(config.resnet_depth, num_classes=config.num_classes,
                                 in_channels=config.channels, base_width=config.base_width,
                                 rng=rng)


def _evaluate_probs(probs_test: np.ndarray, labels_test: np.ndarray,
                    probs_ood: np.ndarray, method: str) -> MethodResult:
    return MethodResult(
        method=method,
        nll=metrics.nll(probs_test, labels_test),
        accuracy=metrics.accuracy(probs_test, labels_test),
        ece=metrics.expected_calibration_error(probs_test, labels_test),
        ood_auroc=metrics.ood_auroc_max_prob(probs_test, probs_ood),
        test_probs=probs_test,
        ood_probs=probs_ood,
    )


def _deterministic_probs(net, images: np.ndarray, batch_size: int) -> np.ndarray:
    net.eval()
    probs = []
    with nn.no_grad():
        for start in range(0, len(images), batch_size):
            logits = net(nn.Tensor(images[start:start + batch_size]))
            probs.append(metrics.as_probs(logits, from_logits=True))
    net.train()
    return np.concatenate(probs)


def _bnn_probs(bnn, images: np.ndarray, batch_size: int, num_predictions: int) -> np.ndarray:
    bnn.net.eval()
    probs = []
    for start in range(0, len(images), batch_size):
        batch = images[start:start + batch_size]
        agg = bnn.predict(nn.Tensor(batch), num_predictions=num_predictions, aggregate=True)
        probs.append(metrics.as_probs(agg, from_logits=True))
    bnn.net.train()
    return np.concatenate(probs)


def _pretrain_ml(net, data, config: ImageClassificationConfig) -> List[float]:
    """Plain maximum-likelihood training; returns the per-epoch losses."""
    loader = nn.DataLoader(nn.TensorDataset(data.train_images, data.train_labels),
                           batch_size=config.batch_size, shuffle=True,
                           rng=np.random.default_rng(config.seed))
    optim = nn.Adam(net.parameters(), lr=config.learning_rate)
    losses = []
    for _ in range(config.ml_epochs):
        epoch_loss = 0.0
        for x, y in loader:
            optim.zero_grad()
            loss = F.cross_entropy(net(x), y.data.astype(np.int64))
            loss.backward()
            optim.step()
            epoch_loss += loss.item()
        losses.append(epoch_loss / len(loader))
    return losses


def _fit_variational(net, data, config: ImageClassificationConfig, guide_factory,
                     prior: tyxe.priors.Prior, epochs: int) -> tyxe.VariationalBNN:
    likelihood = tyxe.likelihoods.Categorical(len(data.train_images))
    bnn = tyxe.VariationalBNN(net, prior, likelihood, guide_factory)
    loader = nn.DataLoader(nn.TensorDataset(data.train_images, data.train_labels),
                           batch_size=config.batch_size, shuffle=True,
                           rng=np.random.default_rng(config.seed + 1))
    optim = ppl.optim.Adam({"lr": config.vi_learning_rate})
    with tyxe.poutine.local_reparameterization():
        bnn.fit(loader, optim, epochs)
    return bnn


def _inference_comparison(config: ImageClassificationConfig,
                          methods: Optional[Sequence[str]] = None,
                          data=None) -> Dict[str, MethodResult]:
    """Run the requested inference strategies and return one result per method.

    ``data`` optionally supplies a pre-built dataset (as returned by
    ``_make_data(config)``) so callers that also need the labels do not
    generate it twice.
    """
    methods = tuple(methods) if methods is not None else config.selected_methods()
    unknown = set(methods) - set(ALL_METHODS)
    if unknown:
        raise ValueError(f"unknown methods: {sorted(unknown)}")

    config.seed_all()
    if data is None:
        data = _make_data(config)
    ood_images = make_ood_images(config.num_ood, image_size=config.image_size,
                                 channels=config.channels, noise_scale=config.noise_scale,
                                 seed=config.seed + 1000, num_classes=config.num_classes)

    # ---------------------------------------------------------------- ML base
    ml_net = _make_net(config)
    _pretrain_ml(ml_net, data, config)
    pretrained_state = ml_net.state_dict()
    results: Dict[str, MethodResult] = {}

    if "ml" in methods:
        probs_test = _deterministic_probs(ml_net, data.test_images, config.batch_size)
        probs_ood = _deterministic_probs(ml_net, ood_images, config.batch_size)
        results["ml"] = _evaluate_probs(probs_test, data.test_labels, probs_ood, "ml")

    def _fresh_pretrained_net():
        net = _make_net(config)
        net.load_state_dict(pretrained_state)
        return net

    full_prior_kwargs = dict(expose_all=True, hide_module_types=[nn.BatchNorm2d])

    # ---------------------------------------------------------------- MAP
    if "map" in methods:
        net = _fresh_pretrained_net()
        prior = tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0), **full_prior_kwargs)
        guide = partial(tyxe.guides.AutoDelta,
                        init_loc_fn=tyxe.guides.PretrainedInitializer.from_net(net))
        bnn = _fit_variational(net, data, config, guide, prior, config.vi_epochs)
        probs_test = _bnn_probs(bnn, data.test_images, config.batch_size, 1)
        probs_ood = _bnn_probs(bnn, ood_images, config.batch_size, 1)
        results["map"] = _evaluate_probs(probs_test, data.test_labels, probs_ood, "map")

    # ------------------------------------------------------- mean-field variants
    def _mf_guide(net, train_loc: bool):
        return partial(tyxe.guides.AutoNormal,
                       init_loc_fn=tyxe.guides.PretrainedInitializer.from_net(net),
                       init_scale=config.init_scale,
                       train_loc=train_loc,
                       max_guide_scale=config.max_guide_scale)

    if "mf_sd_only" in methods:
        net = _fresh_pretrained_net()
        prior = tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0), **full_prior_kwargs)
        bnn = _fit_variational(net, data, config, _mf_guide(net, train_loc=False), prior,
                               config.vi_epochs)
        probs_test = _bnn_probs(bnn, data.test_images, config.batch_size, config.num_predictions)
        probs_ood = _bnn_probs(bnn, ood_images, config.batch_size, config.num_predictions)
        results["mf_sd_only"] = _evaluate_probs(probs_test, data.test_labels, probs_ood,
                                                "mf_sd_only")

    if "mf" in methods:
        net = _fresh_pretrained_net()
        prior = tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0), **full_prior_kwargs)
        bnn = _fit_variational(net, data, config, _mf_guide(net, train_loc=True), prior,
                               config.vi_epochs)
        probs_test = _bnn_probs(bnn, data.test_images, config.batch_size, config.num_predictions)
        probs_ood = _bnn_probs(bnn, ood_images, config.batch_size, config.num_predictions)
        results["mf"] = _evaluate_probs(probs_test, data.test_labels, probs_ood, "mf")

    # ------------------------------------------------------- last-layer variants
    if "ll_mf" in methods or "ll_lowrank" in methods:
        def _ll_prior(net):
            return tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0), expose_all=False,
                                        expose_modules=[net.fc])

        if "ll_mf" in methods:
            net = _fresh_pretrained_net()
            bnn = _fit_variational(net, data, config, _mf_guide(net, train_loc=True),
                                   _ll_prior(net), config.vi_epochs)
            probs_test = _bnn_probs(bnn, data.test_images, config.batch_size,
                                    config.num_predictions)
            probs_ood = _bnn_probs(bnn, ood_images, config.batch_size, config.num_predictions)
            results["ll_mf"] = _evaluate_probs(probs_test, data.test_labels, probs_ood, "ll_mf")

        if "ll_lowrank" in methods:
            net = _fresh_pretrained_net()
            guide = partial(tyxe.guides.AutoLowRankMultivariateNormal,
                            init_loc_fn=tyxe.guides.PretrainedInitializer.from_net(net),
                            init_scale=config.init_scale, rank=config.low_rank)
            bnn = _fit_variational(net, data, config, guide, _ll_prior(net), config.vi_epochs)
            probs_test = _bnn_probs(bnn, data.test_images, config.batch_size,
                                    config.num_predictions)
            probs_ood = _bnn_probs(bnn, ood_images, config.batch_size, config.num_predictions)
            results["ll_lowrank"] = _evaluate_probs(probs_test, data.test_labels, probs_ood,
                                                    "ll_lowrank")

    return results


def _make_mf_bnn(config: ImageClassificationConfig, net=None) -> tyxe.VariationalBNN:
    """The Table-1 "mf" model skeleton around ``net`` (freshly built if None)."""
    if net is None:
        net = _make_net(config)
    prior = tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0), expose_all=True,
                                 hide_module_types=[nn.BatchNorm2d])
    guide = partial(tyxe.guides.AutoNormal,
                    init_loc_fn=tyxe.guides.PretrainedInitializer.from_net(net),
                    init_scale=config.init_scale, train_loc=True,
                    max_guide_scale=config.max_guide_scale)
    n_train = config.num_classes * config.train_per_class
    return tyxe.VariationalBNN(net, prior, tyxe.likelihoods.Categorical(n_train), guide)


def _fit_mf_bnn(config: ImageClassificationConfig) -> tyxe.VariationalBNN:
    """Train the Table-1 "mf" posterior end to end: ML pretrain + mean-field VI."""
    config.seed_all()
    data = _make_data(config)
    ml_net = _make_net(config)
    _pretrain_ml(ml_net, data, config)
    net = _make_net(config)
    net.load_state_dict(ml_net.state_dict())
    prior = tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0), expose_all=True,
                                 hide_module_types=[nn.BatchNorm2d])
    guide = partial(tyxe.guides.AutoNormal,
                    init_loc_fn=tyxe.guides.PretrainedInitializer.from_net(net),
                    init_scale=config.init_scale, train_loc=True,
                    max_guide_scale=config.max_guide_scale)
    return _fit_variational(net, data, config, guide, prior, config.vi_epochs)


def _serve_target(config: ImageClassificationConfig):
    """The mean-field ResNet posterior as a ``repro snapshot``/``repro serve`` model.

    Exercises the classification branch of the serving stats (mean/std over
    class probabilities) and BatchNorm buffer round-tripping through
    snapshots.
    """
    from ..serve import ServeTarget

    example = np.zeros((2, config.channels, config.image_size, config.image_size))
    return ServeTarget("mean-field", lambda: _make_mf_bnn(config), example,
                       fit=lambda: _fit_mf_bnn(config))


def _validation_targets(config: ImageClassificationConfig):
    """Untrained model/guide pairs for ``repro check-model``: MAP and mean-field."""
    from ..analysis import ValidationTarget

    images = nn.Tensor(np.zeros((2, config.channels, config.image_size, config.image_size)))
    labels = nn.Tensor(np.zeros(2))
    prior_kwargs = dict(expose_all=True, hide_module_types=[nn.BatchNorm2d])
    targets = []

    map_net = _make_net(config)
    map_guide = partial(tyxe.guides.AutoDelta,
                        init_loc_fn=tyxe.guides.PretrainedInitializer.from_net(map_net))
    map_bnn = tyxe.VariationalBNN(
        map_net, tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0), **prior_kwargs),
        tyxe.likelihoods.Categorical(2), map_guide)
    targets.append(ValidationTarget("map", map_bnn.model, map_bnn.guide,
                                    args=(images, labels)))

    mf_net = _make_net(config)
    mf_guide = partial(tyxe.guides.AutoNormal,
                       init_loc_fn=tyxe.guides.PretrainedInitializer.from_net(mf_net),
                       init_scale=config.init_scale,
                       max_guide_scale=config.max_guide_scale)
    mf_bnn = tyxe.VariationalBNN(
        mf_net, tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0), **prior_kwargs),
        tyxe.likelihoods.Categorical(2), mf_guide)
    targets.append(ValidationTarget("mean-field", mf_bnn.model, mf_bnn.guide,
                                    args=(images, labels)))
    return targets


@register("table1-resnet", config_cls=ImageClassificationConfig, number="E2",
          artefact="Table 1",
          title="Bayesian ResNet inference comparison: NLL / accuracy / ECE / OOD AUROC",
          validation_targets=_validation_targets, serve_target=_serve_target)
def _table1_experiment(config: ImageClassificationConfig):
    results = _inference_comparison(config)
    metrics = {f"{row['method']}_{key}": value
               for row in table1_rows(results)
               for key, value in row.items() if key != "method"}
    return metrics, results


@register("fig2-calibration", config_cls=ImageClassificationConfig, number="E3",
          artefact="Figure 2",
          title="Calibration curves and test/OOD predictive-entropy CDFs",
          base_overrides={"methods": "ml,mf"},
          validation_targets=_validation_targets, serve_target=_serve_target)
def _figure2_experiment(config: ImageClassificationConfig):
    data = _make_data(config)
    results = _inference_comparison(config, data=data)
    curves = figure2_curves(results, labels=data.test_labels)
    summary: Dict[str, float] = {}
    for method, result in results.items():
        entry = curves[method]
        valid = entry["bin_count"] > 0
        gap = float(np.nanmean(np.abs(entry["bin_confidence"][valid]
                                      - entry["bin_accuracy"][valid])))
        summary[f"{method}_ece"] = result.ece
        summary[f"{method}_calibration_gap"] = gap
        summary[f"{method}_mean_test_entropy"] = float(
            metrics.predictive_entropy(result.test_probs).mean())
        summary[f"{method}_mean_ood_entropy"] = float(
            metrics.predictive_entropy(result.ood_probs).mean())
    raw = {"results": results, "curves": curves, "test_labels": data.test_labels}
    return summary, raw


# ------------------------------------------------------------ legacy entry points
def run_inference_comparison(config: Optional[ImageClassificationConfig] = None,
                             methods: Optional[Sequence[str]] = None
                             ) -> Dict[str, MethodResult]:
    """Deprecated shim over the ``table1-resnet`` registry path."""
    warn_deprecated_entry_point("run_inference_comparison", "table1-resnet")
    return _inference_comparison(config or ImageClassificationConfig(), methods)


def table1_rows(results: Dict[str, MethodResult]) -> List[Dict[str, float]]:
    """Format results as the rows of the paper's Table 1."""
    order = [m for m in ALL_METHODS if m in results]
    return [results[m].row() for m in order]


def figure2_curves(results: Dict[str, MethodResult], num_bins: int = 10,
                   entropy_grid: Optional[np.ndarray] = None,
                   labels: Optional[np.ndarray] = None) -> Dict[str, Dict[str, np.ndarray]]:
    """Calibration curves and test/OOD entropy CDFs (the two panels of Figure 2).

    ``labels`` must be the test labels used to produce the stored
    ``test_probs`` (needed for the calibration curve).
    """
    if entropy_grid is None:
        entropy_grid = np.linspace(0.0, 2.5, 26)
    curves: Dict[str, Dict[str, np.ndarray]] = {}
    for method, result in results.items():
        entry: Dict[str, np.ndarray] = {
            "entropy_grid": entropy_grid,
            "test_entropy_cdf": metrics.entropy_cdf(result.test_probs, entropy_grid),
            "ood_entropy_cdf": metrics.entropy_cdf(result.ood_probs, entropy_grid),
        }
        if labels is not None:
            conf, acc, count = metrics.calibration_curve(result.test_probs, labels,
                                                         num_bins=num_bins)
            entry.update({"bin_confidence": conf, "bin_accuracy": acc, "bin_count": count})
        curves[method] = entry
    return curves
