"""``repro.experiments`` — one harness per paper table/figure.

========  =======================  =============================================
Exp. id   Paper artefact           Entry point
========  =======================  =============================================
E1        Figure 1 (regression)    :func:`repro.experiments.regression.run_figure1`
E2        Table 1 (ResNet)         :func:`repro.experiments.image_classification.run_inference_comparison`
E3        Figure 2 (calibration)   :func:`repro.experiments.image_classification.figure2_curves`
E4        Table 2 (GNN)            :func:`repro.experiments.gnn_classification.run_gnn_comparison`
E5        Figure 3 (NeRF)          :func:`repro.experiments.nerf.run_nerf_experiment`
E6        Figure 4 (VCL)           :func:`repro.experiments.continual.run_figure4`
========  =======================  =============================================
"""

from . import continual, gnn_classification, image_classification, nerf, regression

__all__ = ["regression", "image_classification", "gnn_classification", "nerf", "continual"]
