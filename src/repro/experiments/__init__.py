"""``repro.experiments`` — one registered harness per paper table/figure.

The experiment ids, config classes and entry points live in the decorator
registry of :mod:`repro.experiments.api`: run ``repro list`` on the command
line or call :func:`repro.experiments.api.all_experiments` for the canonical
id ↔ paper-artefact table (E1 ``fig1-regression`` … E6 ``fig4-vcl``).  Every
artefact is reproduced with::

    repro run <id> [--fast] [--seed N] [--set key=value]

or programmatically via :func:`repro.experiments.api.run_experiment`, which
returns (and optionally writes) the shared
:class:`~repro.experiments.api.ExperimentResult` JSON artifact.
"""

from . import api
from . import continual, gnn_classification, image_classification, nerf, regression
from .api import (BaseExperimentConfig, ExperimentResult, all_experiments, experiment_ids,
                  get_experiment, run_experiment)

__all__ = ["api", "regression", "image_classification", "gnn_classification", "nerf",
           "continual", "BaseExperimentConfig", "ExperimentResult", "all_experiments",
           "experiment_ids", "get_experiment", "run_experiment"]
