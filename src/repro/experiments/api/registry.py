"""Decorator-based experiment registry covering the paper artefacts E1-E6.

Experiment modules register their runner with::

    @register("fig1-regression", config_cls=RegressionConfig, number="E1",
              artefact="Figure 1", title="Bayesian nonlinear regression")
    def _figure1_experiment(config):
        ...
        return metrics, raw

The runner receives a fully-resolved config instance and returns a
``(metrics, raw)`` pair: ``metrics`` is the flat JSON-serializable mapping
that goes into the artifact, ``raw`` the module's rich in-memory result
objects (kept on :attr:`ExperimentResult.raw`, never serialized).  The
registry wraps the call with wall-clock timing, builds the
:class:`~repro.experiments.api.base.ExperimentResult` and writes the JSON
artifact when the config carries an ``output_dir``.
"""

from __future__ import annotations

import importlib
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Type

from .base import BaseExperimentConfig, ExperimentResult

__all__ = ["ExperimentSpec", "register", "get_experiment", "find_experiment",
           "experiment_ids", "all_experiments", "run_experiment"]

_REGISTRY: Dict[str, "ExperimentSpec"] = {}

# the modules whose import populates the registry (one decorator per artefact)
_EXPERIMENT_MODULES = ("regression", "image_classification", "gnn_classification",
                       "nerf", "continual")


@dataclass(frozen=True)
class ExperimentSpec:
    """A registered experiment: id, config class, runner and paper metadata."""

    experiment_id: str
    config_cls: Type[BaseExperimentConfig]
    runner: Callable[[BaseExperimentConfig], Tuple[Mapping[str, Any], Any]]
    number: str
    artefact: str
    title: str
    #: overrides applied to every config this spec builds (e.g. ``fig4-vcl``
    #: defaults to ``suite="both"`` so the registry run covers the full figure)
    base_overrides: Mapping[str, Any] = field(default_factory=dict)
    #: optional ``config -> [repro.analysis.ValidationTarget]`` builder exposing
    #: cheap untrained model/guide pairs to ``repro check-model``
    validation_targets: Optional[Callable[[BaseExperimentConfig], List[Any]]] = None
    #: optional ``config -> repro.serve.ServeTarget`` builder exposing the
    #: experiment's model to ``repro snapshot`` / ``repro serve``
    serve_target: Optional[Callable[[BaseExperimentConfig], Any]] = None

    # ------------------------------------------------------------------ checks
    def make_validation_targets(self, fast: bool = True,
                                overrides: Optional[Mapping[str, Any]] = None) -> List[Any]:
        """Build this experiment's static-validation targets (empty if none)."""
        if self.validation_targets is None:
            return []
        config = self.make_config(fast=fast, overrides=overrides)
        return list(self.validation_targets(config))

    # ------------------------------------------------------------------ configs
    def make_config(self, fast: bool = False,
                    overrides: Optional[Mapping[str, Any]] = None) -> BaseExperimentConfig:
        """Build the default (or ``fast()``) config with overrides applied."""
        config = self.config_cls.fast() if fast else self.config_cls()
        merged = {**self.base_overrides, **(overrides or {})}
        return config.with_overrides(merged) if merged else config

    # --------------------------------------------------------------------- run
    def run(self, config: Optional[BaseExperimentConfig] = None, *, fast: bool = False,
            overrides: Optional[Mapping[str, Any]] = None) -> ExperimentResult:
        """Run the experiment and return the schema-conformant result.

        Writes the JSON artifact to ``<config.output_dir>/<experiment_id>.json``
        when ``output_dir`` is set.
        """
        if config is None:
            config = self.make_config(fast=fast, overrides=overrides)
        elif fast or overrides:
            raise ValueError("pass either an explicit config or fast/overrides, not both")
        start = time.perf_counter()
        metrics, raw = self.runner(config)
        wall_clock = time.perf_counter() - start
        result = ExperimentResult(experiment_id=self.experiment_id,
                                  config=config.to_dict(), metrics=dict(metrics),
                                  wall_clock_seconds=wall_clock, raw=raw)
        if config.output_dir:
            result.write(Path(config.output_dir) / f"{self.experiment_id}.json")
        return result


def register(experiment_id: str, *, config_cls: Type[BaseExperimentConfig], number: str,
             artefact: str, title: str,
             base_overrides: Optional[Mapping[str, Any]] = None,
             validation_targets: Optional[Callable] = None,
             serve_target: Optional[Callable] = None) -> Callable:
    """Class/function decorator adding a runner to the registry under ``experiment_id``."""

    def decorator(runner: Callable) -> Callable:
        if experiment_id in _REGISTRY:
            raise ValueError(f"experiment id {experiment_id!r} is already registered")
        if not (isinstance(config_cls, type) and issubclass(config_cls, BaseExperimentConfig)):
            raise TypeError(f"config_cls for {experiment_id!r} must subclass "
                            "BaseExperimentConfig")
        spec = ExperimentSpec(experiment_id=experiment_id, config_cls=config_cls,
                              runner=runner, number=number, artefact=artefact, title=title,
                              base_overrides=dict(base_overrides or {}),
                              validation_targets=validation_targets,
                              serve_target=serve_target)
        _REGISTRY[experiment_id] = spec
        runner.spec = spec
        return runner

    return decorator


def _ensure_registered() -> None:
    """Import every experiment module so its ``@register`` decorators have run."""
    for name in _EXPERIMENT_MODULES:
        importlib.import_module(f"repro.experiments.{name}")


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Look up a registered experiment by id (raises ``KeyError`` with the ids)."""
    _ensure_registered()
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(f"unknown experiment id {experiment_id!r}; "
                       f"registered: {experiment_ids()}") from None


def find_experiment(experiment_id: str) -> ExperimentSpec:
    """Like :func:`get_experiment`, but skip the full registration sweep when possible.

    Sweep worker subprocesses resolve their one experiment id over and over;
    when the id is already registered (a built-in module was imported, or the
    worker's ``extra_imports`` registered it) this avoids importing every
    experiment module — and its heavyweight dependency graph — per worker.
    """
    if experiment_id in _REGISTRY:
        return _REGISTRY[experiment_id]
    return get_experiment(experiment_id)


def experiment_ids() -> List[str]:
    """All registered ids, ordered by paper artefact number (E1 ... E6)."""
    _ensure_registered()
    return [spec.experiment_id for spec in all_experiments()]


def all_experiments() -> List[ExperimentSpec]:
    """All registered specs, ordered by paper artefact number (E1 ... E6)."""
    _ensure_registered()
    return sorted(_REGISTRY.values(), key=lambda spec: (spec.number, spec.experiment_id))


def run_experiment(experiment_id: str, config: Optional[BaseExperimentConfig] = None, *,
                   fast: bool = False,
                   overrides: Optional[Mapping[str, Any]] = None) -> ExperimentResult:
    """Run a registered experiment end to end (the programmatic CLI equivalent)."""
    return get_experiment(experiment_id).run(config, fast=fast, overrides=overrides)
