"""The ``repro`` console script: one command line for every paper artefact.

Usage::

    repro list                                  # table of registered experiments
    repro run fig1-regression --fast --seed 3   # run one artefact
    repro run fig4-vcl --fast --set epochs_per_task=2 --set suite=mnist
    repro run-all --fast                        # every artefact E1-E6
    repro lint src tests                        # static analysis (rules R001-R005)
    repro check-model fig1-regression --fast    # static model/guide validation

``repro run`` builds the experiment's config (``--fast`` selects the reduced
smoke-test configuration), applies typed ``--set key=value`` overrides,
executes the runner and writes the JSON artifact
(``<output-dir>/<experiment-id>.json``, default ``artifacts/``).  Exit code 0
on success, 2 on bad arguments / unknown experiment ids.  ``repro run-all``
keeps going past failing experiments, prints a pass/fail summary and exits 1
if any experiment failed.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional, Sequence

from .base import parse_overrides
from .registry import all_experiments, get_experiment

__all__ = ["main", "build_parser"]

DEFAULT_OUTPUT_DIR = "artifacts"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run the paper's experiments (E1-E6) through the unified registry.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the registered experiments")

    def add_run_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--fast", action="store_true",
                         help="use the reduced smoke-test configuration")
        sub.add_argument("--seed", type=int, default=None, help="override the config seed")
        sub.add_argument("--output-dir", default=None,
                         help=f"artifact directory (default: {DEFAULT_OUTPUT_DIR!r})")
        sub.add_argument("--no-artifact", action="store_true",
                         help="do not write the JSON artifact")
        sub.add_argument("--verbose", action="store_true",
                         help="print lazy op-graph stats (ops recorded/fused, "
                              "buffers elided, realizations) after the run")

    run = subparsers.add_parser("run", help="run one experiment by id")
    run.add_argument("experiment_id", metavar="id",
                     help="experiment id (see `repro list`)")
    add_run_options(run)
    run.add_argument("--set", dest="overrides", action="append", default=[],
                     metavar="key=value",
                     help="typed config override (repeatable), e.g. --set seed=3 "
                          "--set vectorized_eval=false")

    run_all = subparsers.add_parser("run-all", help="run every registered experiment")
    add_run_options(run_all)
    run_all.add_argument("--set", dest="overrides", action="append", default=[],
                         metavar="key=value",
                         help="typed config override applied to every experiment "
                              "(repeatable); a key unknown to an experiment's "
                              "config makes that experiment fail")

    lint = subparsers.add_parser(
        "lint", help="static analysis: RNG discipline, site names, hot-path "
                     "materialization, seeding, vectorized contexts (R001-R005)")
    lint.add_argument("paths", nargs="*", default=["src"], metavar="path",
                      help="files or directories to lint (default: src)")

    check_model = subparsers.add_parser(
        "check-model", help="statically validate an experiment's model/guide "
                            "pairs (coverage, shapes, vectorized axes) without "
                            "training")
    check_model.add_argument("experiment_ids", nargs="*", metavar="id",
                             help="experiment ids (see `repro list`)")
    check_model.add_argument("--all", action="store_true", dest="check_all",
                             help="check every registered experiment")
    check_model.add_argument("--fast", action="store_true",
                             help="build targets from the reduced smoke-test config")
    check_model.add_argument("--verbose", action="store_true",
                             help="print the per-site shape tables")

    return parser


def _collect_overrides(args: argparse.Namespace) -> Dict[str, Any]:
    overrides: Dict[str, Any] = parse_overrides(getattr(args, "overrides", []))
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.no_artifact:
        overrides["output_dir"] = None
    elif args.output_dir is not None:
        overrides["output_dir"] = args.output_dir
    else:
        overrides.setdefault("output_dir", DEFAULT_OUTPUT_DIR)
    return overrides


def _print_graph_stats(before: Dict[str, int], stream) -> None:
    from ...nn import lazy

    after = lazy.graph_stats()
    delta = {key: after[key] - before.get(key, 0) for key in after}
    print("  lazy graph: "
          f"{delta['ops_recorded']} ops recorded, {delta['ops_fused']} fused, "
          f"{delta['buffers_elided']} buffers elided, "
          f"{delta['ops_evaluated']} evaluated in "
          f"{delta['realizations']} realizations "
          f"({'on' if lazy.lazy_enabled() else 'off (REPRO_LAZY=0)'})",
          file=stream)


def _print_result(spec, result, stream) -> None:
    print(f"[{spec.number}] {spec.experiment_id} ({spec.artefact}) "
          f"finished in {result.wall_clock_seconds:.1f}s", file=stream)
    for key in sorted(result.metrics):
        value = result.metrics[key]
        if isinstance(value, float):
            print(f"  {key:<40s} {value:.6g}", file=stream)
        else:
            print(f"  {key:<40s} {value}", file=stream)
    if result.config.get("output_dir"):
        print(f"  artifact: {result.config['output_dir']}/{spec.experiment_id}.json",
              file=stream)


def _cmd_list(stream) -> int:
    rows = [(spec.number, spec.experiment_id, spec.artefact, spec.title)
            for spec in all_experiments()]
    if not rows:
        print("repro: no experiments registered", file=stream)
        return 0
    id_width = max(len(row[1]) for row in rows)
    artefact_width = max(len(row[2]) for row in rows)
    print(f"{'#':<4} {'id':<{id_width}} {'artefact':<{artefact_width}} title", file=stream)
    for number, experiment_id, artefact, title in rows:
        print(f"{number:<4} {experiment_id:<{id_width}} {artefact:<{artefact_width}} "
              f"{title}", file=stream)
    return 0


def _cmd_run(args: argparse.Namespace, stream) -> int:
    try:
        spec = get_experiment(args.experiment_id)
    except KeyError as exc:
        print(f"repro: {exc.args[0]}", file=sys.stderr)
        return 2
    try:
        overrides = _collect_overrides(args)
        if args.verbose:
            from ...nn import lazy

            stats_before = lazy.graph_stats()
        result = spec.run(fast=args.fast, overrides=overrides)
    except ValueError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    _print_result(spec, result, stream)
    if args.verbose:
        _print_graph_stats(stats_before, stream)
    return 0


def _cmd_run_all(args: argparse.Namespace, stream) -> int:
    try:
        overrides = _collect_overrides(args)
    except ValueError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    statuses: List[tuple] = []
    for spec in all_experiments():
        if args.verbose:
            from ...nn import lazy

            stats_before = lazy.graph_stats()
        try:
            result = spec.run(fast=args.fast, overrides=overrides)
        except Exception as exc:  # one failing experiment must not abort the sweep
            print(f"repro: {spec.experiment_id}: {type(exc).__name__}: {exc}",
                  file=sys.stderr)
            statuses.append((spec.experiment_id, False))
            continue
        _print_result(spec, result, stream)
        if args.verbose:
            _print_graph_stats(stats_before, stream)
        statuses.append((spec.experiment_id, True))
    failed = [experiment_id for experiment_id, ok in statuses if not ok]
    print(f"run-all: {len(statuses) - len(failed)}/{len(statuses)} experiments passed",
          file=stream)
    for experiment_id, ok in statuses:
        print(f"  {'PASS' if ok else 'FAIL'}  {experiment_id}", file=stream)
    return 1 if failed else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(list(argv) if argv is not None else None)
    stream = sys.stdout
    if args.command == "list":
        return _cmd_list(stream)
    if args.command == "run":
        return _cmd_run(args, stream)
    if args.command == "run-all":
        return _cmd_run_all(args, stream)
    if args.command == "lint":
        from ...analysis.cli import run_lint  # lazy: keep plain runs import-light

        return run_lint(args.paths, stream=stream)
    if args.command == "check-model":
        from ...analysis.cli import run_check_model

        return run_check_model(args.experiment_ids, check_all=args.check_all,
                               fast=args.fast, verbose=args.verbose, stream=stream)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
