"""The ``repro`` console script: one command line for every paper artefact.

Usage::

    repro list                                  # table of registered experiments
    repro run fig1-regression --fast --seed 3   # run one artefact
    repro run fig4-vcl --fast --set epochs_per_task=2 --set suite=mnist
    repro run-all --fast                        # every artefact E1-E6
    repro sweep fig1-regression --set lr=0.1,0.01 --set seed=0..4 --workers 4
    repro results sweeps/fig1-regression        # metric table over the grid
    repro lint src tests                        # static analysis (rules R001-R008)
    repro check-model fig1-regression --fast    # static model/guide validation
    repro snapshot fig1-regression --out snaps/fig1 --fast
    repro serve fig1-regression --snapshot snaps/fig1 --port 8100

``repro run`` builds the experiment's config (``--fast`` selects the reduced
smoke-test configuration), applies typed ``--set key=value`` overrides,
executes the runner and writes the JSON artifact
(``<output-dir>/<experiment-id>.json``, default ``artifacts/``).  Exit codes:
0 on success, 1 when the runner fails (one-line diagnostic; ``--verbose``
keeps the full traceback), 2 on bad arguments / unknown experiment ids.

``repro sweep`` expands ``--set`` value lists (``a,b``) and integer ranges
(``0..4``) into a config grid and runs it through the fault-tolerant
execution engine in :mod:`repro.exec`: crash-isolated worker subprocesses
(``--workers``), per-run ``--timeout`` with terminate-then-kill escalation,
``--retries`` with exponential backoff, an atomic on-disk journal with
``--resume``, and ``--shard i/N`` splitting for CI.  ``repro run-all`` is
built on the same engine (in-process by default; pass ``--workers 1`` or
more for subprocess isolation) and keeps its summary/exit-code contract.
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time
import traceback
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from .base import parse_overrides
from .registry import all_experiments, get_experiment

__all__ = ["main", "build_parser"]

DEFAULT_OUTPUT_DIR = "artifacts"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run the paper's experiments (E1-E6) through the unified registry.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the registered experiments")

    def add_run_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--fast", action="store_true",
                         help="use the reduced smoke-test configuration")
        sub.add_argument("--seed", type=int, default=None, help="override the config seed")
        sub.add_argument("--output-dir", default=None,
                         help=f"artifact directory (default: {DEFAULT_OUTPUT_DIR!r})")
        sub.add_argument("--no-artifact", action="store_true",
                         help="do not write the JSON artifact")
        sub.add_argument("--verbose", action="store_true",
                         help="print lazy op-graph stats (ops recorded/fused, "
                              "buffers elided, realizations) after the run")

    run = subparsers.add_parser("run", help="run one experiment by id")
    run.add_argument("experiment_id", metavar="id",
                     help="experiment id (see `repro list`)")
    add_run_options(run)
    run.add_argument("--set", dest="overrides", action="append", default=[],
                     metavar="key=value",
                     help="typed config override (repeatable), e.g. --set seed=3 "
                          "--set vectorized_eval=false")

    def add_engine_options(sub: argparse.ArgumentParser, default_workers: int) -> None:
        sub.add_argument("--workers", type=int, default=default_workers, metavar="N",
                         help="worker subprocesses (0 = trusted in-process serial "
                              f"execution; default {default_workers})")
        sub.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                         help="per-run timeout: terminate the worker, then kill "
                              "it after a grace period (needs --workers >= 1)")
        sub.add_argument("--retries", type=int, default=None, metavar="R",
                         help="retry budget per cell for crashes, timeouts, "
                              "errors and torn artifacts (exponential backoff)")
        sub.add_argument("--backoff", type=float, default=0.5, metavar="SECONDS",
                         help="base retry backoff; attempt k waits "
                              "backoff * 2^(k-1) (+ jitter) (default 0.5)")
        sub.add_argument("--resume", action="store_true",
                         help="skip cells that already have a valid journal "
                              "entry; corrupt entries are deleted and re-run")
        sub.add_argument("--start-method", choices=["fork", "spawn"], default=None,
                         help="worker start method (default: fork where available)")

    run_all = subparsers.add_parser("run-all", help="run every registered experiment")
    add_run_options(run_all)
    run_all.add_argument("--set", dest="overrides", action="append", default=[],
                         metavar="key=value",
                         help="typed config override applied to every experiment "
                              "(repeatable); a key unknown to an experiment's "
                              "config makes that experiment fail")
    add_engine_options(run_all, default_workers=0)

    sweep = subparsers.add_parser(
        "sweep", help="expand --set lists/ranges into a config grid and run it "
                      "through the fault-tolerant execution engine")
    sweep.add_argument("experiment_id", metavar="id",
                       help="experiment id (see `repro list`)")
    sweep.add_argument("--set", dest="overrides", action="append", default=[],
                       metavar="key=v1,v2|a..b",
                       help="grid axis: a value list (lr=0.1,0.01), an inclusive "
                            "integer range (seed=0..4) or a single value; the "
                            "grid is the cartesian product of all axes")
    sweep.add_argument("--fast", action="store_true",
                       help="build every cell from the reduced smoke-test config")
    sweep.add_argument("--seed", type=int, default=None,
                       help="seed applied to every cell (unless seed is swept)")
    sweep.add_argument("--sweep-dir", default=None, metavar="DIR",
                       help="journal/report directory (default: sweeps/<id>)")
    sweep.add_argument("--shard", default=None, metavar="i/N",
                       help="run only this 1-based shard of the grid (CI splitting)")
    sweep.add_argument("--import", dest="extra_imports", action="append", default=[],
                       metavar="MODULE",
                       help="extra module to import (here and in every worker) so "
                            "out-of-tree @register experiments resolve")
    add_engine_options(sweep, default_workers=1)

    results = subparsers.add_parser(
        "results", help="summarize a sweep directory's journaled metrics")
    results.add_argument("sweep_dir", metavar="sweep-dir")
    results.add_argument("--metric", dest="metrics", action="append", default=[],
                         metavar="NAME", help="restrict the table to this metric "
                                              "(repeatable; default: all numeric)")
    results.add_argument("--json", action="store_true", dest="as_json",
                         help="print the machine-readable index instead of a table")

    lint = subparsers.add_parser(
        "lint", help="static analysis: RNG discipline, site names, hot-path "
                     "materialization, seeding, vectorized contexts, silent "
                     "exception swallowing, async blocking calls, backend-"
                     "bypassing kernel calls (R001-R008)")
    lint.add_argument("paths", nargs="*", default=["src"], metavar="path",
                      help="files or directories to lint (default: src)")

    snapshot = subparsers.add_parser(
        "snapshot", help="train an experiment's serve model and freeze it "
                         "(config echo + posterior weight stacks) into a "
                         "versioned artifact directory")
    snapshot.add_argument("experiment_id", metavar="id",
                          help="experiment id (see `repro list`)")
    snapshot.add_argument("--out", required=True, metavar="DIR",
                          help="snapshot directory to write")
    snapshot.add_argument("--fast", action="store_true",
                          help="build from the reduced smoke-test configuration")
    snapshot.add_argument("--set", dest="overrides", action="append", default=[],
                          metavar="key=value",
                          help="typed config override (repeatable)")
    snapshot.add_argument("--num-samples", type=int, default=32, metavar="S",
                          help="posterior weight samples to pre-draw (default 32)")
    snapshot.add_argument("--untrained", action="store_true",
                          help="skip training; snapshot the untrained skeleton "
                               "(smoke tests, latency benchmarks)")

    serve = subparsers.add_parser(
        "serve", help="serve a snapshot over HTTP: micro-batched /predict "
                      "with mean/std/calibrated-interval responses, plus "
                      "/healthz and /stats")
    serve.add_argument("experiment_id", metavar="id", nargs="?", default=None,
                       help="experiment id the snapshot must hold (optional check)")
    serve.add_argument("--snapshot", required=True, metavar="DIR",
                       help="snapshot directory (see `repro snapshot`)")
    serve.add_argument("--host", default="127.0.0.1", help="bind host")
    serve.add_argument("--port", type=int, default=8100,
                       help="bind port (0 = ephemeral; the bound port is "
                            "printed on the startup line)")
    serve.add_argument("--max-batch", type=int, default=32, metavar="N",
                       help="flush a micro-batch at N input rows (default 32)")
    serve.add_argument("--max-wait-ms", type=float, default=2.0, metavar="MS",
                       help="flush a micro-batch after MS milliseconds "
                            "(default 2.0)")
    serve.add_argument("--cache-bytes", type=int, default=8 << 20, metavar="B",
                       help="response cache budget in bytes (0 disables; "
                            "default 8 MiB)")

    check_model = subparsers.add_parser(
        "check-model", help="statically validate an experiment's model/guide "
                            "pairs (coverage, shapes, vectorized axes) without "
                            "training")
    check_model.add_argument("experiment_ids", nargs="*", metavar="id",
                             help="experiment ids (see `repro list`)")
    check_model.add_argument("--all", action="store_true", dest="check_all",
                             help="check every registered experiment")
    check_model.add_argument("--fast", action="store_true",
                             help="build targets from the reduced smoke-test config")
    check_model.add_argument("--verbose", action="store_true",
                             help="print the per-site shape tables")

    return parser


def _collect_overrides(args: argparse.Namespace) -> Dict[str, Any]:
    overrides: Dict[str, Any] = parse_overrides(getattr(args, "overrides", []))
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.no_artifact:
        overrides["output_dir"] = None
    elif args.output_dir is not None:
        overrides["output_dir"] = args.output_dir
    else:
        overrides.setdefault("output_dir", DEFAULT_OUTPUT_DIR)
    return overrides


def _print_graph_stats(before: Dict[str, int], stream) -> None:
    from ...nn import lazy

    after = lazy.graph_stats()
    # "backend" is the one non-counter entry (a name, not a delta-able int)
    delta = {key: value - before.get(key, 0)
             for key, value in after.items() if isinstance(value, int)}
    print("  lazy graph: "
          f"{delta['ops_recorded']} ops recorded, {delta['ops_fused']} fused, "
          f"{delta['buffers_elided']} buffers elided, "
          f"{delta['ops_evaluated']} evaluated in "
          f"{delta['realizations']} realizations "
          f"({'on' if lazy.lazy_enabled() else 'off (REPRO_LAZY=0)'}, "
          f"backend={after['backend']})",
          file=stream)


def _print_result(spec, result, stream) -> None:
    print(f"[{spec.number}] {spec.experiment_id} ({spec.artefact}) "
          f"finished in {result.wall_clock_seconds:.1f}s", file=stream)
    for key in sorted(result.metrics):
        value = result.metrics[key]
        if isinstance(value, float):
            print(f"  {key:<40s} {value:.6g}", file=stream)
        else:
            print(f"  {key:<40s} {value}", file=stream)
    if result.config.get("output_dir"):
        print(f"  artifact: {result.config['output_dir']}/{spec.experiment_id}.json",
              file=stream)


def _cmd_list(stream) -> int:
    rows = [(spec.number, spec.experiment_id, spec.artefact, spec.title)
            for spec in all_experiments()]
    if not rows:
        print("repro: no experiments registered", file=stream)
        return 0
    id_width = max(len(row[1]) for row in rows)
    artefact_width = max(len(row[2]) for row in rows)
    print(f"{'#':<4} {'id':<{id_width}} {'artefact':<{artefact_width}} title", file=stream)
    for number, experiment_id, artefact, title in rows:
        print(f"{number:<4} {experiment_id:<{id_width}} {artefact:<{artefact_width}} "
              f"{title}", file=stream)
    return 0


def _cmd_run(args: argparse.Namespace, stream) -> int:
    try:
        spec = get_experiment(args.experiment_id)
    except KeyError as exc:
        print(f"repro: {exc.args[0]}", file=sys.stderr)
        return 2
    try:
        overrides = _collect_overrides(args)
        config = spec.make_config(fast=args.fast, overrides=overrides)
    except ValueError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    if args.verbose:
        from ...nn import lazy

        stats_before = lazy.graph_stats()
    try:
        result = spec.run(config)
    except Exception as exc:  # runner failure: one-line diagnostic, exit 1
        if args.verbose:
            traceback.print_exc()
        print(f"repro: {spec.experiment_id}: {type(exc).__name__}: {exc}",
              file=sys.stderr)
        return 1
    _print_result(spec, result, stream)
    if args.verbose:
        _print_graph_stats(stats_before, stream)
    return 0


def _validate_engine_args(args: argparse.Namespace) -> Optional[str]:
    """Engine-flag sanity shared by run-all and sweep (message or None)."""
    if args.workers < 0:
        return "--workers must be >= 0"
    if args.workers == 0 and args.timeout is not None:
        return "--timeout needs subprocess isolation: pass --workers >= 1"
    if args.retries is not None and args.retries < 0:
        return "--retries must be >= 0"
    return None


def _cmd_run_all(args: argparse.Namespace, stream) -> int:
    from ...exec import (PASS, SKIPPED, TIMEOUT, GridCell, SweepJournal, execute,
                         exit_code)

    try:
        overrides = _collect_overrides(args)
    except ValueError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    problem = _validate_engine_args(args)
    if problem:
        print(f"repro: {problem}", file=sys.stderr)
        return 2
    retries = args.retries if args.retries is not None else 0
    output_dir = overrides.get("output_dir")
    journal = SweepJournal(Path(output_dir) / ".run-all") if output_dir else None
    if args.resume and journal is None:
        print("repro: run-all --resume needs an artifact directory "
              "(drop --no-artifact)", file=sys.stderr)
        return 2

    specs = all_experiments()
    spec_map = {spec.experiment_id: spec for spec in specs}
    cells = [GridCell(index=index, experiment_id=spec.experiment_id,
                      overrides=dict(overrides), fast=args.fast,
                      cell_id=spec.experiment_id, key=spec.experiment_id)
             for index, spec in enumerate(specs)]

    if args.verbose and args.workers == 0:
        from ...nn import lazy

        stats_before = lazy.graph_stats()

    def on_event(kind: str, cell, **info) -> None:
        if kind == "attempt-failed":
            note = (f" (attempt {info['attempt']}, retrying in {info['delay']:.1f}s)"
                    if info["will_retry"] else "")
            print(f"repro: {cell.experiment_id}: {info['error']}{note}",
                  file=sys.stderr)
        elif kind == "pass":
            _print_result(spec_map[cell.experiment_id], info["outcome"].result, stream)

    outcomes = execute(cells, journal=journal, workers=args.workers,
                       timeout=args.timeout, retries=retries, backoff=args.backoff,
                       resume=args.resume, start_method=args.start_method,
                       resolve=lambda experiment_id: spec_map[experiment_id],
                       on_event=on_event)
    if args.verbose and args.workers == 0:
        _print_graph_stats(stats_before, stream)

    skips = sum(1 for o in outcomes if o.status == SKIPPED)
    passed = sum(1 for o in outcomes if o.status in (PASS, SKIPPED))
    summary = f"run-all: {passed}/{len(outcomes)} experiments passed"
    if skips:
        summary += f" ({skips} journaled, skipped)"
    print(summary, file=stream)
    for outcome in outcomes:
        if outcome.status == SKIPPED:
            label = "SKIP"
        elif outcome.status == TIMEOUT:
            label = "TIMEOUT"
        else:
            label = "PASS" if outcome.status == PASS else "FAIL"
        line = f"  {label}  {outcome.cell.experiment_id}"
        if outcome.retried:
            line += f" (attempts={outcome.attempts})"
        print(line, file=stream)
    return exit_code(outcomes)


def _cmd_sweep(args: argparse.Namespace, stream) -> int:
    from ...exec import (SweepJournal, build_report, execute, exit_code, expand_grid,
                         load_manifest, render_report, shard_cells, write_manifest,
                         write_report)
    from ...exec.grid import parse_grid_axes
    from .registry import find_experiment

    for name in args.extra_imports:
        importlib.import_module(name)
    try:
        find_experiment(args.experiment_id)
    except KeyError as exc:
        print(f"repro: {exc.args[0]}", file=sys.stderr)
        return 2
    problem = _validate_engine_args(args)
    if problem:
        print(f"repro: {problem}", file=sys.stderr)
        return 2
    retries = args.retries if args.retries is not None else 2
    # cells never write their own artifact: the journal is the artifact store
    base_overrides = {"output_dir": "none"}
    if args.seed is not None:
        base_overrides["seed"] = str(args.seed)
    try:
        cells = expand_grid(args.experiment_id, args.overrides, fast=args.fast,
                            base_overrides=base_overrides)
        sharded = shard_cells(cells, args.shard)
        axes = parse_grid_axes(args.overrides)
    except ValueError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2

    sweep_dir = Path(args.sweep_dir or Path("sweeps") / args.experiment_id)
    manifest = {
        "experiment_id": args.experiment_id,
        "fast": args.fast,
        "grid": {key: list(values) for key, values in axes.items()},
        "cells": [{"key": cell.key, "cell_id": cell.cell_id,
                   "overrides": dict(cell.overrides)} for cell in cells],
    }
    existing = load_manifest(sweep_dir)
    if existing is not None:
        old_keys = [cell["key"] for cell in existing.get("cells", [])]
        if old_keys != [cell.key for cell in cells]:
            print(f"repro: {sweep_dir} holds a different grid "
                  f"({existing.get('experiment_id')}, {len(old_keys)} cells); "
                  "use a fresh --sweep-dir", file=sys.stderr)
            return 2
    else:
        write_manifest(sweep_dir, manifest)

    def on_event(kind: str, cell, **info) -> None:
        if kind == "attempt-failed":
            note = (f"; retrying in {info['delay']:.1f}s"
                    if info["will_retry"] else "; giving up")
            print(f"repro sweep: {cell.cell_id}: {info['error']} "
                  f"(attempt {info['attempt']}{note})", file=sys.stderr)

    started = time.perf_counter()
    outcomes = execute(sharded, journal=SweepJournal(sweep_dir), workers=args.workers,
                       timeout=args.timeout, retries=retries, backoff=args.backoff,
                       resume=args.resume, start_method=args.start_method,
                       extra_imports=args.extra_imports, on_event=on_event)
    report = build_report(args.experiment_id, outcomes, retries=retries,
                          workers=args.workers,
                          wall_clock_seconds=time.perf_counter() - started)
    write_report(sweep_dir, report)
    render_report(report, stream)
    print(f"  journal: {sweep_dir}", file=stream)
    return exit_code(outcomes)


def _cmd_results(args: argparse.Namespace, stream) -> int:
    import json as json_module

    from ...exec import index_results, render_results

    sweep_dir = Path(args.sweep_dir)
    if not sweep_dir.is_dir():
        print(f"repro: no such sweep directory: {sweep_dir}", file=sys.stderr)
        return 2
    index = index_results(sweep_dir)
    if not index["rows"]:
        print(f"repro: {sweep_dir} holds no journaled results", file=sys.stderr)
        return 2
    unknown = [m for m in args.metrics if m not in index["metrics"]]
    if unknown:
        print(f"repro: unknown metrics {unknown}; journaled: {index['metrics']}",
              file=sys.stderr)
        return 2
    if args.as_json:
        print(json_module.dumps(index, indent=2, sort_keys=True), file=stream)
    else:
        render_results(index, stream, metrics=args.metrics or None)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(list(argv) if argv is not None else None)
    stream = sys.stdout
    if args.command == "list":
        return _cmd_list(stream)
    if args.command == "run":
        return _cmd_run(args, stream)
    if args.command == "run-all":
        return _cmd_run_all(args, stream)
    if args.command == "sweep":
        return _cmd_sweep(args, stream)
    if args.command == "results":
        return _cmd_results(args, stream)
    if args.command == "lint":
        from ...analysis.cli import run_lint  # lazy: keep plain runs import-light

        return run_lint(args.paths, stream=stream)
    if args.command == "snapshot":
        from ...serve.cli import run_snapshot  # lazy: keep plain runs import-light

        try:
            overrides = parse_overrides(args.overrides)
        except ValueError as exc:
            print(f"repro: {exc}", file=sys.stderr)
            return 2
        return run_snapshot(args.experiment_id, args.out, fast=args.fast,
                            overrides=overrides, num_samples=args.num_samples,
                            untrained=args.untrained, stream=stream)
    if args.command == "serve":
        from ...serve.cli import run_serve

        return run_serve(args.experiment_id, args.snapshot, host=args.host,
                         port=args.port, max_batch=args.max_batch,
                         max_wait_ms=args.max_wait_ms,
                         cache_bytes=args.cache_bytes, stream=stream)
    if args.command == "check-model":
        from ...analysis.cli import run_check_model

        return run_check_model(args.experiment_ids, check_all=args.check_all,
                               fast=args.fast, verbose=args.verbose, stream=stream)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
