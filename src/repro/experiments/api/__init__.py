"""``repro.experiments.api`` — the unified experiment protocol.

Every paper artefact (Figure 1-4, Table 1-2) is exposed through one surface:

* :class:`BaseExperimentConfig` — common knobs (``seed``, ``fast``,
  ``vectorized_eval``, ``output_dir``), JSON serialization, typed
  ``key=value`` overrides and the single shared seeding helper
  (:meth:`~BaseExperimentConfig.seed_all`).
* :class:`ExperimentResult` — the shared JSON artifact schema: a flat
  ``metrics`` dict, a ``config`` echo, wall-clock time and
  ``to_json``/``from_json`` round-tripping.
* :func:`register` / :func:`get_experiment` / :func:`run_experiment` — the
  decorator-based registry mapping experiment ids (``fig1-regression`` …) to
  their config class and runner.
* :mod:`repro.experiments.api.cli` — the ``repro`` console script
  (``repro list``, ``repro run fig4-vcl --fast --set epochs_per_task=2``,
  ``repro run-all --fast``).

Importing :mod:`repro.experiments` (or calling any registry accessor)
populates the registry with the six paper artefacts E1-E6.
"""

from .base import (SCHEMA_VERSION, BaseExperimentConfig, ExperimentResult,
                   ResultCorruptedError, parse_name_list, parse_overrides,
                   warn_deprecated_entry_point)
from .registry import (ExperimentSpec, all_experiments, experiment_ids,
                       find_experiment, get_experiment, register, run_experiment)

__all__ = [
    "SCHEMA_VERSION",
    "BaseExperimentConfig",
    "ExperimentResult",
    "ExperimentSpec",
    "ResultCorruptedError",
    "all_experiments",
    "experiment_ids",
    "find_experiment",
    "get_experiment",
    "parse_name_list",
    "parse_overrides",
    "register",
    "run_experiment",
    "warn_deprecated_entry_point",
]
