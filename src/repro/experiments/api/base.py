"""Common config/result protocol shared by every registered experiment.

``BaseExperimentConfig`` centralizes the knobs that each of the five
experiment modules used to reinvent (seed, fast mode, vectorized evaluation,
output directory) together with one seeding idiom and typed ``key=value``
overrides for the CLI.  ``ExperimentResult`` is the one artifact schema every
experiment emits: a flat JSON document with the metrics, a config echo and
the wall-clock time, round-trippable through ``to_json``/``from_json``.
"""

from __future__ import annotations

import ast
import dataclasses
import json
import os
import warnings
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Dict, Iterable, Mapping, Optional

import numpy as np

from ... import ppl

__all__ = ["SCHEMA_VERSION", "BaseExperimentConfig", "ExperimentResult",
           "ResultCorruptedError", "parse_name_list", "parse_overrides",
           "warn_deprecated_entry_point"]

#: Version of the JSON artifact layout written by :meth:`ExperimentResult.to_json`.
SCHEMA_VERSION = 1


class ResultCorruptedError(ValueError):
    """A result artifact on disk is truncated or not valid JSON.

    Raised by :meth:`ExperimentResult.load` instead of a bare
    ``json.JSONDecodeError`` so callers (the sweep journal's resume scan, the
    worker pool's result validation) can tell "this file was torn mid-write"
    apart from genuine schema errors and re-run the producing cell.
    """

    def __init__(self, path, detail: str):
        self.path = Path(path)
        self.detail = detail
        super().__init__(f"corrupted result artifact {self.path}: {detail}")

_TRUE_STRINGS = frozenset({"1", "true", "yes", "on"})
_FALSE_STRINGS = frozenset({"0", "false", "no", "off"})
_NONE_STRINGS = frozenset({"none", "null"})


def _jsonable(value: Any) -> Any:
    """Convert ``value`` (possibly NumPy-typed or nested) to plain JSON types."""
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.ndarray):
        return _jsonable(value.tolist())
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, Mapping):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, Path):
        return str(value)
    return value


def _coerce_string(raw: str, type_name: str, key: str) -> Any:
    """Parse a CLI override string according to the declared field type."""
    type_name = type_name.replace(" ", "")
    if type_name.startswith("Optional[") and type_name.endswith("]"):
        if raw.lower() in _NONE_STRINGS:
            return None
        return _coerce_string(raw, type_name[len("Optional["):-1], key)
    if type_name == "bool":
        lowered = raw.lower()
        if lowered in _TRUE_STRINGS:
            return True
        if lowered in _FALSE_STRINGS:
            return False
        raise ValueError(f"cannot parse {raw!r} as a boolean for {key!r}")
    if type_name == "int":
        return int(raw)
    if type_name == "float":
        return float(raw)
    if type_name == "str":
        return raw
    # unknown annotation: best-effort literal parse, falling back to the string
    try:
        return ast.literal_eval(raw)
    except (ValueError, SyntaxError):
        return raw


def parse_name_list(raw: str, allowed: Iterable[str], default: Iterable[str],
                    what: str = "names") -> tuple:
    """Parse a comma-separated config field into a validated name tuple.

    Empty strings and ``"all"`` select ``default``; unknown names raise
    ``ValueError``.  Shared by the ``methods``/``panels`` selector fields so
    their parsing and error behaviour stay consistent across experiments.
    """
    raw = raw.strip()
    if not raw or raw.lower() == "all":
        return tuple(default)
    selected = tuple(part.strip() for part in raw.split(",") if part.strip())
    unknown = set(selected) - set(allowed)
    if unknown:
        raise ValueError(f"unknown {what}: {sorted(unknown)}; choose from {tuple(allowed)}")
    return selected


def parse_overrides(pairs: Optional[Iterable[str]]) -> Dict[str, str]:
    """Split CLI ``--set key=value`` arguments into an override mapping.

    Keys *and* values are whitespace-stripped, so a quoted ``--set 'key= 4'``
    round-trips the same as ``--set key=4`` instead of failing typed coercion
    on the padded string; inner whitespace is preserved.  Repeating a key
    keeps the last value.
    """
    overrides: Dict[str, str] = {}
    for pair in pairs or ():
        key, sep, value = pair.partition("=")
        key = key.strip()
        if not sep or not key:
            raise ValueError(f"override {pair!r} is not of the form key=value")
        overrides[key] = value.strip()
    return overrides


def warn_deprecated_entry_point(old: str, experiment_id: str) -> None:
    """Emit the standard deprecation warning for a legacy ``run_*`` shim."""
    warnings.warn(
        f"{old}() is deprecated; run the registered experiment instead: "
        f"repro.experiments.api.run_experiment({experiment_id!r}, ...) or "
        f"`repro run {experiment_id}` on the command line",
        DeprecationWarning, stacklevel=3)


@dataclass
class BaseExperimentConfig:
    """Knobs shared by every experiment, plus serialization and seeding.

    Subclasses append their own hyper-parameters (all fields must have
    defaults) and may re-declare ``seed`` to change its default.  ``fast``
    marks reduced smoke-test-scale configurations (set by each config's
    ``fast()`` constructor); ``vectorized_eval`` selects the batched
    leading-sample-dimension evaluation engine where an experiment supports
    it (NeRF posterior rendering, continual-learning task evaluation) and is
    ignored elsewhere; ``output_dir`` is where the registry writes the JSON
    artifact (``None`` = do not write); ``backend`` selects the
    :mod:`repro.nn.backends` compute backend for the run (``--set
    backend=torch``), with ``None`` deferring to the ``REPRO_BACKEND``
    environment variable and ultimately the ``numpy`` default.

    Each concrete config defines a ``fast()`` classmethod returning its
    reduced smoke-test configuration (with ``fast=True`` set).  The
    classmethod deliberately shadows the inherited ``fast`` field's class
    attribute — instances still carry the boolean (``__init__`` always
    assigns it), while ``ConfigCls.fast()`` stays the constructor the
    registry and CLI call for ``--fast`` runs.
    """

    seed: int = 0
    fast: bool = False
    vectorized_eval: bool = True
    output_dir: Optional[str] = None
    backend: Optional[str] = None

    # ------------------------------------------------------------------ seeding
    def seed_all(self) -> np.random.Generator:
        """The single shared seeding idiom for every experiment entry point.

        Seeds the global ``repro.ppl`` RNG, clears the parameter store,
        applies the config's compute-backend selection and returns a fresh
        ``np.random.Generator`` seeded identically — exactly the trio every
        experiment module used to spell out by hand.

        Backend precedence: an explicit ``backend`` field wins; ``None``
        *resets* the process-wide selection so ``REPRO_BACKEND``/default
        re-resolve — sweep cells sharing a worker process therefore never
        inherit a previous cell's backend.
        """
        from ...nn import backends as nn_backends

        ppl.set_rng_seed(self.seed)
        ppl.clear_param_store()
        if self.backend is not None:
            nn_backends.set_backend(self.backend)
        else:
            nn_backends.reset_backend()
        return np.random.default_rng(self.seed)

    # ------------------------------------------------------------ serialization
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping of every config field (the artifact's config echo)."""
        return {f.name: _jsonable(getattr(self, f.name)) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BaseExperimentConfig":
        """Rebuild a config from :meth:`to_dict` output (unknown keys rejected)."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown config fields for {cls.__name__}: {sorted(unknown)}")
        return cls(**dict(data))

    # ---------------------------------------------------------------- overrides
    def with_overrides(self, overrides: Mapping[str, Any]) -> "BaseExperimentConfig":
        """A copy with ``overrides`` applied; strings are coerced to field types.

        String values (from CLI ``--set key=value``) are parsed according to
        the declared field annotation (int/float/bool/str and their
        ``Optional`` variants); non-string values are taken as-is.
        """
        declared = {f.name: f for f in fields(self)}
        resolved: Dict[str, Any] = {}
        for key, value in overrides.items():
            if key not in declared:
                raise ValueError(
                    f"{type(self).__name__} has no field {key!r}; "
                    f"known fields: {sorted(declared)}")
            if isinstance(value, str):
                type_name = declared[key].type
                if not isinstance(type_name, str):  # non-string annotations
                    type_name = getattr(type_name, "__name__", str(type_name))
                value = _coerce_string(value, type_name, key)
            resolved[key] = value
        return dataclasses.replace(self, **resolved)


@dataclass
class ExperimentResult:
    """The shared result-artifact schema emitted by every registered experiment.

    ``metrics`` is a flat, JSON-serializable mapping of reproduced numbers
    (floats, strings, lists of floats); ``config`` echoes the exact
    configuration that produced them; ``raw`` optionally carries the
    experiment module's rich in-memory result objects (arrays, curves) and is
    *not* part of the serialized artifact.
    """

    experiment_id: str
    config: Dict[str, Any]
    metrics: Dict[str, Any]
    wall_clock_seconds: float
    schema_version: int = SCHEMA_VERSION
    raw: Any = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.config = _jsonable(dict(self.config))
        self.metrics = _jsonable(dict(self.metrics))

    # ------------------------------------------------------------ serialization
    def to_json(self, indent: Optional[int] = 2) -> str:
        payload = {
            "schema_version": self.schema_version,
            "experiment_id": self.experiment_id,
            "config": self.config,
            "metrics": self.metrics,
            "wall_clock_seconds": float(self.wall_clock_seconds),
        }
        return json.dumps(payload, indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        payload = json.loads(text)
        missing = {"schema_version", "experiment_id", "config", "metrics",
                   "wall_clock_seconds"} - set(payload)
        if missing:
            raise ValueError(f"artifact is missing required keys: {sorted(missing)}")
        if payload["schema_version"] != SCHEMA_VERSION:
            raise ValueError(f"unsupported artifact schema_version "
                             f"{payload['schema_version']!r} (expected {SCHEMA_VERSION})")
        return cls(experiment_id=payload["experiment_id"], config=payload["config"],
                   metrics=payload["metrics"],
                   wall_clock_seconds=payload["wall_clock_seconds"],
                   schema_version=payload["schema_version"])

    def write(self, path) -> Path:
        """Atomically write the JSON artifact to ``path``.

        The payload goes to a same-directory ``*.tmp`` file first and is
        moved into place with ``os.replace``, so a reader (or a resumed
        sweep) never observes a torn half-written artifact: the target path
        either holds the previous content or the complete new document.  The
        tmp name embeds the writer's pid so concurrent writers of the same
        target cannot clobber each other's staging file.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f"{path.name}.{os.getpid()}.tmp"
        tmp.write_text(self.to_json() + "\n")
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path) -> "ExperimentResult":
        """Load an artifact, raising :class:`ResultCorruptedError` on torn files."""
        path = Path(path)
        text = path.read_text()
        try:
            return cls.from_json(text)
        except json.JSONDecodeError as exc:
            raise ResultCorruptedError(path, str(exc)) from exc
