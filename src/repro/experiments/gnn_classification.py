"""Experiment E4 — Table 2: Bayesian graph neural networks on a citation graph.

Reproduces the paper's semi-supervised node-classification comparison (ML,
MAP, mean-field VI) with a two-layer GCN on a Cora-style synthetic graph.
The semi-supervised structure is handled exactly as in Listing 4: the full
graph is passed through the network, and the ``selective_mask`` effect
handler restricts the log-likelihood to labelled (training) nodes.  Each
method reports the test NLL, accuracy and ECE at the epoch with the lowest
validation NLL, averaged over several seeds (mean ± two standard errors).

Registered as ``table2-gnn``; run it with
``repro run table2-gnn [--fast] [--set methods=ml,mf]`` or
:func:`repro.experiments.api.run_experiment`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import core as tyxe
from .. import metrics, nn, ppl
from ..datasets.graphs import CitationGraphData, make_citation_graph
from ..gnn import two_layer_gcn
from ..nn import functional as F
from ..ppl import distributions as dist
from .api import (BaseExperimentConfig, parse_name_list, register,
                  warn_deprecated_entry_point)

__all__ = ["GNNConfig", "GNNMethodResult", "run_gnn_comparison", "table2_rows"]

GNN_METHODS = ("ml", "map", "mf")


@dataclass
class GNNConfig(BaseExperimentConfig):
    """Sizes and hyper-parameters for the GNN comparison."""

    num_nodes: int = 250
    num_classes: int = 4
    feature_dim: int = 32
    feature_noise: float = 3.0
    hidden: int = 16
    train_per_class: int = 10
    val_per_class: int = 10
    ml_iterations: int = 200
    mf_iterations: int = 600
    ml_learning_rate: float = 1e-2
    mf_learning_rate: float = 2e-2
    init_scale: float = 1e-2
    max_guide_scale: float = 0.1
    num_predictions: int = 8
    num_runs: int = 5
    eval_every: int = 10
    # comma-separated subset of GNN_METHODS; empty = all of them
    methods: str = ""

    @classmethod
    def fast(cls) -> "GNNConfig":
        return cls(num_nodes=80, ml_iterations=30, mf_iterations=40, num_runs=2,
                   num_predictions=4, eval_every=10, fast=True)

    def selected_methods(self) -> Tuple[str, ...]:
        return parse_name_list(self.methods, GNN_METHODS, GNN_METHODS, "methods")


@dataclass
class GNNMethodResult:
    """Mean and two-standard-error statistics over runs (one Table 2 row)."""

    method: str
    nll_mean: float
    nll_two_se: float
    accuracy_mean: float
    accuracy_two_se: float
    ece_mean: float
    ece_two_se: float
    per_run: List[Dict[str, float]] = field(default_factory=list, repr=False)

    def row(self) -> Dict[str, float]:
        return {
            "method": self.method,
            "nll": self.nll_mean, "nll_2se": self.nll_two_se,
            "accuracy": self.accuracy_mean, "accuracy_2se": self.accuracy_two_se,
            "ece": self.ece_mean, "ece_2se": self.ece_two_se,
        }


def _masked_nll(probs: np.ndarray, labels: np.ndarray, mask: np.ndarray) -> float:
    return metrics.nll(probs[mask], labels[mask])


def _run_ml(data: CitationGraphData, config: GNNConfig, seed: int, weight_decay: float = 0.0
            ) -> Dict[str, float]:
    """Deterministic training (ML, or MAP when ``weight_decay > 0``) with early stopping."""
    rng = np.random.default_rng(seed)
    net = two_layer_gcn(data.num_features, config.hidden, data.num_classes, rng=rng)
    optim = nn.Adam(net.parameters(), lr=config.ml_learning_rate, weight_decay=weight_decay)
    features = nn.Tensor(data.features)
    train_labels = data.labels[data.train_mask]
    best = {"val_nll": np.inf}
    for iteration in range(config.ml_iterations):
        optim.zero_grad()
        logits = net(data.graph, features)
        loss = F.cross_entropy(logits[data.train_mask], train_labels)
        loss.backward()
        optim.step()
        if iteration % config.eval_every == 0 or iteration == config.ml_iterations - 1:
            with nn.no_grad():
                probs = metrics.as_probs(net(data.graph, features), from_logits=True)
            val_nll = _masked_nll(probs, data.labels, data.val_mask)
            if val_nll < best["val_nll"]:
                best = {
                    "val_nll": val_nll,
                    "nll": _masked_nll(probs, data.labels, data.test_mask),
                    "accuracy": metrics.accuracy(probs[data.test_mask], data.labels[data.test_mask]),
                    "ece": metrics.expected_calibration_error(probs[data.test_mask],
                                                              data.labels[data.test_mask]),
                }
    return best


def _run_mf(data: CitationGraphData, config: GNNConfig, seed: int) -> Dict[str, float]:
    """Mean-field VI with the selective_mask handler over labelled nodes."""
    ppl.set_rng_seed(seed)
    ppl.clear_param_store()
    rng = np.random.default_rng(seed)
    gnn = two_layer_gcn(data.num_features, config.hidden, data.num_classes, rng=rng)
    prior = tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0))
    # the whole graph is passed in one "batch", so dataset_size must equal the
    # number of nodes for the plate scale to be 1; the selective mask then
    # removes the unlabelled nodes' contribution to the log-likelihood
    likelihood = tyxe.likelihoods.Categorical(dataset_size=data.graph.num_nodes)
    guide = partial(tyxe.guides.AutoNormal,
                    init_loc_fn=tyxe.guides.PretrainedInitializer.from_net(gnn),
                    init_scale=config.init_scale, max_guide_scale=config.max_guide_scale)
    bgnn = tyxe.VariationalBNN(gnn, prior, likelihood, guide)

    features = nn.Tensor(data.features)
    train_data = [((data.graph, features), nn.Tensor(data.labels))]
    optim = ppl.optim.Adam({"lr": config.mf_learning_rate})
    best = {"val_nll": np.inf}
    epochs_per_eval = config.eval_every
    num_evals = max(config.mf_iterations // epochs_per_eval, 1)
    for _ in range(num_evals):
        with tyxe.poutine.selective_mask(mask=data.train_mask.astype(np.float64),
                                         expose=[likelihood.data_site]):
            bgnn.fit(train_data, optim, epochs_per_eval)
        agg = bgnn.predict((data.graph, features), num_predictions=config.num_predictions,
                           aggregate=True)
        probs = metrics.as_probs(agg, from_logits=True)
        val_nll = _masked_nll(probs, data.labels, data.val_mask)
        if val_nll < best["val_nll"]:
            best = {
                "val_nll": val_nll,
                "nll": _masked_nll(probs, data.labels, data.test_mask),
                "accuracy": metrics.accuracy(probs[data.test_mask], data.labels[data.test_mask]),
                "ece": metrics.expected_calibration_error(probs[data.test_mask],
                                                          data.labels[data.test_mask]),
            }
    return best


def _aggregate(method: str, runs: List[Dict[str, float]]) -> GNNMethodResult:
    def _stats(key: str) -> Tuple[float, float]:
        values = np.array([r[key] for r in runs])
        two_se = 2.0 * values.std(ddof=1) / np.sqrt(len(values)) if len(values) > 1 else 0.0
        return float(values.mean()), float(two_se)

    nll_mean, nll_se = _stats("nll")
    acc_mean, acc_se = _stats("accuracy")
    ece_mean, ece_se = _stats("ece")
    return GNNMethodResult(method, nll_mean, nll_se, acc_mean, acc_se, ece_mean, ece_se, runs)


def _gnn_comparison(config: GNNConfig,
                    methods: Optional[Sequence[str]] = None) -> Dict[str, GNNMethodResult]:
    """Run ML / MAP / mean-field VI over several seeds and aggregate (Table 2)."""
    methods = tuple(methods) if methods is not None else config.selected_methods()
    unknown = set(methods) - set(GNN_METHODS)
    if unknown:
        raise ValueError(f"unknown methods: {sorted(unknown)}")

    config.seed_all()
    results: Dict[str, List[Dict[str, float]]] = {m: [] for m in methods}
    for run in range(config.num_runs):
        seed = config.seed + run
        data = make_citation_graph(num_nodes=config.num_nodes, num_classes=config.num_classes,
                                   feature_dim=config.feature_dim,
                                   feature_noise=config.feature_noise,
                                   train_per_class=config.train_per_class,
                                   val_per_class=config.val_per_class, seed=seed)
        if "ml" in methods:
            results["ml"].append(_run_ml(data, config, seed))
        if "map" in methods:
            results["map"].append(_run_ml(data, config, seed, weight_decay=5e-3))
        if "mf" in methods:
            results["mf"].append(_run_mf(data, config, seed))
    return {m: _aggregate(m, runs) for m, runs in results.items()}


def _validation_targets(config: GNNConfig):
    """An untrained GCN model/guide pair over a tiny graph for ``repro check-model``."""
    from ..analysis import ValidationTarget

    rng = np.random.default_rng(config.seed)
    data = make_citation_graph(num_nodes=24, num_classes=config.num_classes,
                               feature_dim=config.feature_dim, train_per_class=2,
                               val_per_class=2, seed=config.seed)
    gnn = two_layer_gcn(data.num_features, config.hidden, data.num_classes, rng=rng)
    prior = tyxe.priors.IIDPrior(dist.Normal(0.0, 1.0))
    likelihood = tyxe.likelihoods.Categorical(dataset_size=data.graph.num_nodes)
    guide = partial(tyxe.guides.AutoNormal,
                    init_loc_fn=tyxe.guides.PretrainedInitializer.from_net(gnn),
                    init_scale=config.init_scale, max_guide_scale=config.max_guide_scale)
    bgnn = tyxe.VariationalBNN(gnn, prior, likelihood, guide)
    features = nn.Tensor(data.features)
    return [ValidationTarget("mean-field", bgnn.model, bgnn.guide,
                             args=((data.graph, features), nn.Tensor(data.labels)))]


@register("table2-gnn", config_cls=GNNConfig, number="E4", artefact="Table 2",
          title="Bayesian GNN node classification: ML vs. MAP vs. mean-field VI",
          validation_targets=_validation_targets)
def _table2_experiment(config: GNNConfig):
    results = _gnn_comparison(config)
    metrics = {f"{row['method']}_{key}": value
               for row in table2_rows(results)
               for key, value in row.items() if key != "method"}
    return metrics, results


# ------------------------------------------------------------ legacy entry points
def run_gnn_comparison(config: Optional[GNNConfig] = None,
                       methods: Optional[Sequence[str]] = None) -> Dict[str, GNNMethodResult]:
    """Deprecated shim over the ``table2-gnn`` registry path."""
    warn_deprecated_entry_point("run_gnn_comparison", "table2-gnn")
    return _gnn_comparison(config or GNNConfig(), methods)


def table2_rows(results: Dict[str, GNNMethodResult]) -> List[Dict[str, float]]:
    """Format results as the rows of the paper's Table 2."""
    order = [m for m in GNN_METHODS if m in results]
    return [results[m].row() for m in order]
