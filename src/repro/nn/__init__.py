"""``repro.nn`` — a NumPy-backed substitute for PyTorch.

Provides reverse-mode autodiff tensors, a module system, functional ops,
initializers, optimizers and data loading with an API surface close enough
to ``torch`` that the TyXe-style listings from the paper translate almost
verbatim.
"""

from . import backends
from . import functional
from . import init
from . import lazy
from . import models
from .functional import sample_ndim, sample_sizes, vectorized_samples
from .data import DataLoader, Dataset, Subset, TensorDataset, random_split
from .modules import (AdaptiveAvgPool2d, AvgPool2d, BatchNorm2d, Conv2d, Dropout,
                      Flatten, Identity, Linear, MaxPool2d, Module, ModuleList,
                      ReLU, Sequential, Sigmoid, Softplus, Tanh)
from .optim import Adam, ExponentialLR, Optimizer, SGD, StepLR
from .tensor import (Parameter, Tensor, arange, cat, concatenate, enable_grad,
                     eye, full, is_grad_enabled, maximum, minimum, no_grad, ones,
                     ones_like, rand, randn, stack, tensor, where, zeros, zeros_like)

__all__ = [
    # tensor
    "Tensor", "Parameter", "no_grad", "enable_grad", "is_grad_enabled",
    "tensor", "zeros", "ones", "zeros_like", "ones_like", "full", "arange",
    "randn", "rand", "eye", "stack", "concatenate", "cat", "where", "maximum",
    "minimum",
    # modules
    "Module", "Sequential", "ModuleList", "Linear", "Conv2d", "BatchNorm2d",
    "MaxPool2d", "AvgPool2d", "AdaptiveAvgPool2d", "Flatten", "ReLU", "Tanh",
    "Sigmoid", "Softplus", "Identity", "Dropout",
    # optim
    "Optimizer", "SGD", "Adam", "StepLR", "ExponentialLR",
    # data
    "Dataset", "TensorDataset", "Subset", "DataLoader", "random_split",
    # vectorized-sample execution mode
    "sample_ndim", "sample_sizes", "vectorized_samples",
    # submodules
    "backends", "functional", "init", "lazy", "models",
]
