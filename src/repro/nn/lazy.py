"""Lazy op-graph execution engine for :mod:`repro.nn.tensor`.

Elementwise forward ops on gradient-free tensors no longer materialize an
array per op.  Instead they record a :class:`LazyOp` node (op id, parent
tensors, shape/dtype metadata — computed without touching data) and the
actual numpy evaluation is deferred until a *realization point*: a
``.data`` / ``.numpy()`` / ``.item()`` access, a comparison, ``backward()``,
any eager kernel op (matmul, reductions, indexing — they read ``.data`` of
their operands), or an explicit :meth:`Tensor.realize`.

Realization schedules the unrealized subgraph in topological order and a
fusion pass collapses chains of elementwise ops into a single pass over one
output buffer: when a scheduled op is the *last* consumer of a temporary
produced earlier in the same schedule (and shapes/dtypes line up), the op's
ufunc writes straight into that temporary (``out=``) instead of allocating a
fresh array.  A depth-``k`` elementwise chain therefore allocates one buffer
instead of ``k`` — the dominant cost of long numpy chains at large sizes.
Values are bit-identical to eager execution: the very same ufuncs run in the
very same order, only the destination buffers differ.

Graph/caching semantics:

* Shared subgraphs evaluate once per realization (the scheduler keys
  evaluated buffers by node), and nodes with more than one recorded consumer
  cache their realized buffer on the tensor so later realizations of sibling
  consumers reuse it instead of recomputing.
* Single-consumer interior nodes of a fused chain are *not* cached — their
  buffer may have been consumed in place.  Reading one later simply
  re-realizes it from the nearest realized ancestors (values identical).
* Gradient-tracking ops realize eagerly at record time: the autograd tape
  (today's ``_backward`` closure protocol) is the realization-time product,
  so ``backward()``, ``no_grad`` and every existing module work unchanged
  and training numerics cannot drift.

Escape hatch: set ``REPRO_LAZY=0`` in the environment (or call
:func:`set_lazy_enabled` / use :func:`lazy_mode`) to restore fully eager
semantics for debugging; the same compute kernels run, so results are
bit-identical either way.

In-place caveat (same as torch without version counters): mutating a
realized buffer in place (``p.data -= ...``, ``copy_``) only affects lazy
descendants recorded *afterwards*; descendants recorded before the mutation
but realized after it see the new values.  Training never hits this window —
``backward()`` realizes everything the tape needs before any optimizer
step — but code that snapshots un-realized outputs across an in-place update
should call ``.realize()`` first.
"""

from __future__ import annotations

import contextlib
import os
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from . import backends as _backends

__all__ = [
    "LazyOp",
    "graph_stats",
    "reset_stats",
    "lazy_enabled",
    "set_lazy_enabled",
    "lazy_mode",
    "realize",
]


def _env_enabled(value: Optional[str]) -> bool:
    """Parse the ``REPRO_LAZY`` environment value (default: enabled)."""
    if value is None:
        return True
    return value.strip().lower() not in ("0", "false", "off", "no")


_ENABLED = _env_enabled(os.environ.get("REPRO_LAZY"))


def lazy_enabled() -> bool:
    """True when elementwise ops should record lazy nodes instead of arrays."""
    return _ENABLED


def set_lazy_enabled(enabled: bool) -> None:
    """Globally enable/disable lazy recording (``REPRO_LAZY`` escape hatch)."""
    global _ENABLED
    _ENABLED = bool(enabled)


@contextlib.contextmanager
def lazy_mode(enabled: bool = True):
    """Context manager scoping :func:`set_lazy_enabled`."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    try:
        yield
    finally:
        _ENABLED = previous


# ---------------------------------------------------------------------- stats
class _Stats:
    """Process-wide engine counters (see :func:`graph_stats`)."""

    __slots__ = ("ops_recorded", "ops_fused", "buffers_elided", "ops_evaluated",
                 "realizations")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.ops_recorded = 0    # lazy nodes recorded
        self.ops_fused = 0       # ops evaluated in place into a reused buffer
        self.buffers_elided = 0  # no-op movement ops elided at record time
        self.ops_evaluated = 0   # kernels actually executed at realization
        self.realizations = 0    # scheduler invocations


STATS = _Stats()


def graph_stats() -> Dict[str, object]:
    """Snapshot of the engine counters.

    * ``ops_recorded`` — elementwise/movement ops deferred as graph nodes.
    * ``ops_fused`` — ops whose ufunc wrote in place into a dead temporary
      from the same schedule (one fused chain of depth ``k`` counts ``k-1``).
    * ``buffers_elided`` — no-op movement ops (identity reshape, inverse
      transpose pairs, ``contiguous`` on contiguous data) elided entirely.
    * ``ops_evaluated`` — kernels actually executed (shared subgraphs count
      once per realization).
    * ``realizations`` — times the scheduler ran.
    * ``backend`` — name of the active compute backend (the only non-counter
      entry; see :mod:`repro.nn.backends`).
    """
    return {
        "ops_recorded": STATS.ops_recorded,
        "ops_fused": STATS.ops_fused,
        "buffers_elided": STATS.buffers_elided,
        "ops_evaluated": STATS.ops_evaluated,
        "realizations": STATS.realizations,
        "backend": _backends.get_backend().name,
    }


def reset_stats() -> None:
    """Zero every engine counter (tests and benchmark harnesses)."""
    STATS.reset()


# ------------------------------------------------------------------- op table
def _promote(dtypes, params) -> np.dtype:
    return np.result_type(*dtypes)


def _float_promote(dtypes, params) -> np.dtype:
    result = np.result_type(*dtypes)
    return result if np.issubdtype(result, np.inexact) else np.dtype(np.float64)


def _same(dtypes, params) -> np.dtype:
    return np.dtype(dtypes[0])


def _pow_dtype(dtypes, params) -> np.dtype:
    return np.result_type(dtypes[0], params["exponent"])


def _relu_dtype(dtypes, params) -> np.dtype:
    return np.result_type(dtypes[0], 0.0)


def _clamp_dtype(dtypes, params) -> np.dtype:
    bounds = [b for b in (params["min"], params["max"]) if b is not None]
    return np.result_type(dtypes[0], *bounds) if bounds else np.dtype(dtypes[0])


class _OpSpec:
    """One elementwise op: a dtype rule; the kernel lives in the backend."""

    __slots__ = ("name", "result_dtype")

    def __init__(self, name: str, result_dtype: Callable) -> None:
        self.name = name
        self.result_dtype = result_dtype


#: every fusable elementwise op id and its dtype-inference rule.  Dtype
#: inference is backend-independent (numpy promotion semantics define the
#: tensor layer's types); the ``(srcs, params, out=None)`` kernels live in
#: ``repro.nn.backends`` — ``get_backend().elementwise`` mirrors these keys,
#: and the reference numpy backend's kernels are exactly what used to be
#: inlined here (``a + b`` is ``np.add``, ``**`` is ``np.power``, ...), so
#: eager and lazy results stay bit-identical on the default backend.
ELEMENTWISE_OPS: Dict[str, _OpSpec] = {}

for _name, _dtype_rule in [
    ("add", _promote),
    ("sub", _promote),
    ("mul", _promote),
    ("div", _float_promote),
    ("neg", _same),
    ("abs", _same),
    ("exp", _float_promote),
    ("log", _float_promote),
    ("log1p", _float_promote),
    ("sqrt", _float_promote),
    ("tanh", _float_promote),
    ("sin", _float_promote),
    ("cos", _float_promote),
    ("erf", _float_promote),
    ("sigmoid", _float_promote),
    ("softplus", _float_promote),
    ("relu", _relu_dtype),
    ("pow", _pow_dtype),
    ("clamp", _clamp_dtype),
    ("clone", _same),
]:
    ELEMENTWISE_OPS[_name] = _OpSpec(_name, _dtype_rule)

#: movement ops produce views at realization (like their eager counterparts)
#: and are never fused into a destination buffer.
MOVEMENT_OPS = frozenset({"reshape", "transpose"})


# ----------------------------------------------------------------- graph node
class LazyOp:
    """A deferred op: id, parent tensors and data-free output metadata."""

    __slots__ = ("op", "parents", "params", "shape", "dtype", "consumers")

    def __init__(self, op: str, parents: Tuple, params: dict,
                 shape: Tuple[int, ...], dtype: np.dtype) -> None:
        self.op = op
        self.parents = parents  # tuple of Tensor
        self.params = params
        self.shape = shape
        self.dtype = dtype
        # how many recorded lazy ops consume this node (shared subgraphs
        # cache their buffer at realization when > 1)
        self.consumers = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LazyOp({self.op!r}, shape={self.shape}, dtype={self.dtype}, "
                f"consumers={self.consumers})")


def record(op: str, parents: Tuple, params: Optional[dict] = None) -> LazyOp:
    """Record one deferred op over ``parents`` (Tensors), inferring metadata."""
    params = params or {}
    if op == "reshape":
        shape = params["shape"]
        dtype = parents[0].dtype
    elif op == "transpose":
        src_shape = parents[0].shape
        shape = tuple(src_shape[a] for a in params["axes"])
        dtype = parents[0].dtype
    else:
        spec = ELEMENTWISE_OPS[op]
        shape = np.broadcast_shapes(*(p.shape for p in parents))
        dtype = spec.result_dtype([p.dtype for p in parents], params)
    node = LazyOp(op, parents, params, tuple(shape), np.dtype(dtype))
    for parent in parents:
        parent_node = parent._lazy
        if parent_node is not None:
            parent_node.consumers += 1
    STATS.ops_recorded += 1
    return node


def compute_eager(op: str, srcs, params: Optional[dict] = None) -> np.ndarray:
    """Run one op's kernel immediately (grad-tracking and ``REPRO_LAZY=0``)."""
    return _backends.get_backend().elementwise[op](srcs, params or {})


# ------------------------------------------------------------------ scheduler
def _schedule(target) -> list:
    """Unrealized subgraph feeding ``target``, in topological order."""
    order: list = []
    visited = set()
    stack = [(target, False)]
    while stack:
        tensor, processed = stack.pop()
        if processed:
            order.append(tensor)
            continue
        if id(tensor) in visited:
            continue
        visited.add(id(tensor))
        stack.append((tensor, True))
        for parent in tensor._lazy.parents:
            if parent._data is None and id(parent) not in visited:
                stack.append((parent, False))
    return order


def realize(target) -> np.ndarray:
    """Evaluate the lazy subgraph below ``target`` and install its buffer.

    Runs the fusion pass described in the module docstring; returns the
    realized array (also stored as ``target._data``).
    """
    if target._data is not None:
        return target._data
    order = _schedule(target)
    STATS.realizations += 1
    kernels = _backends.get_backend().elementwise  # resolved once per schedule

    # per-schedule consumer counts: a temp whose count hits 0 is dead and its
    # buffer becomes the fusion destination of the op that killed it
    refs: Dict[int, int] = {}
    for tensor in order:
        for parent in tensor._lazy.parents:
            if parent._data is None:
                refs[id(parent)] = refs.get(id(parent), 0) + 1

    temps: Dict[int, np.ndarray] = {}
    owned = set()  # ids of tensors whose temp buffer may be clobbered

    for tensor in order:
        node = tensor._lazy
        srcs = [p._data if p._data is not None else temps[id(p)]
                for p in node.parents]
        if node.op in MOVEMENT_OPS:
            if node.op == "reshape":
                buf = srcs[0].reshape(node.params["shape"])
            else:
                buf = np.transpose(srcs[0], node.params["axes"])
            # the result (usually) aliases the source: neither may be
            # clobbered by a later fused op
            owned.discard(id(node.parents[0]))
        else:
            out_buf = None
            for parent in node.parents:
                pid = id(parent)
                if (pid in owned and refs.get(pid) == 1
                        and temps[pid].shape == node.shape
                        and temps[pid].dtype == node.dtype):
                    out_buf = temps[pid]
                    owned.discard(pid)
                    STATS.ops_fused += 1
                    break
            if out_buf is None:
                out_buf = np.empty(node.shape, dtype=node.dtype)
            buf = kernels[node.op](srcs, node.params, out=out_buf)
            owned.add(id(tensor))
        STATS.ops_evaluated += 1

        for parent in node.parents:
            pid = id(parent)
            if pid in refs:
                refs[pid] -= 1
                if refs[pid] == 0:
                    temps.pop(pid, None)
                    owned.discard(pid)
        temps[id(tensor)] = buf

        # cache shared subgraphs so sibling consumers realized later reuse
        # the buffer instead of recomputing it
        if tensor is target or node.consumers > 1:
            owned.discard(id(tensor))
            tensor._data = buf
            tensor._lazy = None
    return target._data
