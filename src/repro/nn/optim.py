"""Gradient-based optimizers mirroring ``torch.optim``.

These operate on iterables of :class:`repro.nn.Tensor` parameters with
populated ``.grad`` fields.  The Pyro-style optimizer wrappers used by
:class:`repro.core.bnn.VariationalBNN` live in :mod:`repro.ppl.optim` and are
built on top of these classes.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional

import numpy as np

from . import lazy as _lazy
from .tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam", "StepLR", "ExponentialLR"]


class Optimizer:
    """Base optimizer holding a list of parameters and per-parameter state."""

    def __init__(self, params: Iterable[Tensor], defaults: Dict[str, float]) -> None:
        self.param_groups: List[Dict] = [{"params": list(params), **defaults}]
        if not self.param_groups[0]["params"]:
            raise ValueError("optimizer got an empty parameter list")
        self.state: Dict[int, Dict] = {}

    @property
    def params(self) -> List[Tensor]:
        return [p for group in self.param_groups for p in group["params"]]

    def add_param_group(self, group: Dict) -> None:
        base = {k: v for k, v in self.param_groups[0].items() if k != "params"}
        base.update(group)
        self.param_groups.append(base)

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError

    def set_lr(self, lr: float) -> None:
        for group in self.param_groups:
            group["lr"] = lr

    def get_lr(self) -> float:
        return self.param_groups[0]["lr"]


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params: Iterable[Tensor], lr: float = 1e-2,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(params, {"lr": lr, "momentum": momentum, "weight_decay": weight_decay})

    def step(self) -> None:
        for group in self.param_groups:
            lr, momentum, weight_decay = group["lr"], group["momentum"], group["weight_decay"]
            for p in group["params"]:
                if p.grad is None:
                    continue
                grad = p.grad
                if weight_decay:
                    grad = grad + weight_decay * p.data
                if momentum:
                    state = self.state.setdefault(id(p), {})
                    buf = state.get("momentum_buffer")
                    if buf is None:
                        buf = np.zeros_like(p.data)
                        state["momentum_buffer"] = buf
                    buf *= momentum
                    buf += grad
                    grad = buf
                p.data -= lr * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(self, params: Iterable[Tensor], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(params, {"lr": lr, "betas": betas, "eps": eps,
                                  "weight_decay": weight_decay})

    def step(self) -> None:
        for group in self.param_groups:
            lr = group["lr"]
            beta1, beta2 = group["betas"]
            eps, weight_decay = group["eps"], group["weight_decay"]
            for p in group["params"]:
                if p.grad is None:
                    continue
                grad = p.grad
                if weight_decay:
                    grad = grad + weight_decay * p.data
                state = self.state.setdefault(id(p), {})
                if not state:
                    state["step"] = 0
                    state["exp_avg"] = np.zeros_like(p.data)
                    state["exp_avg_sq"] = np.zeros_like(p.data)
                state["step"] += 1
                m, v = state["exp_avg"], state["exp_avg_sq"]
                m *= beta1
                m += (1 - beta1) * grad
                v *= beta2
                v += (1 - beta2) * grad ** 2
                bias1 = 1 - beta1 ** state["step"]
                bias2 = 1 - beta2 ** state["step"]
                step_size = lr * math.sqrt(bias2) / bias1
                denom = _lazy.compute_eager("sqrt", [v]) + eps
                p.data -= step_size * m / denom


class StepLR:
    """Decay the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.base_lr = optimizer.get_lr()
        self.last_epoch = 0

    def step(self) -> None:
        self.last_epoch += 1
        factor = self.gamma ** (self.last_epoch // self.step_size)
        self.optimizer.set_lr(self.base_lr * factor)


class ExponentialLR:
    """Multiply the learning rate by ``gamma`` every epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float) -> None:
        self.optimizer = optimizer
        self.gamma = gamma
        self.base_lr = optimizer.get_lr()
        self.last_epoch = 0

    def step(self) -> None:
        self.last_epoch += 1
        self.optimizer.set_lr(self.base_lr * self.gamma ** self.last_epoch)
