"""Pluggable compute backends behind :mod:`repro.nn`.

The lazy engine (PR 7) shrank the realization surface of the whole tensor
layer to a small kernel table: the elementwise ops in
``repro.nn.lazy.ELEMENTWISE_OPS`` plus a handful of eager kernel entry points
(matmul, im2col/col2im convolution, pooling windowing, reductions, cumsum).
A :class:`Backend` implements exactly that surface; everything above it —
autograd, broadcasting, dtype inference, the fusion scheduler, modules,
experiments — is backend-independent and never changes when the backend does.

Two backends ship:

* ``numpy`` (default) — the pre-existing kernels, moved verbatim from
  ``lazy.py`` / ``functional.py`` / ``tensor.py``.  Bit-identical to the
  pre-backend code by construction.
* ``torch`` — optional; kernels run as torch CPU tensors and results are
  bridged back to numpy at the realize boundary.  Registered unconditionally
  but only constructible when torch is importable
  (:class:`BackendUnavailable` otherwise, carrying the reason so test suites
  can skip instead of fail).

Selection precedence: ``BaseExperimentConfig.backend`` (``--set backend=...``,
applied in ``seed_all()``) > the ``REPRO_BACKEND`` environment variable >
the ``numpy`` default.

Contracts every backend must honor:

* ``elementwise`` maps every ``ELEMENTWISE_OPS`` key to a kernel with the
  scheduler signature ``(srcs, params, out=None) -> np.ndarray``.  When the
  fusion pass passes ``out=`` (a dead temporary), the kernel must write the
  result into that buffer and return it.
* Kernel entry points take and return **numpy** arrays.  Accelerated
  backends convert at the boundary; dtype/shape semantics follow numpy.
"""

from __future__ import annotations

import contextlib
import os
from typing import Callable, Dict, Mapping, Optional, Tuple

import numpy as np

__all__ = [
    "Backend",
    "BackendUnavailable",
    "DEFAULT_BACKEND",
    "available_backends",
    "backend_mode",
    "backend_names",
    "get_backend",
    "register_backend",
    "reset_backend",
    "set_backend",
]

DEFAULT_BACKEND = "numpy"


class BackendUnavailable(RuntimeError):
    """A registered backend cannot be constructed in this environment.

    Carries a human-readable ``reason`` (e.g. "torch is not installed") so
    callers — the conformance suite in particular — can *skip* with that
    reason instead of failing.
    """

    def __init__(self, name: str, reason: str) -> None:
        super().__init__(f"backend {name!r} is unavailable: {reason}")
        self.name = name
        self.reason = reason


class Backend:
    """The kernel surface of :mod:`repro.nn` (see the module docstring).

    Subclasses set :attr:`name`, fill :attr:`elementwise` with one kernel per
    ``repro.nn.lazy.ELEMENTWISE_OPS`` key, and implement every method below.
    All arguments and results are numpy arrays.
    """

    #: registry id (``"numpy"``, ``"torch"``, ...)
    name: str = ""

    #: op id -> ``(srcs, params, out=None) -> np.ndarray`` kernel table; the
    #: ``out=`` in-place contract is what makes the fusion pass work.
    elementwise: Mapping[str, Callable] = {}

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Batched matrix product with numpy ``@`` broadcasting semantics."""
        raise NotImplementedError

    def im2col(self, x: np.ndarray, kh: int, kw: int,
               stride: int) -> Tuple[np.ndarray, int, int]:
        """Sliding conv windows of an ``(N, C, H, W)`` input.

        Returns ``(cols, out_h, out_w)`` with ``cols`` of shape
        ``(N, out_h, out_w, C*kh*kw)``, channel-major within a window.
        """
        raise NotImplementedError

    def col2im(self, cols: np.ndarray, x_shape: Tuple[int, ...], kh: int,
               kw: int, stride: int) -> np.ndarray:
        """Scatter-add :meth:`im2col` column gradients back to the input."""
        raise NotImplementedError

    def max_pool2d(self, x: np.ndarray, kernel_size: int,
                   stride: int) -> Tuple[np.ndarray, np.ndarray]:
        """Window max of an ``(N, C, H, W)`` input.

        Returns ``(pooled, idx)`` where ``idx`` holds the *within-window*
        flat argmax (``0..kernel_size**2 - 1``, row-major) the autograd
        backward scatters through.
        """
        raise NotImplementedError

    def avg_pool2d(self, x: np.ndarray, kernel_size: int,
                   stride: int) -> np.ndarray:
        """Window mean of an ``(N, C, H, W)`` input."""
        raise NotImplementedError

    def sum(self, x: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        raise NotImplementedError

    def mean(self, x: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        raise NotImplementedError

    def max(self, x: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        raise NotImplementedError

    def cumsum(self, x: np.ndarray, axis: int) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


# ------------------------------------------------------------------- registry
_FACTORIES: Dict[str, Callable[[], Backend]] = {}
_INSTANCES: Dict[str, Backend] = {}
_ACTIVE: Optional[Backend] = None


def register_backend(name: str, factory: Callable[[], Backend]) -> None:
    """Register ``factory`` under ``name``.

    Factories are lazy: an optional backend registers unconditionally and
    defers its heavy import until first :func:`set_backend`/:func:`get_backend`
    resolution, raising :class:`BackendUnavailable` from the factory when the
    dependency is missing.
    """
    _FACTORIES[name] = factory


def backend_names() -> Tuple[str, ...]:
    """Every registered backend name (available or not), sorted."""
    return tuple(sorted(_FACTORIES))


def _validate(backend: Backend) -> None:
    # deferred import: lazy.py imports this package at module level
    from ..lazy import ELEMENTWISE_OPS

    missing = sorted(set(ELEMENTWISE_OPS) - set(backend.elementwise))
    if missing:
        raise ValueError(
            f"backend {backend.name!r} is missing elementwise kernels: {missing}")


def _instantiate(name: str) -> Backend:
    if name not in _FACTORIES:
        raise ValueError(
            f"unknown backend {name!r}; registered backends: "
            f"{', '.join(backend_names())}")
    if name not in _INSTANCES:
        backend = _FACTORIES[name]()  # may raise BackendUnavailable
        _validate(backend)
        _INSTANCES[name] = backend
    return _INSTANCES[name]


def set_backend(name: str) -> Backend:
    """Make ``name`` the process-wide active backend and return it.

    Raises ``ValueError`` for an unregistered name and
    :class:`BackendUnavailable` for a registered-but-unconstructible one.
    """
    global _ACTIVE
    _ACTIVE = _instantiate(name)
    return _ACTIVE


def get_backend() -> Backend:
    """The active backend, resolving ``REPRO_BACKEND`` (default numpy) on
    first use."""
    global _ACTIVE
    if _ACTIVE is None:
        name = os.environ.get("REPRO_BACKEND", "").strip() or DEFAULT_BACKEND
        _ACTIVE = _instantiate(name)
    return _ACTIVE


def reset_backend() -> None:
    """Forget the active selection; the next :func:`get_backend` re-resolves
    ``REPRO_BACKEND``/default.  ``seed_all()`` calls this when a config leaves
    ``backend`` unset so sweep cells sharing a process don't inherit a
    previous cell's choice."""
    global _ACTIVE
    _ACTIVE = None


@contextlib.contextmanager
def backend_mode(name: str):
    """Context manager scoping :func:`set_backend` (tests, conformance)."""
    global _ACTIVE
    previous = _ACTIVE
    set_backend(name)
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous


def available_backends() -> Dict[str, Optional[str]]:
    """Map every registered name to ``None`` (constructible) or the
    unavailability reason string (used for skip-with-reason in tests)."""
    out: Dict[str, Optional[str]] = {}
    for name in backend_names():
        try:
            _instantiate(name)
            out[name] = None
        except BackendUnavailable as exc:
            out[name] = exc.reason
    return out


# ------------------------------------------------------- builtin registration
from .numpy_backend import NumpyBackend  # noqa: E402


def _torch_factory() -> Backend:
    from .torch_backend import TorchBackend  # deferred: torch import is heavy

    return TorchBackend()


register_backend("numpy", NumpyBackend)
register_backend("torch", _torch_factory)
