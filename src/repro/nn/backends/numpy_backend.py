"""Reference backend: the pre-backend numpy kernels, moved here verbatim.

This file is the bit-identity anchor.  Every kernel below is exactly the
code that lived inline in ``repro.nn.lazy`` (elementwise table),
``repro.nn.functional`` (im2col/col2im, pooling windows) and
``repro.nn.tensor`` (matmul, reductions, cumsum) before the backend seam
existed, so dispatching through :class:`NumpyBackend` produces byte-for-byte
the same arrays the monolithic code did — ``tests/nn/test_backends.py``
pins that, and the accelerated backends are tolerance-checked against it.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy import special as _sp_special

from . import Backend


def _ufunc1(fn):
    return lambda srcs, params, out=None: fn(srcs[0], out=out)


def _ufunc2(fn):
    return lambda srcs, params, out=None: fn(srcs[0], srcs[1], out=out)


def _clone_compute(srcs, params, out=None):
    if out is None:
        return srcs[0].copy()
    np.copyto(out, srcs[0])
    return out


#: the fusable elementwise kernels — ``a + b`` is ``np.add``, ``**`` is
#: ``np.power``, ... — exactly what the eager engine has always run.
ELEMENTWISE = {
    "add": _ufunc2(np.add),
    "sub": _ufunc2(np.subtract),
    "mul": _ufunc2(np.multiply),
    "div": _ufunc2(np.true_divide),
    "neg": _ufunc1(np.negative),
    "abs": _ufunc1(np.absolute),
    "exp": _ufunc1(np.exp),
    "log": _ufunc1(np.log),
    "log1p": _ufunc1(np.log1p),
    "sqrt": _ufunc1(np.sqrt),
    "tanh": _ufunc1(np.tanh),
    "sin": _ufunc1(np.sin),
    "cos": _ufunc1(np.cos),
    "erf": _ufunc1(_sp_special.erf),
    "sigmoid": _ufunc1(_sp_special.expit),
    "softplus": lambda srcs, params, out=None: np.logaddexp(0.0, srcs[0], out=out),
    "relu": lambda srcs, params, out=None: np.maximum(srcs[0], 0.0, out=out),
    "pow": lambda srcs, params, out=None: np.power(srcs[0], params["exponent"],
                                                   out=out),
    "clamp": lambda srcs, params, out=None: np.clip(srcs[0], params["min"],
                                                    params["max"], out=out),
    "clone": _clone_compute,
}


def _pool_windows(x: np.ndarray, kernel_size: int, stride: int):
    n, c, h, w = x.shape
    out_h = (h - kernel_size) // stride + 1
    out_w = (w - kernel_size) // stride + 1
    s0, s1, s2, s3 = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kernel_size, kernel_size),
        strides=(s0, s1, s2 * stride, s3 * stride, s2, s3),
        writeable=False,
    )
    return windows


class NumpyBackend(Backend):
    """Default backend: plain numpy/scipy, no data movement, bit-exact."""

    name = "numpy"
    elementwise = ELEMENTWISE

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a @ b

    def im2col(self, x: np.ndarray, kh: int, kw: int,
               stride: int) -> Tuple[np.ndarray, int, int]:
        n, c, h, w = x.shape
        out_h = (h - kh) // stride + 1
        out_w = (w - kw) // stride + 1
        s0, s1, s2, s3 = x.strides
        windows = np.lib.stride_tricks.as_strided(
            x,
            shape=(n, c, out_h, out_w, kh, kw),
            strides=(s0, s1, s2 * stride, s3 * stride, s2, s3),
            writeable=False,
        )
        cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n, out_h, out_w,
                                                           c * kh * kw)
        return np.ascontiguousarray(cols), out_h, out_w

    def col2im(self, cols: np.ndarray, x_shape: Tuple[int, ...], kh: int,
               kw: int, stride: int) -> np.ndarray:
        n, c, h, w = x_shape
        out_h = (h - kh) // stride + 1
        out_w = (w - kw) // stride + 1
        cols = cols.reshape(n, out_h, out_w, c, kh, kw)
        grad = np.zeros(x_shape, dtype=cols.dtype)
        for i in range(kh):
            for j in range(kw):
                grad[:, :, i:i + stride * out_h:stride,
                     j:j + stride * out_w:stride] += \
                    cols[:, :, :, :, i, j].transpose(0, 3, 1, 2)
        return grad

    def max_pool2d(self, x: np.ndarray, kernel_size: int,
                   stride: int) -> Tuple[np.ndarray, np.ndarray]:
        n, c, _, _ = x.shape
        windows = _pool_windows(x, kernel_size, stride)
        out_h, out_w = windows.shape[2:4]
        flat = windows.reshape(n, c, out_h, out_w, -1)
        idx = flat.argmax(axis=-1)
        pooled = np.take_along_axis(flat, idx[..., None], axis=-1)[..., 0]
        return pooled, idx

    def avg_pool2d(self, x: np.ndarray, kernel_size: int,
                   stride: int) -> np.ndarray:
        windows = _pool_windows(x, kernel_size, stride)
        return windows.mean(axis=(-2, -1))

    def sum(self, x: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        return x.sum(axis=axis, keepdims=keepdims)

    def mean(self, x: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        return x.mean(axis=axis, keepdims=keepdims)

    def max(self, x: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        return x.max(axis=axis, keepdims=keepdims)

    def cumsum(self, x: np.ndarray, axis: int) -> np.ndarray:
        return np.cumsum(x, axis=axis)
