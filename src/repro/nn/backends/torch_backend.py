"""Optional torch backend: kernels run as torch CPU tensors.

Arrays cross the numpy<->torch boundary at every kernel call (the "realize
boundary" — the tensor layer above stores numpy buffers), which keeps the
rest of the stack byte-compatible at the cost of a copy per kernel.  Results
are tolerance-checked against the reference numpy backend, not bit-checked:
torch may pick different BLAS kernels, reduction orders and tie-breaks.

torch itself is never required: the module imports with torch absent and
:class:`TorchBackend` raises :class:`~repro.nn.backends.BackendUnavailable`
with the reason, which the conformance suite turns into a skip.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from . import Backend, BackendUnavailable

try:  # pragma: no cover - exercised only where torch is installed
    import torch as _torch
except ImportError:  # pragma: no cover
    _torch = None


def _finish(result, out):
    """Bridge a torch result back to numpy, honoring the ``out=`` contract."""
    arr = result.numpy()
    if out is None:
        return arr
    np.copyto(out, arr, casting="unsafe")
    return out


class TorchBackend(Backend):
    """CPU torch kernels behind the numpy-facing :class:`Backend` surface."""

    name = "torch"

    def __init__(self) -> None:
        if _torch is None:
            raise BackendUnavailable("torch", "torch is not installed")
        self.torch = _torch
        torch = _torch
        self.elementwise = {
            "add": self._wrap2(torch.add),
            "sub": self._wrap2(torch.sub),
            "mul": self._wrap2(torch.mul),
            "div": self._wrap2(torch.div, promote=True),
            "neg": self._wrap1(torch.neg),
            "abs": self._wrap1(torch.abs),
            "exp": self._wrap1(torch.exp, promote=True),
            "log": self._wrap1(torch.log, promote=True),
            "log1p": self._wrap1(torch.log1p, promote=True),
            "sqrt": self._wrap1(torch.sqrt, promote=True),
            "tanh": self._wrap1(torch.tanh, promote=True),
            "sin": self._wrap1(torch.sin, promote=True),
            "cos": self._wrap1(torch.cos, promote=True),
            "erf": self._wrap1(torch.erf, promote=True),
            "sigmoid": self._wrap1(torch.sigmoid, promote=True),
            "softplus": self._softplus,
            "relu": self._relu,
            "pow": self._pow,
            "clamp": self._clamp,
            # a host-side copy; routing it through torch would just be two
            # extra boundary crossings
            "clone": self._clone,
        }

    # ------------------------------------------------------------- bridging
    def _to(self, array) -> "_torch.Tensor":
        # as_strided views (pooling windows) and negative strides are not
        # from_numpy-able; a contiguous copy at the boundary is the contract
        arr = np.ascontiguousarray(array)
        return self.torch.from_numpy(arr)

    def _to_float(self, array) -> "_torch.Tensor":
        t = self._to(array)
        if not t.is_floating_point():
            # numpy float-promotes integer inputs of float-only ufuncs to
            # float64; mirror that instead of torch's float32 default
            t = t.to(self.torch.float64)
        return t

    # ------------------------------------------------------- elementwise ops
    def _wrap1(self, fn, promote: bool = False):
        to = self._to_float if promote else self._to

        def compute(srcs, params, out=None):
            result = fn(to(srcs[0]))
            return _finish(result, out)

        return compute

    def _wrap2(self, fn, promote: bool = False):
        def compute(srcs, params, out=None):
            a, b = self._to(srcs[0]), self._to(srcs[1])
            if promote and not (a.is_floating_point() or b.is_floating_point()):
                a = a.to(self.torch.float64)
            result = fn(a, b)
            return _finish(result, out)

        return compute

    def _softplus(self, srcs, params, out=None):
        t = self._to_float(srcs[0])
        result = self.torch.logaddexp(self.torch.zeros((), dtype=t.dtype), t)
        return _finish(result, out)

    def _relu(self, srcs, params, out=None):
        t = self._to(srcs[0])
        result = self.torch.clamp(t, min=0)
        return _finish(result, out)

    def _pow(self, srcs, params, out=None):
        t = self._to(srcs[0])
        exponent = params["exponent"]
        if isinstance(exponent, float) and not t.is_floating_point():
            t = t.to(self.torch.float64)
        result = self.torch.pow(t, exponent)
        return _finish(result, out)

    def _clamp(self, srcs, params, out=None):
        t = self._to(srcs[0])
        result = self.torch.clamp(t, min=params["min"], max=params["max"])
        return _finish(result, out)

    @staticmethod
    def _clone(srcs, params, out=None):
        if out is None:
            return srcs[0].copy()
        np.copyto(out, srcs[0])
        return out

    # ----------------------------------------------------------- kernel ops
    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        result = self.torch.matmul(self._to(a), self._to(b))
        arr = result.numpy()
        return arr

    def im2col(self, x: np.ndarray, kh: int, kw: int,
               stride: int) -> Tuple[np.ndarray, int, int]:
        n, c, h, w = x.shape
        out_h = (h - kh) // stride + 1
        out_w = (w - kw) // stride + 1
        unfolded = self.torch.nn.functional.unfold(
            self._to(x), (kh, kw), stride=stride)  # (N, C*kh*kw, L)
        cols = unfolded.transpose(1, 2).reshape(n, out_h, out_w, c * kh * kw)
        contiguous = cols.contiguous()
        return contiguous.numpy(), out_h, out_w

    def col2im(self, cols: np.ndarray, x_shape: Tuple[int, ...], kh: int,
               kw: int, stride: int) -> np.ndarray:
        n, c, h, w = x_shape
        out_h = (h - kh) // stride + 1
        out_w = (w - kw) // stride + 1
        t = self._to(cols).reshape(n, out_h * out_w, c * kh * kw).transpose(1, 2)
        folded = self.torch.nn.functional.fold(
            t, (h, w), (kh, kw), stride=stride)  # fold sums window overlaps
        arr = folded.numpy()
        return arr

    def max_pool2d(self, x: np.ndarray, kernel_size: int,
                   stride: int) -> Tuple[np.ndarray, np.ndarray]:
        _, _, _, w = x.shape
        pooled, flat_idx = self.torch.nn.functional.max_pool2d(
            self._to(x), kernel_size, stride, return_indices=True)
        out_h, out_w = pooled.shape[-2:]
        # torch indices are flat over the (H, W) plane; the autograd backward
        # expects the within-window row-major argmax
        idx = flat_idx.numpy()
        rows, cols = idx // w, idx % w
        ki = rows - np.arange(out_h)[:, None] * stride
        kj = cols - np.arange(out_w)[None, :] * stride
        local = ki * kernel_size + kj
        return pooled.numpy(), local

    def avg_pool2d(self, x: np.ndarray, kernel_size: int,
                   stride: int) -> np.ndarray:
        result = self.torch.nn.functional.avg_pool2d(
            self._to(x), kernel_size, stride)
        return result.numpy()

    def _reduce(self, x, axis, keepdims, full_reduce, axis_reduce,
                promote: bool = False):
        t = self._to_float(x) if promote else self._to(x)
        if axis is None:
            result = full_reduce(t)
            arr = result.numpy()
            return arr.reshape((1,) * x.ndim) if keepdims else arr
        result = axis_reduce(t, axis, keepdims)
        return result.numpy()

    def sum(self, x: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        torch = self.torch
        return self._reduce(
            x, axis, keepdims, torch.sum,
            lambda t, ax, kd: torch.sum(t, dim=ax, keepdim=kd))

    def mean(self, x: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        torch = self.torch
        return self._reduce(
            x, axis, keepdims, torch.mean,
            lambda t, ax, kd: torch.mean(t, dim=ax, keepdim=kd),
            promote=True)  # numpy's integer mean is float64; torch's errors

    def max(self, x: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        torch = self.torch
        return self._reduce(
            x, axis, keepdims, torch.amax,
            lambda t, ax, kd: torch.amax(t, dim=ax, keepdim=kd))

    def cumsum(self, x: np.ndarray, axis: int) -> np.ndarray:
        result = self.torch.cumsum(self._to(x), dim=axis)
        return result.numpy()
