"""Weight-initialization schemes mirroring ``torch.nn.init``.

These are also reused by :class:`repro.core.priors.LayerwiseNormalPrior` and
the guide initializers, which set prior/posterior scales according to the
"radford", "xavier" or "kaiming" conventions (Neal 1996; Glorot & Bengio
2010; He et al. 2015), as described in the TyXe paper.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from .tensor import Tensor

__all__ = [
    "calculate_fan_in_and_fan_out",
    "fan_in_scale",
    "normal_",
    "uniform_",
    "constant_",
    "zeros_",
    "ones_",
    "xavier_uniform_",
    "xavier_normal_",
    "kaiming_uniform_",
    "kaiming_normal_",
    "radford_normal_",
]


def calculate_fan_in_and_fan_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Return ``(fan_in, fan_out)`` for a weight of the given shape.

    For linear weights ``(out, in)`` this is ``(in, out)``; for conv weights
    ``(out_c, in_c, kh, kw)`` the receptive-field size multiplies both.
    """
    if len(shape) < 1:
        return 1, 1
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def fan_in_scale(shape: Tuple[int, ...], method: str = "radford") -> float:
    """Standard deviation implied by the given initialization convention."""
    fan_in, fan_out = calculate_fan_in_and_fan_out(shape)
    if method == "radford":
        return 1.0 / math.sqrt(fan_in)
    if method == "xavier":
        return math.sqrt(2.0 / (fan_in + fan_out))
    if method == "kaiming":
        return math.sqrt(2.0 / fan_in)
    raise ValueError(f"unknown initialization method: {method!r}")


def _rng(rng):
    if rng is not None:
        return rng
    from ..ppl.rng import get_rng  # lazy: ppl imports nn at package load
    return get_rng()


def normal_(tensor: Tensor, mean: float = 0.0, std: float = 1.0, rng=None) -> Tensor:
    tensor.data[...] = _rng(rng).normal(mean, std, size=tensor.shape)
    return tensor


def uniform_(tensor: Tensor, low: float = 0.0, high: float = 1.0, rng=None) -> Tensor:
    tensor.data[...] = _rng(rng).uniform(low, high, size=tensor.shape)
    return tensor


def constant_(tensor: Tensor, value: float) -> Tensor:
    tensor.data[...] = value
    return tensor


def zeros_(tensor: Tensor) -> Tensor:
    return constant_(tensor, 0.0)


def ones_(tensor: Tensor) -> Tensor:
    return constant_(tensor, 1.0)


def xavier_uniform_(tensor: Tensor, gain: float = 1.0, rng=None) -> Tensor:
    fan_in, fan_out = calculate_fan_in_and_fan_out(tensor.shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return uniform_(tensor, -bound, bound, rng=rng)


def xavier_normal_(tensor: Tensor, gain: float = 1.0, rng=None) -> Tensor:
    std = gain * fan_in_scale(tensor.shape, "xavier")
    return normal_(tensor, 0.0, std, rng=rng)


def kaiming_uniform_(tensor: Tensor, rng=None) -> Tensor:
    fan_in, _ = calculate_fan_in_and_fan_out(tensor.shape)
    bound = math.sqrt(6.0 / fan_in)
    return uniform_(tensor, -bound, bound, rng=rng)


def kaiming_normal_(tensor: Tensor, rng=None) -> Tensor:
    return normal_(tensor, 0.0, fan_in_scale(tensor.shape, "kaiming"), rng=rng)


def radford_normal_(tensor: Tensor, rng=None) -> Tensor:
    return normal_(tensor, 0.0, fan_in_scale(tensor.shape, "radford"), rng=rng)
