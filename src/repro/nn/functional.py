"""Functional neural-network operations on :class:`repro.nn.Tensor`.

Mirrors ``torch.nn.functional``.  The linear-map operations (:func:`linear`,
:func:`conv2d`) are registered as *effectful*: effect handlers (such as the
local-reparameterization and flipout messengers in :mod:`repro.core.poutine`)
can intercept them at runtime and change how the linear computation is
carried out, without the layer classes knowing anything about it.  This is
the exact mechanism the TyXe paper describes for its
``_ReparameterizationMessenger`` classes (monkey-patching ``F.linear`` /
``F.conv2d`` with effectful versions).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from .tensor import Tensor, concatenate, is_grad_enabled, unbroadcast, where

__all__ = [
    "linear",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "adaptive_avg_pool2d",
    "batch_norm",
    "dropout",
    "relu",
    "tanh",
    "sigmoid",
    "softplus",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "binary_cross_entropy_with_logits",
    "one_hot",
    "register_linear_op_handler",
    "unregister_linear_op_handler",
    "active_linear_op_handlers",
    "register_dropout_handler",
    "unregister_dropout_handler",
]


# --------------------------------------------------------------------------
# Effectful linear-op registry.
#
# Handlers are objects exposing ``process_linear_op(op, inputs, weight, bias,
# default_fn, **kwargs)`` that either return a Tensor (taking over the
# computation) or ``None`` (falling through to the next handler / default).
# Handlers are consulted innermost (most recently registered) first.
# --------------------------------------------------------------------------
_LINEAR_OP_HANDLERS: List[object] = []


def register_linear_op_handler(handler: object) -> None:
    """Push an effect handler intercepting linear/conv operations."""
    _LINEAR_OP_HANDLERS.append(handler)


def unregister_linear_op_handler(handler: object) -> None:
    """Remove a previously registered effect handler."""
    _LINEAR_OP_HANDLERS.remove(handler)


def active_linear_op_handlers() -> Tuple[object, ...]:
    """Return the currently active handlers, innermost last."""
    return tuple(_LINEAR_OP_HANDLERS)


def _dispatch_linear_op(op: str, default_fn: Callable[..., Tensor], x: Tensor,
                        weight: Tensor, bias: Optional[Tensor], **kwargs) -> Tensor:
    for handler in reversed(_LINEAR_OP_HANDLERS):
        result = handler.process_linear_op(op, x, weight, bias, default_fn, **kwargs)
        if result is not None:
            return result
    return default_fn(x, weight, bias, **kwargs)


# ----------------------------------------------------------------- activations
def relu(x: Tensor) -> Tensor:
    return x.relu()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def softplus(x: Tensor) -> Tensor:
    return x.softplus()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    e = shifted.exp()
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    return x - x.logsumexp(axis=axis, keepdims=True)


# --------------------------------------------------------------------- linear
def _linear_default(x: Tensor, weight: Tensor, bias: Optional[Tensor]) -> Tensor:
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """``y = x @ weight.T + bias`` with ``weight`` of shape ``(out, in)``.

    Registered as an effectful linear op.
    """
    return _dispatch_linear_op("linear", _linear_default, x, weight, bias)


# --------------------------------------------------------------------- conv2d
def _im2col(x: np.ndarray, kh: int, kw: int, stride: int) -> Tuple[np.ndarray, int, int]:
    """Extract sliding windows: returns (N, out_h, out_w, C*kh*kw)."""
    n, c, h, w = x.shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    s0, s1, s2, s3 = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(s0, s1, s2 * stride, s3 * stride, s2, s3),
        writeable=False,
    )
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n, out_h, out_w, c * kh * kw)
    return np.ascontiguousarray(cols), out_h, out_w


def _col2im(cols: np.ndarray, x_shape: Tuple[int, ...], kh: int, kw: int, stride: int) -> np.ndarray:
    """Scatter-add column gradients back to the input image."""
    n, c, h, w = x_shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    cols = cols.reshape(n, out_h, out_w, c, kh, kw)
    grad = np.zeros(x_shape, dtype=cols.dtype)
    for i in range(kh):
        for j in range(kw):
            grad[:, :, i:i + stride * out_h:stride, j:j + stride * out_w:stride] += cols[:, :, :, :, i, j].transpose(0, 3, 1, 2)
    return grad


def _conv2d_default(x: Tensor, weight: Tensor, bias: Optional[Tensor],
                    stride: int = 1, padding: int = 0) -> Tensor:
    """Direct im2col convolution.  ``weight``: (out_c, in_c, kh, kw)."""
    xp = x.pad2d(padding) if padding else x
    out_c, in_c, kh, kw = weight.shape
    cols_np, out_h, out_w = _im2col(xp.data, kh, kw, stride)
    n = xp.shape[0]
    w_mat = weight.reshape(out_c, in_c * kh * kw)

    # Build output through explicit graph construction so gradients flow to
    # both input columns and the weight matrix.
    cols = Tensor(cols_np.reshape(n * out_h * out_w, -1))
    cols.requires_grad = is_grad_enabled() and xp.requires_grad
    if cols.requires_grad:
        cols._prev = (xp,)
        cols._op = "im2col"

        def _backward_cols():
            grad_im = _col2im(cols.grad.reshape(n, out_h, out_w, -1), xp.shape, kh, kw, stride)
            xp._accumulate(grad_im)

        cols._backward = _backward_cols

    out_flat = cols @ w_mat.T  # (N*oh*ow, out_c)
    if bias is not None:
        out_flat = out_flat + bias
    out = out_flat.reshape(n, out_h, out_w, out_c).transpose((0, 3, 1, 2))
    return out


def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           stride: int = 1, padding: int = 0) -> Tensor:
    """2-D convolution over an ``(N, C, H, W)`` input.

    Registered as an effectful linear op so reparameterization messengers can
    intercept it.
    """
    return _dispatch_linear_op("conv2d", _conv2d_default, x, weight, bias,
                               stride=stride, padding=padding)


# -------------------------------------------------------------------- pooling
def max_pool2d(x: Tensor, kernel_size: int, stride: Optional[int] = None) -> Tensor:
    stride = stride or kernel_size
    n, c, h, w = x.shape
    out_h = (h - kernel_size) // stride + 1
    out_w = (w - kernel_size) // stride + 1
    s0, s1, s2, s3 = x.data.strides
    windows = np.lib.stride_tricks.as_strided(
        x.data,
        shape=(n, c, out_h, out_w, kernel_size, kernel_size),
        strides=(s0, s1, s2 * stride, s3 * stride, s2, s3),
        writeable=False,
    )
    flat = windows.reshape(n, c, out_h, out_w, -1)
    idx = flat.argmax(axis=-1)
    data = np.take_along_axis(flat, idx[..., None], axis=-1)[..., 0]

    out = Tensor(data, requires_grad=is_grad_enabled() and x.requires_grad)
    if out.requires_grad:
        out._prev = (x,)
        out._op = "max_pool2d"

        def _backward():
            grad = np.zeros_like(x.data)
            ki, kj = np.unravel_index(idx, (kernel_size, kernel_size))
            nn_, cc, oh, ow = np.meshgrid(np.arange(n), np.arange(c), np.arange(out_h), np.arange(out_w), indexing="ij")
            rows = oh * stride + ki
            cols = ow * stride + kj
            np.add.at(grad, (nn_, cc, rows, cols), out.grad)
            x._accumulate(grad)

        out._backward = _backward
    return out


def avg_pool2d(x: Tensor, kernel_size: int, stride: Optional[int] = None) -> Tensor:
    stride = stride or kernel_size
    n, c, h, w = x.shape
    out_h = (h - kernel_size) // stride + 1
    out_w = (w - kernel_size) // stride + 1
    parts = []
    for i in range(kernel_size):
        for j in range(kernel_size):
            parts.append(x[:, :, i:i + stride * out_h:stride, j:j + stride * out_w:stride])
    total = parts[0]
    for p in parts[1:]:
        total = total + p
    return total / float(kernel_size * kernel_size)


def adaptive_avg_pool2d(x: Tensor, output_size: int = 1) -> Tensor:
    """Global average pooling when ``output_size == 1`` (the only supported size)."""
    if output_size != 1:
        raise NotImplementedError("only global (1x1) adaptive average pooling is supported")
    return x.mean(axis=(2, 3), keepdims=True)


# ----------------------------------------------------------------- batch norm
def batch_norm(x: Tensor, running_mean: np.ndarray, running_var: np.ndarray,
               weight: Optional[Tensor], bias: Optional[Tensor],
               training: bool, momentum: float = 0.1, eps: float = 1e-5) -> Tensor:
    """Batch normalization over the channel dimension of 2-D or 4-D input."""
    if x.ndim == 4:
        axes = (0, 2, 3)
        view = (1, -1, 1, 1)
    elif x.ndim == 2:
        axes = (0,)
        view = (1, -1)
    else:
        raise ValueError(f"batch_norm expects 2D or 4D input, got {x.ndim}D")

    if training:
        mean = x.mean(axis=axes, keepdims=True)
        var = x.var(axis=axes, keepdims=True)
        if running_mean is not None:
            running_mean *= (1 - momentum)
            running_mean += momentum * mean.data.reshape(-1)
            running_var *= (1 - momentum)
            running_var += momentum * var.data.reshape(-1)
    else:
        mean = Tensor(running_mean.reshape(view))
        var = Tensor(running_var.reshape(view))

    x_hat = (x - mean) / (var + eps).sqrt()
    if weight is not None:
        x_hat = x_hat * weight.reshape(*view)
    if bias is not None:
        x_hat = x_hat + bias.reshape(*view)
    return x_hat


# -------------------------------------------------------------------- dropout
# Dropout is also registered as an effectful operation so that BNN-style
# handlers (e.g. Monte Carlo dropout with a fixed mask across batches, as
# discussed in the paper's future-work section) can intercept it.
_DROPOUT_HANDLERS: List[object] = []


def register_dropout_handler(handler: object) -> None:
    """Push an effect handler intercepting dropout operations."""
    _DROPOUT_HANDLERS.append(handler)


def unregister_dropout_handler(handler: object) -> None:
    """Remove a previously registered dropout handler."""
    _DROPOUT_HANDLERS.remove(handler)


def _dropout_default(x: Tensor, p: float, training: bool,
                     rng: Optional[np.random.Generator] = None) -> Tensor:
    if not training or p == 0.0:
        return x
    gen = rng if rng is not None else np.random.default_rng()
    mask = (gen.random(x.shape) >= p) / (1.0 - p)
    return x * Tensor(mask)


def dropout(x: Tensor, p: float = 0.5, training: bool = True,
            rng: Optional[np.random.Generator] = None) -> Tensor:
    for handler in reversed(_DROPOUT_HANDLERS):
        result = handler.process_dropout(x, p, training, _dropout_default)
        if result is not None:
            return result
    return _dropout_default(x, p, training, rng)


# --------------------------------------------------------------------- losses
def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    labels = np.asarray(labels, dtype=np.int64)
    out = np.zeros(labels.shape + (num_classes,), dtype=np.float64)
    np.put_along_axis(out, labels[..., None], 1.0, axis=-1)
    return out


def nll_loss(log_probs: Tensor, targets: np.ndarray, reduction: str = "mean") -> Tensor:
    targets = np.asarray(targets.data if isinstance(targets, Tensor) else targets, dtype=np.int64)
    oh = one_hot(targets, log_probs.shape[-1])
    losses = -(log_probs * Tensor(oh)).sum(axis=-1)
    if reduction == "mean":
        return losses.mean()
    if reduction == "sum":
        return losses.sum()
    return losses


def cross_entropy(logits: Tensor, targets: np.ndarray, reduction: str = "mean") -> Tensor:
    return nll_loss(log_softmax(logits, axis=-1), targets, reduction=reduction)


def mse_loss(prediction: Tensor, target, reduction: str = "mean") -> Tensor:
    target_t = target if isinstance(target, Tensor) else Tensor(target)
    sq = (prediction - target_t) ** 2
    if reduction == "mean":
        return sq.mean()
    if reduction == "sum":
        return sq.sum()
    return sq


def binary_cross_entropy_with_logits(logits: Tensor, targets, reduction: str = "mean") -> Tensor:
    targets_t = targets if isinstance(targets, Tensor) else Tensor(targets)
    # log(1 + exp(-|x|)) + max(x, 0) - x * y  (numerically stable)
    losses = logits.clamp(min=0.0) - logits * targets_t + (-logits.abs()).exp().log1p()
    if reduction == "mean":
        return losses.mean()
    if reduction == "sum":
        return losses.sum()
    return losses
