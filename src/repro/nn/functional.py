"""Functional neural-network operations on :class:`repro.nn.Tensor`.

Mirrors ``torch.nn.functional``.  The linear-map operations (:func:`linear`,
:func:`conv2d`) are registered as *effectful*: effect handlers (such as the
local-reparameterization and flipout messengers in :mod:`repro.core.poutine`)
can intercept them at runtime and change how the linear computation is
carried out, without the layer classes knowing anything about it.  This is
the exact mechanism the TyXe paper describes for its
``_ReparameterizationMessenger`` classes (monkey-patching ``F.linear`` /
``F.conv2d`` with effectful versions).
"""

from __future__ import annotations

import contextlib
from typing import Callable, List, Optional, Tuple

import numpy as np

from .backends import get_backend
from .tensor import Tensor, concatenate, is_grad_enabled, unbroadcast, where

__all__ = [
    "sample_ndim",
    "sample_sizes",
    "vectorized_samples",
    "linear",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "adaptive_avg_pool2d",
    "batch_norm",
    "dropout",
    "relu",
    "tanh",
    "sigmoid",
    "softplus",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "binary_cross_entropy_with_logits",
    "one_hot",
    "register_linear_op_handler",
    "unregister_linear_op_handler",
    "active_linear_op_handlers",
    "register_dropout_handler",
    "unregister_dropout_handler",
]


# --------------------------------------------------------------------------
# Vectorized-sample execution mode.
#
# The BNN inference code can stack ``S`` posterior weight samples along a new
# leading axis and run them through the network in one batched forward pass
# instead of ``S`` Python-level passes.  ``linear``/``conv2d``/``batch_norm``
# broadcast over such leading weight dimensions unconditionally; shape-
# sensitive modules (``Flatten``) and batch-size bookkeeping (the likelihood
# plate scaling) consult this context to know how many leading axes of an
# activation are sample axes rather than data axes.
#
# A context may also *declare the sizes* of its sample axes.  The ``repro.ppl``
# runtime consults them (via :func:`sample_sizes`) so that a latent ``sample``
# statement executing inside a vectorized replay — i.e. a site the guide does
# not cover — draws one independent prior sample per particle, stacked along
# the declared axes, instead of a single draw silently shared by every
# particle.  Size-less contexts (``vectorized_samples(1)``) keep the plain
# single-draw behaviour, which is what the batched *forward-only* paths (no
# sample statements inside) use.
# --------------------------------------------------------------------------
_SAMPLE_SIZES: Tuple[Optional[int], ...] = ()


def sample_ndim() -> int:
    """Number of leading vectorized-sample dimensions currently active."""
    return len(_SAMPLE_SIZES)


def sample_sizes() -> Tuple[Optional[int], ...]:
    """Sizes of the active leading sample axes (outermost first).

    Entries are ``None`` for contexts that declared only a dimension count;
    an axis has a concrete size only when its ``vectorized_samples`` call
    passed one (as the vectorized ELBO replay does with ``num_particles``).
    """
    return _SAMPLE_SIZES


@contextlib.contextmanager
def vectorized_samples(ndim: int = 1, sizes: Optional[Tuple[Optional[int], ...]] = None):
    """Declare that activations carry ``ndim`` extra leading sample axes.

    Entered by the vectorized prediction / ELBO paths around the batched
    network forward; nests additively.  ``sizes`` optionally gives the
    concrete length of each declared axis (a tuple of ``ndim`` ints, or a
    single int when ``ndim == 1``); sized axes let latent ``sample``
    statements executing inside the context draw per-particle stacked values
    (see :func:`sample_sizes`).
    """
    global _SAMPLE_SIZES
    if ndim < 0:
        raise ValueError("ndim must be non-negative")
    if sizes is None:
        declared: Tuple[Optional[int], ...] = (None,) * ndim
    else:
        declared = (sizes,) if isinstance(sizes, int) else tuple(sizes)
        if len(declared) != ndim:
            raise ValueError(f"sizes {declared!r} must have one entry per declared "
                             f"sample axis (ndim={ndim})")
        if any(s is not None and s < 1 for s in declared):
            raise ValueError("sample-axis sizes must be positive")
    previous = _SAMPLE_SIZES
    _SAMPLE_SIZES = previous + declared
    try:
        yield
    finally:
        _SAMPLE_SIZES = previous


# --------------------------------------------------------------------------
# Effectful linear-op registry.
#
# Handlers are objects exposing ``process_linear_op(op, inputs, weight, bias,
# default_fn, **kwargs)`` that either return a Tensor (taking over the
# computation) or ``None`` (falling through to the next handler / default).
# Handlers are consulted innermost (most recently registered) first.
# --------------------------------------------------------------------------
_LINEAR_OP_HANDLERS: List[object] = []


def register_linear_op_handler(handler: object) -> None:
    """Push an effect handler intercepting linear/conv operations."""
    _LINEAR_OP_HANDLERS.append(handler)


def unregister_linear_op_handler(handler: object) -> None:
    """Remove a previously registered effect handler."""
    _LINEAR_OP_HANDLERS.remove(handler)


def active_linear_op_handlers() -> Tuple[object, ...]:
    """Return the currently active handlers, innermost last."""
    return tuple(_LINEAR_OP_HANDLERS)


def _dispatch_linear_op(op: str, default_fn: Callable[..., Tensor], x: Tensor,
                        weight: Tensor, bias: Optional[Tensor], **kwargs) -> Tensor:
    for handler in reversed(_LINEAR_OP_HANDLERS):
        result = handler.process_linear_op(op, x, weight, bias, default_fn, **kwargs)
        if result is not None:
            return result
    return default_fn(x, weight, bias, **kwargs)


# ----------------------------------------------------------------- activations
def relu(x: Tensor) -> Tensor:
    return x.relu()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def softplus(x: Tensor) -> Tensor:
    return x.softplus()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    e = shifted.exp()
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    return x - x.logsumexp(axis=axis, keepdims=True)


# --------------------------------------------------------------------- linear
def _linear_default(x: Tensor, weight: Tensor, bias: Optional[Tensor]) -> Tensor:
    # A stacked weight (S..., out, in) broadcasts against the input through a
    # single batched matmul, whether the input is shared (x (N, in): the
    # sample-major output (S..., N, out) comes out contiguous, with no
    # permutation copy — this beat the old flat (N, in) @ (in, S*out) gemm on
    # every measured shape, bit-identically) or carries its own sample axes.
    w_t = weight.swapaxes(-1, -2) if weight.ndim > 2 else weight.T
    out = x @ w_t
    if bias is not None:
        if bias.ndim > 1 and x.ndim >= 2:
            # sampled bias (S..., out) must broadcast over the data axis that
            # sits between the sample axes and the feature axis
            bias = bias.unsqueeze(-2)
        out = out + bias
    return out


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """``y = x @ weight.T + bias`` with ``weight`` of shape ``(out, in)``.

    ``weight`` (and ``bias``) may carry arbitrary extra leading sample
    dimensions, e.g. ``(S, out, in)`` for a stack of ``S`` posterior weight
    samples: the matmul broadcasts and the output gains the same leading
    axes, ``(S, ..., N, out)``.  Registered as an effectful linear op.
    """
    return _dispatch_linear_op("linear", _linear_default, x, weight, bias)


# --------------------------------------------------------------------- conv2d
def _conv2d_default(x: Tensor, weight: Tensor, bias: Optional[Tensor],
                    stride: int = 1, padding: int = 0) -> Tensor:
    """Direct im2col convolution.  ``weight``: ``(..., out_c, in_c, kh, kw)``.

    Both the input and the weight may carry extra leading sample dimensions
    (``x``: ``(S..., N, C, H, W)``, ``weight``: ``(S..., out_c, in_c, kh, kw)``),
    which broadcast against each other through a single batched matmul.
    """
    xp = x.pad2d(padding) if padding else x
    out_c, in_c, kh, kw = weight.shape[-4:]
    w_lead = weight.shape[:-4]
    x_lead = xp.shape[:-4]
    n, c, h, w_in = xp.shape[-4:]
    flat_n = int(np.prod(x_lead, dtype=np.int64)) * n if x_lead else n

    cols_np, out_h, out_w = get_backend().im2col(
        xp.data.reshape(flat_n, c, h, w_in), kh, kw, stride)
    k_dim = c * kh * kw
    w_mat = weight.reshape(w_lead + (out_c, k_dim))

    # Build output through explicit graph construction so gradients flow to
    # both input columns and the weight matrix.
    cols = Tensor(cols_np.reshape(x_lead + (n * out_h * out_w, k_dim)))
    cols.requires_grad = is_grad_enabled() and xp.requires_grad
    if cols.requires_grad:
        cols._prev = (xp,)
        cols._op = "im2col"

        def _backward_cols():
            grad_cols = cols.grad.reshape(flat_n, out_h, out_w, -1)
            grad_im = get_backend().col2im(grad_cols, (flat_n, c, h, w_in),
                                           kh, kw, stride)
            xp._accumulate(grad_im.reshape(xp.shape))

        cols._backward = _backward_cols

    w_t = w_mat.swapaxes(-1, -2) if w_mat.ndim > 2 else w_mat.T
    out_flat = cols @ w_t  # (lead..., N*oh*ow, out_c)
    if bias is not None:
        out_flat = out_flat + (bias.unsqueeze(-2) if bias.ndim > 1 else bias)
    lead = out_flat.shape[:-2]
    num_lead = len(lead)
    out = out_flat.reshape(lead + (n, out_h, out_w, out_c))
    perm = tuple(range(num_lead)) + (num_lead, num_lead + 3, num_lead + 1, num_lead + 2)
    return out.transpose(perm)


def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           stride: int = 1, padding: int = 0) -> Tensor:
    """2-D convolution over an ``(N, C, H, W)`` input.

    The weight (and input) may carry extra leading sample dimensions for
    vectorized posterior prediction; see :func:`_conv2d_default`.  Registered
    as an effectful linear op so reparameterization messengers can intercept
    it.
    """
    return _dispatch_linear_op("conv2d", _conv2d_default, x, weight, bias,
                               stride=stride, padding=padding)


# -------------------------------------------------------------------- pooling
def _fold_sample_dims(x: Tensor) -> Optional[Tuple[Tensor, Tuple[int, ...]]]:
    """Fold leading sample dims of an ``(S..., N, C, H, W)`` input into the
    batch axis so 4-D-only kernels apply; returns ``(folded, lead_shape)``."""
    if x.ndim <= 4:
        return None
    lead = x.shape[:-3]
    return x.reshape((-1,) + x.shape[-3:]), lead


def max_pool2d(x: Tensor, kernel_size: int, stride: Optional[int] = None) -> Tensor:
    folded = _fold_sample_dims(x)
    if folded is not None:
        x4, lead = folded
        pooled = max_pool2d(x4, kernel_size, stride)
        return pooled.reshape(lead + pooled.shape[1:])
    stride = stride or kernel_size
    n, c, h, w = x.shape
    out_h = (h - kernel_size) // stride + 1
    out_w = (w - kernel_size) // stride + 1
    # idx holds the within-window row-major argmax (backend contract), which
    # is exactly what the scatter-add backward below expects
    data, idx = get_backend().max_pool2d(x.data, kernel_size, stride)

    out = Tensor(data, requires_grad=is_grad_enabled() and x.requires_grad)
    if out.requires_grad:
        out._prev = (x,)
        out._op = "max_pool2d"

        def _backward():
            grad = np.zeros_like(x.data)
            ki, kj = np.unravel_index(idx, (kernel_size, kernel_size))
            nn_, cc, oh, ow = np.meshgrid(np.arange(n), np.arange(c), np.arange(out_h), np.arange(out_w), indexing="ij")
            rows = oh * stride + ki
            cols = ow * stride + kj
            np.add.at(grad, (nn_, cc, rows, cols), out.grad)
            x._accumulate(grad)

        out._backward = _backward
    return out


def avg_pool2d(x: Tensor, kernel_size: int, stride: Optional[int] = None) -> Tensor:
    folded = _fold_sample_dims(x)
    if folded is not None:
        x4, lead = folded
        pooled = avg_pool2d(x4, kernel_size, stride)
        return pooled.reshape(lead + pooled.shape[1:])
    stride = stride or kernel_size
    n, c, h, w = x.shape
    out_h = (h - kernel_size) // stride + 1
    out_w = (w - kernel_size) // stride + 1
    data = get_backend().avg_pool2d(x.data, kernel_size, stride)

    out = Tensor(data, requires_grad=is_grad_enabled() and x.requires_grad)
    if out.requires_grad:
        out._prev = (x,)
        out._op = "avg_pool2d"

        def _backward():
            grad = np.zeros_like(x.data)
            g = out.grad / float(kernel_size * kernel_size)
            for i in range(kernel_size):
                for j in range(kernel_size):
                    grad[:, :, i:i + stride * out_h:stride, j:j + stride * out_w:stride] += g
            x._accumulate(grad)

        out._backward = _backward
    return out


def adaptive_avg_pool2d(x: Tensor, output_size: int = 1) -> Tensor:
    """Global average pooling when ``output_size == 1`` (the only supported size)."""
    if output_size != 1:
        raise NotImplementedError("only global (1x1) adaptive average pooling is supported")
    return x.mean(axis=(-2, -1), keepdims=True)


# ----------------------------------------------------------------- batch norm
def batch_norm(x: Tensor, running_mean: np.ndarray, running_var: np.ndarray,
               weight: Optional[Tensor], bias: Optional[Tensor],
               training: bool, momentum: float = 0.1, eps: float = 1e-5) -> Tensor:
    """Batch normalization over the channel dimension of 2-D or 4-D input.

    A 3-D ``(S, N, C)`` or 5-D ``(S, N, C, H, W)`` input is treated as a stack
    of ``S`` vectorized weight samples: statistics are computed per sample,
    and the running buffers receive the same ``S`` sequential momentum
    updates a loop of per-sample forward passes would apply — the vectorized
    path stays numerically identical to the looped one in training mode too.
    ``weight``/``bias`` may likewise carry a leading sample dimension,
    ``(S, C)``.
    """
    if x.ndim in (4, 5):
        axes = (0, 2, 3) if x.ndim == 4 else (1, 3, 4)
        view = (1, -1, 1, 1)
    elif x.ndim in (2, 3):
        axes = (0,) if x.ndim == 2 else (1,)
        view = (1, -1)
    else:
        raise ValueError(f"batch_norm expects 2D-5D input, got {x.ndim}D")
    has_sample_dim = x.ndim in (3, 5)

    if training:
        mean = x.mean(axis=axes, keepdims=True)
        var = x.var(axis=axes, keepdims=True)
        if running_mean is not None:
            num_features = running_mean.shape[0]
            means = mean.data.reshape(-1, num_features)  # (S, C); S == 1 unsampled
            variances = var.data.reshape(-1, num_features)
            num_updates = means.shape[0]
            # equivalent to applying the momentum update once per sample in
            # draw order, as the looped per-sample forward passes would
            decay = (1.0 - momentum) ** np.arange(num_updates - 1, -1, -1)
            running_mean *= (1 - momentum) ** num_updates
            running_mean += momentum * (decay[:, None] * means).sum(axis=0)
            running_var *= (1 - momentum) ** num_updates
            running_var += momentum * (decay[:, None] * variances).sum(axis=0)
    else:
        mean = Tensor(running_mean.reshape(view))
        var = Tensor(running_var.reshape(view))

    def _affine_view(p: Tensor) -> Tensor:
        if p.ndim == 1:
            return p.reshape(*view)
        # sampled affine parameters (S..., C) broadcast over data/spatial axes
        return p.reshape(p.shape[:-1] + tuple(view))

    x_hat = (x - mean) / (var + eps).sqrt()
    if weight is not None:
        x_hat = x_hat * _affine_view(weight)
    if bias is not None:
        x_hat = x_hat + _affine_view(bias)
    return x_hat


# -------------------------------------------------------------------- dropout
# Dropout is also registered as an effectful operation so that BNN-style
# handlers (e.g. Monte Carlo dropout with a fixed mask across batches, as
# discussed in the paper's future-work section) can intercept it.
_DROPOUT_HANDLERS: List[object] = []


def register_dropout_handler(handler: object) -> None:
    """Push an effect handler intercepting dropout operations."""
    _DROPOUT_HANDLERS.append(handler)


def unregister_dropout_handler(handler: object) -> None:
    """Remove a previously registered dropout handler."""
    _DROPOUT_HANDLERS.remove(handler)


def _dropout_default(x: Tensor, p: float, training: bool,
                     rng: Optional[np.random.Generator] = None) -> Tensor:
    if not training or p == 0.0:
        return x
    if rng is None:
        from ..ppl.rng import get_rng  # lazy: ppl imports this module at load
        rng = get_rng()
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    return x * Tensor(mask)


def dropout(x: Tensor, p: float = 0.5, training: bool = True,
            rng: Optional[np.random.Generator] = None) -> Tensor:
    for handler in reversed(_DROPOUT_HANDLERS):
        result = handler.process_dropout(x, p, training, _dropout_default)
        if result is not None:
            return result
    return _dropout_default(x, p, training, rng)


# --------------------------------------------------------------------- losses
def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    labels = np.asarray(labels, dtype=np.int64)
    out = np.zeros(labels.shape + (num_classes,), dtype=np.float64)
    np.put_along_axis(out, labels[..., None], 1.0, axis=-1)
    return out


def nll_loss(log_probs: Tensor, targets: np.ndarray, reduction: str = "mean") -> Tensor:
    targets = np.asarray(targets.data if isinstance(targets, Tensor) else targets, dtype=np.int64)
    oh = one_hot(targets, log_probs.shape[-1])
    losses = -(log_probs * Tensor(oh)).sum(axis=-1)
    if reduction == "mean":
        return losses.mean()
    if reduction == "sum":
        return losses.sum()
    return losses


def cross_entropy(logits: Tensor, targets: np.ndarray, reduction: str = "mean") -> Tensor:
    return nll_loss(log_softmax(logits, axis=-1), targets, reduction=reduction)


def mse_loss(prediction: Tensor, target, reduction: str = "mean") -> Tensor:
    target_t = target if isinstance(target, Tensor) else Tensor(target)
    sq = (prediction - target_t) ** 2
    if reduction == "mean":
        return sq.mean()
    if reduction == "sum":
        return sq.sum()
    return sq


def binary_cross_entropy_with_logits(logits: Tensor, targets, reduction: str = "mean") -> Tensor:
    targets_t = targets if isinstance(targets, Tensor) else Tensor(targets)
    # log(1 + exp(-|x|)) + max(x, 0) - x * y  (numerically stable)
    losses = logits.clamp(min=0.0) - logits * targets_t + (-logits.abs()).exp().log1p()
    if reduction == "mean":
        return losses.mean()
    if reduction == "sum":
        return losses.sum()
    return losses
