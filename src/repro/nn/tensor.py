"""Reverse-mode automatic differentiation on NumPy arrays.

This module is the foundation of the PyTorch substitute (``repro.nn``).  A
:class:`Tensor` wraps a ``numpy.ndarray`` and records a define-by-run tape of
operations; calling :meth:`Tensor.backward` walks the tape in reverse
topological order and accumulates gradients into ``.grad``.

Design notes
------------
* Each differentiable op is a free function (or ``Tensor`` method) that
  constructs the output tensor and attaches a closure computing the local
  vector-Jacobian product.
* Broadcasting is supported everywhere; gradients are summed back over the
  broadcast dimensions by :func:`unbroadcast`.
* A global gradient-mode flag (:func:`no_grad`, :func:`is_grad_enabled`)
  mirrors ``torch.no_grad()`` so evaluation code can skip tape construction.
* Elementwise ops on gradient-free tensors are *lazy*: they record a
  :class:`repro.nn.lazy.LazyOp` node instead of computing, and realization
  (triggered by ``.data`` / ``.numpy()`` / ``.item()`` access, comparisons,
  ``backward()``, eager kernel ops, or :meth:`Tensor.realize`) fuses
  elementwise chains into single buffer passes.  ``REPRO_LAZY=0`` restores
  fully eager semantics; results are bit-identical either way.  See
  :mod:`repro.nn.lazy`.
"""

from __future__ import annotations

import contextlib
import itertools
import math
import threading
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from . import lazy as _lazy
from .backends import get_backend

__all__ = [
    "Tensor",
    "Parameter",
    "no_grad",
    "enable_grad",
    "is_grad_enabled",
    "tensor",
    "zeros",
    "ones",
    "zeros_like",
    "ones_like",
    "full",
    "arange",
    "randn",
    "rand",
    "eye",
    "stack",
    "concatenate",
    "cat",
    "where",
    "maximum",
    "minimum",
    "unbroadcast",
]


# Grad mode is thread-local (as in torch): serving runs inference inside
# executor threads under no_grad(), and a process-global flag would let two
# overlapping contexts in different threads restore each other's state.
_GRAD_MODE = threading.local()


def is_grad_enabled() -> bool:
    """Return ``True`` when operations should record the autograd tape."""
    return getattr(_GRAD_MODE, "enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager disabling tape construction (like ``torch.no_grad``)."""
    prev = is_grad_enabled()
    _GRAD_MODE.enabled = False
    try:
        yield
    finally:
        _GRAD_MODE.enabled = prev


@contextlib.contextmanager
def enable_grad():
    """Context manager (re-)enabling tape construction."""
    prev = is_grad_enabled()
    _GRAD_MODE.enabled = True
    try:
        yield
    finally:
        _GRAD_MODE.enabled = prev


ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]


def _as_array(value: ArrayLike) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    arr = np.asarray(value)
    if arr.dtype == object:
        raise TypeError(f"cannot convert {value!r} to a numeric array")
    return arr


def _shift_right_one(arr: np.ndarray, axis: int) -> np.ndarray:
    """Shift ``arr`` one step along ``axis``, filling the vacated front with 0."""
    out = np.zeros_like(arr)
    src = [slice(None)] * arr.ndim
    dst = [slice(None)] * arr.ndim
    src[axis] = slice(None, -1)
    dst[axis] = slice(1, None)
    out[tuple(dst)] = arr[tuple(src)]
    return out


def _resolve_reshape(in_shape: Tuple[int, ...], requested: Tuple[int, ...]) -> Tuple[int, ...]:
    """Resolve a requested reshape (incl. one ``-1``) against ``in_shape``
    without touching data, mirroring numpy's validation errors."""
    total = int(np.prod(in_shape, dtype=np.int64)) if in_shape else 1
    if requested.count(-1) > 1:
        raise ValueError("can only specify one unknown dimension")
    if -1 in requested:
        known = 1
        for dim in requested:
            if dim != -1:
                known *= dim
        if known == 0 or total % known:
            raise ValueError(f"cannot reshape array of size {total} into shape {requested}")
        return tuple(total // known if dim == -1 else dim for dim in requested)
    if int(np.prod(requested, dtype=np.int64) if requested else 1) != total:
        raise ValueError(f"cannot reshape array of size {total} into shape {requested}")
    return requested


def _from_lazy(node: "_lazy.LazyOp", op: str) -> "Tensor":
    """Wrap a recorded :class:`~repro.nn.lazy.LazyOp` in an unrealized Tensor."""
    out = Tensor.__new__(Tensor)
    out._data = None
    out._lazy = node
    out.grad = None
    out.requires_grad = False
    out._backward = _noop_backward
    out._prev = ()
    out._op = op
    return out


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over the axes that were introduced or expanded by
    broadcasting so that the result has exactly ``shape``."""
    if grad.shape == tuple(shape):
        return grad
    # Sum over leading axes that were prepended.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were expanded from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _noop_backward() -> None:
    return None


class Tensor:
    """A NumPy-backed (and lazily evaluated) array node in the autograd graph."""

    __slots__ = ("_data", "_lazy", "grad", "requires_grad", "_backward", "_prev", "_op")

    __array_priority__ = 1000  # make numpy defer to our __r*__ operators

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _prev: Tuple["Tensor", ...] = (),
        _op: str = "",
    ) -> None:
        arr = _as_array(data)
        if requires_grad and not np.issubdtype(arr.dtype, np.floating):
            arr = arr.astype(np.float64)
        self._data: Optional[np.ndarray] = arr
        self._lazy: Optional[_lazy.LazyOp] = None
        self.grad: Optional[np.ndarray] = None
        # NOTE: explicit requires_grad is honoured even inside no_grad() —
        # like torch, grad mode only controls whether *operations* record the
        # tape (handled by _make and the op implementations), not whether leaf
        # tensors can require gradients.
        self.requires_grad = bool(requires_grad)
        self._backward: Callable[[], None] = _noop_backward
        self._prev: Tuple[Tensor, ...] = _prev if self.requires_grad or _prev else ()
        self._op = _op

    # ------------------------------------------------------------------ data
    @property
    def data(self) -> np.ndarray:
        """The underlying array; accessing it realizes any pending lazy graph."""
        if self._data is None:
            _lazy.realize(self)
        return self._data

    @data.setter
    def data(self, value) -> None:
        self._data = value if isinstance(value, np.ndarray) else np.asarray(value)
        self._lazy = None

    def realize(self) -> "Tensor":
        """Force evaluation of this tensor's lazy graph; returns ``self``."""
        if self._data is None:
            _lazy.realize(self)
        return self

    @property
    def is_realized(self) -> bool:
        """False while this tensor is a pending node of the lazy op graph."""
        return self._data is not None

    # ------------------------------------------------------------------ meta
    # Shape/dtype metadata comes from the lazy node when the tensor is
    # unrealized, so inspecting it never forces evaluation.
    @property
    def shape(self) -> Tuple[int, ...]:
        if self._data is None:
            return self._lazy.shape
        return self._data.shape

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) if self.shape else 1

    @property
    def dtype(self):
        if self._data is None:
            return self._lazy.dtype
        return self._data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        shape = self.shape
        if not shape:
            raise TypeError("len() of unsized object")
        return shape[0]

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, suppress_small=True)}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def clone(self) -> "Tensor":
        # cloning a lazy tensor records a node rather than realizing the
        # source graph; the backward closure (grad path only) is unchanged
        out = self._make_ew("clone", (self,))
        if out.requires_grad:

            def _backward():
                self._accumulate(out.grad)

            out._backward = _backward
        return out

    def contiguous(self) -> "Tensor":
        """Return a C-contiguous tensor (``self`` when already contiguous).

        An unrealized lazy tensor is returned as-is: realization writes into
        freshly allocated (contiguous) buffers, so forcing it here would only
        break fusion.
        """
        if self._data is None or self._data.flags["C_CONTIGUOUS"]:
            if _lazy.lazy_enabled():
                _lazy.STATS.buffers_elided += 1
            return self
        out = self._make(np.ascontiguousarray(self.data), (self,), "contiguous")
        if out.requires_grad:

            def _backward():
                self._accumulate(out.grad)

            out._backward = _backward
        return out

    def copy_(self, other: ArrayLike) -> "Tensor":
        """In-place copy of values (no autograd tracking)."""
        self.data[...] = _as_array(other)
        return self

    def zero_grad(self) -> None:
        self.grad = None

    # -------------------------------------------------------------- plumbing
    def _make(self, data: np.ndarray, prev: Tuple["Tensor", ...], op: str) -> "Tensor":
        requires = is_grad_enabled() and any(p.requires_grad for p in prev)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._prev = prev
            out._op = op
        return out

    def _make_ew(self, op: str, parents: Tuple["Tensor", ...], **params) -> "Tensor":
        """Build an elementwise op result: a lazy node for gradient-free
        inputs (when the engine is enabled), else an eagerly computed tensor.

        Gradient-tracking ops always realize at record time: the ``_backward``
        closure the caller attaches is the realization-time product, so the
        autograd tape is exactly the eager engine's.  Both paths run the same
        kernels (:data:`repro.nn.lazy.ELEMENTWISE_OPS`) — bit-identical.
        """
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        if not requires and _lazy.lazy_enabled():
            return _from_lazy(_lazy.record(op, parents, params), op)
        data = _lazy.compute_eager(op, [p.data for p in parents], params)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._prev = parents
            out._op = op
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = unbroadcast(np.asarray(grad, dtype=self.data.dtype if np.issubdtype(self.data.dtype, np.floating) else np.float64), self.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (and must be provided for non-scalar
        outputs only if a non-trivial seed gradient is desired).
        """
        if not self.requires_grad:
            raise RuntimeError("called backward on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data, dtype=np.float64)
        else:
            grad = _as_array(grad)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for child in node._prev:
                if id(child) not in visited and child.requires_grad:
                    stack.append((child, False))

        self._accumulate(grad)
        for node in reversed(topo):
            node._backward()

    # ------------------------------------------------------------ arithmetic
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make_ew("add", (self, other_t))
        if out.requires_grad:

            def _backward():
                self._accumulate(out.grad)
                other_t._accumulate(out.grad)

            out._backward = _backward
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out = self._make_ew("neg", (self,))
        if out.requires_grad:

            def _backward():
                self._accumulate(-out.grad)

            out._backward = _backward
        return out

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make_ew("sub", (self, other_t))
        if out.requires_grad:

            def _backward():
                self._accumulate(out.grad)
                other_t._accumulate(-out.grad)

            out._backward = _backward
        return out

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make_ew("mul", (self, other_t))
        if out.requires_grad:

            def _backward():
                self._accumulate(out.grad * other_t.data)
                other_t._accumulate(out.grad * self.data)

            out._backward = _backward
        return out

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make_ew("div", (self, other_t))
        if out.requires_grad:

            def _backward():
                self._accumulate(out.grad / other_t.data)
                other_t._accumulate(-out.grad * self.data / (other_t.data ** 2))

            out._backward = _backward
        return out

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: Union[int, float]) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out = self._make_ew("pow", (self,), exponent=exponent)
        if out.requires_grad:

            def _backward():
                self._accumulate(out.grad * exponent * self.data ** (exponent - 1))

            out._backward = _backward
        return out

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make(get_backend().matmul(self.data, other_t.data),
                         (self, other_t), "matmul")
        if out.requires_grad:

            def _backward():
                a, b, g = self.data, other_t.data, out.grad
                if a.ndim == 1 and b.ndim == 1:
                    self._accumulate(g * b)
                    other_t._accumulate(g * a)
                    return
                a2 = a[None, :] if a.ndim == 1 else a
                b2 = b[:, None] if b.ndim == 1 else b
                g2 = g
                if a.ndim == 1:
                    g2 = np.expand_dims(g2, -2)
                if b.ndim == 1:
                    g2 = np.expand_dims(g2, -1)
                backend = get_backend()
                ga = backend.matmul(g2, np.swapaxes(b2, -1, -2))
                gb = backend.matmul(np.swapaxes(a2, -1, -2), g2)
                if a.ndim == 1:
                    ga = np.squeeze(ga, -2)
                if b.ndim == 1:
                    gb = np.squeeze(gb, -1)
                self._accumulate(unbroadcast(ga, a.shape))
                other_t._accumulate(unbroadcast(gb, b.shape))

            out._backward = _backward
        return out

    def __rmatmul__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) @ self

    # ----------------------------------------------------------- comparisons
    # Comparisons return plain boolean arrays (no gradient flows through them).
    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < _as_array(other)

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.data <= _as_array(other)

    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > _as_array(other)

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.data >= _as_array(other)

    def eq(self, other: ArrayLike) -> np.ndarray:
        return self.data == _as_array(other)

    # ------------------------------------------------------------ elementwise
    def exp(self) -> "Tensor":
        out = self._make_ew("exp", (self,))
        if out.requires_grad:

            def _backward():
                self._accumulate(out.grad * out.data)

            out._backward = _backward
        return out

    def log(self) -> "Tensor":
        out = self._make_ew("log", (self,))
        if out.requires_grad:

            def _backward():
                self._accumulate(out.grad / self.data)

            out._backward = _backward
        return out

    def log1p(self) -> "Tensor":
        out = self._make_ew("log1p", (self,))
        if out.requires_grad:

            def _backward():
                self._accumulate(out.grad / (1.0 + self.data))

            out._backward = _backward
        return out

    def sqrt(self) -> "Tensor":
        out = self._make_ew("sqrt", (self,))
        if out.requires_grad:

            def _backward():
                self._accumulate(out.grad * 0.5 / out.data)

            out._backward = _backward
        return out

    def abs(self) -> "Tensor":
        out = self._make_ew("abs", (self,))
        if out.requires_grad:

            def _backward():
                self._accumulate(out.grad * np.sign(self.data))

            out._backward = _backward
        return out

    def tanh(self) -> "Tensor":
        out = self._make_ew("tanh", (self,))
        if out.requires_grad:

            def _backward():
                self._accumulate(out.grad * (1.0 - out.data ** 2))

            out._backward = _backward
        return out

    def sigmoid(self) -> "Tensor":
        out = self._make_ew("sigmoid", (self,))
        if out.requires_grad:

            def _backward():
                self._accumulate(out.grad * out.data * (1.0 - out.data))

            out._backward = _backward
        return out

    def relu(self) -> "Tensor":
        out = self._make_ew("relu", (self,))
        if out.requires_grad:

            def _backward():
                self._accumulate(out.grad * (self.data > 0))

            out._backward = _backward
        return out

    def softplus(self) -> "Tensor":
        out = self._make_ew("softplus", (self,))
        if out.requires_grad:

            def _backward():
                self._accumulate(out.grad * _lazy.compute_eager("sigmoid", [self.data]))

            out._backward = _backward
        return out

    def erf(self) -> "Tensor":
        out = self._make_ew("erf", (self,))
        if out.requires_grad:

            def _backward():
                self._accumulate(out.grad * 2.0 / math.sqrt(math.pi)
                                 * _lazy.compute_eager("exp", [-self.data ** 2]))

            out._backward = _backward
        return out

    def sin(self) -> "Tensor":
        out = self._make_ew("sin", (self,))
        if out.requires_grad:

            def _backward():
                self._accumulate(out.grad * _lazy.compute_eager("cos", [self.data]))

            out._backward = _backward
        return out

    def cos(self) -> "Tensor":
        out = self._make_ew("cos", (self,))
        if out.requires_grad:

            def _backward():
                self._accumulate(-out.grad * _lazy.compute_eager("sin", [self.data]))

            out._backward = _backward
        return out

    def clamp(self, min: Optional[float] = None, max: Optional[float] = None) -> "Tensor":
        out = self._make_ew("clamp", (self,), min=min, max=max)
        if out.requires_grad:

            def _backward():
                mask = np.ones_like(self.data, dtype=bool)
                if min is not None:
                    mask &= self.data >= min
                if max is not None:
                    mask &= self.data <= max
                self._accumulate(out.grad * mask)

            out._backward = _backward
        return out

    clip = clamp

    def cumsum(self, axis: int = -1, exclusive: bool = False) -> "Tensor":
        """Cumulative sum along ``axis``; ``exclusive=True`` gives ``sum_{j<i} x_j``.

        Both forward and backward are native O(n) scans.  The exclusive
        variant shifts the inclusive partial sums right by one (a zero enters
        at the front), so ``out_i`` is the exact sequential partial sum of the
        first ``i`` elements — the transmittance accumulator the volumetric
        renderer needs, without the O(n^2) strictly-lower-triangular matmul it
        used to build.
        """
        ax = axis if axis >= 0 else axis + self.ndim
        if not 0 <= ax < self.ndim:
            raise ValueError(f"axis {axis} out of bounds for {self.ndim}-D tensor")
        inclusive = get_backend().cumsum(self.data, axis=ax)
        data = _shift_right_one(inclusive, ax) if exclusive else inclusive
        out = self._make(data, (self,), "cumsum")
        if out.requires_grad:

            def _backward():
                # d out_i / d x_j = 1 for j <= i (inclusive) or j < i (exclusive),
                # so the input gradient is a reversed (exclusive) cumulative sum.
                rev = np.flip(out.grad, axis=ax)
                acc = get_backend().cumsum(rev, axis=ax)
                if exclusive:
                    acc = _shift_right_one(acc, ax)
                self._accumulate(np.flip(acc, axis=ax))

            out._backward = _backward
        return out

    # ------------------------------------------------------------ reductions
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        out = self._make(get_backend().sum(self.data, axis=axis, keepdims=keepdims),
                         (self,), "sum")
        if out.requires_grad:
            in_shape = self.shape

            def _backward():
                grad = out.grad
                if axis is not None and not keepdims:
                    axes = axis if isinstance(axis, tuple) else (axis,)
                    axes = tuple(a % len(in_shape) for a in axes)
                    grad = np.expand_dims(grad, tuple(sorted(axes)))
                self._accumulate(np.broadcast_to(grad, in_shape))

            out._backward = _backward
        return out

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def var(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False, unbiased: bool = False) -> "Tensor":
        mean = self.mean(axis=axis, keepdims=True)
        sq = (self - mean) ** 2
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        denom = count - 1 if unbiased else count
        return sq.sum(axis=axis, keepdims=keepdims) / float(max(denom, 1))

    def std(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False, unbiased: bool = False) -> "Tensor":
        return self.var(axis=axis, keepdims=keepdims, unbiased=unbiased).sqrt()

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        data = get_backend().max(self.data, axis=axis, keepdims=keepdims)
        out = self._make(data, (self,), "max")
        if out.requires_grad:

            def _backward():
                grad = out.grad
                maxval = data
                if axis is not None and not keepdims:
                    grad = np.expand_dims(grad, axis)
                    maxval = np.expand_dims(maxval, axis)
                mask = (self.data == maxval)
                # split gradient equally among ties to keep it a valid subgradient
                counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
                self._accumulate(grad * mask / counts)

            out._backward = _backward
        return out

    def min(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    def argmax(self, axis: Optional[int] = None) -> np.ndarray:
        return self.data.argmax(axis=axis)

    def logsumexp(self, axis: int = -1, keepdims: bool = False) -> "Tensor":
        max_val = Tensor(get_backend().max(self.data, axis=axis, keepdims=True))
        shifted = self - max_val
        out = shifted.exp().sum(axis=axis, keepdims=True).log() + max_val
        if not keepdims:
            out = out.squeeze(axis)
        return out

    # --------------------------------------------------------------- shaping
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        new_shape = _resolve_reshape(self.shape, tuple(int(s) for s in shape))
        if new_shape == self.shape and _lazy.lazy_enabled():
            # identity reshape: gradient flow and values are unchanged, so
            # the movement op is elided entirely
            _lazy.STATS.buffers_elided += 1
            return self
        requires = is_grad_enabled() and self.requires_grad
        if not requires and _lazy.lazy_enabled():
            return _from_lazy(_lazy.record("reshape", (self,), {"shape": new_shape}),
                              "reshape")
        out = self._make(self.data.reshape(new_shape), (self,), "reshape")
        if out.requires_grad:
            in_shape = self.shape

            def _backward():
                self._accumulate(out.grad.reshape(in_shape))

            out._backward = _backward
        return out

    view = reshape

    def flatten(self, start_dim: int = 0) -> "Tensor":
        shape = self.shape[:start_dim] + (-1,)
        return self.reshape(*shape)

    def squeeze(self, axis: Optional[int] = None) -> "Tensor":
        # shape-only (no realization): squeezing is a pure movement op
        shape = self.shape
        if axis is None:
            new_shape = tuple(s for s in shape if s != 1)
        else:
            ax = axis if axis >= 0 else axis + len(shape)
            if not 0 <= ax < len(shape):
                raise ValueError(f"axis {axis} out of bounds for {len(shape)}-D tensor")
            if shape[ax] != 1:
                raise ValueError(f"cannot select an axis to squeeze out which has "
                                 f"size not equal to one (axis {axis}, size {shape[ax]})")
            new_shape = shape[:ax] + shape[ax + 1:]
        return self.reshape(new_shape)

    def unsqueeze(self, axis: int) -> "Tensor":
        shape = self.shape
        ax = axis if axis >= 0 else axis + len(shape) + 1
        if not 0 <= ax <= len(shape):
            raise ValueError(f"axis {axis} out of bounds for inserting into "
                             f"{len(shape)}-D tensor")
        return self.reshape(shape[:ax] + (1,) + shape[ax:])

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 0:
            axes_ = None
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes_ = tuple(axes[0])
        elif len(axes) == 2:
            # torch-style transpose(dim0, dim1)
            axes_ = list(range(self.ndim))
            axes_[axes[0]], axes_[axes[1]] = axes_[axes[1]], axes_[axes[0]]
            axes_ = tuple(axes_)
        else:
            axes_ = tuple(axes)
        if _lazy.lazy_enabled():
            ndim = self.ndim
            identity = tuple(range(ndim))
            norm = (identity[::-1] if axes_ is None
                    else tuple(a % ndim for a in axes_))
            if norm == identity:
                _lazy.STATS.buffers_elided += 1
                return self
            if self._lazy is not None and self._lazy.op == "transpose":
                # inverse transpose pair: composing the permutations yields
                # the identity, so both movement ops are elided
                prev_axes = self._lazy.params["axes"]
                if tuple(prev_axes[a] for a in norm) == identity:
                    _lazy.STATS.buffers_elided += 1
                    return self._lazy.parents[0]
            if not (is_grad_enabled() and self.requires_grad):
                return _from_lazy(_lazy.record("transpose", (self,), {"axes": norm}),
                                  "transpose")
        out = self._make(np.transpose(self.data, axes_), (self,), "transpose")
        if out.requires_grad:

            def _backward():
                if axes_ is None:
                    self._accumulate(np.transpose(out.grad))
                else:
                    inv = np.argsort(axes_)
                    self._accumulate(np.transpose(out.grad, inv))

            out._backward = _backward
        return out

    def permute(self, *axes) -> "Tensor":
        return self.transpose(*axes) if len(axes) != 2 else self.transpose(tuple(axes))

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        """Exchange two axes (``np.swapaxes``); ``swapaxes(-1, -2)`` is the
        batched-matmul transpose used by the vectorized-sample execution mode,
        where a stack of ``S`` weight matrices ``(S, out, in)`` multiplies a
        shared input through a single broadcast ``@``."""
        return self.transpose(axis1, axis2)

    def broadcast_to(self, shape: Sequence[int]) -> "Tensor":
        out = self._make(np.broadcast_to(self.data, tuple(shape)).copy(), (self,), "broadcast")
        if out.requires_grad:
            in_shape = self.shape

            def _backward():
                self._accumulate(unbroadcast(out.grad, in_shape))

            out._backward = _backward
        return out

    expand = broadcast_to

    def __getitem__(self, idx) -> "Tensor":
        idx_ = idx.data if isinstance(idx, Tensor) else idx
        out = self._make(self.data[idx_], (self,), "getitem")
        if out.requires_grad:
            in_shape = self.shape

            def _backward():
                grad = np.zeros(in_shape, dtype=np.float64)
                np.add.at(grad, idx_, out.grad)
                self._accumulate(grad)

            out._backward = _backward
        return out

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the last two dimensions symmetrically by ``padding``."""
        if padding == 0:
            return self
        pad_width = [(0, 0)] * (self.ndim - 2) + [(padding, padding), (padding, padding)]
        out = self._make(np.pad(self.data, pad_width), (self,), "pad2d")
        if out.requires_grad:

            def _backward():
                sl = tuple([slice(None)] * (self.ndim - 2) + [slice(padding, -padding)] * 2)
                self._accumulate(out.grad[sl])

            out._backward = _backward
        return out


class Parameter(Tensor):
    """A :class:`Tensor` that is registered by :class:`repro.nn.Module`."""

    __slots__ = ()

    def __init__(self, data: ArrayLike, requires_grad: bool = True) -> None:
        super().__init__(_as_array(data).astype(np.float64), requires_grad=requires_grad)

    def __repr__(self) -> str:
        return "Parameter containing:\n" + super().__repr__()


# --------------------------------------------------------------------- helpers
def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Create a tensor from array-like data."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(*shape, requires_grad: bool = False) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(*shape, requires_grad: bool = False) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.ones(shape), requires_grad=requires_grad)


def zeros_like(x: ArrayLike, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros_like(_as_array(x), dtype=np.float64), requires_grad=requires_grad)


def ones_like(x: ArrayLike, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones_like(_as_array(x), dtype=np.float64), requires_grad=requires_grad)


def full(shape, fill_value: float, requires_grad: bool = False) -> Tensor:
    return Tensor(np.full(shape, fill_value, dtype=np.float64), requires_grad=requires_grad)


def arange(*args, **kwargs) -> Tensor:
    return Tensor(np.arange(*args, **kwargs))


def eye(n: int, requires_grad: bool = False) -> Tensor:
    return Tensor(np.eye(n), requires_grad=requires_grad)


def _default_rng() -> np.random.Generator:
    from ..ppl.rng import get_rng  # lazy: ppl imports nn at package load
    return get_rng()


def randn(*shape, rng: Optional[np.random.Generator] = None, requires_grad: bool = False) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    gen = rng if rng is not None else _default_rng()
    return Tensor(gen.standard_normal(shape), requires_grad=requires_grad)


def rand(*shape, rng: Optional[np.random.Generator] = None, requires_grad: bool = False) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    gen = rng if rng is not None else _default_rng()
    return Tensor(gen.random(shape), requires_grad=requires_grad)


def stack(tensors: Sequence[ArrayLike], axis: int = 0) -> Tensor:
    ts = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.stack([t.data for t in ts], axis=axis)
    requires = is_grad_enabled() and any(t.requires_grad for t in ts)
    out = Tensor(data, requires_grad=requires)
    if requires:
        out._prev = tuple(ts)
        out._op = "stack"

        def _backward():
            grads = np.split(out.grad, len(ts), axis=axis)
            for t, g in zip(ts, grads):
                t._accumulate(np.squeeze(g, axis=axis))

        out._backward = _backward
    return out


def concatenate(tensors: Sequence[ArrayLike], axis: int = 0) -> Tensor:
    ts = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in ts], axis=axis)
    requires = is_grad_enabled() and any(t.requires_grad for t in ts)
    out = Tensor(data, requires_grad=requires)
    if requires:
        out._prev = tuple(ts)
        out._op = "concatenate"
        sizes = [t.shape[axis] for t in ts]
        offsets = list(itertools.accumulate([0] + sizes))

        def _backward():
            for t, start, stop in zip(ts, offsets[:-1], offsets[1:]):
                sl = [slice(None)] * out.ndim
                sl[axis] = slice(start, stop)
                t._accumulate(out.grad[tuple(sl)])

        out._backward = _backward
    return out


cat = concatenate


def where(condition: ArrayLike, x: ArrayLike, y: ArrayLike) -> Tensor:
    cond = _as_array(condition).astype(bool)
    xt = x if isinstance(x, Tensor) else Tensor(x)
    yt = y if isinstance(y, Tensor) else Tensor(y)
    data = np.where(cond, xt.data, yt.data)
    requires = is_grad_enabled() and (xt.requires_grad or yt.requires_grad)
    out = Tensor(data, requires_grad=requires)
    if requires:
        out._prev = (xt, yt)
        out._op = "where"

        def _backward():
            xt._accumulate(out.grad * cond)
            yt._accumulate(out.grad * (~cond))

        out._backward = _backward
    return out


def maximum(x: ArrayLike, y: ArrayLike) -> Tensor:
    xt = x if isinstance(x, Tensor) else Tensor(x)
    yt = y if isinstance(y, Tensor) else Tensor(y)
    return where(xt.data >= yt.data, xt, yt)


def minimum(x: ArrayLike, y: ArrayLike) -> Tensor:
    xt = x if isinstance(x, Tensor) else Tensor(x)
    yt = y if isinstance(y, Tensor) else Tensor(y)
    return where(xt.data <= yt.data, xt, yt)
