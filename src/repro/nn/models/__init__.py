"""Model zoo: the substitute for ``torchvision.models`` and the paper's
experiment-specific architectures."""

from .convnet import ConvBlock, small_convnet, vcl_cifar_net
from .mlp import make_mlp, regression_net, vcl_mnist_net
from .resnet import BasicBlock, ResNet, make_resnet, resnet8, resnet14, resnet20

__all__ = [
    "BasicBlock",
    "ResNet",
    "make_resnet",
    "resnet8",
    "resnet14",
    "resnet20",
    "make_mlp",
    "regression_net",
    "vcl_mnist_net",
    "ConvBlock",
    "vcl_cifar_net",
    "small_convnet",
]
