"""Multi-layer perceptrons used throughout the experiments."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..modules import Linear, Module, ReLU, Sequential, Tanh

__all__ = ["make_mlp", "regression_net", "vcl_mnist_net"]

_ACTIVATIONS = {"relu": ReLU, "tanh": Tanh}


def make_mlp(in_features: int, hidden: Sequence[int], out_features: int,
             activation: str = "relu", rng: Optional[np.random.Generator] = None) -> Sequential:
    """Build ``Linear -> act -> ... -> Linear`` with the given hidden widths."""
    if activation not in _ACTIVATIONS:
        raise ValueError(f"unknown activation {activation!r}; options: {sorted(_ACTIVATIONS)}")
    act = _ACTIVATIONS[activation]
    layers = []
    prev = in_features
    for width in hidden:
        layers.append(Linear(prev, width, rng=rng))
        layers.append(act())
        prev = width
    layers.append(Linear(prev, out_features, rng=rng))
    return Sequential(*layers)


def regression_net(hidden: int = 50, rng: Optional[np.random.Generator] = None) -> Sequential:
    """The 1-50-1 tanh network from the paper's regression example (Listing 1)."""
    return make_mlp(1, [hidden], 1, activation="tanh", rng=rng)


def vcl_mnist_net(in_features: int = 64, hidden: int = 200, num_classes: int = 10,
                  rng: Optional[np.random.Generator] = None) -> Sequential:
    """Fully-connected net with one 200-unit ReLU hidden layer (paper A.4)."""
    return make_mlp(in_features, [hidden], num_classes, activation="relu", rng=rng)
