"""Small convolutional networks (the VCL Split-CIFAR architecture)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..modules import (Conv2d, Flatten, Linear, MaxPool2d, Module, ReLU, Sequential)
from ..tensor import Tensor

__all__ = ["ConvBlock", "vcl_cifar_net", "small_convnet"]


class ConvBlock(Module):
    """``Conv-ReLU-Conv-ReLU-MaxPool`` block as described in paper A.4."""

    def __init__(self, in_channels: int, out_channels: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=1, padding=1, rng=rng)
        self.relu1 = ReLU()
        self.conv2 = Conv2d(out_channels, out_channels, 3, stride=1, padding=1, rng=rng)
        self.relu2 = ReLU()
        self.pool = MaxPool2d(2, 2)

    def forward(self, x: Tensor) -> Tensor:
        return self.pool(self.relu2(self.conv2(self.relu1(self.conv1(x)))))


def vcl_cifar_net(in_channels: int = 3, image_size: int = 8, channels: tuple = (8, 16),
                  hidden: int = 64, num_classes: int = 10,
                  rng: Optional[np.random.Generator] = None) -> Sequential:
    """Two conv blocks followed by a fully-connected layer (paper A.4, scaled)."""
    final_size = image_size // 4
    flat = channels[1] * final_size * final_size
    return Sequential(
        ConvBlock(in_channels, channels[0], rng=rng),
        ConvBlock(channels[0], channels[1], rng=rng),
        Flatten(),
        Linear(flat, hidden, rng=rng),
        ReLU(),
        Linear(hidden, num_classes, rng=rng),
    )


def small_convnet(in_channels: int = 1, image_size: int = 8, num_classes: int = 10,
                  width: int = 8, rng: Optional[np.random.Generator] = None) -> Sequential:
    """A LeNet-style conv net for quick classification tests."""
    final_size = image_size // 2
    return Sequential(
        Conv2d(in_channels, width, 3, padding=1, rng=rng),
        ReLU(),
        MaxPool2d(2, 2),
        Flatten(),
        Linear(width * final_size * final_size, num_classes, rng=rng),
    )
