"""Residual networks (He et al., 2016) scaled for small synthetic images.

This is the substitute for ``torchvision.models.resnet18`` used in the
paper's large-scale vision experiment (Table 1 / Fig. 2).  The architecture
is faithful — BasicBlocks with two 3x3 convolutions, BatchNorm, identity or
1x1-projection shortcuts, global average pooling and a final fully-connected
classifier — but the stage widths and depths are configurable so the
experiments run in seconds on a CPU.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .. import functional as F
from ..modules import (AdaptiveAvgPool2d, BatchNorm2d, Conv2d, Flatten, Linear,
                       Module, ReLU, Sequential)
from ..tensor import Tensor

__all__ = ["BasicBlock", "ResNet", "resnet8", "resnet14", "resnet20", "make_resnet"]


class BasicBlock(Module):
    """Two 3x3 convolutions with a residual connection."""

    expansion = 1

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride, padding=1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(out_channels)
        self.relu = ReLU()
        self.conv2 = Conv2d(out_channels, out_channels, 3, stride=1, padding=1, bias=False, rng=rng)
        self.bn2 = BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.downsample = Sequential(
                Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
                BatchNorm2d(out_channels),
            )
        else:
            self.downsample = None

    def forward(self, x: Tensor) -> Tensor:
        identity = x
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        if self.downsample is not None:
            identity = self.downsample(x)
        return self.relu(out + identity)


class ResNet(Module):
    """CIFAR-style ResNet: a stem conv followed by three residual stages."""

    def __init__(self, block_counts: Sequence[int], num_classes: int = 10,
                 in_channels: int = 3, base_width: int = 8,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.num_classes = num_classes
        widths = [base_width, base_width * 2, base_width * 4]
        self.conv1 = Conv2d(in_channels, widths[0], 3, stride=1, padding=1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(widths[0])
        self.relu = ReLU()
        in_w = widths[0]
        layers = []
        for stage, (width, count) in enumerate(zip(widths, block_counts)):
            blocks = []
            for i in range(count):
                stride = 2 if (stage > 0 and i == 0) else 1
                blocks.append(BasicBlock(in_w, width, stride=stride, rng=rng))
                in_w = width
            layers.append(Sequential(*blocks))
        self.layer1, self.layer2, self.layer3 = layers
        self.avgpool = AdaptiveAvgPool2d(1)
        self.flatten = Flatten()
        self.fc = Linear(in_w, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.layer1(out)
        out = self.layer2(out)
        out = self.layer3(out)
        out = self.avgpool(out)
        out = self.flatten(out)
        return self.fc(out)


def make_resnet(depth: int, num_classes: int = 10, in_channels: int = 3,
                base_width: int = 8, rng: Optional[np.random.Generator] = None) -> ResNet:
    """Build a CIFAR-style ResNet of the given depth (6n + 2)."""
    if (depth - 2) % 6 != 0:
        raise ValueError(f"depth must be 6n + 2, got {depth}")
    n = (depth - 2) // 6
    return ResNet([n, n, n], num_classes=num_classes, in_channels=in_channels,
                  base_width=base_width, rng=rng)


def resnet8(num_classes: int = 10, in_channels: int = 3, base_width: int = 8,
            rng: Optional[np.random.Generator] = None) -> ResNet:
    """The default small ResNet used by the image-classification experiments."""
    return make_resnet(8, num_classes, in_channels, base_width, rng)


def resnet14(num_classes: int = 10, in_channels: int = 3, base_width: int = 8,
             rng: Optional[np.random.Generator] = None) -> ResNet:
    return make_resnet(14, num_classes, in_channels, base_width, rng)


def resnet20(num_classes: int = 10, in_channels: int = 3, base_width: int = 8,
             rng: Optional[np.random.Generator] = None) -> ResNet:
    return make_resnet(20, num_classes, in_channels, base_width, rng)
