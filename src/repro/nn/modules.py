"""Module system mirroring ``torch.nn``.

A :class:`Module` owns :class:`~repro.nn.tensor.Parameter` attributes and
child modules, exposes ``named_parameters``/``state_dict``/``apply`` and a
``training`` flag — everything the TyXe-style BNN classes need in order to
walk an arbitrary architecture and replace its parameters with sample sites.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from . import functional as F
from . import init
from .tensor import Parameter, Tensor

__all__ = [
    "Module",
    "Sequential",
    "ModuleList",
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "MaxPool2d",
    "AvgPool2d",
    "AdaptiveAvgPool2d",
    "Flatten",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Softplus",
    "Identity",
    "Dropout",
]


class Module:
    """Base class for all neural-network modules."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------ attribute
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            self.__dict__.pop(name, None)
        elif isinstance(value, Module):
            self._modules[name] = value
            self.__dict__.pop(name, None)
        else:
            if name in self._parameters and isinstance(value, Tensor):
                # allow replacing a parameter with a plain tensor (used when
                # substituting sampled weights); store it as an override.
                self._parameters[name] = value
                return
            object.__setattr__(self, name, value)

    def __getattr__(self, name: str):
        params = self.__dict__.get("_parameters")
        if params is not None and name in params:
            return params[name]
        modules = self.__dict__.get("_modules")
        if modules is not None and name in modules:
            return modules[name]
        buffers = self.__dict__.get("_buffers")
        if buffers is not None and name in buffers:
            return buffers[name]
        raise AttributeError(f"{type(self).__name__!r} object has no attribute {name!r}")

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-learnable persistent array (e.g. BatchNorm statistics)."""
        self._buffers[name] = value

    def register_parameter(self, name: str, param: Optional[Parameter]) -> None:
        if param is None:
            self._parameters[name] = None
        else:
            self._parameters[name] = param

    # ----------------------------------------------------------- navigation
    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix, self
        for name, module in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from module.named_modules(child_prefix)

    def modules(self) -> Iterator["Module"]:
        for _, m in self.named_modules():
            yield m

    def named_children(self) -> Iterator[Tuple[str, "Module"]]:
        yield from self._modules.items()

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            if param is not None:
                full = f"{prefix}.{name}" if prefix else name
                yield full, param
        for name, module in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from module.named_parameters(child_prefix)

    def parameters(self) -> Iterator[Parameter]:
        for _, p in self.named_parameters():
            yield p

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            full = f"{prefix}.{name}" if prefix else name
            yield full, buf
        for name, module in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from module.named_buffers(child_prefix)

    def get_submodule(self, target: str) -> "Module":
        module: Module = self
        if target == "":
            return module
        for part in target.split("."):
            module = module._modules[part]
        return module

    def get_parameter(self, target: str) -> Parameter:
        *path, name = target.split(".")
        module = self.get_submodule(".".join(path))
        return module._parameters[name]

    def set_parameter(self, target: str, value: Tensor) -> None:
        """Replace a (possibly nested) parameter entry with ``value``."""
        *path, name = target.split(".")
        module = self.get_submodule(".".join(path))
        module._parameters[name] = value

    def set_buffer(self, target: str, value: np.ndarray) -> None:
        """Replace a (possibly nested) buffer entry with ``value``.

        The restore half of :meth:`named_buffers`: model snapshots
        (``repro.serve``) persist running statistics such as batch-norm
        moments and write them back through this hook on load.
        """
        *path, name = target.split(".")
        module = self.get_submodule(".".join(path))
        module._buffers[name] = np.asarray(value)

    # -------------------------------------------------------------- training
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for m in self._modules.values():
            m.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def apply(self, fn: Callable[["Module"], None]) -> "Module":
        for m in self._modules.values():
            m.apply(fn)
        fn(self)
        return self

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    # ------------------------------------------------------------ state dict
    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = OrderedDict()
        for name, p in self.named_parameters():
            state[name] = p.data.copy()
        for name, b in self.named_buffers():
            state[name] = np.array(b, copy=True)
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        for name, p in self.named_parameters():
            if name in state:
                p.data[...] = state[name]
        for name, b in self.named_buffers():
            if name in state:
                b[...] = state[name]

    # --------------------------------------------------------------- forward
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        child_lines = [f"  ({name}): {module!r}" for name, module in self._modules.items()]
        body = "\n".join(child_lines)
        if body:
            return f"{type(self).__name__}(\n{body}\n)"
        return f"{type(self).__name__}()"


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        for i, module in enumerate(modules):
            setattr(self, str(i), module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, idx: int) -> Module:
        return list(self._modules.values())[idx]

    def append(self, module: Module) -> "Sequential":
        setattr(self, str(len(self._modules)), module)
        return self

    def forward(self, x, *extra):
        for module in self._modules.values():
            x = module(x, *extra) if extra else module(x)
        return x


class ModuleList(Module):
    """Holds submodules in a list."""

    def __init__(self, modules: Optional[List[Module]] = None) -> None:
        super().__init__()
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        setattr(self, str(len(self._modules)), module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, idx: int) -> Module:
        return list(self._modules.values())[idx]


class Linear(Module):
    """Affine map ``y = x W^T + b``.

    The forward pass broadcasts over arbitrary leading weight dimensions: if
    the ``weight`` parameter is (temporarily) replaced by a stack of ``S``
    sampled weight matrices of shape ``(S, out, in)`` — as the vectorized
    posterior-predictive path of ``repro.core`` does — a single call computes
    all ``S`` forward passes at once, returning ``(S, N, out)``.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(np.empty((out_features, in_features)))
        init.kaiming_uniform_(self.weight, rng=rng)
        if bias:
            bound = 1.0 / math.sqrt(in_features)
            self.bias = Parameter(np.empty(out_features))
            init.uniform_(self.bias, -bound, bound, rng=rng)
        else:
            self.register_parameter("bias", None)

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self._parameters.get("bias"))

    def __repr__(self) -> str:
        return f"Linear(in_features={self.in_features}, out_features={self.out_features})"


class Conv2d(Module):
    """2-D convolution with square kernels.

    Like :class:`Linear`, the forward pass broadcasts over leading weight
    sample dimensions (``(S, out_c, in_c, kh, kw)``), enabling vectorized
    multi-sample posterior prediction.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(np.empty((out_channels, in_channels, kernel_size, kernel_size)))
        init.kaiming_uniform_(self.weight, rng=rng)
        if bias:
            fan_in = in_channels * kernel_size * kernel_size
            bound = 1.0 / math.sqrt(fan_in)
            self.bias = Parameter(np.empty(out_channels))
            init.uniform_(self.bias, -bound, bound, rng=rng)
        else:
            self.register_parameter("bias", None)

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self._parameters.get("bias"),
                        stride=self.stride, padding=self.padding)

    def __repr__(self) -> str:
        return (f"Conv2d({self.in_channels}, {self.out_channels}, "
                f"kernel_size={self.kernel_size}, stride={self.stride}, padding={self.padding})")


class BatchNorm2d(Module):
    """Batch normalization over the channel dimension of NCHW input."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features))
        self.bias = Parameter(np.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm(x, self._buffers["running_mean"], self._buffers["running_var"],
                            self._parameters["weight"], self._parameters["bias"],
                            training=self.training, momentum=self.momentum, eps=self.eps)

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.num_features})"


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"MaxPool2d(kernel_size={self.kernel_size}, stride={self.stride})"


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)


class AdaptiveAvgPool2d(Module):
    def __init__(self, output_size: int = 1) -> None:
        super().__init__()
        self.output_size = output_size

    def forward(self, x: Tensor) -> Tensor:
        return F.adaptive_avg_pool2d(x, self.output_size)


class Flatten(Module):
    """Flatten trailing dimensions from ``start_dim`` onwards.

    Under the vectorized-sample execution mode (``F.vectorized_samples``),
    activations carry extra leading sample axes; a positive ``start_dim`` is
    shifted right by that many axes so the flattening still applies to the
    per-datapoint feature dimensions only.
    """

    def __init__(self, start_dim: int = 1) -> None:
        super().__init__()
        self.start_dim = start_dim

    def forward(self, x: Tensor) -> Tensor:
        start = self.start_dim
        if start > 0:
            start += F.sample_ndim()
        return x.flatten(start)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)

    def __repr__(self) -> str:
        return "ReLU()"


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)

    def __repr__(self) -> str:
        return "Tanh()"


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.sigmoid(x)


class Softplus(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.softplus(x)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x

    def __repr__(self) -> str:
        return "Identity()"


class Dropout(Module):
    def __init__(self, p: float = 0.5) -> None:
        super().__init__()
        self.p = p

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training)
