"""Dataset and DataLoader utilities mirroring ``torch.utils.data``.

The TyXe ``fit`` interface expects an iterable of ``(inputs, targets)``
tuples; these classes provide that for in-memory NumPy arrays, with optional
shuffling and mini-batching.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from .tensor import Tensor

__all__ = ["Dataset", "TensorDataset", "Subset", "DataLoader", "random_split"]


def _default_rng() -> np.random.Generator:
    from ..ppl.rng import get_rng  # lazy: ppl imports nn at package load
    return get_rng()


class Dataset:
    """Abstract map-style dataset."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index: int):
        raise NotImplementedError


class TensorDataset(Dataset):
    """Dataset wrapping equally-sized arrays; each item is a tuple of rows."""

    def __init__(self, *arrays: Union[np.ndarray, Tensor]) -> None:
        self.arrays = [a.data if isinstance(a, Tensor) else np.asarray(a) for a in arrays]
        lengths = {len(a) for a in self.arrays}
        if len(lengths) != 1:
            raise ValueError(f"all arrays must have the same length, got {lengths}")

    def __len__(self) -> int:
        return len(self.arrays[0])

    def __getitem__(self, index):
        return tuple(a[index] for a in self.arrays)


class Subset(Dataset):
    """View of a dataset restricted to the given indices."""

    def __init__(self, dataset: Dataset, indices: Sequence[int]) -> None:
        self.dataset = dataset
        self.indices = list(indices)

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, index):
        return self.dataset[self.indices[index]]


def random_split(dataset: Dataset, lengths: Sequence[int],
                 rng: Optional[np.random.Generator] = None) -> List[Subset]:
    """Randomly partition ``dataset`` into subsets of the given lengths."""
    if sum(lengths) != len(dataset):
        raise ValueError("sum of lengths does not equal the dataset size")
    gen = rng if rng is not None else _default_rng()
    perm = gen.permutation(len(dataset))
    subsets, offset = [], 0
    for n in lengths:
        subsets.append(Subset(dataset, perm[offset:offset + n]))
        offset += n
    return subsets


class DataLoader:
    """Mini-batch iterator yielding ``(inputs, targets)`` tuples of Tensors.

    For a :class:`TensorDataset` of two arrays this yields exactly the
    length-two tuples the TyXe ``fit`` method expects.
    """

    def __init__(self, dataset: Dataset, batch_size: int = 32, shuffle: bool = False,
                 drop_last: bool = False, rng: Optional[np.random.Generator] = None) -> None:
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        # resolved per-iteration so a later set_rng_seed governs shuffling
        self.rng = rng

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def _batch_indices(self) -> Iterator[np.ndarray]:
        n = len(self.dataset)
        rng = self.rng if self.rng is not None else _default_rng()
        order = rng.permutation(n) if self.shuffle else np.arange(n)
        for start in range(0, n, self.batch_size):
            batch = order[start:start + self.batch_size]
            if self.drop_last and len(batch) < self.batch_size:
                return
            yield batch

    def __iter__(self) -> Iterator[Tuple]:
        for batch in self._batch_indices():
            items = [self.dataset[int(i)] for i in batch]
            columns = list(zip(*items))
            stacked = tuple(Tensor(np.stack(col)) for col in columns)
            yield stacked
