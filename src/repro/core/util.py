"""Utility helpers mirroring ``tyxe.util``."""

from __future__ import annotations

from typing import Dict, List, Tuple, Union

import numpy as np

from ..nn.modules import Module
from ..nn.tensor import Tensor
from ..ppl import distributions as dist

__all__ = ["pyro_sample_sites", "named_pyro_samples", "fan_in_fan_out", "to_numpy"]


def pyro_sample_sites(bnn_or_net) -> Tuple[str, ...]:
    """Names of the Bayesian (sampled) parameters of a BNN.

    Accepts either a BNN wrapper (anything exposing ``bayesian_sites``) or a
    plain network together with its prior dictionary; this is the helper used
    in the variational-continual-learning recipe of Listing 6.
    """
    if hasattr(bnn_or_net, "bayesian_sites"):
        return tuple(bnn_or_net.bayesian_sites())
    if hasattr(bnn_or_net, "param_dists"):
        return tuple(bnn_or_net.param_dists)
    raise TypeError("expected a BNN wrapper with bayesian_sites() or param_dists")


def named_pyro_samples(bnn) -> Dict[str, dist.Distribution]:
    """Mapping from Bayesian site names to their current prior distributions."""
    return dict(bnn.param_dists)


def fan_in_fan_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Fan-in/fan-out of a weight shape (re-exported for prior/guide helpers)."""
    from ..nn.init import calculate_fan_in_and_fan_out

    return calculate_fan_in_and_fan_out(shape)


def to_numpy(value: Union[Tensor, np.ndarray, float]) -> np.ndarray:
    """Convert tensors or scalars to a plain NumPy array."""
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value)
