"""The TyXe BNN wrapper classes (``tyxe/bnn.py``).

Class hierarchy (mirroring Appendix C of the paper):

``_BNN``
    Turns a deterministic network into a probabilistic model by replacing the
    exposed parameters with sample sites drawn from a :class:`Prior`.
``GuidedBNN``
    Adds a guide (variational family or MCMC kernel factory) and a forward
    pass that uses samples from the inference procedure.
``PytorchBNN``
    Low-level drop-in replacement for an ``nn.Module``: stochastic forward
    passes, a cached KL term, and ``pytorch_parameters`` for use with a plain
    ``repro.nn`` optimizer (the Bayesian-NeRF workflow of Listing 5).
``_SupervisedBNN``
    Adds a :class:`Likelihood` and the ``predict``/``evaluate`` API.
``VariationalBNN``
    scikit-learn style ``fit`` running stochastic variational inference.
``MCMC_BNN``
    Same interface, but ``fit`` runs full-batch HMC/NUTS.
"""

from __future__ import annotations

import contextlib
import itertools
from collections import OrderedDict
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..nn import functional as nn_F
from ..nn.modules import Module
from ..nn.tensor import Parameter, Tensor, no_grad, stack as nn_stack
from .. import ppl
from ..ppl import distributions as dist
from ..ppl import poutine as ppl_poutine
from ..ppl.distributions import kl_divergence
from ..ppl.infer.mcmc import MCMC
from ..ppl.infer.svi import TraceMeanField_ELBO, Trace_ELBO
from ..ppl.params import get_param_store
from .likelihoods import Likelihood
from .priors import DictPrior, Prior

__all__ = ["PytorchBNN", "VariationalBNN", "MCMC_BNN", "GuidedBNN"]

_INSTANCE_COUNTER = itertools.count()


def _as_tuple(value) -> Tuple:
    """Normalize network inputs to a tuple of arguments, tensorizing raw arrays."""
    items = tuple(value) if isinstance(value, (tuple, list)) else (value,)
    return tuple(Tensor(item) if isinstance(item, np.ndarray) else item for item in items)


class _BNN:
    """Probabilistic model over the parameters of a wrapped network."""

    def __init__(self, net: Module, prior: Prior, name: str = "net") -> None:
        self.net = net
        self.prior = prior
        self.name = name
        self.param_dists: "OrderedDict[str, dist.Distribution]" = OrderedDict()
        self._update_prior_dists()

    def _update_prior_dists(self) -> None:
        self.param_dists = self.prior.get_distributions(self.net)

    # ------------------------------------------------------------- bookkeeping
    def bayesian_sites(self) -> Tuple[str, ...]:
        """Names of the parameters that receive a Bayesian treatment."""
        return tuple(self.param_dists)

    def deterministic_parameters(self) -> List[Parameter]:
        """Parameters of the network that stay deterministic (ML-fitted)."""
        bayesian = set(self.param_dists)
        return [p for name, p in self.net.named_parameters()
                if name not in bayesian and getattr(p, "requires_grad", False)]

    def update_prior(self, new_prior: Prior) -> None:
        """Replace the prior over (a subset of) the Bayesian sites.

        This is the variational-continual-learning hook (Listing 6): passing a
        :class:`DictPrior` built from the current posterior turns the learned
        posterior into the prior for the next task.
        """
        new_dists = new_prior.get_distributions(self.net)
        merged = OrderedDict(self.param_dists)
        merged.update(new_dists)
        self.param_dists = merged
        self.prior = DictPrior(merged)

    # ------------------------------------------------------------ model pieces
    @contextlib.contextmanager
    def _substituted_params(self, samples: Dict[str, Tensor]):
        """Temporarily replace network parameters with sampled tensors."""
        originals: Dict[str, Tensor] = {}
        try:
            for name, value in samples.items():
                originals[name] = self.net.get_parameter(name)
                self.net.set_parameter(name, value)
            yield
        finally:
            for name, original in originals.items():
                self.net.set_parameter(name, original)

    def sample_parameters(self) -> "OrderedDict[str, Tensor]":
        """Draw every Bayesian parameter from its (prior) sample site."""
        return OrderedDict((name, ppl.sample(name, d)) for name, d in self.param_dists.items())

    def net_model(self, *args, **kwargs):
        """Forward pass with parameters drawn from their sample sites."""
        samples = self.sample_parameters()
        with self._substituted_params(samples):
            return self.net(*args, **kwargs)

    def prior_forward(self, *args, **kwargs):
        """Forward pass with a fresh sample from the prior (no guide)."""
        return self.net_model(*args, **kwargs)


class GuidedBNN(_BNN):
    """A BNN together with an inference procedure ("guide") over its weights."""

    def __init__(self, net: Module, prior: Prior, net_guide_builder: Optional[Callable] = None,
                 name: str = "net") -> None:
        super().__init__(net, prior, name=name)
        self._instance_id = next(_INSTANCE_COUNTER)
        self.net_guide = None
        if net_guide_builder is not None:
            self.net_guide = net_guide_builder(self.net_model)
            if hasattr(self.net_guide, "prefix"):
                self.net_guide.prefix = f"{self.name}_guide_{self._instance_id}"

    def guide_parameters(self) -> List[Parameter]:
        """Unconstrained variational parameters of the net guide (trainable only)."""
        if self.net_guide is None or not hasattr(self.net_guide, "prefix"):
            return []
        prefix = f"{self.net_guide.prefix}."
        store = get_param_store()
        return [p for name, p in store.named_parameters()
                if name.startswith(prefix) and p.requires_grad]

    def guided_forward(self, *args, guide_trace: Optional[ppl_poutine.Trace] = None, **kwargs):
        """Forward pass using a posterior sample from the guide."""
        if guide_trace is None:
            guide_trace = ppl_poutine.trace(self.net_guide).get_trace(*args, **kwargs)
        return ppl_poutine.replay(self.net_model, trace=guide_trace)(*args, **kwargs)

    def _stacked_guide_samples(self, num_samples: int, *args, **kwargs) -> Dict[str, Tensor]:
        """Draw ``num_samples`` guide samples per site, stacked on a leading axis.

        Uses the guide's ``sample_stacked`` fast path when available (all
        autoguides provide one); otherwise traces the guide repeatedly —
        either way the RNG stream matches ``num_samples`` looped
        ``guided_forward`` calls exactly.
        """
        if hasattr(self.net_guide, "sample_stacked"):
            return self.net_guide.sample_stacked(num_samples, *args, **kwargs)
        stacks: Optional[OrderedDict] = None
        for _ in range(num_samples):
            tr = ppl_poutine.trace(self.net_guide).get_trace(*args, **kwargs)
            if stacks is None:
                stacks = OrderedDict(
                    (name, []) for name in tr
                    if tr[name]["type"] == "sample" and not tr[name]["is_observed"])
            for name in stacks:
                stacks[name].append(tr[name]["value"])
        return OrderedDict((name, nn_stack(values)) for name, values in (stacks or {}).items())

    def _complete_with_prior_samples(self, samples: Dict[str, Tensor],
                                     num_samples: int) -> "OrderedDict[str, Tensor]":
        """Fill guide-uncovered Bayesian sites with stacked per-sample prior draws.

        The looped :meth:`guided_forward` path samples every site the guide
        does not cover from its prior on each pass; the vectorized equivalent
        is one ``(num_samples, ...)``-stacked draw per uncovered site, taken
        in ``param_dists`` (model-execution) order.  Each batched draw
        consumes the RNG stream exactly like ``num_samples`` sequential
        per-pass draws of that site, so uncovered sites keep their full
        per-sample variability instead of collapsing to one shared value.
        """
        completed: "OrderedDict[str, Tensor]" = OrderedDict()
        for name, site_dist in self.param_dists.items():
            if name in samples:
                completed[name] = samples[name]
            elif getattr(site_dist, "has_rsample", False):
                completed[name] = site_dist.rsample((num_samples,))
            else:
                completed[name] = site_dist.sample((num_samples,))
        return completed

    # ------------------------------------------------------------ serving hooks
    def snapshot_weight_stacks(self, num_samples: int, *args, **kwargs
                               ) -> "OrderedDict[str, np.ndarray]":
        """Posterior weight stacks as plain arrays — the serving-snapshot hook.

        Draws :meth:`posterior_weight_samples` once and materializes every
        stack to a float64 array ``(num_samples, ...)``, detached from any
        graph/parameter state.  ``repro.serve.snapshot`` persists exactly
        these arrays so a server process can load the posterior once and
        answer ``predict`` requests RNG-free thereafter.
        """
        stacks = self.posterior_weight_samples(num_samples, *args, **kwargs)
        return OrderedDict(
            (name, np.array(value.data, dtype=np.float64, copy=True))
            for name, value in stacks.items())

    def snapshot_deterministic_state(self) -> "OrderedDict[str, np.ndarray]":
        """Non-Bayesian network state: ML-fitted parameters and buffers.

        Everything :meth:`snapshot_weight_stacks` does *not* carry — plain
        parameters outside ``param_dists`` plus module buffers (e.g.
        batch-norm running moments) — keyed as ``"param.<name>"`` /
        ``"buffer.<name>"`` for :meth:`load_deterministic_state`.
        """
        bayesian = set(self.param_dists)
        state: "OrderedDict[str, np.ndarray]" = OrderedDict()
        for name, param in self.net.named_parameters():
            if name not in bayesian:
                state[f"param.{name}"] = np.array(param.data, copy=True)
        for name, buffer in self.net.named_buffers():
            state[f"buffer.{name}"] = np.array(buffer, copy=True)
        return state

    def load_deterministic_state(self, state: Dict[str, np.ndarray]) -> None:
        """Restore :meth:`snapshot_deterministic_state` output into the net."""
        for name, value in state.items():
            kind, _, target = name.partition(".")
            if kind == "param":
                self.net.set_parameter(target, Parameter(np.asarray(value)))
            elif kind == "buffer":
                self.net.set_buffer(target, np.asarray(value))
            else:
                raise ValueError(f"unknown deterministic-state entry {name!r} "
                                 "(expected a param./buffer. prefix)")

    def posterior_weight_samples(self, num_samples: int, *args, **kwargs
                                 ) -> "OrderedDict[str, Tensor]":
        """Stacked posterior weight draws ``{site: (num_samples, ...)}``.

        Public entry point for callers that batch the forward pass themselves
        (e.g. :meth:`repro.render.VolumetricRenderer.render_posterior`): the
        returned stacks can be fed back through
        ``vectorized_forward(..., samples=...)``.  Draw order is RNG-identical
        to ``num_samples`` looped :meth:`guided_forward` calls when the guide
        covers every Bayesian site; sites outside the guide are filled with
        stacked per-sample *prior* draws (guide stack first, then uncovered
        sites in model order), mirroring the looped path's per-pass prior
        sampling.
        """
        samples = self._stacked_guide_samples(num_samples, *args, **kwargs)
        return self._complete_with_prior_samples(samples, num_samples)

    def vectorized_forward(self, *args, num_samples: int = 1,
                           samples: Optional[Dict[str, Tensor]] = None, **kwargs):
        """Forward pass carrying ``num_samples`` posterior weight samples at once.

        All guide samples are drawn up front and substituted into the network
        as ``(num_samples, ...)``-stacked tensors; one batched forward pass
        (leading-sample-dimension execution, see ``repro.nn``) then computes
        every per-sample prediction, returning ``(num_samples, N, ...)``.
        Equivalent to — and RNG-compatible with — ``num_samples`` calls of
        :meth:`guided_forward`, without the per-sample Python trace overhead.

        ``samples`` optionally supplies pre-drawn weight stacks (from
        :meth:`posterior_weight_samples`), e.g. when the caller pairs each
        stacked draw with its own slice of the input batch, as the batched
        renderer and grouped continual-learning prediction do.

        The guide does not have to cover every Bayesian site: uncovered sites
        receive stacked per-sample prior draws via
        :meth:`_complete_with_prior_samples`, just as the looped path samples
        them from the prior on each pass.  (The coarse draw order differs —
        the whole guide stack is drawn before the prior stacks — so partially
        guided outputs match the looped path in distribution, and exactly
        when the guide consumes no randomness or ``num_samples == 1``.)
        """
        if samples is None:
            samples = self._stacked_guide_samples(num_samples, *args, **kwargs)
        elif num_samples != 1:
            raise ValueError(
                "pass either num_samples or pre-drawn samples, not both: the "
                "sample count is determined by the stacks' leading axis")
        elif samples:
            num_samples = next(iter(samples.values())).shape[0]
        values = self._complete_with_prior_samples(samples, num_samples)
        with self._substituted_params(values), nn_F.vectorized_samples(1):
            return self.net(*args, **kwargs)


class PytorchBNN(GuidedBNN):
    """Drop-in variational replacement for a deterministic ``nn.Module``.

    ``forward`` returns predictions made with a single Monte Carlo sample
    from the variational posterior and refreshes ``cached_kl_loss`` (the KL
    divergence of the approximate posterior from the prior) as a side effect,
    so a custom loss can simply add it as a regularizer (paper Listing 5).
    """

    def __init__(self, net: Module, prior: Prior, net_guide_builder: Callable,
                 name: str = "net", closed_form_kl: bool = True) -> None:
        super().__init__(net, prior, net_guide_builder, name=name)
        self.closed_form_kl = closed_form_kl
        self.cached_kl_loss: Optional[Tensor] = None

    def _kl(self, guide_trace: ppl_poutine.Trace) -> Tensor:
        total: Optional[Tensor] = None
        for site_name, prior_dist in self.param_dists.items():
            if site_name not in guide_trace:
                continue
            site = guide_trace[site_name]
            if self.closed_form_kl:
                try:
                    kl = kl_divergence(site["fn"], prior_dist).sum()
                except NotImplementedError:
                    kl = (site["fn"].log_prob(site["value"]).sum()
                          - prior_dist.log_prob(site["value"]).sum())
            else:
                kl = (site["fn"].log_prob(site["value"]).sum()
                      - prior_dist.log_prob(site["value"]).sum())
            total = kl if total is None else total + kl
        return total if total is not None else Tensor(0.0)

    def forward(self, *args, **kwargs):
        guide_trace = ppl_poutine.trace(self.net_guide).get_trace(*args, **kwargs)
        self.cached_kl_loss = self._kl(guide_trace)
        return ppl_poutine.replay(self.net_model, trace=guide_trace)(*args, **kwargs)

    __call__ = forward

    def pytorch_parameters(self, input_data) -> List[Parameter]:
        """All trainable parameters, for use with a ``repro.nn`` optimizer.

        Because guide parameters are created lazily, a batch of data is
        required to trace the network once and instantiate them — exactly the
        behaviour the paper describes for TyXe's ``pytorch_parameters``.

        The tracing forward draws from the prior (guide prototype) and the
        freshly built guide as a side effect; the global RNG state is saved
        and restored around it so that instantiating the parameters does not
        shift the sampling stream the subsequent training loop consumes.
        """
        args = _as_tuple(input_data)
        rng = ppl.get_rng()
        rng_state = rng.bit_generator.state
        try:
            self.forward(*args)
        finally:
            rng.bit_generator.state = rng_state
        return self.guide_parameters() + self.deterministic_parameters()


class _SupervisedBNN(GuidedBNN):
    """BNN + likelihood: defines the full generative model and the predict API."""

    def __init__(self, net: Module, prior: Prior, likelihood: Likelihood,
                 net_guide_builder: Optional[Callable] = None, name: str = "net") -> None:
        super().__init__(net, prior, net_guide_builder, name=name)
        self.likelihood = likelihood

    def model(self, input_data, obs=None):
        """The generative model: sample weights, forward, observe through the likelihood."""
        predictions = self.net_model(*_as_tuple(input_data))
        self.likelihood(predictions, obs)
        return predictions

    def predict(self, input_data, num_predictions: int = 1, aggregate: bool = True,
                vectorized: bool = False):
        """Posterior-predictive samples (aggregated by default, per the paper).

        ``vectorized=True`` draws all ``num_predictions`` weight samples up
        front and runs a single batched forward pass over the leading sample
        dimension instead of ``num_predictions`` traced passes — numerically
        equivalent (same RNG stream) and much faster; requires a network whose
        layers broadcast over leading weight dimensions, which all
        ``repro.nn`` layers do.  The looped path remains the default and the
        fallback for exotic architectures.
        """
        with no_grad():
            if vectorized:
                out = self.vectorized_forward(*_as_tuple(input_data),
                                              num_samples=num_predictions)
                stacked = Tensor(out.data if isinstance(out, Tensor) else np.asarray(out))
            else:
                predictions = []
                for _ in range(num_predictions):
                    out = self.guided_forward(*_as_tuple(input_data))
                    predictions.append(out.data if isinstance(out, Tensor) else np.asarray(out))
                stacked = Tensor(np.stack(predictions))
        return self.likelihood.aggregate_predictions(stacked) if aggregate else stacked

    def predict_grouped(self, input_groups, num_predictions: int = 1, aggregate: bool = True):
        """Posterior-predictive samples for ``G`` stacked input groups at once.

        ``input_groups`` is a ``(G, N, ...)`` stack of per-group input batches
        (e.g. one test set per continual-learning task).  Each group gets its
        own ``num_predictions`` fresh weight draws, drawn group-major, so the
        result is RNG-identical to calling
        ``predict(group, num_predictions, vectorized=...)`` once per group in
        order — but the network runs a single batched forward pass over the
        ``G * num_predictions`` leading sample axis instead of ``G`` (or
        ``G * num_predictions``) separate passes.

        Returns ``(G, N, ...)`` aggregated predictions, or the raw
        ``(G, num_predictions, N, ...)`` stack with ``aggregate=False``.
        """
        data = np.asarray(input_groups.data if isinstance(input_groups, Tensor)
                          else input_groups)
        if data.ndim < 2:
            raise ValueError("input_groups must be a (G, N, ...) stack of input batches")
        num_groups = data.shape[0]
        with no_grad():
            # sample_stacked draws iteration-major, so one stack of G*P draws
            # consumes the RNG stream exactly like G sequential stacks of P
            samples = self.posterior_weight_samples(num_groups * num_predictions,
                                                    Tensor(data[0]))
            repeated = Tensor(np.repeat(data, num_predictions, axis=0))  # (G*P, N, ...)
            out = self.vectorized_forward(repeated, samples=samples)
            raw = out.data if isinstance(out, Tensor) else np.asarray(out)
            stacked = raw.reshape((num_groups, num_predictions) + raw.shape[1:])
        if not aggregate:
            return Tensor(stacked)
        aggregated = [self.likelihood.aggregate_predictions(Tensor(group)).data
                      for group in stacked]
        return Tensor(np.stack(aggregated))

    def predict_with_samples(self, input_data, samples: Dict[str, Tensor],
                             aggregate: bool = True):
        """Posterior-predictive output from pre-drawn weight stacks, RNG-free.

        The serving hot path: ``samples`` is a ``{site: (S, ...)}`` stack (a
        loaded snapshot, or fresh :meth:`posterior_weight_samples` output)
        covering every Bayesian site, so one batched
        :meth:`vectorized_forward` computes all ``S`` per-sample predictions
        without consuming any randomness — the same stacks always produce
        byte-identical outputs.  Returns the likelihood-aggregated prediction,
        or the raw ``(S, N, ...)`` stack with ``aggregate=False``.
        """
        with no_grad():
            out = self.vectorized_forward(*_as_tuple(input_data), samples=samples)
            stacked = Tensor(out.data if isinstance(out, Tensor) else np.asarray(out))
        return self.likelihood.aggregate_predictions(stacked) if aggregate else stacked

    def evaluate(self, input_data, targets, num_predictions: int = 1,
                 reduction: str = "mean", vectorized: bool = False) -> Tuple[float, float]:
        """Return ``(log_likelihood, error)`` of the aggregated predictions."""
        aggregated = self.predict(input_data, num_predictions=num_predictions, aggregate=True,
                                  vectorized=vectorized)
        log_likelihood = self.likelihood.log_likelihood(aggregated, targets, reduction=reduction)
        error = self.likelihood.error(aggregated, targets, reduction=reduction)
        return log_likelihood, error


class VariationalBNN(_SupervisedBNN):
    """Variational BNN with a scikit-learn-style ``fit`` (paper Listings 1-3).

    ``net_guide_builder`` is a callable mapping a model to a guide, e.g.
    ``tyxe.guides.AutoNormal`` or ``functools.partial(AutoNormal,
    init_scale=1e-4, ...)``.  ``likelihood_guide_builder`` optionally builds a
    guide over latent variables of the likelihood (e.g. an unknown Gaussian
    noise scale).
    """

    def __init__(self, net: Module, prior: Prior, likelihood: Likelihood,
                 net_guide_builder: Callable, likelihood_guide_builder: Optional[Callable] = None,
                 name: str = "net") -> None:
        super().__init__(net, prior, likelihood, net_guide_builder, name=name)
        self.likelihood_guide = None
        if likelihood_guide_builder is not None:
            blocked_model = ppl_poutine.block(self.model, expose=self._likelihood_latent_sites())
            self.likelihood_guide = likelihood_guide_builder(blocked_model)
            if hasattr(self.likelihood_guide, "prefix"):
                self.likelihood_guide.prefix = f"{self.name}_lik_guide_{self._instance_id}"

    def _likelihood_latent_sites(self) -> List[str]:
        scale_site = f"{self.likelihood.name}.scale"
        return [scale_site]

    def guide(self, input_data, obs=None):
        """Joint guide over network weights and likelihood latents."""
        result = self.net_guide(*_as_tuple(input_data))
        if self.likelihood_guide is not None:
            self.likelihood_guide(input_data, obs)
        return result

    def likelihood_parameters(self) -> List[Parameter]:
        if self.likelihood_guide is None or not hasattr(self.likelihood_guide, "prefix"):
            return []
        prefix = f"{self.likelihood_guide.prefix}."
        store = get_param_store()
        return [p for name, p in store.named_parameters()
                if name.startswith(prefix) and p.requires_grad]

    def fit(self, data_loader: Iterable, optim, num_epochs: int,
            callback: Optional[Callable] = None, num_particles: int = 1,
            closed_form_kl: bool = True, vectorize_particles: bool = False) -> "VariationalBNN":
        """Run stochastic variational inference over ``data_loader``.

        ``data_loader`` yields length-two tuples ``(inputs, targets)`` where
        ``inputs`` may itself be a tuple of arguments to the network.
        ``callback(bnn, epoch, avg_elbo_loss)`` is invoked after every epoch
        and may return ``True`` to stop training early.

        ``vectorize_particles=True`` evaluates all ``num_particles`` ELBO
        particles through one batched model execution (leading-sample-
        dimension mode) instead of a Python-level loop; see
        :class:`repro.ppl.infer.ELBO`.
        """
        elbo_cls = TraceMeanField_ELBO if closed_form_kl else Trace_ELBO
        elbo = elbo_cls(num_particles=num_particles, vectorize_particles=vectorize_particles)
        for epoch in range(num_epochs):
            total_loss = 0.0
            num_batches = 0
            for input_data, targets in iter(data_loader):
                loss = elbo.differentiable_loss(self.model, self.guide, input_data, targets)
                params = (self.guide_parameters() + self.likelihood_parameters()
                          + self.deterministic_parameters())
                for p in params:
                    p.grad = None
                loss.backward()
                params_with_grad = [p for p in params if p.grad is not None]
                if params_with_grad:
                    optim(params_with_grad)
                for p in params_with_grad:
                    p.grad = None
                total_loss += float(loss.item())
                num_batches += 1
            avg_loss = total_loss / max(num_batches, 1)
            if callback is not None and callback(self, epoch, avg_loss):
                break
        return self


class MCMC_BNN(_SupervisedBNN):
    """BNN whose posterior is sampled with full-batch MCMC (HMC or NUTS).

    ``kernel_builder`` maps the model to a kernel, e.g. ``repro.ppl.infer.HMC``
    or ``functools.partial(NUTS, step_size=1e-3)`` — the "guide" argument of
    the paper's Listing 1 footnote.
    """

    def __init__(self, net: Module, prior: Prior, likelihood: Likelihood,
                 kernel_builder: Callable, name: str = "net") -> None:
        super().__init__(net, prior, likelihood, net_guide_builder=None, name=name)
        self.kernel_builder = kernel_builder
        self.kernel = None
        self._mcmc: Optional[MCMC] = None
        self._weight_samples: Optional[Dict[str, np.ndarray]] = None

    def fit(self, data: Union[Iterable, Tuple], num_samples: int,
            warmup_steps: int = 100, **mcmc_kwargs) -> "MCMC_BNN":
        """Run MCMC on the full dataset.

        ``data`` is either an ``(inputs, targets)`` tuple or an iterable of
        such tuples (e.g. a DataLoader), in which case all batches are
        concatenated into a single full-batch dataset first.
        """
        input_data, targets = self._assemble_full_batch(data)
        self.kernel = self.kernel_builder(self.model)
        self._mcmc = MCMC(self.kernel, num_samples=num_samples, warmup_steps=warmup_steps,
                          **mcmc_kwargs)
        self._mcmc.run(input_data, targets)
        self._weight_samples = self._mcmc.get_samples()
        return self

    @staticmethod
    def _assemble_full_batch(data) -> Tuple:
        if isinstance(data, tuple) and len(data) == 2 and not isinstance(data[0], tuple):
            return data
        batches = list(iter(data))
        if len(batches) == 1:
            return batches[0]
        inputs = [b[0] for b in batches]
        targets = [b[1] for b in batches]
        stacked_inputs = Tensor(np.concatenate([np.asarray(i.data if isinstance(i, Tensor) else i) for i in inputs]))
        stacked_targets = Tensor(np.concatenate([np.asarray(t.data if isinstance(t, Tensor) else t) for t in targets]))
        return stacked_inputs, stacked_targets

    @property
    def num_posterior_samples(self) -> int:
        if self._weight_samples is None:
            return 0
        first = next(iter(self._weight_samples.values()))
        return first.shape[0]

    def posterior_samples(self) -> Dict[str, np.ndarray]:
        if self._weight_samples is None:
            raise RuntimeError("call fit() before accessing posterior samples")
        return self._weight_samples

    def posterior_weight_samples(self, num_samples: int, *args, **kwargs):
        """Not supported: MCMC posteriors are stored sample chains, not a guide."""
        raise NotImplementedError(
            "posterior_weight_samples requires a guide-based BNN; MCMC "
            "posteriors are fixed sample chains — use predict(..., "
            "vectorized=True), which batches the stored samples directly. "
            "The serving layer (repro.serve snapshots) has the same "
            "guide-based requirement: refit with VariationalBNN (or another "
            "GuidedBNN) to snapshot and serve this model")

    def predict_grouped(self, input_groups, num_predictions: int = 1, aggregate: bool = True):
        """Not supported: MCMC posteriors are stored sample chains, not a guide.

        Grouped prediction draws fresh guide samples per group; for an MCMC
        posterior every group would reuse the same deterministic sample
        indices, so simply call ``predict(group, ..., vectorized=True)`` per
        group — it is already a single batched forward each.
        """
        raise NotImplementedError(
            "predict_grouped requires a guide-based BNN; use per-group "
            "predict(..., vectorized=True) with MCMC posteriors. The serving "
            "layer (repro.serve) likewise refuses MCMC-backed models: "
            "snapshots need guide-drawn weight stacks")

    def guided_forward(self, *args, sample_index: Optional[int] = None, **kwargs):
        """Forward pass with one stored posterior sample of the weights."""
        samples = self.posterior_samples()
        if sample_index is None:
            sample_index = int(ppl.get_rng().integers(self.num_posterior_samples))
        values = {name: Tensor(samples[name][sample_index]) for name in self.param_dists}
        with self._substituted_params(values):
            return self.net(*args, **kwargs)

    @staticmethod
    def _prediction_indices(total: int, num_predictions: int) -> np.ndarray:
        """Evenly spaced posterior-sample indices, newest-biased for ``n=1``.

        A single prediction uses the *final* (best-mixed) sample; the old
        ``linspace(0, total-1, 1)`` behaviour silently returned index 0, the
        least-converged draw of the whole chain.
        """
        if num_predictions == 1:
            return np.array([total - 1], dtype=int)
        return np.linspace(0, total - 1, num_predictions).astype(int)

    def predict(self, input_data, num_predictions: int = 1, aggregate: bool = True,
                vectorized: bool = False):
        """Posterior-predictive estimates using evenly spaced posterior samples.

        ``vectorized=True`` substitutes all selected posterior weight samples
        at once and runs one batched forward pass over the leading sample
        dimension (identical output to the looped path, no RNG involved).
        """
        total = self.num_posterior_samples
        if total == 0:
            raise RuntimeError("call fit() before predict()")
        num_predictions = min(num_predictions, total)
        indices = self._prediction_indices(total, num_predictions)
        with no_grad():
            if vectorized:
                samples = self.posterior_samples()
                values = OrderedDict((name, Tensor(samples[name][indices]))
                                     for name in self.param_dists)
                with self._substituted_params(values), nn_F.vectorized_samples(1):
                    out = self.net(*_as_tuple(input_data))
                stacked = Tensor(out.data if isinstance(out, Tensor) else np.asarray(out))
            else:
                predictions = []
                for idx in indices:
                    out = self.guided_forward(*_as_tuple(input_data), sample_index=int(idx))
                    predictions.append(out.data if isinstance(out, Tensor) else np.asarray(out))
                stacked = Tensor(np.stack(predictions))
        return self.likelihood.aggregate_predictions(stacked) if aggregate else stacked
