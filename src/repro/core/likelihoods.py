"""Data likelihoods (``tyxe.likelihoods``).

A :class:`Likelihood` wraps a ``repro.ppl`` distribution family and knows how
to (a) describe the observation model as a probabilistic program — with the
log-density correctly rescaled by ``dataset_size / batch_size`` so the ELBO's
KL/likelihood balance is right under mini-batching — and (b) evaluate and
aggregate posterior-predictive samples (mean probabilities for classifiers,
mean/stddev for regressors) together with an error measure.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from ..nn import functional as F
from ..nn.tensor import Tensor
from .. import ppl
from ..ppl import distributions as dist

__all__ = [
    "Likelihood",
    "Bernoulli",
    "Categorical",
    "HomoskedasticGaussian",
    "HeteroskedasticGaussian",
    "Poisson",
]

DATA_SITE = "likelihood.data"


def _as_tensor(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(np.asarray(value))


def _inv_softplus(y: np.ndarray) -> np.ndarray:
    """Inverse of ``softplus`` (``log(expm1(y))``), linear for large ``y``.

    ``expm1`` is only evaluated on clamped arguments so no overflow warnings
    leak out of the large-``y`` branch of ``np.where``.
    """
    safe = np.clip(y, 1e-12, 20.0)
    return np.where(y > 20.0, y, np.log(np.expm1(safe)))


def _batch_size(predictions: Tensor) -> int:
    """Size of the data batch, skipping any leading vectorized-sample axes.

    Under ``repro.nn.vectorized_samples`` the predictions carry
    ``sample_ndim()`` leading particle dimensions in front of the batch axis;
    ignoring them keeps the plate's ``dataset_size / batch_size`` rescaling
    identical to the per-particle looped execution.
    """
    sample_dims = F.sample_ndim()
    if predictions.ndim <= sample_dims:
        return 1
    return predictions.shape[sample_dims]


class Likelihood:
    """Base class; subclasses provide ``predictive_distribution`` and ``error``."""

    def __init__(self, dataset_size: int, event_dim: int = 0, name: str = "likelihood") -> None:
        self.dataset_size = int(dataset_size)
        self.event_dim = event_dim
        self.name = name

    @property
    def data_site(self) -> str:
        return f"{self.name}.data"

    # ----------------------------------------------------------- model pieces
    def predictive_distribution(self, predictions: Tensor) -> dist.Distribution:
        """The observation distribution given network outputs."""
        raise NotImplementedError

    def var_dist(self) -> dict:
        """Optional latent variables of the likelihood itself (name -> prior)."""
        return {}

    def __call__(self, predictions: Tensor, obs: Optional[Tensor] = None) -> Tensor:
        """Sample/score the data site with correct mini-batch scaling."""
        predictions = _as_tensor(predictions)
        batch_size = _batch_size(predictions)
        predictive = self.predictive_distribution(predictions)
        with ppl.plate(f"{self.name}.plate", size=self.dataset_size, subsample_size=batch_size):
            return ppl.sample(self.data_site, predictive,
                              obs=None if obs is None else _as_tensor(obs))

    forward = __call__

    # ------------------------------------------------------------- evaluation
    def log_likelihood(self, aggregated_predictions: Tensor, targets: Tensor,
                       reduction: str = "mean") -> float:
        """Log density of ``targets`` under the aggregated predictive distribution."""
        predictive = self.predictive_distribution(_as_tensor(aggregated_predictions))
        log_probs = predictive.log_prob(_as_tensor(targets))
        if self.event_dim == 0 and log_probs.ndim > 1:
            log_probs = log_probs.sum(axis=tuple(range(1, log_probs.ndim)))
        values = log_probs.data
        return float(values.mean() if reduction == "mean" else values.sum())

    def error(self, aggregated_predictions: Tensor, targets: Tensor,
              reduction: str = "mean") -> float:
        """Task-appropriate error measure (classification error / squared error)."""
        raise NotImplementedError

    def aggregate_predictions(self, predictions: Tensor) -> Tensor:
        """Combine a stack of per-sample predictions (leading axis = samples)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(dataset_size={self.dataset_size})"


class _Discrete(Likelihood):
    """Shared logic for classification likelihoods on logit predictions."""

    def __init__(self, dataset_size: int, logit_predictions: bool = True,
                 name: str = "likelihood") -> None:
        super().__init__(dataset_size, event_dim=0, name=name)
        self.logit_predictions = logit_predictions

    def probs(self, predictions: Tensor) -> Tensor:
        raise NotImplementedError

    def aggregate_predictions(self, predictions: Tensor) -> Tensor:
        """Average predicted probabilities across samples; return as the same
        parameterization (logits or probs) the likelihood expects."""
        probs = self.probs(predictions)
        mean_probs = probs.mean(axis=0)
        if not self.logit_predictions:
            return mean_probs
        clipped = np.clip(mean_probs.data, 1e-12, 1.0)
        return Tensor(np.log(clipped))


class Bernoulli(_Discrete):
    """Binary observations; predictions are logits (default) or probabilities."""

    def predictive_distribution(self, predictions: Tensor) -> dist.Distribution:
        if self.logit_predictions:
            return dist.Bernoulli(logits=predictions)
        return dist.Bernoulli(probs=predictions)

    def probs(self, predictions: Tensor) -> Tensor:
        return predictions.sigmoid() if self.logit_predictions else predictions

    def error(self, aggregated_predictions: Tensor, targets: Tensor,
              reduction: str = "mean") -> float:
        probs = self.probs(_as_tensor(aggregated_predictions)).data
        predicted = (probs > 0.5).astype(np.float64)
        errors = (predicted != np.asarray(_as_tensor(targets).data)).astype(np.float64)
        return float(errors.mean() if reduction == "mean" else errors.sum())


class Categorical(_Discrete):
    """Multi-class observations; predictions are logits (default) or probabilities."""

    def predictive_distribution(self, predictions: Tensor) -> dist.Distribution:
        if self.logit_predictions:
            return dist.Categorical(logits=predictions)
        return dist.Categorical(probs=predictions)

    def probs(self, predictions: Tensor) -> Tensor:
        return F.softmax(predictions, axis=-1) if self.logit_predictions else predictions

    def error(self, aggregated_predictions: Tensor, targets: Tensor,
              reduction: str = "mean") -> float:
        probs = self.probs(_as_tensor(aggregated_predictions)).data
        predicted = probs.argmax(axis=-1)
        errors = (predicted != np.asarray(_as_tensor(targets).data).astype(np.int64)).astype(np.float64)
        return float(errors.mean() if reduction == "mean" else errors.sum())


class Gaussian(Likelihood):
    """Base class for Gaussian likelihoods: squared error, mean/stddev aggregation."""

    def error(self, aggregated_predictions: Tensor, targets: Tensor,
              reduction: str = "mean") -> float:
        mean = self._predictive_mean(_as_tensor(aggregated_predictions)).data
        sq = (mean - np.asarray(_as_tensor(targets).data)) ** 2
        sq = sq.reshape(sq.shape[0], -1).sum(axis=-1)
        return float(sq.mean() if reduction == "mean" else sq.sum())

    def _predictive_mean(self, aggregated_predictions: Tensor) -> Tensor:
        raise NotImplementedError


class HomoskedasticGaussian(Gaussian):
    """Gaussian observations with a single shared scale.

    ``scale`` may be a float (fixed observation noise), or a
    :class:`repro.ppl.distributions.Distribution` prior in which case the
    scale becomes a latent variable named ``"<name>.scale"`` that can be
    inferred alongside the network weights (the optional likelihood guide of
    ``VariationalBNN``).
    """

    def __init__(self, dataset_size: int, scale: Union[float, dist.Distribution] = 1.0,
                 name: str = "likelihood") -> None:
        super().__init__(dataset_size, event_dim=0, name=name)
        self.scale = scale

    @property
    def scale_is_latent(self) -> bool:
        return isinstance(self.scale, dist.Distribution)

    def _current_scale(self) -> Tensor:
        if self.scale_is_latent:
            # name-scoped on purpose: several likelihoods may coexist in one model
            return ppl.sample(f"{self.name}.scale", self.scale)  # repro: noqa[R002]
        return _as_tensor(self.scale)

    def predictive_distribution(self, predictions: Tensor) -> dist.Distribution:
        scale = self.scale.mean if self.scale_is_latent else _as_tensor(self.scale)
        return dist.Normal(predictions, scale)

    def __call__(self, predictions: Tensor, obs: Optional[Tensor] = None) -> Tensor:
        predictions = _as_tensor(predictions)
        batch_size = _batch_size(predictions)
        scale = self._current_scale()
        if F.sample_ndim() and isinstance(scale, Tensor) and 0 < scale.ndim < predictions.ndim:
            # a latent scale replayed under vectorized particles carries one
            # value per particle, (K,); align it with the (K, N, ...) leading
            # axes so each particle's scale scores only its own predictions
            scale = scale.reshape(scale.shape + (1,) * (predictions.ndim - scale.ndim))
        with ppl.plate(f"{self.name}.plate", size=self.dataset_size, subsample_size=batch_size):
            return ppl.sample(self.data_site, dist.Normal(predictions, scale),
                              obs=None if obs is None else _as_tensor(obs))

    forward = __call__

    def aggregate_predictions(self, predictions: Tensor) -> Tensor:
        return predictions.mean(axis=0)

    def predictive_stddev(self, predictions: Tensor) -> np.ndarray:
        """Total predictive standard deviation: weight variance + observation noise."""
        scale = self.scale.mean.data if self.scale_is_latent else np.asarray(self.scale)
        epistemic_var = predictions.data.var(axis=0)
        return np.sqrt(epistemic_var + scale ** 2)

    def _predictive_mean(self, aggregated_predictions: Tensor) -> Tensor:
        return aggregated_predictions


class HeteroskedasticGaussian(Gaussian):
    """Gaussian observations with per-input predicted scales.

    Predictions are ``2d``-dimensional: the first half encodes the mean, the
    second half the (softplus-transformed) standard deviation.  Aggregation
    weighs per-sample means by their predicted precision, as in the paper.
    """

    def __init__(self, dataset_size: int, positive_scale: bool = False,
                 name: str = "likelihood") -> None:
        super().__init__(dataset_size, event_dim=0, name=name)
        self.positive_scale = positive_scale

    def _split(self, predictions: Tensor) -> Tuple[Tensor, Tensor]:
        d = predictions.shape[-1]
        if d % 2 != 0:
            raise ValueError("HeteroskedasticGaussian expects an even final dimension")
        mean = predictions[..., : d // 2]
        raw_scale = predictions[..., d // 2:]
        scale = raw_scale if self.positive_scale else raw_scale.softplus() + 1e-6
        return mean, scale

    def predictive_distribution(self, predictions: Tensor) -> dist.Distribution:
        mean, scale = self._split(predictions)
        return dist.Normal(mean, scale)

    def aggregate_predictions(self, predictions: Tensor) -> Tensor:
        """Precision-weighted mean and combined scale across posterior samples."""
        mean, scale = self._split(predictions)
        precision = 1.0 / (scale ** 2)
        total_precision = precision.sum(axis=0)
        agg_mean = (mean * precision).sum(axis=0) / total_precision
        agg_var = (scale ** 2 + mean ** 2).mean(axis=0) - agg_mean ** 2
        agg_scale = Tensor(np.sqrt(np.clip(agg_var.data, 1e-12, None)))
        if self.positive_scale:
            return Tensor(np.concatenate([agg_mean.data, agg_scale.data], axis=-1))
        return Tensor(np.concatenate([agg_mean.data, _inv_softplus(agg_scale.data)], axis=-1))

    def _predictive_mean(self, aggregated_predictions: Tensor) -> Tensor:
        mean, _ = self._split(aggregated_predictions)
        return mean


class Poisson(Likelihood):
    """Count observations with rate ``softplus(prediction)`` — the "new likelihood
    based on an existing distribution" the paper mentions as an easy extension."""

    def __init__(self, dataset_size: int, name: str = "likelihood") -> None:
        super().__init__(dataset_size, event_dim=0, name=name)

    _RATE_EPS = 1e-6

    def predictive_distribution(self, predictions: Tensor) -> dist.Distribution:
        return dist.Poisson(predictions.softplus() + self._RATE_EPS)

    def aggregate_predictions(self, predictions: Tensor) -> Tensor:
        """Average the posterior-predictive *rates*, not the raw outputs.

        Averaging raw outputs and then applying the softplus link would
        understate the mean rate (Jensen's inequality); instead the per-sample
        rates are averaged and mapped back through the inverse link, so that
        ``predictive_distribution(aggregate_predictions(p))`` has exactly the
        mean of the per-sample predictive rates.
        """
        rates = predictions.softplus() + self._RATE_EPS
        mean_rate = rates.mean(axis=0)
        return Tensor(_inv_softplus(mean_rate.data - self._RATE_EPS))

    def error(self, aggregated_predictions: Tensor, targets: Tensor,
              reduction: str = "mean") -> float:
        rate = (_as_tensor(aggregated_predictions).softplus() + 1e-6).data
        sq = (rate - np.asarray(_as_tensor(targets).data)) ** 2
        sq = sq.reshape(sq.shape[0], -1).sum(axis=-1)
        return float(sq.mean() if reduction == "mean" else sq.sum())
