"""Variational guides with BNN-specific conveniences (``tyxe.guides``).

Extends the generic :class:`repro.ppl.infer.autoguide.AutoNormal` with the
features the paper highlights as essential for well-performing BNNs but
missing from Pyro's autoguides:

* initializing the means to the weights of a pre-trained network
  (:class:`PretrainedInitializer`),
* neural-network-style random initialization of the means
  (:func:`init_to_normal` with radford/xavier/kaiming scaling),
* freezing the means (``train_loc=False``) so only the variances are fit,
* clipping the posterior standard deviation (``max_guide_scale``), which the
  ResNet experiment uses to prevent underfitting.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..nn import init as nn_init
from ..nn.modules import Module
from ..nn.tensor import Tensor
from ..ppl import constraints
from ..ppl.infer.autoguide import (AutoDelta, AutoGuide, AutoLowRankMultivariateNormal,
                                   AutoNormal as _PPLAutoNormal, init_to_median,
                                   init_to_sample, init_to_value)
from ..ppl.params import get_param_store
from ..ppl.rng import get_rng

__all__ = [
    "AutoNormal",
    "AutoDelta",
    "AutoLowRankMultivariateNormal",
    "PretrainedInitializer",
    "init_to_normal",
    "init_to_constant",
    "init_to_sample",
    "init_to_median",
    "init_to_value",
]


class PretrainedInitializer:
    """Initialize guide means to the values of a pre-trained network.

    ``PretrainedInitializer.from_net(resnet)`` records a copy of every
    parameter of ``resnet`` keyed by the same site names the BNN classes use
    (the dotted parameter names), so passing it as ``init_loc_fn`` reproduces
    the paper's Listing 3 workflow of converting a pre-trained network.
    """

    def __init__(self, values: Dict[str, np.ndarray], prefix: str = "",
                 fallback: Callable = init_to_sample) -> None:
        self.values = {f"{prefix}{k}": np.array(v, copy=True) for k, v in values.items()}
        self.fallback = fallback

    @classmethod
    def from_net(cls, net: Module, prefix: str = "", fallback: Callable = init_to_sample
                 ) -> "PretrainedInitializer":
        values = {name: p.data.copy() for name, p in net.named_parameters()}
        return cls(values, prefix=prefix, fallback=fallback)

    def __call__(self, site: Dict) -> np.ndarray:
        name = site["name"]
        if name in self.values:
            return self.values[name].copy()
        return self.fallback(site)

    def __contains__(self, name: str) -> bool:
        return name in self.values


def init_to_normal(method: str = "radford", gain: float = 1.0,
                   fallback: Callable = init_to_sample) -> Callable:
    """Initialize means like a freshly initialized deterministic network.

    The standard deviation of the initialization follows the layer fan-in
    using the chosen convention (``radford``/``xavier``/``kaiming``).
    """

    def _init(site: Dict) -> np.ndarray:
        shape = site["value"].shape
        if len(shape) < 2:
            return np.zeros(shape)
        scale = gain * nn_init.fan_in_scale(shape, method)
        return get_rng().normal(0.0, scale, size=shape)

    return _init


def init_to_constant(value: float) -> Callable:
    """Initialize every mean to a constant (mostly useful in tests)."""

    def _init(site: Dict) -> np.ndarray:
        return np.full(site["value"].shape, value, dtype=np.float64)

    return _init


class AutoNormal(_PPLAutoNormal):
    """Factorized Gaussian guide with TyXe's extra knobs.

    Parameters
    ----------
    train_loc:
        When ``False`` the means are frozen at their initialization (the
        "MF (sd only)" row of Table 1, where means stay at the pre-trained
        weights and only variances are learned).
    max_guide_scale:
        Upper bound on the posterior standard deviation, enforced through an
        interval constraint on the scale parameters (0.1 and 0.3 in the
        paper's ResNet and GNN experiments respectively).
    init_scale:
        Initial posterior standard deviation (1e-4 in the paper's ResNet
        experiment).
    """

    def __init__(self, model: Callable, init_loc_fn: Callable = init_to_sample,
                 init_scale: float = 1e-4, train_loc: bool = True,
                 max_guide_scale: Optional[float] = None, prefix: str = "auto") -> None:
        super().__init__(model, init_loc_fn=init_loc_fn, init_scale=init_scale, prefix=prefix)
        self.train_loc = train_loc
        self.max_guide_scale = max_guide_scale

    def _loc_scale(self, name: str, site: Dict) -> Tuple[Tensor, Tensor]:
        from ..ppl.primitives import param

        store = get_param_store()
        existing = self._stored_params(self._site_param_name(name, "loc"),
                                       self._site_param_name(name, "scale"))
        if existing is not None:
            return existing
        init_loc = np.asarray(self.init_loc_fn(site), dtype=np.float64)
        shape = init_loc.shape
        loc_name = self._site_param_name(name, "loc")
        scale_name = self._site_param_name(name, "scale")
        loc = param(loc_name, init_loc)
        if not self.train_loc:
            store.get_unconstrained(loc_name).requires_grad = False
        scale_constraint = (constraints.interval(0.0, self.max_guide_scale)
                            if self.max_guide_scale is not None else constraints.positive)
        init_scale = min(self.init_scale, 0.99 * self.max_guide_scale) if self.max_guide_scale else self.init_scale
        scale = param(scale_name, np.full(shape, init_scale, dtype=np.float64),
                      constraint=scale_constraint)
        return loc, scale

    def get_distribution(self, name: str):
        from ..ppl.distributions import Normal

        store = get_param_store()
        loc = store.get_param(self._site_param_name(name, "loc"))
        scale = store.get_param(self._site_param_name(name, "scale"))
        return Normal(loc, scale).to_event(loc.ndim)
