"""BNN-specific effect handlers (``tyxe.poutine``).

Three program transformations described in the paper:

* :func:`local_reparameterization` — for factorized Gaussian weight
  posteriors, replaces sampling of the weight matrix shared across a
  mini-batch with sampling of the per-datapoint *pre-activations*
  (Kingma et al., 2015), reducing gradient variance.
* :func:`flipout` — decorrelates per-datapoint weight perturbations with
  rank-one sign matrices (Wen et al., 2018).
* :func:`selective_mask` — masks out the log-likelihood contribution of
  unlabelled data, used in the semi-supervised GNN example (Listing 4).

The reparameterization messengers sit on *both* effect systems: they are
``repro.ppl`` messengers (to observe which tensors were produced by which
sample sites, exactly as TyXe's messengers maintain references from samples
to their distributions) and handlers of the effectful linear ops in
``repro.nn.functional`` (to change how ``linear``/``conv2d`` are computed at
runtime, TyXe's monkey-patched ``F.linear``).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Iterable, Optional, Tuple, Union

import numpy as np

from ..nn import functional as F
from ..nn.tensor import Tensor
from ..ppl import distributions as dist
from ..ppl.poutine.runtime import Message, Messenger
from ..ppl.rng import get_rng

__all__ = [
    "LocalReparameterizationMessenger",
    "FlipoutMessenger",
    "SelectiveMaskMessenger",
    "MCDropoutMessenger",
    "local_reparameterization",
    "flipout",
    "selective_mask",
    "mc_dropout",
]


def _unwrap(fn: dist.Distribution) -> dist.Distribution:
    while isinstance(fn, dist.Independent):
        fn = fn.base_dist
    return fn


class _ReparameterizationMessenger(Messenger):
    """Base class tracking which tensors came from factorized-Gaussian sites."""

    _MAX_TRACKED = 512  # bound memory when the handler stays active for a whole fit

    def __init__(self) -> None:
        self._distributions: "OrderedDict[int, dist.Distribution]" = OrderedDict()

    # -- ppl messenger side: remember sample -> distribution associations ----
    def postprocess_message(self, msg: Message) -> None:
        if msg["type"] != "sample" or msg["is_observed"]:
            return
        value = msg["value"]
        if not isinstance(value, Tensor):
            return
        base = _unwrap(msg["fn"])
        if isinstance(base, (dist.Normal, dist.Delta)):
            # keep a strong reference to the sampled tensor so its id() cannot
            # be recycled while the association is alive
            self._distributions.setdefault(id(value), (value, base))
            while len(self._distributions) > self._MAX_TRACKED:
                self._distributions.popitem(last=False)

    def __enter__(self):
        F.register_linear_op_handler(self)
        return super().__enter__()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        F.unregister_linear_op_handler(self)
        super().__exit__(exc_type, exc_value, traceback)

    # -- nn functional side: intercept linear ops -----------------------------
    def _lookup(self, value: Optional[Tensor]) -> Optional[dist.Distribution]:
        if value is None:
            return None
        entry = self._distributions.get(id(value))
        if entry is None or entry[0] is not value:
            return None
        return entry[1]

    def process_linear_op(self, op: str, x: Tensor, weight: Tensor,
                          bias: Optional[Tensor], default_fn: Callable, **kwargs):
        weight_dist = self._lookup(weight)
        if not isinstance(weight_dist, dist.Normal):
            return None
        bias_dist = self._lookup(bias)
        return self._reparameterize(op, x, weight, weight_dist, bias, bias_dist,
                                    default_fn, **kwargs)

    def _reparameterize(self, op: str, x: Tensor, weight: Tensor, weight_dist: dist.Normal,
                        bias: Optional[Tensor], bias_dist: Optional[dist.Distribution],
                        default_fn: Callable, **kwargs) -> Optional[Tensor]:
        raise NotImplementedError


class LocalReparameterizationMessenger(_ReparameterizationMessenger):
    """Sample pre-activations instead of weights (Kingma et al., 2015).

    For ``y = x W^T + b`` with ``W ~ N(mu, sigma^2)`` factorized, the output
    is Gaussian with mean ``x mu^T + E[b]`` and variance ``x^2 (sigma^2)^T +
    Var[b]``; sampling it directly gives lower-variance gradients and
    per-datapoint implicit weight samples.
    """

    def _reparameterize(self, op: str, x: Tensor, weight: Tensor, weight_dist: dist.Normal,
                        bias: Optional[Tensor], bias_dist: Optional[dist.Distribution],
                        default_fn: Callable, **kwargs) -> Tensor:
        mu_w, sigma_w = weight_dist.loc, weight_dist.scale
        if isinstance(bias_dist, dist.Normal):
            mu_b: Optional[Tensor] = bias_dist.loc
            var_b: Optional[Tensor] = bias_dist.scale ** 2
        else:
            mu_b, var_b = bias, None

        if op == "linear":
            mean = F._linear_default(x, mu_w, mu_b)
            var = F._linear_default(x ** 2, sigma_w ** 2, var_b)
        elif op == "conv2d":
            mean = F._conv2d_default(x, mu_w, mu_b, **kwargs)
            var = F._conv2d_default(x ** 2, sigma_w ** 2, var_b, **kwargs)
        else:  # pragma: no cover - only linear/conv are registered as effectful
            return None
        std = (var + 1e-12).sqrt()
        eps = Tensor(get_rng().standard_normal(mean.shape))
        return mean + std * eps


class FlipoutMessenger(_ReparameterizationMessenger):
    """Pseudo-independent per-datapoint weight perturbations (Wen et al., 2018).

    The sampled weight is decomposed as ``W = mu + dW``; each datapoint's
    perturbation is decorrelated by elementwise random sign vectors
    ``r_out (x r_in) dW^T``, which preserves the marginal distribution for
    symmetric perturbations while reducing mini-batch gradient correlation.
    """

    def _reparameterize(self, op: str, x: Tensor, weight: Tensor, weight_dist: dist.Normal,
                        bias: Optional[Tensor], bias_dist: Optional[dist.Distribution],
                        default_fn: Callable, **kwargs) -> Tensor:
        mu_w = weight_dist.loc
        delta_w = weight - mu_w
        rng = get_rng()
        if op == "linear":
            batch_shape = x.shape[:-1]
            sign_in = Tensor(rng.choice([-1.0, 1.0], size=batch_shape + (x.shape[-1],)))
            sign_out = Tensor(rng.choice([-1.0, 1.0], size=batch_shape + (mu_w.shape[0],)))
            mean = F._linear_default(x, mu_w, bias)
            perturbation = F._linear_default(x * sign_in, delta_w, None) * sign_out
            return mean + perturbation
        if op == "conv2d":
            n, c = x.shape[0], x.shape[1]
            out_c = mu_w.shape[0]
            sign_in = Tensor(rng.choice([-1.0, 1.0], size=(n, c, 1, 1)))
            sign_out = Tensor(rng.choice([-1.0, 1.0], size=(n, out_c, 1, 1)))
            mean = F._conv2d_default(x, mu_w, bias, **kwargs)
            perturbation = F._conv2d_default(x * sign_in, delta_w, None, **kwargs) * sign_out
            return mean + perturbation
        return None  # pragma: no cover


class SelectiveMaskMessenger(Messenger):
    """Apply a log-density mask only to the named sites.

    The paper builds this from Pyro's ``block`` + ``mask`` poutines; here it
    is a single messenger: sites listed in ``expose`` (or all sites not in
    ``hide`` when ``expose`` is empty) get their log-density multiplied by
    ``mask``.  The GNN example uses ``expose=["likelihood.data"]`` so that
    only labelled nodes contribute to the log-likelihood.
    """

    def __init__(self, mask: Union[np.ndarray, Tensor], expose: Iterable[str] = (),
                 hide: Iterable[str] = ()) -> None:
        self.mask = mask.data if isinstance(mask, Tensor) else np.asarray(mask)
        self.expose = set(expose)
        self.hide = set(hide)

    def _applies_to(self, name: str) -> bool:
        if self.expose:
            return name in self.expose
        return name not in self.hide

    def process_message(self, msg: Message) -> None:
        if msg["type"] != "sample" or not self._applies_to(msg["name"]):
            return
        if msg["mask"] is None:
            msg["mask"] = self.mask
        else:
            msg["mask"] = np.asarray(msg["mask"]) * self.mask


class MCDropoutMessenger(Messenger):
    """Monte Carlo dropout as an effect handler (paper Appendix D).

    Keeps dropout *active* regardless of the module's train/eval mode, so a
    deterministically trained network can produce approximate posterior
    samples at test time (Gal & Ghahramani, 2016).  With ``fix_mask=True`` a
    single dropout mask per tensor shape is drawn on first use and reused for
    every subsequent call — the "fix a single sample across batches of data"
    behaviour the paper describes as useful for visualization.
    """

    def __init__(self, p: Optional[float] = None, fix_mask: bool = False) -> None:
        self.p = p
        self.fix_mask = fix_mask
        self._masks: dict = {}

    def __enter__(self):
        F.register_dropout_handler(self)
        return super().__enter__()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        F.unregister_dropout_handler(self)
        super().__exit__(exc_type, exc_value, traceback)

    def reset_masks(self) -> None:
        """Drop the cached masks so the next forward pass draws fresh ones."""
        self._masks.clear()

    def process_dropout(self, x: Tensor, p: float, training: bool, default_fn: Callable):
        p = self.p if self.p is not None else p
        if p <= 0.0:
            return x
        if self.fix_mask:
            mask = self._masks.get(x.shape)
            if mask is None:
                mask = (get_rng().random(x.shape) >= p) / (1.0 - p)
                self._masks[x.shape] = mask
            return x * Tensor(mask)
        # force dropout on, even if the module is in eval mode
        mask = (get_rng().random(x.shape) >= p) / (1.0 - p)
        return x * Tensor(mask)


def local_reparameterization() -> LocalReparameterizationMessenger:
    """Context manager enabling local reparameterization (paper Listing 2)."""
    return LocalReparameterizationMessenger()


def flipout() -> FlipoutMessenger:
    """Context manager enabling flipout gradient-variance reduction."""
    return FlipoutMessenger()


def selective_mask(mask: Union[np.ndarray, Tensor], expose: Iterable[str] = (),
                   hide: Iterable[str] = ()) -> SelectiveMaskMessenger:
    """Context manager masking the log-density of selected sites (paper Listing 4)."""
    return SelectiveMaskMessenger(mask, expose=expose, hide=hide)


def mc_dropout(p: Optional[float] = None, fix_mask: bool = False) -> MCDropoutMessenger:
    """Context manager enabling Monte Carlo dropout at prediction time."""
    return MCDropoutMessenger(p=p, fix_mask=fix_mask)
