"""``repro.core`` — the reproduction of TyXe itself.

The public API mirrors the paper's ``tyxe`` package::

    import repro.core as tyxe

    bnn = tyxe.VariationalBNN(net, prior, likelihood, guide_factory)
    with tyxe.poutine.local_reparameterization():
        bnn.fit(loader, optim, num_epochs)
    predictions = bnn.predict(test_inputs, num_predictions=8)
"""

from . import guides
from . import likelihoods
from . import poutine
from . import priors
from . import util
from . import vcl
from .bnn import GuidedBNN, MCMC_BNN, PytorchBNN, VariationalBNN

__all__ = [
    "guides",
    "likelihoods",
    "poutine",
    "priors",
    "util",
    "vcl",
    "GuidedBNN",
    "PytorchBNN",
    "VariationalBNN",
    "MCMC_BNN",
]
