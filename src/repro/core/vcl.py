"""Variational continual learning helpers (paper Section 5, Listing 6).

The core mechanism is tiny because of the prior/guide separation: after
fitting a task, the guide's per-site posterior distributions (detached from
the autograd graph) become the prior for the next task via
``bnn.update_prior(DictPrior(posteriors))``.  :func:`update_prior_to_posterior`
packages the three lines of Listing 6; :class:`VCLState` adds bookkeeping for
multi-task experiments (accuracy matrices, per-task heads are left to the
experiment harness, matching the paper which does not use coresets).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..ppl import distributions as dist
from .bnn import VariationalBNN
from .priors import DictPrior
from .util import pyro_sample_sites

__all__ = ["update_prior_to_posterior", "VCLState"]


def update_prior_to_posterior(bnn: VariationalBNN) -> Dict[str, dist.Distribution]:
    """Set the BNN's prior to its current (detached) variational posterior.

    Returns the dictionary of posterior distributions that became the new
    prior, which callers may want to store per task.
    """
    bayesian_weights = pyro_sample_sites(bnn)
    posteriors = bnn.net_guide.get_detached_distributions(bayesian_weights)
    bnn.update_prior(DictPrior(posteriors))
    return posteriors


class VCLState:
    """Bookkeeping for a sequential-task experiment.

    Tracks, after training on each task, the accuracy on every task seen so
    far — the quantity plotted in the paper's Figure 4 ("mean accuracy on
    tasks seen so far").
    """

    def __init__(self, num_tasks: int) -> None:
        self.num_tasks = num_tasks
        # accuracy_matrix[i, j] = accuracy on task j after training tasks 0..i
        self.accuracy_matrix = np.full((num_tasks, num_tasks), np.nan)

    def record(self, after_task: int, task_accuracies: Sequence[float]) -> None:
        for j, acc in enumerate(task_accuracies):
            self.accuracy_matrix[after_task, j] = acc

    def mean_accuracy(self, after_task: int) -> float:
        """Mean accuracy over tasks 0..after_task after training on after_task."""
        row = self.accuracy_matrix[after_task, : after_task + 1]
        return float(np.nanmean(row))

    def mean_accuracies(self) -> List[float]:
        """The Figure-4 curve: mean accuracy over seen tasks, per training step."""
        return [self.mean_accuracy(i) for i in range(self.num_tasks)
                if not np.all(np.isnan(self.accuracy_matrix[i, : i + 1]))]

    def forgetting(self) -> float:
        """Average drop from the best accuracy ever achieved on each task."""
        drops = []
        for j in range(self.num_tasks):
            column = self.accuracy_matrix[:, j]
            seen = column[~np.isnan(column)]
            if len(seen) > 1:
                drops.append(float(np.max(seen) - seen[-1]))
        return float(np.mean(drops)) if drops else 0.0
