"""Weight-space priors for Bayesian neural networks (``tyxe.priors``).

A :class:`Prior` walks the ``named_parameters()`` of a wrapped network and
decides, per parameter, whether it receives a Bayesian treatment (becoming a
``sample`` site with some prior distribution) or stays a deterministic
parameter fit by maximum likelihood.  The hide/expose interface follows the
paper exactly: parameters can be excluded or included by module instance,
module type, parameter name (e.g. ``"bias"``) or full dotted name.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Type

import numpy as np

from ..nn import init as nn_init
from ..nn.modules import Module
from ..nn.tensor import Parameter, Tensor
from ..ppl import distributions as dist

__all__ = ["Prior", "IIDPrior", "LayerwiseNormalPrior", "DictPrior", "LambdaPrior"]


class Prior:
    """Base class implementing the hide/expose logic shared by all priors.

    Parameters
    ----------
    expose_all:
        Give every parameter a Bayesian treatment unless hidden (default).
    hide_all:
        Keep every parameter deterministic unless exposed.
    expose / hide:
        Full dotted parameter names (e.g. ``"fc.weight"``).
    expose_modules / hide_modules:
        Module *instances* whose parameters should be included/excluded.
    expose_module_types / hide_module_types:
        Module classes, e.g. ``hide_module_types=[nn.BatchNorm2d]``.
    expose_parameters / hide_parameters:
        Leaf attribute names, e.g. ``expose_parameters=["weight"]``.
    """

    def __init__(self,
                 expose_all: bool = True,
                 hide_all: bool = False,
                 expose: Optional[Sequence[str]] = None,
                 hide: Optional[Sequence[str]] = None,
                 expose_modules: Optional[Sequence[Module]] = None,
                 hide_modules: Optional[Sequence[Module]] = None,
                 expose_module_types: Optional[Sequence[Type[Module]]] = None,
                 hide_module_types: Optional[Sequence[Type[Module]]] = None,
                 expose_parameters: Optional[Sequence[str]] = None,
                 hide_parameters: Optional[Sequence[str]] = None) -> None:
        if expose_all and hide_all:
            raise ValueError("expose_all and hide_all cannot both be True")
        self.expose_all = expose_all
        self.hide_all = hide_all
        self.expose = set(expose or [])
        self.hide = set(hide or [])
        self.expose_modules = list(expose_modules or [])
        self.hide_modules = list(hide_modules or [])
        self.expose_module_types = tuple(expose_module_types or ())
        self.hide_module_types = tuple(hide_module_types or ())
        self.expose_parameters = set(expose_parameters or [])
        self.hide_parameters = set(hide_parameters or [])

    # ----------------------------------------------------------- expose logic
    def expose_parameter(self, module: Module, module_name: str,
                         param_name: str, full_name: str) -> bool:
        """Decide whether the parameter at ``full_name`` is treated Bayesianly."""
        # explicit hides take precedence
        if full_name in self.hide:
            return False
        if param_name in self.hide_parameters:
            return False
        if self.hide_module_types and isinstance(module, self.hide_module_types):
            return False
        if any(module is m for m in self.hide_modules):
            return False
        # explicit exposes
        if full_name in self.expose:
            return True
        if param_name in self.expose_parameters:
            return True
        if self.expose_module_types and isinstance(module, self.expose_module_types):
            return True
        if any(module is m for m in self.expose_modules):
            return True
        # defaults
        if self.hide_all:
            return False
        return self.expose_all

    # ------------------------------------------------------------ prior dists
    def prior_distribution(self, full_name: str, module: Module,
                           parameter: Parameter) -> dist.Distribution:
        """Return the prior distribution over the given parameter (event-shaped)."""
        raise NotImplementedError

    def get_distributions(self, net: Module) -> "OrderedDict[str, dist.Distribution]":
        """Map every exposed parameter name of ``net`` to its prior distribution."""
        out: "OrderedDict[str, dist.Distribution]" = OrderedDict()
        for module_name, module in net.named_modules():
            for param_name, parameter in module._parameters.items():
                if parameter is None or not isinstance(parameter, Parameter):
                    continue
                full_name = f"{module_name}.{param_name}" if module_name else param_name
                if self.expose_parameter(module, module_name, param_name, full_name):
                    out[full_name] = self.prior_distribution(full_name, module, parameter)
        return out

    def hidden_parameters(self, net: Module) -> List[Tuple[str, Parameter]]:
        """Parameters of ``net`` that stay deterministic under this prior."""
        exposed = set(self.get_distributions(net))
        return [(name, p) for name, p in net.named_parameters() if name not in exposed]

    def update(self, distributions: Dict[str, dist.Distribution]) -> None:
        """Replace per-site distributions (used by variational continual learning)."""
        raise NotImplementedError(f"{type(self).__name__} does not support update();"
                                  " wrap the new distributions in a DictPrior instead")


class IIDPrior(Prior):
    """The same scalar base distribution applied i.i.d. to every exposed weight.

    ``IIDPrior(dist.Normal(0., 1.))`` is the standard-normal weight prior used
    throughout the paper's experiments.
    """

    def __init__(self, base_distribution: dist.Distribution, **expose_kwargs) -> None:
        super().__init__(**expose_kwargs)
        if base_distribution.batch_shape not in ((), (1,)):
            raise ValueError("IIDPrior expects a scalar base distribution")
        self.base_distribution = base_distribution

    def prior_distribution(self, full_name: str, module: Module,
                           parameter: Parameter) -> dist.Distribution:
        shape = parameter.shape
        return self.base_distribution.expand(shape).to_event(len(shape))


class LayerwiseNormalPrior(Prior):
    """Zero-mean Gaussian prior whose variance depends on the layer fan-in.

    ``method`` selects the convention: ``"radford"`` (1/fan_in, Neal 1996),
    ``"xavier"`` (2/(fan_in+fan_out), Glorot & Bengio 2010) or ``"kaiming"``
    (2/fan_in, He et al. 2015).  Bias vectors receive a unit-variance prior.
    """

    METHODS = ("radford", "xavier", "kaiming")

    def __init__(self, method: str = "radford", **expose_kwargs) -> None:
        super().__init__(**expose_kwargs)
        if method not in self.METHODS:
            raise ValueError(f"method must be one of {self.METHODS}, got {method!r}")
        self.method = method

    def prior_distribution(self, full_name: str, module: Module,
                           parameter: Parameter) -> dist.Distribution:
        shape = parameter.shape
        if len(shape) <= 1:
            scale = 1.0
        else:
            scale = nn_init.fan_in_scale(shape, self.method)
        return dist.Normal(np.zeros(shape), np.full(shape, scale)).to_event(len(shape))


class DictPrior(Prior):
    """Explicit per-parameter distributions, e.g. posteriors from a previous task.

    Only parameters present in the dictionary are exposed; the distributions
    are used verbatim (they must already have the parameter's event shape).
    """

    def __init__(self, distributions: Dict[str, dist.Distribution], **expose_kwargs) -> None:
        expose_kwargs.setdefault("expose_all", True)
        super().__init__(**expose_kwargs)
        self.distributions = OrderedDict(distributions)

    def expose_parameter(self, module: Module, module_name: str,
                         param_name: str, full_name: str) -> bool:
        if full_name not in self.distributions:
            return False
        return super().expose_parameter(module, module_name, param_name, full_name)

    def prior_distribution(self, full_name: str, module: Module,
                           parameter: Parameter) -> dist.Distribution:
        return self.distributions[full_name]

    def update(self, distributions: Dict[str, dist.Distribution]) -> None:
        self.distributions.update(distributions)


class LambdaPrior(Prior):
    """Fully custom priors: a callable ``(full_name, module, parameter) -> Distribution``."""

    def __init__(self, fn: Callable[[str, Module, Parameter], dist.Distribution],
                 **expose_kwargs) -> None:
        super().__init__(**expose_kwargs)
        self.fn = fn

    def prior_distribution(self, full_name: str, module: Module,
                           parameter: Parameter) -> dist.Distribution:
        return self.fn(full_name, module, parameter)
