"""Graph container for graph neural networks (the DGL substitute).

Stores the symmetric-normalized adjacency matrix with self loops,
``A_hat = D^{-1/2} (A + I) D^{-1/2}``, which is all a graph-convolutional
layer needs for message passing, plus a ``ndata`` dict mirroring DGL's node
data storage.  Graphs in the experiments have a few hundred nodes, so a dense
matrix is both simple and fast (a single BLAS matmul per propagation).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import networkx as nx
import numpy as np

from ..nn.tensor import Tensor

__all__ = ["Graph", "from_networkx", "from_edges"]


class Graph:
    """An undirected graph with precomputed normalized adjacency."""

    def __init__(self, adjacency: np.ndarray, add_self_loops: bool = True) -> None:
        adjacency = np.asarray(adjacency, dtype=np.float64)
        if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
            raise ValueError("adjacency must be a square matrix")
        self.num_nodes = adjacency.shape[0]
        self.adjacency = adjacency
        a = adjacency + np.eye(self.num_nodes) if add_self_loops else adjacency.copy()
        degrees = a.sum(axis=1)
        d_inv_sqrt = np.where(degrees > 0, degrees ** -0.5, 0.0)
        self.norm_adjacency = (a * d_inv_sqrt[:, None]) * d_inv_sqrt[None, :]
        self.ndata: Dict[str, np.ndarray] = {}

    @property
    def num_edges(self) -> int:
        return int(np.count_nonzero(np.triu(self.adjacency, k=1)))

    def propagate(self, features: Tensor) -> Tensor:
        """One step of normalized message passing: ``A_hat @ features``."""
        features_t = features if isinstance(features, Tensor) else Tensor(np.asarray(features))
        return Tensor(self.norm_adjacency) @ features_t

    def neighbors(self, node: int) -> np.ndarray:
        return np.nonzero(self.adjacency[node])[0]

    def degree(self, node: int) -> int:
        return int(self.adjacency[node].sum())

    def to_networkx(self) -> nx.Graph:
        return nx.from_numpy_array(self.adjacency)

    def __repr__(self) -> str:
        return f"Graph(num_nodes={self.num_nodes}, num_edges={self.num_edges})"


def from_networkx(graph: nx.Graph) -> Graph:
    """Build a :class:`Graph` from a networkx graph (node order preserved)."""
    adjacency = nx.to_numpy_array(graph, dtype=np.float64)
    return Graph(adjacency)


def from_edges(num_nodes: int, edges: Iterable[Tuple[int, int]]) -> Graph:
    """Build a :class:`Graph` from an edge list over ``num_nodes`` nodes."""
    adjacency = np.zeros((num_nodes, num_nodes))
    for u, v in edges:
        adjacency[u, v] = 1.0
        adjacency[v, u] = 1.0
    return Graph(adjacency)
