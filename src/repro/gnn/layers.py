"""Graph-convolutional layers and models (the DGL-tutorial GCN).

``GCNLayer`` reproduces the paper's Listing 4: aggregate neighbour features
through the graph (``update_all`` with sum-reduce in DGL, one normalized
matmul here), then apply a shared linear map.  Because the linear map goes
through ``repro.nn.functional.linear`` it is automatically compatible with
local reparameterization and flipout, exactly as the paper notes.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..nn import functional as F
from ..nn.modules import Dropout, Linear, Module, ReLU
from ..nn.tensor import Tensor
from .graph import Graph

__all__ = ["GCNLayer", "GCN", "two_layer_gcn"]


class GCNLayer(Module):
    """Graph convolution: ``H' = A_hat H W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.linear = Linear(in_features, out_features, bias=bias, rng=rng)

    def forward(self, graph: Graph, x: Tensor) -> Tensor:
        h = graph.propagate(x)
        return self.linear(h)

    def __repr__(self) -> str:
        return f"GCNLayer(in={self.linear.in_features}, out={self.linear.out_features})"


class GCN(Module):
    """Multi-layer GCN with ReLU nonlinearities and optional dropout."""

    def __init__(self, in_features: int, hidden: Sequence[int], num_classes: int,
                 dropout: float = 0.0, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        dims = [in_features] + list(hidden) + [num_classes]
        for i, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            setattr(self, f"gcn_layer{i + 1}", GCNLayer(d_in, d_out, rng=rng))
        self.num_layers = len(dims) - 1
        self.dropout = Dropout(dropout) if dropout > 0 else None

    def forward(self, graph: Graph, x: Tensor) -> Tensor:
        h = x
        for i in range(self.num_layers):
            layer = getattr(self, f"gcn_layer{i + 1}")
            h = layer(graph, h)
            if i < self.num_layers - 1:
                h = F.relu(h)
                if self.dropout is not None:
                    h = self.dropout(h)
        return h


def two_layer_gcn(in_features: int, hidden: int, num_classes: int,
                  rng: Optional[np.random.Generator] = None) -> GCN:
    """The two-layer GCN from the DGL tutorial used in the paper's GNN example."""
    return GCN(in_features, [hidden], num_classes, rng=rng)
