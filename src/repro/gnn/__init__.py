"""``repro.gnn`` — graph neural-network substrate (DGL substitute)."""

from .graph import Graph, from_edges, from_networkx
from .layers import GCN, GCNLayer, two_layer_gcn

__all__ = ["Graph", "from_networkx", "from_edges", "GCNLayer", "GCN", "two_layer_gcn"]
