"""``repro.render`` — volumetric rendering substrate (Pytorch3D/NeRF substitute)."""

from .cameras import camera_rays, look_at_camera, ray_grid
from .nerf import NeRFField, PositionalEncoding, make_nerf_field
from .renderer import VolumetricRenderer, clear_geometry_cache
from .scenes import make_scene_dataset, train_test_angles, two_sphere_field

__all__ = [
    "camera_rays",
    "look_at_camera",
    "ray_grid",
    "PositionalEncoding",
    "NeRFField",
    "make_nerf_field",
    "VolumetricRenderer",
    "clear_geometry_cache",
    "two_sphere_field",
    "make_scene_dataset",
    "train_test_angles",
]
