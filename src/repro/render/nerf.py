"""Neural radiance field: positional encoding + MLP density/colour field.

This is the network that gets wrapped in :class:`repro.core.bnn.PytorchBNN`
in the Bayesian-NeRF experiment (paper Section 4.2).  It maps a batch of 3-D
points to ``(density, r, g, b)``; the volumetric renderer composites those
along camera rays.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import functional as F
from ..nn.modules import Linear, Module, ReLU, Sequential
from ..nn.tensor import Tensor, concatenate

__all__ = ["PositionalEncoding", "NeRFField", "make_nerf_field"]


class PositionalEncoding(Module):
    """Fourier-feature encoding ``[sin(2^k pi x), cos(2^k pi x)]_k`` of 3-D points."""

    def __init__(self, num_frequencies: int = 4, include_input: bool = True) -> None:
        super().__init__()
        self.num_frequencies = num_frequencies
        self.include_input = include_input
        self.frequencies = 2.0 ** np.arange(num_frequencies) * np.pi

    @property
    def output_dim(self) -> int:
        return 3 * (2 * self.num_frequencies + (1 if self.include_input else 0))

    def forward(self, points: Tensor) -> Tensor:
        parts = [points] if self.include_input else []
        for freq in self.frequencies:
            scaled = points * float(freq)
            parts.append(scaled.sin())
            parts.append(scaled.cos())
        return concatenate(parts, axis=-1)


class NeRFField(Module):
    """MLP mapping encoded points to ``(density_logit, rgb_logits)``."""

    def __init__(self, num_frequencies: int = 4, hidden: int = 64, depth: int = 3,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.encoding = PositionalEncoding(num_frequencies)
        layers = []
        prev = self.encoding.output_dim
        for _ in range(depth):
            layers.append(Linear(prev, hidden, rng=rng))
            layers.append(ReLU())
            prev = hidden
        self.backbone = Sequential(*layers)
        self.head = Linear(prev, 4, rng=rng)

    def forward(self, points: Tensor) -> Tensor:
        """``points``: (N, 3) -> (N, 4) raw field values (density logit + rgb logits)."""
        return self.head(self.backbone(self.encoding(points)))


def make_nerf_field(num_frequencies: int = 4, hidden: int = 64, depth: int = 3,
                    rng: Optional[np.random.Generator] = None) -> NeRFField:
    """Factory used by the NeRF example and benchmark."""
    return NeRFField(num_frequencies=num_frequencies, hidden=hidden, depth=depth, rng=rng)
