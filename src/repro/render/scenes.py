"""Synthetic ground-truth scenes for the NeRF experiment.

The paper renders a textured cow mesh with Pytorch3D; offline we substitute a
procedural scene — two coloured spheres of different radii — whose analytic
density/colour field is rendered with the *same* volumetric renderer used for
the learned field, so the training targets exercise exactly the code path the
learned NeRF must reproduce.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from ..nn.tensor import Tensor
from .renderer import VolumetricRenderer

__all__ = ["two_sphere_field", "make_scene_dataset", "train_test_angles"]


def two_sphere_field(points: Tensor) -> Tensor:
    """Analytic raw field of a red sphere next to a smaller blue sphere.

    Returns raw values in the same parameterization the NeRF MLP produces
    (pre-softplus density, pre-sigmoid colour logits) so the ground truth can
    be rendered by the unmodified :class:`VolumetricRenderer`.
    """
    p = points.data
    centre_a = np.array([0.35, 0.0, 0.0])
    centre_b = np.array([-0.45, 0.0, 0.15])
    dist_a = np.linalg.norm(p - centre_a, axis=-1)
    dist_b = np.linalg.norm(p - centre_b, axis=-1)
    inside_a = dist_a < 0.45
    inside_b = dist_b < 0.3
    density_logit = np.where(inside_a | inside_b, 8.0, -12.0)
    red = np.where(inside_a, 4.0, -4.0)
    green = np.full_like(red, -4.0)
    blue = np.where(inside_b, 4.0, -4.0)
    raw = np.stack([density_logit, red, green, blue], axis=-1)
    return Tensor(raw)


def train_test_angles(num_train: int = 24, num_test: int = 10,
                      held_out_start: float = 120.0, held_out_end: float = 210.0
                      ) -> Tuple[np.ndarray, np.ndarray]:
    """Azimuth angles: training views over 360° minus a held-out sector.

    Mirrors the paper's protocol of training on views of the object from all
    around and holding out a 90° sector as out-of-distribution views.
    """
    all_angles = np.linspace(0.0, 360.0, num_train + num_test, endpoint=False)
    in_sector = (all_angles >= held_out_start) & (all_angles < held_out_end)
    test_angles = all_angles[in_sector][:num_test]
    train_angles = all_angles[~in_sector]
    if len(test_angles) < num_test:
        extra = np.linspace(held_out_start, held_out_end, num_test, endpoint=False)
        test_angles = extra
    return train_angles, test_angles


def make_scene_dataset(renderer: VolumetricRenderer, angles: Sequence[float],
                       field: Callable[[Tensor], Tensor] = two_sphere_field
                       ) -> List[Dict[str, np.ndarray]]:
    """Render ground-truth images/silhouettes for the given camera angles."""
    dataset = []
    for angle in angles:
        image, silhouette = renderer(float(angle), field)
        dataset.append({
            "angle": float(angle),
            "image": image.data.copy(),
            "silhouette": silhouette.data.copy(),
        })
    return dataset
