"""Differentiable volumetric renderer (the Pytorch3D substitute).

Implements emission-absorption ray marching: the field network is queried at
stratified points along each camera ray, densities are converted to per-
segment opacities and colours are alpha-composited front to back.  The
renderer accepts any callable mapping ``(N, 3)`` points to ``(N, 4)`` raw
field values — in particular a :class:`repro.core.bnn.PytorchBNN` wrapping a
:class:`~repro.render.nerf.NeRFField`, which is exactly how the paper's
Listing 5 drops the Bayesian NeRF into the Pytorch3D renderer.

The compositing pipeline is sample-dimension aware end to end: ``composite``
broadcasts over arbitrary leading axes of the raw field values (e.g. the
``(S, ...)`` stack produced by a vectorized BNN forward), multiple azimuth
angles can be folded into one field evaluation (:meth:`render_batch`), and
:meth:`render_posterior` renders ``angles x posterior_samples`` full scenes
through a handful of batched forward passes while consuming the RNG stream in
exactly the order the per-angle/per-sample Python loops would.
"""

from __future__ import annotations

import functools
from collections import OrderedDict
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from ..nn.tensor import Tensor, no_grad

__all__ = ["VolumetricRenderer", "clear_geometry_cache"]

# Ray-point grids above this many bytes are recomputed on demand instead of
# cached: the lru entries live for the process lifetime, and a dense sweep of
# high-resolution views would otherwise pin gigabytes (256 entries x ~25 MB at
# image_size=128 / 64 samples per ray).
_CACHE_ENTRY_BYTE_LIMIT = 2 * 1024 * 1024

# render_posterior defers compositing to batch it across views, but flushes
# the accumulated raw field outputs once they reach this many bytes so a
# large sweep (many views x samples x ray points) never holds the whole
# uncomposited block in memory at once.  (The flush's concatenate transiently
# doubles this, so the true raw-block peak is ~2x the cap.)
_RAW_FLUSH_BYTE_LIMIT = 64 * 1024 * 1024


# Camera geometry is a pure function of the orbit parameters, yet the NeRF
# experiment re-derives it for every one of thousands of training iterations;
# memoize it at module level (keys are plain floats/ints, values are marked
# read-only since they are shared across calls).
def _compute_rays(azimuth_deg: float, image_size: int, fov_deg: float,
                  elevation_deg: float, radius: float) -> Tuple[np.ndarray, np.ndarray]:
    from .cameras import camera_rays

    origins, directions = camera_rays(azimuth_deg, image_size=image_size, fov_deg=fov_deg,
                                      elevation_deg=elevation_deg, radius=radius)
    origins.flags.writeable = False
    directions.flags.writeable = False
    return origins, directions


_cached_rays = functools.lru_cache(maxsize=256)(_compute_rays)


def _rays(azimuth_deg: float, image_size: int, fov_deg: float, elevation_deg: float,
          radius: float) -> Tuple[np.ndarray, np.ndarray]:
    entry_bytes = 2 * image_size ** 2 * 3 * 8  # origins + directions
    fn = _compute_rays if entry_bytes > _CACHE_ENTRY_BYTE_LIMIT else _cached_rays
    return fn(azimuth_deg, image_size, fov_deg, elevation_deg, radius)


def _compute_points(azimuth_deg: float, image_size: int, fov_deg: float, elevation_deg: float,
                    radius: float, near: float, far: float, num_samples: int
                    ) -> Tuple[np.ndarray, float]:
    from .cameras import ray_grid

    origins, directions = _rays(azimuth_deg, image_size, fov_deg, elevation_deg, radius)
    points, deltas = ray_grid(origins, directions, near, far, num_samples)
    points.flags.writeable = False
    return points, float(deltas[0])


_cached_points = functools.lru_cache(maxsize=256)(_compute_points)


def clear_geometry_cache() -> None:
    """Release every memoized camera-ray / ray-point grid."""
    _cached_rays.cache_clear()
    _cached_points.cache_clear()


class VolumetricRenderer:
    """Emission-absorption renderer over a fixed ray-sampling schedule."""

    def __init__(self, image_size: int = 16, num_samples_per_ray: int = 16,
                 near: float = 1.0, far: float = 4.0, fov_deg: float = 45.0,
                 elevation_deg: float = 20.0, radius: float = 2.5) -> None:
        self.image_size = image_size
        self.num_samples_per_ray = num_samples_per_ray
        self.near = near
        self.far = far
        self.fov_deg = fov_deg
        self.elevation_deg = elevation_deg
        self.radius = radius

    # ------------------------------------------------------------------ rays
    def rays_for_angle(self, azimuth_deg: float) -> Tuple[np.ndarray, np.ndarray]:
        return _rays(float(azimuth_deg), self.image_size, self.fov_deg,
                     self.elevation_deg, self.radius)

    def sample_points(self, azimuth_deg: float) -> Tuple[np.ndarray, float]:
        """Cached ``(points (rays, samples, 3), delta)`` for one azimuth.

        The returned array is shared and read-only; downstream consumers only
        ever read it (Tensor ops allocate fresh outputs).  Grids too large to
        pin for the process lifetime are recomputed instead of cached (see
        ``_CACHE_ENTRY_BYTE_LIMIT``); :func:`clear_geometry_cache` releases
        everything explicitly.
        """
        entry_bytes = self.image_size ** 2 * self.num_samples_per_ray * 3 * 8
        fn = _compute_points if entry_bytes > _CACHE_ENTRY_BYTE_LIMIT else _cached_points
        return fn(float(azimuth_deg), self.image_size, self.fov_deg,
                  self.elevation_deg, self.radius, self.near, self.far,
                  self.num_samples_per_ray)

    # -------------------------------------------------------------- rendering
    def composite(self, raw: Tensor, delta: float, num_rays: int) -> Tuple[Tensor, Tensor]:
        """Alpha-composite raw field values into per-ray colour and opacity.

        ``raw``: ``(..., num_rays * samples, 4)`` -> ``(colours (..., num_rays, 3),
        silhouette (..., num_rays))``.  Any leading axes (vectorized posterior
        samples, batched views) broadcast through unchanged.
        """
        samples = self.num_samples_per_ray
        raw = raw.reshape(raw.shape[:-2] + (num_rays, samples, 4))
        density = raw[..., 0].softplus()
        rgb = raw[..., 1:].sigmoid()
        alpha = 1.0 - (-density * delta).exp()  # (..., rays, samples)
        # transmittance T_i = exp(sum_{j<i} log(1 - alpha_j)), kept differentiable
        log_transmittance = (1.0 - alpha + 1e-10).log().cumsum(axis=-1, exclusive=True)
        weights = alpha * log_transmittance.exp()  # (..., rays, samples)
        colour = (weights.unsqueeze(-1) * rgb).sum(axis=-2)  # (..., rays, 3)
        silhouette = weights.sum(axis=-1)  # (..., rays)
        return colour, silhouette

    def __call__(self, azimuth_deg: float, field: Callable[[Tensor], Tensor]
                 ) -> Tuple[Tensor, Tensor]:
        """Render one view: returns ``(image (H, W, 3), silhouette (H, W))``."""
        points, delta = self.sample_points(azimuth_deg)
        num_rays = points.shape[0]
        flat_points = Tensor(points.reshape(-1, 3))
        raw = field(flat_points)
        colour, silhouette = self.composite(raw, delta, num_rays)
        h = w = self.image_size
        lead = colour.shape[:-2]
        return colour.reshape(lead + (h, w, 3)), silhouette.reshape(lead + (h, w))

    render = __call__

    def render_batch(self, azimuth_degs: Sequence[float], field: Callable[[Tensor], Tensor]
                     ) -> Tuple[Tensor, Tensor]:
        """Render several views through ONE field evaluation.

        All angles' ray points are concatenated into a single query batch, so
        the field (deterministic net, analytic scene, or vectorized BNN
        forward) runs once instead of once per view.  Returns
        ``(images (..., A, H, W, 3), silhouettes (..., A, H, W))`` where the
        leading axes are whatever sample axes the field output carries.
        """
        angles = [float(a) for a in azimuth_degs]
        if not angles:
            raise ValueError("render_batch requires at least one azimuth angle")
        per_angle = [self.sample_points(a) for a in angles]
        points = np.concatenate([pts for pts, _ in per_angle])  # (A*rays, s, 3)
        delta = per_angle[0][1]
        num_rays = points.shape[0]
        raw = field(Tensor(points.reshape(-1, 3)))
        colour, silhouette = self.composite(raw, delta, num_rays)
        h = w = self.image_size
        lead = colour.shape[:-2]
        return (colour.reshape(lead + (len(angles), h, w, 3)),
                silhouette.reshape(lead + (len(angles), h, w)))

    def render_posterior(self, azimuth_degs: Sequence[float], bnn, num_samples: int,
                         chunk_size: Optional[int] = None
                         ) -> Tuple[np.ndarray, np.ndarray]:
        """Render ``num_samples`` posterior draws of every view in batched passes.

        ``bnn`` must expose the vectorized-BNN interface
        (``posterior_weight_samples`` / ``vectorized_forward``, e.g.
        :class:`repro.core.bnn.PytorchBNN`).  Weight samples are drawn
        angle-major (``num_samples`` fresh draws per angle, in angle order) so
        the RNG stream — and therefore the result — is identical to the looped
        reference ``for angle: for sample: renderer(angle, bnn)``; the forward
        passes and compositing run batched over the ``angles x samples``
        leading axis instead.

        ``chunk_size=None`` (the default) renders one angle per batched
        forward: all ``num_samples`` draws share that angle's ray points, so
        the network sees a single 2-D query batch against ``(S, ...)``-stacked
        weights (the fastest leading-sample-dimension layout: the positional
        encoding and the first-layer input are computed once instead of once
        per sample, and activations stay cache-sized), and every view's raw
        field output is composited in one batched pass at the end.  An
        explicit ``chunk_size`` instead folds that many angles into one
        forward (pairing every draw with its own copy of the angle's query
        points) and composites per chunk, bounding peak memory by the chunk
        rather than the whole sweep.  Draw order — and therefore the result —
        is unaffected either way.

        Returns numpy arrays ``(images (A, S, H, W, 3),
        silhouettes (A, S, H, W))``.
        """
        angles = [float(a) for a in np.atleast_1d(np.asarray(azimuth_degs, dtype=np.float64))]
        if not angles:
            raise ValueError("render_posterior requires at least one azimuth angle")
        if num_samples < 1:
            raise ValueError("num_samples must be positive")
        h = w = self.image_size
        per_angle = chunk_size is None
        chunk = 1 if per_angle else chunk_size
        if chunk < 1:
            raise ValueError("chunk_size must be positive")
        raws, images, silhouettes = [], [], []
        raw_bytes = 0

        def _flush_raws():
            # batched compositing: same arithmetic as per-view compositing, a
            # fraction of the op dispatches
            nonlocal raw_bytes
            if not raws:
                return
            stacked_raw = Tensor(np.concatenate(raws))  # (A', S, rays*samples, 4)
            colour, silhouette = self.composite(stacked_raw, delta, num_rays)
            flushed = stacked_raw.shape[0]
            images.append(colour.data.reshape(flushed, num_samples, h, w, 3))
            silhouettes.append(silhouette.data.reshape(flushed, num_samples, h, w))
            raws.clear()
            raw_bytes = 0

        with no_grad():
            first_points, delta = self.sample_points(angles[0])
            proto = Tensor(np.asarray(first_points).reshape(-1, 3))
            num_rays = self.image_size ** 2
            all_draws = None
            if per_angle:
                # the speed path hoists one stacked draw covering every angle:
                # sample_stacked draws iteration-major, so a single stack of
                # A*S draws consumes the stream exactly like A sequential
                # per-angle stacks of S (explicit chunking instead draws per
                # chunk inside the loop, bounding weight-stack memory too)
                all_draws = bnn.posterior_weight_samples(len(angles) * num_samples, proto)
            for start in range(0, len(angles), chunk):
                group = angles[start:start + chunk]
                if per_angle:
                    # shared 2-D queries (a zero-copy view of the cached grid)
                    # against (S, ...) weight stacks; defer compositing to
                    # batch it, flushing at the byte cap
                    block = slice(start * num_samples, (start + 1) * num_samples)
                    draws = OrderedDict((name, stack[block])
                                        for name, stack in all_draws.items())
                    points = np.asarray(self.sample_points(group[0])[0]).reshape(-1, 3)
                    raw = bnn.vectorized_forward(Tensor(points), samples=draws)
                    raws.append(raw.data.reshape(1, num_samples, -1, 4))
                    raw_bytes += raws[-1].nbytes
                    if raw_bytes >= _RAW_FLUSH_BYTE_LIMIT:
                        _flush_raws()
                else:
                    # explicit chunking bounds peak memory: draw per chunk,
                    # composite now, and keep only the (chunk, S, H, W, 3)
                    # images, not the raws (the chunk-sequential draws consume
                    # the RNG stream exactly like the hoisted stack would)
                    pts = np.stack([self.sample_points(a)[0] for a in group])
                    num_angles = pts.shape[0]
                    flat = pts.reshape(num_angles, num_rays * self.num_samples_per_ray, 3)
                    draws = bnn.posterior_weight_samples(num_angles * num_samples,
                                                         Tensor(flat[0]))
                    queries = Tensor(np.repeat(flat, num_samples, axis=0))  # (A*S, n_pts, 3)
                    raw = bnn.vectorized_forward(queries, samples=draws)
                    colour, silhouette = self.composite(raw, delta, num_rays)
                    images.append(colour.data.reshape(num_angles, num_samples, h, w, 3))
                    silhouettes.append(silhouette.data.reshape(num_angles, num_samples, h, w))
            _flush_raws()
        return np.concatenate(images), np.concatenate(silhouettes)
