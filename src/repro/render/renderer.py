"""Differentiable volumetric renderer (the Pytorch3D substitute).

Implements emission-absorption ray marching: the field network is queried at
stratified points along each camera ray, densities are converted to per-
segment opacities and colours are alpha-composited front to back.  The
renderer accepts any callable mapping ``(N, 3)`` points to ``(N, 4)`` raw
field values — in particular a :class:`repro.core.bnn.PytorchBNN` wrapping a
:class:`~repro.render.nerf.NeRFField`, which is exactly how the paper's
Listing 5 drops the Bayesian NeRF into the Pytorch3D renderer.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from ..nn import functional as F
from ..nn.tensor import Tensor

__all__ = ["VolumetricRenderer"]


class VolumetricRenderer:
    """Emission-absorption renderer over a fixed ray-sampling schedule."""

    def __init__(self, image_size: int = 16, num_samples_per_ray: int = 16,
                 near: float = 1.0, far: float = 4.0, fov_deg: float = 45.0,
                 elevation_deg: float = 20.0, radius: float = 2.5) -> None:
        self.image_size = image_size
        self.num_samples_per_ray = num_samples_per_ray
        self.near = near
        self.far = far
        self.fov_deg = fov_deg
        self.elevation_deg = elevation_deg
        self.radius = radius

    # ------------------------------------------------------------------ rays
    def rays_for_angle(self, azimuth_deg: float) -> Tuple[np.ndarray, np.ndarray]:
        from .cameras import camera_rays

        return camera_rays(azimuth_deg, image_size=self.image_size, fov_deg=self.fov_deg,
                           elevation_deg=self.elevation_deg, radius=self.radius)

    def sample_points(self, azimuth_deg: float) -> Tuple[np.ndarray, float]:
        from .cameras import ray_grid

        origins, directions = self.rays_for_angle(azimuth_deg)
        points, deltas = ray_grid(origins, directions, self.near, self.far,
                                  self.num_samples_per_ray)
        return points, float(deltas[0])

    # -------------------------------------------------------------- rendering
    def composite(self, raw: Tensor, delta: float, num_rays: int) -> Tuple[Tensor, Tensor]:
        """Alpha-composite raw field values into per-ray colour and opacity.

        ``raw``: (num_rays * samples, 4) -> (image colours (num_rays, 3),
        silhouette (num_rays,)).
        """
        samples = self.num_samples_per_ray
        raw = raw.reshape(num_rays, samples, 4)
        density = raw[:, :, 0].softplus()
        rgb = raw[:, :, 1:].sigmoid()
        alpha = 1.0 - (-density * delta).exp()  # (rays, samples)
        # transmittance T_i = exp(sum_{j<i} log(1 - alpha_j)), kept differentiable
        one_minus = (1.0 - alpha + 1e-10).log()
        log_transmittance = _differentiable_cumsum_exclusive(one_minus)
        transmittance = log_transmittance.exp()
        weights = alpha * transmittance  # (rays, samples)
        colour = (weights.unsqueeze(-1) * rgb).sum(axis=1)  # (rays, 3)
        silhouette = weights.sum(axis=1)  # (rays,)
        return colour, silhouette

    def __call__(self, azimuth_deg: float, field: Callable[[Tensor], Tensor]
                 ) -> Tuple[Tensor, Tensor]:
        """Render one view: returns ``(image (H, W, 3), silhouette (H, W))``."""
        points, delta = self.sample_points(azimuth_deg)
        num_rays = points.shape[0]
        flat_points = Tensor(points.reshape(-1, 3))
        raw = field(flat_points)
        colour, silhouette = self.composite(raw, delta, num_rays)
        h = w = self.image_size
        return colour.reshape(h, w, 3), silhouette.reshape(h, w)

    render = __call__


def _differentiable_cumsum_exclusive(x: Tensor) -> Tensor:
    """Exclusive cumulative sum along the last axis, differentiable.

    Implemented as a matmul with a strictly-lower-triangular ones matrix so
    the gradient flows through standard ops.
    """
    n = x.shape[-1]
    lower = np.tril(np.ones((n, n)), k=-1).T  # (n, n): out_i = sum_{j < i} x_j
    return x @ Tensor(lower)
