"""Cameras and ray generation for the volumetric-rendering substrate.

A camera orbits the origin at a fixed radius and elevation and looks at the
origin; :func:`camera_rays` returns per-pixel ray origins and (unit)
directions for a pinhole camera of the given resolution — the inputs the
volumetric renderer marches through the scene.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

__all__ = ["look_at_camera", "camera_rays", "ray_grid"]


def look_at_camera(azimuth_deg: float, elevation_deg: float = 20.0,
                   radius: float = 2.5) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Return (position, forward, right, up) of a camera orbiting the origin."""
    azimuth = math.radians(azimuth_deg)
    elevation = math.radians(elevation_deg)
    position = radius * np.array([
        math.cos(elevation) * math.cos(azimuth),
        math.cos(elevation) * math.sin(azimuth),
        math.sin(elevation),
    ])
    forward = -position / np.linalg.norm(position)
    world_up = np.array([0.0, 0.0, 1.0])
    right = np.cross(forward, world_up)
    right /= np.linalg.norm(right)
    up = np.cross(right, forward)
    return position, forward, right, up


def camera_rays(azimuth_deg: float, image_size: int = 16, fov_deg: float = 45.0,
                elevation_deg: float = 20.0, radius: float = 2.5
                ) -> Tuple[np.ndarray, np.ndarray]:
    """Per-pixel ray origins and directions for a pinhole camera.

    Returns ``(origins, directions)`` with shape ``(image_size**2, 3)`` each,
    in row-major pixel order.
    """
    position, forward, right, up = look_at_camera(azimuth_deg, elevation_deg, radius)
    half_extent = math.tan(math.radians(fov_deg) / 2.0)
    # pixel centers in [-1, 1]; the first image row maps to the top of the view
    coords = (np.arange(image_size) + 0.5) / image_size * 2.0 - 1.0
    px = np.tile(coords[None, :], (image_size, 1))    # px[row, col] = coords[col]
    py = np.tile(-coords[:, None], (1, image_size))   # py[row, col] = -coords[row]
    directions = (forward[None, None, :]
                  + px[..., None] * half_extent * right[None, None, :]
                  + py[..., None] * half_extent * up[None, None, :])
    directions = directions.reshape(-1, 3)
    directions /= np.linalg.norm(directions, axis=-1, keepdims=True)
    origins = np.broadcast_to(position, directions.shape).copy()
    return origins, directions


def ray_grid(origins: np.ndarray, directions: np.ndarray, near: float, far: float,
             num_samples: int) -> Tuple[np.ndarray, np.ndarray]:
    """Stratified sample points along each ray.

    Returns ``(points, deltas)`` where ``points`` has shape
    ``(num_rays, num_samples, 3)`` and ``deltas`` is the segment length
    associated with each sample.
    """
    t_values = np.linspace(near, far, num_samples)
    deltas = np.full(num_samples, (far - near) / max(num_samples - 1, 1))
    points = origins[:, None, :] + t_values[None, :, None] * directions[:, None, :]
    return points, deltas
