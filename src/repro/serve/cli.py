"""CLI entry points for ``repro snapshot`` and ``repro serve``.

Kept in :mod:`repro.serve` (imported lazily by the main ``repro`` CLI) so
plain ``repro run`` invocations never pay the serving imports.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence

from .engine import PredictionEngine
from .snapshot import SnapshotError, create_snapshot, load_snapshot

__all__ = ["run_snapshot", "run_serve"]


def run_snapshot(experiment_id: str, out: str, *, fast: bool = False,
                 overrides: Optional[Mapping[str, Any]] = None,
                 num_samples: int = 32, untrained: bool = False,
                 stream=None) -> int:
    """``repro snapshot <id> --out DIR``: train (or build) and freeze."""
    stream = stream or sys.stdout
    try:
        snapshot = create_snapshot(experiment_id, fast=fast, overrides=overrides,
                                   num_samples=num_samples,
                                   trained=not untrained)
    except KeyError as exc:
        print(f"repro: {exc.args[0]}", file=sys.stderr)
        return 2
    except (SnapshotError, ValueError, NotImplementedError) as exc:
        print(f"repro: snapshot: {exc}", file=sys.stderr)
        return 1
    root = snapshot.save(out)
    print(f"snapshot {snapshot.snapshot_id[:12]} of {experiment_id} "
          f"({snapshot.num_samples} posterior samples, "
          f"{len(snapshot.sites)} sites"
          f"{', untrained' if untrained else ''}) -> {root}", file=stream)
    return 0


def run_serve(experiment_id: Optional[str], snapshot_path: str, *,
              host: str = "127.0.0.1", port: int = 8100, max_batch: int = 32,
              max_wait_ms: float = 2.0, cache_bytes: int = 8 << 20,
              stream=None) -> int:
    """``repro serve <id> --snapshot DIR --port N``: serve until SIGINT/SIGTERM."""
    from .server import run_server

    stream = stream or sys.stdout
    try:
        snapshot = load_snapshot(Path(snapshot_path))
    except SnapshotError as exc:
        print(f"repro: serve: {exc}", file=sys.stderr)
        return 1
    if experiment_id and snapshot.experiment_id != experiment_id:
        print(f"repro: serve: snapshot at {snapshot_path} holds "
              f"{snapshot.experiment_id!r}, not {experiment_id!r}",
              file=sys.stderr)
        return 2
    try:
        engine = PredictionEngine.from_snapshot(snapshot)
    except (SnapshotError, KeyError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"repro: serve: {message}", file=sys.stderr)
        return 1
    run_server(engine, host=host, port=port, max_batch=max_batch,
               max_wait_ms=max_wait_ms, cache_bytes=cache_bytes)
    return 0
