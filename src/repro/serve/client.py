"""Clients for the serving layer: in-process (tests/benchmarks) and socket.

``LocalClient`` drives a :class:`~repro.serve.batcher.MicroBatcher` directly
inside the caller's event loop — no transport, which is what the latency
benchmark wants (it measures coalescing, not socket overhead).

``HTTPClient`` is a tiny synchronous stdlib ``http.client`` wrapper against
a running ``repro serve`` process, used by the CLI smoke test.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, Optional

import numpy as np

from .batcher import MicroBatcher
from .cache import ByteLRUCache
from .engine import DEFAULT_COVERAGE, PredictResponse, PredictionEngine

__all__ = ["LocalClient", "HTTPClient"]


class LocalClient:
    """In-process async client: submit() through a private micro-batcher."""

    def __init__(self, engine: PredictionEngine, *, max_batch: int = 32,
                 max_wait_ms: float = 2.0,
                 cache: Optional[ByteLRUCache] = None) -> None:
        self.engine = engine
        self.batcher = MicroBatcher(engine, max_batch=max_batch,
                                    max_wait_ms=max_wait_ms, cache=cache)

    async def predict(self, inputs, coverage: float = DEFAULT_COVERAGE
                      ) -> PredictResponse:
        return await self.batcher.submit(inputs, coverage)

    async def close(self) -> None:
        await self.batcher.close()

    def stats(self) -> Dict[str, Any]:
        return self.batcher.stats()


class HTTPClient:
    """Blocking JSON-over-HTTP client for a running serve process.

    Keeps one persistent (keep-alive) connection and pipelines every request
    over it; a stale socket (server restarted, idle timeout) is retried once
    on a fresh connection — safe here because every route is idempotent.  A
    server ``Connection: close`` response is honored by reconnecting on the
    next request.  Usable as a context manager; :meth:`close` releases the
    socket.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8100,
                 timeout: float = 10.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(self.host, self.port,
                                                    timeout=self.timeout)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "HTTPClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        payload = None if body is None else json.dumps(body).encode()
        headers = {"Content-Type": "application/json"} if payload else {}
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                data = json.loads(response.read().decode() or "{}")
            except (ConnectionError, http.client.RemoteDisconnected,
                    http.client.CannotSendRequest, http.client.BadStatusLine):
                # the kept-alive socket went stale under us; one fresh retry
                self.close()
                if attempt:
                    raise
                continue
            if response.will_close:  # server said Connection: close
                self.close()
            if response.status != 200:
                raise RuntimeError(
                    f"{method} {path} -> {response.status}: "
                    f"{data.get('error', data)}")
            return data
        raise AssertionError("unreachable")  # pragma: no cover

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/stats")

    def predict(self, inputs, coverage: float = DEFAULT_COVERAGE
                ) -> Dict[str, Any]:
        inputs = np.asarray(inputs, dtype=np.float64)
        return self._request("POST", "/predict",
                             {"inputs": inputs.tolist(),
                              "coverage": float(coverage)})
