"""Versioned model snapshots: a trained ``GuidedBNN`` frozen for serving.

A snapshot is the on-disk unit the serving layer loads: the experiment's
config echo (enough to rebuild the deterministic network skeleton through the
experiment's :class:`ServeTarget`), a pre-drawn posterior weight stack
(``GuidedBNN.snapshot_weight_stacks``) and the non-Bayesian network state
(ML-fitted parameters, batch-norm moments).  Once written, serving is
RNG-free and deterministic: the same snapshot always produces byte-identical
predictions, in any process.

Layout (a directory)::

    <path>/manifest.json   # format version, experiment id, config echo,
                           # posterior kind, site names/shapes, snapshot id
    <path>/weights.npz     # "site.<name>" posterior stacks (S, ...) +
                           # "det.<name>" deterministic state arrays

The ``snapshot_id`` is a sha256 over the manifest core and the raw weight
bytes, so the loader detects tampered or torn artifacts, and response caches
can key on it.  MCMC-backed models are rejected with a clear diagnostic at
save *and* load time: their posteriors are stored sample chains, not a
guide, so the RNG-free stacked-forward serving contract cannot hold.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Optional

import numpy as np

__all__ = ["SNAPSHOT_FORMAT_VERSION", "SnapshotError", "ServeTarget", "Snapshot",
           "snapshot_from_bnn", "create_snapshot", "load_snapshot"]

#: version of the on-disk snapshot layout written by :meth:`Snapshot.save`
SNAPSHOT_FORMAT_VERSION = 1

_MANIFEST_NAME = "manifest.json"
_WEIGHTS_NAME = "weights.npz"


class SnapshotError(ValueError):
    """A snapshot cannot be created, read or served (clear one-line reason)."""


@dataclass
class ServeTarget:
    """An experiment's serving entry point, registered à la ``ValidationTarget``.

    Experiments expose one through the ``serve_target`` hook of
    ``@register`` — a ``config -> ServeTarget`` callable whose result binds
    the config.  ``build`` returns the *untrained* model skeleton with the
    exact architecture the config describes (used by the snapshot loader,
    which overwrites all weights anyway); ``fit`` optionally returns the
    trained model (used by ``repro snapshot`` without ``--untrained``);
    ``example_input`` is one valid network input batch, used to trace the
    guide when drawing the weight stacks and for serving smoke checks.
    """

    name: str
    build: Callable[[], Any]
    example_input: np.ndarray
    fit: Optional[Callable[[], Any]] = None


@dataclass
class Snapshot:
    """An in-memory snapshot: manifest fields plus the weight arrays."""

    experiment_id: str
    config: Dict[str, Any]
    num_samples: int
    sites: "OrderedDict[str, np.ndarray]"
    deterministic: "OrderedDict[str, np.ndarray]" = field(default_factory=OrderedDict)
    target_name: str = ""
    format_version: int = SNAPSHOT_FORMAT_VERSION
    posterior: str = "guide"

    @property
    def snapshot_id(self) -> str:
        """sha256 over the manifest core and the raw weight bytes (stable)."""
        digest = hashlib.sha256()
        core = {"format_version": self.format_version,
                "experiment_id": self.experiment_id,
                "target_name": self.target_name,
                "posterior": self.posterior,
                "num_samples": self.num_samples,
                "config": self.config}
        digest.update(json.dumps(core, sort_keys=True).encode())
        for group, arrays in (("site", self.sites), ("det", self.deterministic)):
            for name, array in arrays.items():
                digest.update(f"{group}.{name}:{array.dtype}:{array.shape}".encode())
                digest.update(np.ascontiguousarray(array).tobytes())
        return digest.hexdigest()

    # ------------------------------------------------------------------- disk
    def save(self, path) -> Path:
        """Write the versioned artifact directory (atomic manifest write)."""
        root = Path(path)
        root.mkdir(parents=True, exist_ok=True)
        arrays = {f"site.{name}": array for name, array in self.sites.items()}
        arrays.update({f"det.{name}": array
                       for name, array in self.deterministic.items()})
        with open(root / _WEIGHTS_NAME, "wb") as fh:
            np.savez(fh, **arrays)
        manifest = {
            "format_version": self.format_version,
            "experiment_id": self.experiment_id,
            "target_name": self.target_name,
            "posterior": self.posterior,
            "num_samples": self.num_samples,
            "config": self.config,
            "sites": {name: list(array.shape) for name, array in self.sites.items()},
            "deterministic": sorted(self.deterministic),
            "snapshot_id": self.snapshot_id,
        }
        tmp = root / f"{_MANIFEST_NAME}.{os.getpid()}.tmp"
        tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, root / _MANIFEST_NAME)
        return root


def snapshot_from_bnn(bnn, experiment_id: str, config: Mapping[str, Any],
                      num_samples: int, example_input,
                      target_name: str = "") -> Snapshot:
    """Freeze a trained guide-based BNN into an in-memory :class:`Snapshot`.

    Draws ``num_samples`` stacked posterior weight samples (the last RNG the
    model ever consumes on the serving path) and captures the non-Bayesian
    network state.  MCMC-backed models are rejected here — their posterior is
    a stored sample chain, not a guide.
    """
    from ..core.bnn import MCMC_BNN, _as_tuple

    if isinstance(bnn, MCMC_BNN):
        raise SnapshotError(
            f"cannot snapshot {experiment_id!r}: MCMC posteriors are stored "
            "sample chains, not a guide — the serving path needs guide-drawn "
            "weight stacks (GuidedBNN.posterior_weight_samples); refit with "
            "VariationalBNN (or another guide-based BNN) to serve this model")
    if num_samples < 1:
        raise SnapshotError(f"num_samples must be >= 1, got {num_samples}")
    sites = bnn.snapshot_weight_stacks(num_samples, *_as_tuple(example_input))
    if not sites:
        raise SnapshotError(
            f"cannot snapshot {experiment_id!r}: the model exposes no "
            "Bayesian sites to stack")
    deterministic = bnn.snapshot_deterministic_state()
    return Snapshot(experiment_id=experiment_id, config=dict(config),
                    num_samples=num_samples, sites=sites,
                    deterministic=deterministic, target_name=target_name)


def _resolve_serve_target(experiment_id: str, config=None, *, fast: bool = False,
                          overrides: Optional[Mapping[str, Any]] = None):
    """``(spec, config, ServeTarget)`` for a registered experiment (or raise)."""
    from ..experiments.api.registry import get_experiment

    spec = get_experiment(experiment_id)
    if spec.serve_target is None:
        raise SnapshotError(
            f"experiment {experiment_id!r} registers no ServeTarget; add a "
            "serve_target=... hook to its @register call to make it servable")
    if config is None:
        config = spec.make_config(fast=fast, overrides=overrides)
    target = spec.serve_target(config)
    return spec, config, target


def create_snapshot(experiment_id: str, *, fast: bool = False,
                    overrides: Optional[Mapping[str, Any]] = None,
                    num_samples: int = 32, trained: bool = True) -> Snapshot:
    """Build (and by default train) an experiment's serve model and freeze it.

    ``trained=False`` skips the ``fit`` step and snapshots the untrained
    skeleton's guide-initialized posterior — useless predictions, but the
    full serving contract (RNG-free, deterministic, correct shapes) holds,
    which is exactly what smoke tests and latency benchmarks need.
    """
    _, config, target = _resolve_serve_target(experiment_id, fast=fast,
                                              overrides=overrides)
    # snapshot creation is deterministic in the config seed: the guide draws
    # its weight stacks from the global stream this seeds (fit hooks re-seed
    # identically, so the trained path is covered either way)
    config.seed_all()
    if trained:
        if target.fit is None:
            raise SnapshotError(
                f"ServeTarget {target.name!r} of {experiment_id!r} has no fit "
                "hook; pass trained=False (CLI: --untrained) to snapshot the "
                "untrained skeleton")
        bnn = target.fit()
    else:
        bnn = target.build()
    return snapshot_from_bnn(bnn, experiment_id, config.to_dict(), num_samples,
                             target.example_input, target_name=target.name)


def load_snapshot(path) -> Snapshot:
    """Read a snapshot directory back, verifying integrity and servability."""
    root = Path(path)
    manifest_path = root / _MANIFEST_NAME
    if not manifest_path.is_file():
        raise SnapshotError(f"no snapshot at {root}: missing {_MANIFEST_NAME} "
                            "(create one with `repro snapshot <id> --out ...`)")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise SnapshotError(f"corrupted snapshot manifest {manifest_path}: {exc}") from exc
    version = manifest.get("format_version")
    if version != SNAPSHOT_FORMAT_VERSION:
        raise SnapshotError(f"unsupported snapshot format_version {version!r} "
                            f"(this build reads {SNAPSHOT_FORMAT_VERSION})")
    if manifest.get("posterior") != "guide":
        raise SnapshotError(
            f"snapshot {root} records a {manifest.get('posterior')!r} "
            "posterior: only guide-based snapshots are servable — MCMC "
            "posteriors are stored sample chains and cannot honor the "
            "RNG-free stacked-forward serving contract; refit with "
            "VariationalBNN and re-snapshot")
    with np.load(root / _WEIGHTS_NAME) as archive:
        sites: "OrderedDict[str, np.ndarray]" = OrderedDict()
        deterministic: "OrderedDict[str, np.ndarray]" = OrderedDict()
        for key in archive.files:
            group, _, name = key.partition(".")
            if group == "site":
                sites[name] = archive[key]
            elif group == "det":
                deterministic[name] = archive[key]
    snapshot = Snapshot(experiment_id=manifest["experiment_id"],
                        config=manifest["config"],
                        num_samples=manifest["num_samples"],
                        sites=sites, deterministic=deterministic,
                        target_name=manifest.get("target_name", ""),
                        format_version=version)
    if snapshot.snapshot_id != manifest.get("snapshot_id"):
        raise SnapshotError(
            f"snapshot {root} fails its integrity check: weights or manifest "
            "were modified after save (recorded id "
            f"{manifest.get('snapshot_id', '?')[:12]}..., recomputed "
            f"{snapshot.snapshot_id[:12]}...)")
    return snapshot
