"""Minimal HTTP transport over asyncio streams (stdlib only, no new deps).

Endpoints:

``GET /healthz``
    ``{"status": "ok", "snapshot_id": ..., "experiment_id": ...}``
``POST /predict``
    Body ``{"inputs": [[...], ...], "coverage": 0.9}`` → per-row
    ``{"mean", "std", "interval": {"coverage", "lo", "hi"}}`` records.
``GET /stats``
    Batcher/cache counters plus request-latency percentiles.

The handler parses just enough HTTP/1.1 to serve JSON with persistent
(keep-alive) connections — one handler task serves a whole request pipeline,
honoring ``Connection: close`` from the client and closing itself after any
error response (a 4xx/5xx may mean broken request framing, and re-syncing a
byte stream is not worth the code).  Deliberately tiny, because the
interesting machinery (coalescing, caching, the stacked forward) lives in
:mod:`repro.serve.batcher`.  Handlers are async and R007-clean: no blocking
file I/O or sleeps on the event loop; the forward runs in the batcher's
executor.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from typing import Any, Dict, List, Optional

import numpy as np

from .batcher import MicroBatcher
from .cache import ByteLRUCache
from .engine import DEFAULT_COVERAGE, PredictionEngine

__all__ = ["ServeApp", "run_server"]

_MAX_BODY_BYTES = 16 << 20


def _latency_percentiles(latencies_ms: List[float]) -> Dict[str, float]:
    if not latencies_ms:
        return {"count": 0}
    arr = np.asarray(latencies_ms, dtype=np.float64)
    return {"count": int(arr.size),
            "p50_ms": float(np.percentile(arr, 50)),
            "p95_ms": float(np.percentile(arr, 95)),
            "p99_ms": float(np.percentile(arr, 99)),
            "max_ms": float(arr.max())}


class _HTTPError(Exception):
    def __init__(self, status: int, reason: str, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.reason = reason
        self.detail = detail


class ServeApp:
    """Routes + request accounting around one engine and its batcher."""

    def __init__(self, engine: PredictionEngine, *, max_batch: int = 32,
                 max_wait_ms: float = 2.0, cache_bytes: int = 8 << 20) -> None:
        cache = ByteLRUCache(cache_bytes) if cache_bytes > 0 else None
        self.engine = engine
        self.batcher = MicroBatcher(engine, max_batch=max_batch,
                                    max_wait_ms=max_wait_ms, cache=cache)
        self._latencies_ms: List[float] = []
        self._connections_opened = 0
        self._http_requests = 0

    # ----------------------------------------------------------------- routes
    async def healthz(self) -> Dict[str, Any]:
        return {"status": "ok",
                "snapshot_id": self.engine.snapshot_id,
                "experiment_id": self.engine.snapshot.experiment_id,
                "num_samples": self.engine.num_samples}

    async def stats(self) -> Dict[str, Any]:
        payload = self.batcher.stats()
        payload["latency"] = _latency_percentiles(self._latencies_ms)
        payload["snapshot_id"] = self.engine.snapshot_id
        # requests > connections is keep-alive reuse working
        payload["http"] = {"connections": self._connections_opened,
                           "requests": self._http_requests}
        return payload

    async def predict(self, body: Dict[str, Any]) -> Dict[str, Any]:
        if not isinstance(body, dict) or "inputs" not in body:
            raise _HTTPError(400, "Bad Request",
                             'body must be a JSON object with an "inputs" key')
        try:
            inputs = np.asarray(body["inputs"], dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise _HTTPError(400, "Bad Request",
                             f"inputs is not a numeric array: {exc}")
        coverage = body.get("coverage", DEFAULT_COVERAGE)
        if not isinstance(coverage, (int, float)) or not 0.0 < coverage < 1.0:
            raise _HTTPError(400, "Bad Request",
                             f"coverage must be in (0, 1), got {coverage!r}")
        start = time.perf_counter()
        try:
            response = await self.batcher.submit(inputs, float(coverage))
        except ValueError as exc:
            raise _HTTPError(400, "Bad Request", str(exc))
        self._latencies_ms.append((time.perf_counter() - start) * 1000.0)
        return {"snapshot_id": self.engine.snapshot_id,
                "coverage": response.coverage,
                "predictions": response.to_payload()}

    # ------------------------------------------------------------- connection
    async def handle_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        """Serve requests off one connection until close/EOF (keep-alive)."""
        self._connections_opened += 1
        try:
            while True:
                keep_alive = True
                try:
                    dispatched = await self._dispatch(reader)
                    if dispatched is None:  # clean EOF between requests
                        return
                    status, reason, payload, client_close = dispatched
                    keep_alive = not client_close
                except _HTTPError as exc:
                    status, reason = exc.status, exc.reason
                    payload = {"error": exc.detail}
                    keep_alive = False  # request framing may be broken
                except Exception as exc:  # keep the server alive on handler bugs
                    status, reason, payload = 500, "Internal Server Error", {
                        "error": f"{type(exc).__name__}: {exc}"}
                    keep_alive = False
                body = json.dumps(payload).encode()
                head = (f"HTTP/1.1 {status} {reason}\r\n"
                        "Content-Type: application/json\r\n"
                        f"Content-Length: {len(body)}\r\n"
                        f"Connection: {'keep-alive' if keep_alive else 'close'}"
                        "\r\n\r\n").encode()
                try:
                    writer.write(head + body)
                    await writer.drain()
                except (ConnectionError, BrokenPipeError):
                    return
                if not keep_alive:
                    return
        finally:
            writer.close()

    async def _dispatch(self, reader: asyncio.StreamReader):
        """Parse + route one request; ``None`` on clean EOF before one starts.

        Returns ``(status, reason, payload, client_close)`` where
        ``client_close`` reflects the request's ``Connection: close`` header.
        """
        raw_line = await reader.readline()
        if not raw_line:  # peer closed an idle keep-alive connection
            return None
        request_line = raw_line.decode("latin-1").strip()
        if not request_line:
            raise _HTTPError(400, "Bad Request", "empty request")
        parts = request_line.split()
        if len(parts) != 3:
            raise _HTTPError(400, "Bad Request",
                             f"malformed request line: {request_line!r}")
        method, path, _ = parts
        # counted at parse time so a /stats response includes itself
        self._http_requests += 1
        content_length = 0
        client_close = False
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            name = name.strip().lower()
            if name == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise _HTTPError(400, "Bad Request",
                                     f"bad Content-Length: {value.strip()!r}")
            elif name == "connection":
                client_close = value.strip().lower() == "close"
        if content_length > _MAX_BODY_BYTES:
            raise _HTTPError(413, "Payload Too Large",
                             f"body of {content_length} bytes exceeds "
                             f"{_MAX_BODY_BYTES}")
        if (method, path) == ("GET", "/healthz"):
            return 200, "OK", await self.healthz(), client_close
        if (method, path) == ("GET", "/stats"):
            return 200, "OK", await self.stats(), client_close
        if (method, path) == ("POST", "/predict"):
            raw = await reader.readexactly(content_length) if content_length else b""
            try:
                body = json.loads(raw.decode() or "{}")
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                raise _HTTPError(400, "Bad Request", f"invalid JSON body: {exc}")
            return 200, "OK", await self.predict(body), client_close
        raise _HTTPError(404, "Not Found", f"no route for {method} {path}")


async def _serve_forever(app: ServeApp, host: str, port: int) -> None:
    server = await asyncio.start_server(app.handle_connection, host, port)
    bound = server.sockets[0].getsockname()
    # machine-parseable startup line: tests/clients read the bound port here
    print(f"repro-serve listening on http://{bound[0]}:{bound[1]} "
          f"snapshot={app.engine.snapshot_id}", flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except NotImplementedError:  # platforms without signal support
            pass
    try:
        await stop.wait()
    finally:
        server.close()
        await server.wait_closed()
        await app.batcher.close()
    print("repro-serve shut down cleanly", flush=True)


def run_server(engine: PredictionEngine, *, host: str = "127.0.0.1",
               port: int = 0, max_batch: int = 32, max_wait_ms: float = 2.0,
               cache_bytes: int = 8 << 20) -> None:
    """Blocking entry point: serve until SIGINT/SIGTERM, then shut down."""
    app = ServeApp(engine, max_batch=max_batch, max_wait_ms=max_wait_ms,
                   cache_bytes=cache_bytes)
    try:
        asyncio.run(_serve_forever(app, host, port))
    except KeyboardInterrupt:  # add_signal_handler unavailable fallback
        pass
