"""``repro.serve``: posterior-predictive serving for the paper's BNNs.

The subsystem turns a trained :class:`~repro.core.bnn.GuidedBNN` into a
production-shaped predict service:

- :mod:`repro.serve.snapshot` — versioned model artifacts (config echo +
  pre-drawn posterior weight stacks + deterministic network state) so a
  server loads weights once and serves RNG-free thereafter;
- :mod:`repro.serve.engine` — the stacked-forward predictor deriving
  per-request mean/std/calibrated-interval uncertainty from the
  likelihood's predictive distribution;
- :mod:`repro.serve.batcher` — the asyncio broker coalescing concurrent
  requests into one ``vectorized_forward`` (flush on ``max_batch`` rows or
  ``max_wait_ms``), bit-identical to serial per-request prediction;
- :mod:`repro.serve.cache` — a byte-bounded LRU response cache keyed on
  input bytes + snapshot id;
- :mod:`repro.serve.server` / :mod:`repro.serve.client` — a stdlib-only
  HTTP transport (``/predict``, ``/healthz``, ``/stats``) plus in-process
  and socket clients.

CLI: ``repro snapshot <id> --out DIR`` and
``repro serve <id> --snapshot DIR --port N``.
"""

from .batcher import MicroBatcher
from .cache import ByteLRUCache, response_cache_key
from .engine import DEFAULT_COVERAGE, PredictResponse, PredictionEngine
from .snapshot import (SNAPSHOT_FORMAT_VERSION, ServeTarget, Snapshot,
                       SnapshotError, create_snapshot, load_snapshot,
                       snapshot_from_bnn)

__all__ = [
    "MicroBatcher",
    "ByteLRUCache",
    "response_cache_key",
    "DEFAULT_COVERAGE",
    "PredictResponse",
    "PredictionEngine",
    "SNAPSHOT_FORMAT_VERSION",
    "ServeTarget",
    "Snapshot",
    "SnapshotError",
    "create_snapshot",
    "load_snapshot",
    "snapshot_from_bnn",
]
