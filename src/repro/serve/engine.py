"""The RNG-free posterior-predictive engine behind every serving request.

A :class:`PredictionEngine` binds a loaded :class:`~repro.serve.snapshot.
Snapshot` to its rebuilt network skeleton: the posterior weight stacks are
substituted into one batched ``vectorized_forward`` per call (stacked inputs
× stacked samples), and per-request uncertainty — mean, predictive standard
deviation and a calibrated central interval — is derived from the
likelihood's predictive distribution.  No randomness is consumed anywhere on
this path, so the same inputs always produce byte-identical responses, and a
coalesced batch is byte-identical to per-request serial calls: every
statistic reduces over the sample axis row by row.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List

import numpy as np
from scipy import special as _sp_special

from ..core import likelihoods
from ..nn.tensor import Tensor
from .snapshot import Snapshot, SnapshotError

__all__ = ["DEFAULT_COVERAGE", "PredictResponse", "PredictionEngine"]

#: central-interval coverage served when a request does not ask for one
DEFAULT_COVERAGE = 0.9


@dataclass
class PredictResponse:
    """Per-request uncertainty summary (arrays are per input row)."""

    mean: np.ndarray
    std: np.ndarray
    lo: np.ndarray
    hi: np.ndarray
    coverage: float

    def to_payload(self) -> List[dict]:
        """One JSON-ready record per input row of the request."""
        return [{"mean": self.mean[i].tolist(), "std": self.std[i].tolist(),
                 "interval": {"coverage": self.coverage,
                              "lo": self.lo[i].tolist(),
                              "hi": self.hi[i].tolist()}}
                for i in range(self.mean.shape[0])]


def _z_score(coverage: float) -> float:
    """Standard-normal quantile for a central interval of ``coverage`` mass."""
    if not 0.0 < coverage < 1.0:
        raise ValueError(f"coverage must be in (0, 1), got {coverage}")
    return float(_sp_special.ndtri(0.5 + coverage / 2.0))


class PredictionEngine:
    """Snapshot-backed batch predictor: one stacked forward, per-row stats.

    The engine executes **fixed-shape** forwards: every input batch is
    zero-padded to ``block_rows`` rows (chunked when larger) before the
    stacked forward, and the pad rows are sliced away afterwards.  BLAS
    kernel selection — and with it ULP-level rounding — depends on the
    operand shapes, so without a constant row count the same input row
    yields different last-bit results in a 1-row versus a 32-row batch.
    With it, per-row outputs are independent of how many requests share the
    batch, which is what makes coalesced micro-batching bit-identical to
    serial per-request prediction.

    Forwards are serialized by an internal lock: ``vectorized_forward``
    substitutes the weight stacks into the one shared network instance for
    the duration of the pass, so two threads running forwards concurrently
    would read each other's substituted parameters.
    """

    def __init__(self, bnn, snapshot: Snapshot, block_rows: int = 32) -> None:
        from ..core.bnn import MCMC_BNN

        if isinstance(bnn, MCMC_BNN):
            raise SnapshotError(
                f"experiment {snapshot.experiment_id!r} builds an MCMC-backed "
                "model: the serving path needs a guide-based BNN whose "
                "posterior is servable as stacked weight samples — refit with "
                "VariationalBNN and re-snapshot")
        expected = set(bnn.param_dists)
        got = set(snapshot.sites)
        if expected != got:
            missing = sorted(expected - got)
            extra = sorted(got - expected)
            raise SnapshotError(
                f"snapshot sites do not match the rebuilt model of "
                f"{snapshot.experiment_id!r} (architecture drift?): "
                f"missing {missing or 'none'}, unexpected {extra or 'none'}")
        if block_rows < 1:
            raise ValueError(f"block_rows must be >= 1, got {block_rows}")
        self.bnn = bnn
        self.snapshot = snapshot
        self.block_rows = int(block_rows)
        self._forward_lock = threading.Lock()
        bnn.load_deterministic_state(snapshot.deterministic)
        bnn.net.train(False)  # serving is eval-mode: no dropout, frozen moments
        self._samples: Dict[str, Tensor] = {
            name: Tensor(np.asarray(array)) for name, array in snapshot.sites.items()}

    @classmethod
    def from_snapshot(cls, snapshot: Snapshot,
                      block_rows: int = 32) -> "PredictionEngine":
        """Rebuild the experiment's network skeleton and bind the snapshot."""
        from .snapshot import _resolve_serve_target

        _, _, target = _resolve_serve_target(
            snapshot.experiment_id,
            config=None if snapshot.config is None else _rebuild_config(snapshot))
        return cls(target.build(), snapshot, block_rows=block_rows)

    @property
    def snapshot_id(self) -> str:
        return self.snapshot.snapshot_id

    @property
    def num_samples(self) -> int:
        return self.snapshot.num_samples

    # -------------------------------------------------------------- prediction
    def predict_stacked(self, inputs: np.ndarray) -> np.ndarray:
        """Raw per-sample predictions ``(S, N, ...)`` for an input batch.

        Runs fixed-shape forwards of exactly ``block_rows`` rows (zero-padded,
        chunked when larger) so each row's result is bit-independent of its
        batchmates — see the class docstring.
        """
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim < 2 or inputs.shape[0] < 1:
            raise ValueError(
                f"inputs must be a non-empty batch (rows on axis 0), got "
                f"shape {inputs.shape}")
        block = self.block_rows
        chunks = []
        for start in range(0, inputs.shape[0], block):
            chunk = inputs[start:start + block]
            rows = chunk.shape[0]
            if rows < block:
                pad = np.zeros((block - rows,) + chunk.shape[1:], dtype=chunk.dtype)
                chunk = np.concatenate([chunk, pad], axis=0)
            with self._forward_lock:
                raw = self.bnn.predict_with_samples(Tensor(chunk), self._samples,
                                                    aggregate=False)
            chunks.append(np.asarray(raw.data)[:, :rows])
        return chunks[0] if len(chunks) == 1 else np.concatenate(chunks, axis=1)

    def stats(self, raw: np.ndarray, coverage: float = DEFAULT_COVERAGE
              ) -> PredictResponse:
        """Mean / predictive std / calibrated central interval from ``raw``.

        ``raw`` is a ``(S, n, ...)`` slice of :meth:`predict_stacked` output.
        The mean and standard deviation come from the likelihood's predictive
        distribution where it defines them (total predictive std — epistemic
        + observation noise — for homoskedastic Gaussians, mean class
        probabilities for classifiers); the interval is the Gaussian central
        interval ``mean ± z(coverage) * std``, the calibrated-coverage
        summary the calibration metrics of the paper evaluate.
        """
        stacked = Tensor(np.asarray(raw))
        likelihood = self.bnn.likelihood
        if isinstance(likelihood, likelihoods.HomoskedasticGaussian):
            mean = np.asarray(likelihood.aggregate_predictions(stacked).data)
            std = np.asarray(likelihood.predictive_stddev(stacked))
        elif isinstance(likelihood, likelihoods._Discrete):
            probs = np.asarray(likelihood.probs(stacked).data)
            mean = probs.mean(axis=0)
            std = probs.std(axis=0)
        else:
            data = np.asarray(stacked.data)
            mean = data.mean(axis=0)
            std = data.std(axis=0)
        z = _z_score(coverage)
        return PredictResponse(mean=mean, std=std, lo=mean - z * std,
                               hi=mean + z * std, coverage=float(coverage))

    def predict(self, inputs: np.ndarray, coverage: float = DEFAULT_COVERAGE
                ) -> PredictResponse:
        """The serial reference path: one request, one stacked forward."""
        return self.stats(self.predict_stacked(inputs), coverage)


def _rebuild_config(snapshot: Snapshot):
    """The snapshot's config echo as a typed config instance."""
    from ..experiments.api.registry import get_experiment

    spec = get_experiment(snapshot.experiment_id)
    try:
        return spec.config_cls.from_dict(snapshot.config)
    except (TypeError, ValueError) as exc:
        raise SnapshotError(
            f"snapshot config for {snapshot.experiment_id!r} no longer "
            f"matches {spec.config_cls.__name__}: {exc}") from exc
