"""A byte-bounded LRU response cache keyed on input bytes + snapshot id.

Serving traffic is often heavy-tailed in its inputs (health probes, repeated
grid points, retries), and every prediction from one snapshot is
deterministic — so a response computed once is valid forever for that
(input, coverage, snapshot) triple.  The cache is bounded in *bytes*, not
entries, because response payload size varies with the request's row count;
eviction is least-recently-used.  Hit/miss/eviction counters feed the
``/stats`` endpoint.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Any, Dict, Optional

import numpy as np

__all__ = ["ByteLRUCache", "response_cache_key", "response_nbytes"]


def response_cache_key(inputs: np.ndarray, coverage: float,
                       snapshot_id: str) -> str:
    """Deterministic key for one request against one snapshot."""
    digest = hashlib.sha256()
    digest.update(snapshot_id.encode())
    digest.update(f":{coverage!r}:{inputs.dtype}:{inputs.shape}:".encode())
    digest.update(np.ascontiguousarray(inputs).tobytes())
    return digest.hexdigest()


def response_nbytes(response) -> int:
    """Approximate in-memory size of a :class:`PredictResponse`."""
    total = 64  # object + coverage float overhead
    for array in (response.mean, response.std, response.lo, response.hi):
        total += int(np.asarray(array).nbytes)
    return total


class ByteLRUCache:
    """LRU mapping bounded by total stored bytes (not entry count)."""

    def __init__(self, max_bytes: int = 8 << 20) -> None:
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._store: "OrderedDict[str, Any]" = OrderedDict()
        self._sizes: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: str) -> bool:
        return key in self._store

    def get(self, key: str) -> Optional[Any]:
        """Cached value (refreshing recency) or ``None``; counts hit/miss."""
        if key in self._store:
            self.hits += 1
            self._store.move_to_end(key)
            return self._store[key]
        self.misses += 1
        return None

    def put(self, key: str, value: Any, nbytes: int) -> None:
        """Insert ``value`` of ``nbytes``, evicting LRU entries over budget.

        A value larger than the whole budget is not stored (it would evict
        everything for a single entry that can never be amortized).
        """
        nbytes = int(nbytes)
        if nbytes > self.max_bytes:
            return
        if key in self._store:
            self.current_bytes -= self._sizes[key]
            self._store.move_to_end(key)
        self._store[key] = value
        self._sizes[key] = nbytes
        self.current_bytes += nbytes
        while self.current_bytes > self.max_bytes:
            evicted_key, _ = self._store.popitem(last=False)
            self.current_bytes -= self._sizes.pop(evicted_key)
            self.evictions += 1

    def stats(self) -> Dict[str, int]:
        return {"entries": len(self._store), "bytes": self.current_bytes,
                "max_bytes": self.max_bytes, "hits": self.hits,
                "misses": self.misses, "evictions": self.evictions}
