"""The asyncio request broker: micro-batching over one stacked forward.

Concurrent ``predict`` requests are coalesced into a single
``vectorized_forward`` call — stacked inputs × stacked posterior samples —
amortizing Python/graph overhead across every request in the window.  A
batch flushes when it reaches ``max_batch`` input rows or when the oldest
pending request has waited ``max_wait_ms``, whichever comes first.  Each
request gets its own slice of the raw ``(S, N, ...)`` output, so coalesced
responses are bit-identical to serial per-request predictions: the forward
and every statistic reduce row-wise.

The numpy forward runs in a thread-pool executor (BLAS releases the GIL),
so the event loop keeps accepting requests while a batch computes.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from .cache import ByteLRUCache, response_cache_key, response_nbytes
from .engine import DEFAULT_COVERAGE, PredictResponse, PredictionEngine

__all__ = ["MicroBatcher"]


@dataclass
class _Unit:
    """One pending request: its rows, coverage, and the future to resolve."""

    inputs: np.ndarray
    coverage: float
    future: "asyncio.Future[PredictResponse]"
    cache_key: Optional[str] = None


@dataclass
class _Counters:
    requests: int = 0
    rows: int = 0
    batches: int = 0
    batched_rows: int = 0
    max_batch_rows: int = 0
    size_flushes: int = 0
    timer_flushes: int = 0

    def as_dict(self) -> Dict[str, Any]:
        mean = self.batched_rows / self.batches if self.batches else 0.0
        return {"requests": self.requests, "rows": self.rows,
                "batches": self.batches, "batched_rows": self.batched_rows,
                "mean_batch_rows": mean, "max_batch_rows": self.max_batch_rows,
                "size_flushes": self.size_flushes,
                "timer_flushes": self.timer_flushes}


class MicroBatcher:
    """Coalesce concurrent predict requests into single stacked forwards.

    Must be used from one asyncio event loop (the broker keeps no locks —
    all queue mutation happens on the loop thread).  ``cache`` is optional;
    when present, responses are keyed on input bytes + coverage + snapshot
    id and served without touching the model.
    """

    def __init__(self, engine: PredictionEngine, *, max_batch: int = 32,
                 max_wait_ms: float = 2.0,
                 cache: Optional[ByteLRUCache] = None,
                 executor=None) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        self.engine = engine
        self.max_batch = int(max_batch)
        self.max_wait_ms = float(max_wait_ms)
        self.cache = cache
        self.counters = _Counters()
        self._executor = executor
        self._pending: List[_Unit] = []
        self._pending_rows = 0
        self._timer: Optional[asyncio.TimerHandle] = None
        self._closed = False

    # ----------------------------------------------------------------- submit
    async def submit(self, inputs, coverage: float = DEFAULT_COVERAGE
                     ) -> PredictResponse:
        """Enqueue one request (a batch of input rows) and await its response."""
        if self._closed:
            raise RuntimeError("MicroBatcher is closed")
        inputs = np.ascontiguousarray(np.asarray(inputs, dtype=np.float64))
        if inputs.ndim < 2 or inputs.shape[0] < 1:
            raise ValueError(
                f"inputs must be a non-empty batch (rows on axis 0), got "
                f"shape {inputs.shape}")
        self.counters.requests += 1
        self.counters.rows += inputs.shape[0]
        cache_key = None
        if self.cache is not None:
            cache_key = response_cache_key(inputs, coverage,
                                           self.engine.snapshot_id)
            cached = self.cache.get(cache_key)
            if cached is not None:
                return cached
        loop = asyncio.get_running_loop()
        unit = _Unit(inputs=inputs, coverage=float(coverage),
                     future=loop.create_future(), cache_key=cache_key)
        self._pending.append(unit)
        self._pending_rows += inputs.shape[0]
        if self._pending_rows >= self.max_batch:
            self.counters.size_flushes += 1
            self._flush_now(loop)
        elif self._timer is None:
            self._timer = loop.call_later(self.max_wait_ms / 1000.0,
                                          self._on_timer, loop)
        return await unit.future

    async def close(self) -> None:
        """Flush anything pending and refuse further submissions."""
        self._closed = True
        if self._pending:
            loop = asyncio.get_running_loop()
            units = self._detach_pending()
            await self._run_batch(loop, units)

    # ------------------------------------------------------------------ flush
    def _on_timer(self, loop: asyncio.AbstractEventLoop) -> None:
        self._timer = None
        if self._pending:
            self.counters.timer_flushes += 1
            self._flush_now(loop)

    def _flush_now(self, loop: asyncio.AbstractEventLoop) -> None:
        units = self._detach_pending()
        if units:
            loop.create_task(self._run_batch(loop, units))

    def _detach_pending(self) -> List[_Unit]:
        units, self._pending = self._pending, []
        self._pending_rows = 0
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        return units

    async def _run_batch(self, loop: asyncio.AbstractEventLoop,
                         units: List[_Unit]) -> None:
        """One stacked forward for every unit, then per-unit slicing/stats."""
        batch = (units[0].inputs if len(units) == 1 else
                 np.concatenate([unit.inputs for unit in units], axis=0))
        self.counters.batches += 1
        self.counters.batched_rows += batch.shape[0]
        self.counters.max_batch_rows = max(self.counters.max_batch_rows,
                                           batch.shape[0])
        try:
            raw = await loop.run_in_executor(self._executor,
                                             self.engine.predict_stacked, batch)
        except Exception as exc:  # propagate to every awaiting request
            for unit in units:
                if not unit.future.done():
                    unit.future.set_exception(exc)
            return
        offset = 0
        for unit in units:
            rows = unit.inputs.shape[0]
            response = self.engine.stats(raw[:, offset:offset + rows],
                                         unit.coverage)
            offset += rows
            if self.cache is not None and unit.cache_key is not None:
                self.cache.put(unit.cache_key, response,
                               response_nbytes(response))
            if not unit.future.done():
                unit.future.set_result(response)

    # ------------------------------------------------------------------ stats
    def stats(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"batcher": self.counters.as_dict(),
                                   "max_batch": self.max_batch,
                                   "max_wait_ms": self.max_wait_ms}
        if self.cache is not None:
            payload["cache"] = self.cache.stats()
        return payload
