"""The lint finding record shared by every rule and the CLI."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ERROR", "WARNING", "SEVERITIES", "Finding"]

ERROR = "error"
WARNING = "warning"
SEVERITIES = (ERROR, WARNING)


@dataclass(frozen=True)
class Finding:
    """One lint finding: a rule violation anchored to a source location."""

    rule_id: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    autofixable: bool = False

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}; use one of {SEVERITIES}")

    @property
    def sort_key(self):
        return (self.path, self.line, self.col, self.rule_id)

    def format(self) -> str:
        """The one-line ``path:line:col: RULE [severity] message`` rendering."""
        fix = " (autofixable)" if self.autofixable else ""
        return (f"{self.path}:{self.line}:{self.col}: {self.rule_id} "
                f"[{self.severity}]{fix} {self.message}")
