"""The rule-plugin framework of the ``repro lint`` engine.

A rule is a subclass of :class:`LintRule` registered with
:func:`register_rule`; it declares a stable id (``R`` + 3 digits), a default
severity, whether its findings are mechanically autofixable (metadata for a
future ``--fix`` mode; the engine itself never rewrites files) and a
one-line description used by the CLI rule table.  ``check`` receives a parsed
:class:`FileContext` and yields :class:`~repro.analysis.findings.Finding`
objects; suppression (``# repro: noqa[...]``) is applied by the linter
afterwards so rules never need to know about it.
"""

from __future__ import annotations

import ast
import re
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import ClassVar, Dict, Iterable, Iterator, List, Optional, Set, Tuple, Type

from .findings import ERROR, Finding

__all__ = ["FileContext", "LintRule", "register_rule", "all_rules", "get_rule",
           "parse_noqa_directives", "NoqaDirectives"]

_RULE_ID_RE = re.compile(r"^R\d{3}$")

#: ``# repro: noqa`` or ``# repro: noqa[R001,R005]`` (whitespace-tolerant)
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[\s*([A-Z0-9,\s]+?)\s*\])?")


@dataclass
class FileContext:
    """One parsed source file handed to every rule."""

    path: Path
    source: str
    tree: ast.Module

    @property
    def posix_path(self) -> str:
        return self.path.as_posix()


class LintRule:
    """Base class for lint rules; subclass, set the class vars, implement ``check``."""

    rule_id: ClassVar[str] = ""
    severity: ClassVar[str] = ERROR
    autofixable: ClassVar[bool] = False
    description: ClassVar[str] = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    # ------------------------------------------------------------------ helpers
    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        """Build a finding for ``node`` carrying this rule's id/severity."""
        return Finding(rule_id=self.rule_id, severity=self.severity,
                       path=ctx.posix_path, line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0) + 1, message=message,
                       autofixable=self.autofixable)


_RULES: Dict[str, Type[LintRule]] = {}


def register_rule(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator adding a rule to the engine's registry."""
    if not (isinstance(cls, type) and issubclass(cls, LintRule)):
        raise TypeError("register_rule expects a LintRule subclass")
    if not _RULE_ID_RE.match(cls.rule_id or ""):
        raise ValueError(f"rule id {cls.rule_id!r} must match R<3 digits>")
    if cls.rule_id in _RULES:
        raise ValueError(f"rule id {cls.rule_id!r} is already registered")
    if not cls.description:
        raise ValueError(f"rule {cls.rule_id} must carry a one-line description")
    _RULES[cls.rule_id] = cls
    return cls


def all_rules() -> List[LintRule]:
    """Fresh instances of every registered rule, ordered by id."""
    return [_RULES[rule_id]() for rule_id in sorted(_RULES)]


def get_rule(rule_id: str) -> LintRule:
    try:
        return _RULES[rule_id]()
    except KeyError:
        raise KeyError(f"unknown rule id {rule_id!r}; registered: {sorted(_RULES)}") from None


# --------------------------------------------------------------------------
# ``# repro: noqa`` suppression directives.
# --------------------------------------------------------------------------
@dataclass
class NoqaDirectives:
    """Parsed suppression directives of one file.

    A directive on a line that also carries code suppresses the listed rules
    (all rules when bare) for findings anchored to that line; a directive on
    a comment-only line suppresses them for the whole file.
    """

    #: line number -> rule ids suppressed on that line (empty set = all rules)
    lines: Dict[int, Set[str]] = field(default_factory=dict)
    #: rule ids suppressed for the whole file (empty set + file_all = all)
    file_rules: Set[str] = field(default_factory=set)
    file_all: bool = False

    def suppresses(self, finding: Finding) -> bool:
        if self.file_all or finding.rule_id in self.file_rules:
            return True
        if finding.line in self.lines:
            rules = self.lines[finding.line]
            return not rules or finding.rule_id in rules
        return False


def parse_noqa_directives(source: str) -> NoqaDirectives:
    directives = NoqaDirectives()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        rules = {part.strip() for part in (match.group(1) or "").split(",") if part.strip()}
        if line.lstrip().startswith("#"):  # comment-only line: file-wide scope
            if rules:
                directives.file_rules.update(rules)
            else:
                directives.file_all = True
        else:
            directives.lines.setdefault(lineno, set()).update(rules)
    return directives


# --------------------------------------------------------------------------
# Shared AST helpers used by the built-in rules.
# --------------------------------------------------------------------------
def attr_chain(node: ast.AST) -> Tuple[str, ...]:
    """The dotted-name chain of a Name/Attribute expression (else ``()``).

    ``np.random.default_rng`` -> ``("np", "random", "default_rng")``; any
    non-trivial link (calls, subscripts) yields ``()``.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def scope_statements(fn: ast.AST) -> Iterator[ast.AST]:
    """All AST nodes lexically inside ``fn``'s own scope (nested defs excluded).

    Yields in source order, so "first use" diagnostics point at the earlier
    occurrence.
    """
    queue: "deque[ast.AST]" = deque(getattr(fn, "body", []))
    while queue:
        node = queue.popleft()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                             ast.ClassDef)):
            continue
        queue.extend(ast.iter_child_nodes(node))


def iter_calls(nodes: Iterable[ast.AST]) -> Iterator[ast.Call]:
    for node in nodes:
        if isinstance(node, ast.Call):
            yield node
