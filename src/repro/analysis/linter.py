"""File discovery, parsing and rule execution for ``repro lint``."""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from .findings import ERROR, Finding
from .rules import FileContext, LintRule, all_rules, parse_noqa_directives

__all__ = ["iter_python_files", "lint_file", "lint_paths"]

_SKIPPED_DIR_NAMES = {"__pycache__", ".git", ".pytest_cache", "node_modules"}

PathLike = Union[str, Path]


def iter_python_files(paths: Sequence[PathLike]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` file list."""
    files = []
    seen = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(p for p in path.rglob("*.py")
                                if not (_SKIPPED_DIR_NAMES & set(p.parts)))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            key = candidate.resolve()
            if key not in seen:
                seen.add(key)
                files.append(candidate)
    return files


def lint_file(path: PathLike, rules: Optional[Iterable[LintRule]] = None) -> List[Finding]:
    """Run every rule over one file, applying ``# repro: noqa`` suppression.

    Unparseable files yield a single ``R000`` error finding (a file the
    linter cannot read cannot be certified clean).
    """
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Finding(rule_id="R000", severity=ERROR, path=path.as_posix(),
                        line=exc.lineno or 1, col=(exc.offset or 0) + 1,
                        message=f"syntax error: {exc.msg}")]
    ctx = FileContext(path=path, source=source, tree=tree)
    directives = parse_noqa_directives(source)
    findings: List[Finding] = []
    for rule in (all_rules() if rules is None else rules):
        for finding in rule.check(ctx):
            if not directives.suppresses(finding):
                findings.append(finding)
    return sorted(findings, key=lambda f: f.sort_key)


def lint_paths(paths: Sequence[PathLike],
               rules: Optional[Iterable[LintRule]] = None) -> List[Finding]:
    """Lint every python file under ``paths`` and return all findings sorted."""
    rules = list(all_rules() if rules is None else rules)
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, rules=rules))
    return sorted(findings, key=lambda f: f.sort_key)
