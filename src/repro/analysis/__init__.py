"""Static correctness tooling for the reproduction (``repro check``).

Two complementary passes, both purely static (no experiment is trained):

``repro.analysis.lint`` — an AST lint engine with repo-specific rules
    (R001-R008) catching the defect classes that previous PRs could only fix
    *after* a runtime path exposed them: RNG draws that escape
    ``repro.ppl.rng.set_rng_seed``, duplicate / dynamically-formatted sample
    sites, eager ``.data`` materialization in lazy-graph hot paths, runners
    that never seed, sized-context violations of the vectorized engine,
    silent exception swallowing, blocking calls in async handlers, and
    numpy kernel calls that bypass the ``repro.nn.backends`` seam.
    Run it as ``repro lint [paths]``; suppress single findings with a
    trailing ``# repro: noqa[R001]`` comment or a whole file with the same
    directive on a comment-only line.

``repro.analysis.validate`` — a static model/guide validator built on the
    shape-only tracing mode of the poutine runtime (sites record their
    distribution and shapes but draw no values and consume no RNG).  It
    reports guide-uncovered sites, model/guide shape mismatches and the
    particle-size collision that the vectorized replay otherwise refuses at
    runtime.  Run it as ``repro check-model <experiment-id>`` or through
    :func:`repro.analysis.validate`.
"""

from .findings import ERROR, WARNING, Finding
from .linter import iter_python_files, lint_file, lint_paths
from .rules import FileContext, LintRule, all_rules, get_rule, register_rule
from .validate import (ModelGuideReport, ValidationFinding, ValidationTarget,
                       validate)

# importing the module registers the built-in rules with the framework
from . import lint_rules as _lint_rules  # noqa: F401  (import-for-side-effect)

__all__ = [
    "ERROR",
    "WARNING",
    "Finding",
    "FileContext",
    "LintRule",
    "all_rules",
    "get_rule",
    "register_rule",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "ModelGuideReport",
    "ValidationFinding",
    "ValidationTarget",
    "validate",
]
