"""Command implementations behind ``repro lint`` and ``repro check-model``.

Kept separate from :mod:`repro.experiments.api.cli` (which only lazy-imports
this module) so plain experiment runs never pay for the analysis imports.
Exit-code contract shared by both commands: 0 clean, 1 findings, 2 usage
error (unknown experiment id, no such path, ...).
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .findings import ERROR
from .linter import iter_python_files, lint_paths
from .rules import all_rules
from .validate import validate_target

__all__ = ["run_lint", "run_check_model"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def run_lint(paths: Sequence[str], *, stream=None, errstream=None) -> int:
    """``repro lint [paths...]``: run every registered rule over the paths."""
    stream = stream if stream is not None else sys.stdout
    errstream = errstream if errstream is not None else sys.stderr
    paths = list(paths) or ["src"]
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(f"repro lint: no such path: {', '.join(missing)}", file=errstream)
        return EXIT_USAGE
    files = iter_python_files(paths)
    findings = lint_paths(paths)
    for finding in findings:
        print(finding.format(), file=stream)
    errors = sum(1 for f in findings if f.severity == ERROR)
    warnings = len(findings) - errors
    print(f"repro lint: {len(files)} files, {errors} errors, {warnings} warnings "
          f"({len(all_rules())} rules)", file=stream)
    return EXIT_FINDINGS if findings else EXIT_CLEAN


def run_check_model(experiment_ids: Sequence[str], *, check_all: bool = False,
                    fast: bool = True, verbose: bool = False,
                    stream=None, errstream=None) -> int:
    """``repro check-model <id>...``: static model/guide validation.

    Builds every :class:`~repro.analysis.validate.ValidationTarget` the
    experiment registers and reports guide-coverage, shape and
    vectorized-axis findings without running any training.
    """
    stream = stream if stream is not None else sys.stdout
    errstream = errstream if errstream is not None else sys.stderr
    from ..experiments.api.registry import all_experiments, get_experiment

    if check_all:
        specs = all_experiments()
    elif not experiment_ids:
        print("repro check-model: pass at least one experiment id or --all",
              file=errstream)
        return EXIT_USAGE
    else:
        specs = []
        for experiment_id in experiment_ids:
            try:
                specs.append(get_experiment(experiment_id))
            except KeyError as exc:
                print(f"repro check-model: {exc.args[0]}", file=errstream)
                return EXIT_USAGE

    total_targets = 0
    dirty = 0
    errors = 0
    for spec in specs:
        targets = spec.make_validation_targets(fast=fast)
        if not targets:
            print(f"{spec.experiment_id}: no validation targets registered",
                  file=stream)
            continue
        for target in targets:
            total_targets += 1
            report = validate_target(target)
            label = f"{spec.experiment_id}/{target.name}"
            if report.clean and not verbose:
                print(f"{label}: ok ({len(report.model_sites)} model sites, "
                      f"{len(report.guide_sites)} guide sites)", file=stream)
                continue
            if not report.clean:
                dirty += 1
                if not report.ok:
                    errors += 1
            print(f"{label}:", file=stream)
            for line in report.format(verbose=verbose).splitlines():
                print(f"  {line}", file=stream)
    print(f"repro check-model: {total_targets} targets, "
          f"{dirty} with findings ({errors} with errors)", file=stream)
    return EXIT_FINDINGS if dirty else EXIT_CLEAN
