"""Static model/guide validation via shape-only abstract interpretation.

:func:`validate` traces a guide and then the model replayed against the guide
trace under :func:`repro.ppl.poutine.shape_only` — every sample site records
its name, distribution and shapes but draws **no** values (the global RNG
state is saved and restored around the pass, so validation is invisible to
any subsequent seeded run).  From the two traces it reports, before any
training happens:

* **uncovered-site** — a latent model site the guide does not cover.  Legal
  (the runtime falls back to per-particle prior draws) but the single most
  common source of silent posterior-quality bugs, so it is reported as a
  warning.
* **shape-mismatch** — a guide site whose value cannot broadcast against the
  model distribution at the same site (the configuration that today only
  explodes deep inside ``log_prob`` during the first ELBO step).
* **shape-broadcast** — broadcastable but unequal shapes (the guide value is
  silently expanded by the model density; usually a forgotten event dim).
* **vectorize-collision** — an uncovered site whose distribution shape leads
  with the particle count, the exact configuration
  ``repro.ppl.poutine.runtime`` refuses at runtime for vectorized replays.
* **orphaned-guide-site** — a guide latent the model never visits (its
  density contributes to the ELBO but nothing constrains it).

Experiments expose cheap untrained model/guide pairs as
:class:`ValidationTarget` objects through their registry entry, which is what
``repro check-model <experiment-id>`` iterates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import ppl
from ..ppl import poutine

__all__ = ["ValidationTarget", "ValidationFinding", "ModelGuideReport", "validate"]

#: finding kinds that make :attr:`ModelGuideReport.ok` False
_ERROR_KINDS = frozenset({"shape-mismatch", "vectorize-collision", "trace-failure"})


@dataclass
class ValidationTarget:
    """One statically-checkable model/guide pair exposed by an experiment.

    ``model``/``guide`` are the callables an ELBO would receive; ``args`` and
    ``kwargs`` a *tiny* example input (shapes matter, values do not — the
    validator never trains).  ``num_particles`` sets the particle count used
    for the vectorize-collision check.
    """

    name: str
    model: Callable
    guide: Callable
    args: Tuple = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    num_particles: int = 2


@dataclass(frozen=True)
class ValidationFinding:
    """One defect (or warning) of a model/guide pair."""

    kind: str
    site: Optional[str]
    message: str

    @property
    def is_error(self) -> bool:
        return self.kind in _ERROR_KINDS

    def format(self) -> str:
        severity = "error" if self.is_error else "warning"
        site = f" site={self.site!r}" if self.site else ""
        return f"[{severity}] {self.kind}{site}: {self.message}"


@dataclass
class ModelGuideReport:
    """The validator's result: per-site shape tables plus findings."""

    model_sites: Dict[str, Dict[str, Any]]
    guide_sites: Dict[str, Dict[str, Any]]
    findings: List[ValidationFinding]

    @property
    def ok(self) -> bool:
        """True when no *error*-class finding was recorded (warnings allowed)."""
        return not any(f.is_error for f in self.findings)

    @property
    def clean(self) -> bool:
        """True when nothing at all was found."""
        return not self.findings

    def format(self, verbose: bool = False) -> str:
        lines: List[str] = []
        if verbose:
            lines.append(f"model sites ({len(self.model_sites)}):")
            for name, info in self.model_sites.items():
                role = "observed" if info["is_observed"] else "latent"
                lines.append(f"  {name}: {info['distribution']} "
                             f"batch={info['batch_shape']} event={info['event_shape']} "
                             f"({role})")
            lines.append(f"guide sites ({len(self.guide_sites)}):")
            for name, info in self.guide_sites.items():
                lines.append(f"  {name}: {info['distribution']} "
                             f"value={info['value_shape']}")
        for finding in self.findings:
            lines.append(finding.format())
        if not self.findings:
            lines.append("ok: guide covers the model, all site shapes agree")
        return "\n".join(lines)


def _latent_names(sites: Dict[str, Dict[str, Any]]) -> List[str]:
    return [name for name, info in sites.items() if not info["is_observed"]]


def _fn_shape(info: Dict[str, Any]) -> Tuple[int, ...]:
    return tuple(info["batch_shape"]) + tuple(info["event_shape"])


def validate(model: Callable, guide: Callable, *args,
             num_particles: int = 2, **kwargs) -> ModelGuideReport:
    """Statically validate a model/guide pair without drawing a single sample.

    Runs both callables once under the shape-only tracing mode (zero-valued
    placeholder tensors of the correct shapes; no RNG consumption — the
    global generator state is restored afterwards, and guide parameters
    lazily instantiated during the pass are left in the store exactly as a
    first real trace would leave them).
    """
    if num_particles < 1:
        raise ValueError("num_particles must be >= 1")
    rng = ppl.get_rng()
    rng_state = rng.bit_generator.state
    try:
        with poutine.shape_only():
            guide_trace = poutine.trace(guide).get_trace(*args, **kwargs)
            model_trace = poutine.trace(
                poutine.replay(model, trace=guide_trace)).get_trace(*args, **kwargs)
    except Exception as exc:  # a pair that cannot even trace is itself a finding
        return ModelGuideReport(model_sites={}, guide_sites={}, findings=[
            ValidationFinding(kind="trace-failure", site=None,
                              message=f"{type(exc).__name__}: {exc}")])
    finally:
        rng.bit_generator.state = rng_state

    model_sites = model_trace.site_shapes()
    guide_sites = guide_trace.site_shapes()
    findings: List[ValidationFinding] = []

    model_latents = _latent_names(model_sites)
    guide_latents = _latent_names(guide_sites)

    for name in model_latents:
        info = model_sites[name]
        if name in guide_sites:
            continue
        findings.append(ValidationFinding(
            kind="uncovered-site", site=name,
            message=(f"latent model site {name!r} ({info['distribution']}, "
                     f"shape {_fn_shape(info)}) is not covered by the guide: "
                     "inference will fall back to per-particle prior draws "
                     "for it")))
        fn_shape = _fn_shape(info)
        if num_particles > 1 and fn_shape[:1] == (num_particles,):
            findings.append(ValidationFinding(
                kind="vectorize-collision", site=name,
                message=(f"uncovered site {name!r} has distribution shape "
                         f"{fn_shape}, which leads with the particle count "
                         f"{num_particles}: the vectorized replay cannot tell "
                         "a particle axis from this batch axis and will "
                         "refuse at runtime — cover the site with the guide "
                         "or run the looped estimator")))

    for name in guide_latents:
        if name not in model_sites:
            findings.append(ValidationFinding(
                kind="orphaned-guide-site", site=name,
                message=(f"guide samples site {name!r} but the model never "
                         "visits it; its density still enters the ELBO while "
                         "nothing in the model constrains it")))
            continue
        model_info = model_sites[name]
        guide_value_shape = tuple(guide_sites[name]["value_shape"])
        model_fn_shape = _fn_shape(model_info)
        if guide_value_shape == model_fn_shape:
            continue
        try:
            broadcast = np.broadcast_shapes(guide_value_shape, model_fn_shape)
        except ValueError:
            findings.append(ValidationFinding(
                kind="shape-mismatch", site=name,
                message=(f"guide value shape {guide_value_shape} cannot "
                         f"broadcast against the model distribution at "
                         f"{name!r} ({model_info['distribution']}, shape "
                         f"{model_fn_shape}); the first ELBO step would fail "
                         "inside log_prob")))
            continue
        findings.append(ValidationFinding(
            kind="shape-broadcast", site=name,
            message=(f"guide value shape {guide_value_shape} only broadcasts "
                     f"(to {tuple(broadcast)}) against the model shape "
                     f"{model_fn_shape} at {name!r}; usually a missing event "
                     "dimension — the density silently expands the value")))

    for name, info in model_sites.items():
        if info.get("shape_only_error"):
            findings.append(ValidationFinding(
                kind="vectorize-collision", site=name,
                message=info["shape_only_error"]))

    return ModelGuideReport(model_sites=dict(model_sites),
                            guide_sites=dict(guide_sites), findings=findings)


def validate_target(target: ValidationTarget) -> ModelGuideReport:
    """Validate one :class:`ValidationTarget` (the ``check-model`` unit of work)."""
    return validate(target.model, target.guide, *target.args,
                    num_particles=target.num_particles, **target.kwargs)
